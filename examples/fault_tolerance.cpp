// Fault-tolerant Eunomia demo (§3.3): a 3-replica native service survives
// the crash of its leader mid-stream with no loss, no duplication, and no
// coordination between replicas.
//
// The demo pushes a numbered stream of updates through the replicated
// service, kills replica 0 (the leader) halfway, and verifies that the
// emitted stream — produced partly by the old leader and partly by the new
// one — is exactly the submitted sequence in timestamp order.
//
// Build & run:   ./build/examples/fault_tolerance
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>
#include "src/common/sync.h"

#include "src/clock/hybrid_clock.h"
#include "src/eunomia/service.h"

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main() {
  constexpr std::uint32_t kPartitions = 2;
  constexpr int kTotalOps = 2000;
  constexpr int kCrashAfter = 1000;

  std::vector<std::uint64_t> emitted;  // op tags, in emission order
  eunomia::sync::Mutex mu{"fault_tolerance::mu", eunomia::sync::kRankLeaf};

  eunomia::FtEunomiaService::Options options;
  options.num_partitions = kPartitions;
  options.num_replicas = 3;
  options.stable_period_us = 300;
  options.sink = [&](const std::vector<eunomia::OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    for (const eunomia::OpRecord& op : ops) {
      emitted.push_back(op.tag);
    }
  };
  eunomia::FtEunomiaService service(options);
  service.Start();
  std::printf("3-replica Eunomia started; leader = replica %u\n",
              *service.CurrentLeader());

  // One client alternating between two partitions: each update depends on
  // the previous (Alg. 1 client clock), so tags 0..N-1 form a causal chain.
  eunomia::Timestamp client_clock = 0;
  std::vector<eunomia::HybridClock> clocks(kPartitions);
  for (int i = 0; i < kTotalOps; ++i) {
    const auto p = static_cast<eunomia::PartitionId>(i % kPartitions);
    const eunomia::Timestamp ts =
        clocks[p].TimestampUpdate(NowMicros(), client_clock);
    client_clock = ts;
    service.SubmitBatch(p, {eunomia::OpRecord{
                               ts, p, 0, static_cast<std::uint64_t>(i)}});
    if (i == kCrashAfter) {
      std::printf("crashing the leader after %d ops...\n", i);
      service.CrashReplica(0);
      std::printf("new leader = replica %u (no handshake, no replay "
                  "coordination)\n",
                  *service.CurrentLeader());
    }
  }
  for (eunomia::PartitionId p = 0; p < kPartitions; ++p) {
    service.Heartbeat(p, client_clock + 1'000'000);
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < kTotalOps &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();

  eunomia::sync::MutexLock lock(mu);
  bool exact = emitted.size() == kTotalOps;
  for (std::size_t i = 0; exact && i < emitted.size(); ++i) {
    exact = emitted[i] == i;
  }
  std::printf("emitted %zu/%d updates across the failover\n", emitted.size(),
              kTotalOps);
  std::printf("stream is the exact causal sequence (no loss, no duplication, "
              "no reorder): %s\n",
              exact ? "yes" : "NO");
  return exact ? 0 : 1;
}
