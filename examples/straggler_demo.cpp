// Straggler demo (§7.2.3): what happens to a datacenter's outbound updates
// when one partition communicates with the local Eunomia service less often
// than it should.
//
// Eunomia's stable time is the minimum over the latest timestamps received
// from every partition, so a partition that reports every 200 ms (instead
// of every 1 ms) delays the *shipping* of every other partition's updates
// by up to its reporting interval — visibility degrades proportionally, and
// recovers immediately after the partition heals. Crucially, local clients
// never notice: Eunomia is off their critical path.
//
// Build & run:   ./build/examples/straggler_demo
#include <cstdio>

#include "src/georep/eunomiakv.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

int main() {
  using namespace eunomia;

  geo::GeoConfig config;
  config.timeline_window_us = 500 * sim::kMillisecond;
  sim::Simulator sim(77);
  geo::EunomiaKvSystem store(&sim, config);

  wl::WorkloadConfig workload;
  workload.update_fraction = 0.2;
  workload.clients_per_dc = 8;
  workload.duration_us = 9 * sim::kSecond;
  wl::WorkloadDriver driver(&sim, &store, workload, config.num_dcs);
  driver.Start();

  std::printf("phase 1 (0-3s): all partitions report to Eunomia every 1 ms\n");
  sim.RunUntil(3 * sim::kSecond);

  std::printf("phase 2 (3-6s): partition 0 of dc0 degrades to one report "
              "every 200 ms\n");
  store.SetPartitionCommInterval(0, 0, 200 * sim::kMillisecond);
  sim.RunUntil(6 * sim::kSecond);

  std::printf("phase 3 (6-9s): partition healed\n\n");
  store.SetPartitionCommInterval(0, 0, config.batch_interval_us);
  sim.RunUntil(9 * sim::kSecond);
  driver.Stop();
  sim.RunUntil(11 * sim::kSecond);

  const TimeSeries* timeline = store.tracker().VisibilityTimeline(0, 1);
  if (timeline == nullptr) {
    std::printf("no visibility samples recorded\n");
    return 1;
  }
  const auto means = timeline->ValueMeans();
  std::printf("added visibility delay for dc0-origin updates at dc1 "
              "(0.5 s windows):\n");
  std::printf("  t(s)  delay(ms)\n");
  for (std::size_t w = 0; w < means.size() && w < 18; ++w) {
    const double t = static_cast<double>(w) * 0.5;
    std::printf("  %4.1f  %8.1f  %s\n", t, means[w] / 1000.0,
                t >= 3.0 && t < 6.0 ? "<- straggling" : "");
  }
  std::printf(
      "\nexpected: ~3-5 ms while healthy, ~100 ms (half the 200 ms reporting "
      "interval, on average) while\nstraggling, immediate recovery after "
      "healing — and local clients never block either way.\n");
  return 0;
}
