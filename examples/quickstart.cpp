// Quickstart: the Eunomia service in 80 lines.
//
// Builds a single-datacenter deployment of the *native* (multithreaded)
// Eunomia service with 4 partitions, pushes causally related updates through
// hybrid clocks, and shows that the service emits them in a total order
// consistent with causality — without ever being on the client's critical
// path.
//
// Build & run:   ./build/examples/quickstart
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>
#include "src/common/sync.h"

#include "src/clock/hybrid_clock.h"
#include "src/eunomia/service.h"

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main() {
  constexpr std::uint32_t kPartitions = 4;

  // The sink is where stable, totally ordered updates come out — in a real
  // deployment this ships them to remote datacenters.
  std::vector<eunomia::OpRecord> shipped;
  eunomia::sync::Mutex mu{"quickstart::mu", eunomia::sync::kRankLeaf};

  eunomia::EunomiaService::Options options;
  options.num_partitions = kPartitions;
  options.stable_period_us = 500;  // theta: stabilize every 0.5 ms
  options.sink = [&](const std::vector<eunomia::OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    shipped.insert(shipped.end(), ops.begin(), ops.end());
  };
  eunomia::EunomiaService service(options);
  service.Start();

  // One client whose causal history hops across partitions: each update
  // carries the client's clock, so Property 1 (causality) holds end-to-end.
  eunomia::Timestamp client_clock = 0;
  std::vector<eunomia::HybridClock> partition_clocks(kPartitions);
  for (int i = 0; i < 1000; ++i) {
    const auto p = static_cast<eunomia::PartitionId>(i % kPartitions);
    const eunomia::Timestamp ts =
        partition_clocks[p].TimestampUpdate(NowMicros(), client_clock);
    client_clock = ts;  // Alg. 1 line 9: the reply updates the client clock
    service.SubmitBatch(p, {eunomia::OpRecord{
                               ts, p, /*key=*/static_cast<eunomia::Key>(i),
                               /*tag=*/static_cast<std::uint64_t>(i)}});
  }
  // Idle partitions heartbeat so the last updates stabilize (Alg. 2 l.10-12).
  for (eunomia::PartitionId p = 0; p < kPartitions; ++p) {
    service.Heartbeat(p, client_clock + 1000);
  }

  // Eunomia works in the background; wait for it to drain.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.ops_stabilized() < 1000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();

  eunomia::sync::MutexLock lock(mu);
  std::printf("Eunomia stabilized %zu/1000 updates\n", shipped.size());

  // Verify the causal total order: our client's updates were issued in tag
  // order (0, 1, 2, ...) with each depending on the previous; the emission
  // must preserve exactly that order.
  bool ordered = true;
  for (std::size_t i = 1; i < shipped.size(); ++i) {
    if (shipped[i].tag != shipped[i - 1].tag + 1 ||
        shipped[i].ts <= shipped[i - 1].ts) {
      ordered = false;
      break;
    }
  }
  std::printf("causal total order preserved: %s\n", ordered ? "yes" : "NO");
  return shipped.size() == 1000 && ordered ? 0 : 1;
}
