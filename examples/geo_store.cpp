// Geo-replicated store walkthrough: a social-feed style scenario on
// EunomiaKV across three datacenters (the workload class the paper's
// introduction motivates: internet services that must hide WAN latency yet
// never show effects before their causes).
//
// Alice (Virginia, dc0) removes her manager from the audience of her posts
// and then posts an update; Bob (Ireland, dc2) must never observe the post
// without the audience change — causal consistency in one picture.
//
// The example runs the full simulated deployment (8 partitions / 3 servers
// per DC, real WAN latencies), prints the causal chain with timestamps, and
// contrasts with the eventually consistent baseline where the anomaly is
// possible.
//
// Build & run:   ./build/examples/geo_store
#include <cstdio>
#include <string>

#include "src/eventual/eventual.h"
#include "src/georep/eunomiakv.h"
#include "src/sim/simulator.h"

namespace {

constexpr eunomia::Key kAudienceKey = 1001;  // "alice/audience"
constexpr eunomia::Key kPostsKey = 2002;     // "alice/posts"
constexpr eunomia::ClientId kAlice = 1;

void RunEunomiaKv() {
  std::printf("--- EunomiaKV (causally consistent) ---\n");
  eunomia::geo::GeoConfig config;  // the paper's 3-DC deployment
  eunomia::sim::Simulator sim(2024);
  eunomia::geo::EunomiaKvSystem store(&sim, config);
  store.tracker().EnableDetailedLog();

  // Alice at dc0: audience change, then the post — a causal chain.
  bool chain_done = false;
  store.ClientUpdate(kAlice, 0, kAudienceKey, "friends-only", [&] {
    std::printf("[%6.1f ms] dc0: audience <- friends-only (update 1)\n",
                sim.now() / 1000.0);
    store.ClientUpdate(kAlice, 0, kPostsKey, "free at 5pm!", [&] {
      std::printf("[%6.1f ms] dc0: posts    <- 'free at 5pm!' (update 2)\n",
                  sim.now() / 1000.0);
      chain_done = true;
    });
  });
  sim.RunUntil(2 * eunomia::sim::kSecond);

  // When did each update become visible in Ireland (dc2)?
  const auto vis1 = store.tracker().VisibleAt(0, 2);
  const auto vis2 = store.tracker().VisibleAt(1, 2);
  if (chain_done && vis1 && vis2) {
    std::printf("[%6.1f ms] dc2: audience change visible\n", *vis1 / 1000.0);
    std::printf("[%6.1f ms] dc2: post visible\n", *vis2 / 1000.0);
    std::printf("causal order at dc2 preserved: %s\n",
                *vis1 <= *vis2 ? "yes (audience before post, always)" : "NO");
  }

  // Bob reads at dc2 after replication: both values present.
  bool reads_done = false;
  store.ClientRead(2, 2, kAudienceKey, [&] {
    store.ClientRead(2, 2, kPostsKey, [&] { reads_done = true; });
  });
  sim.RunUntil(3 * eunomia::sim::kSecond);
  const eunomia::geo::GeoVersion* audience = nullptr;
  for (eunomia::PartitionId p = 0; p < config.partitions_per_dc; ++p) {
    if (const auto* v = store.StoreAt(2, p).Get(kAudienceKey)) {
      audience = v;
    }
  }
  std::printf("dc2 replica state after Bob's reads: audience = \"%s\"\n",
              reads_done && audience != nullptr ? audience->value.c_str()
                                                : "(pending)");
}

void RunEventual() {
  std::printf("\n--- Eventual consistency (no causality) ---\n");
  eunomia::geo::GeoConfig config;
  eunomia::sim::Simulator sim(2024);
  eunomia::geo::EventualSystem store(&sim, config);
  store.tracker().EnableDetailedLog();
  bool done = false;
  store.ClientUpdate(kAlice, 0, kAudienceKey, "friends-only", [&] {
    store.ClientUpdate(kAlice, 0, kPostsKey, "free at 5pm!", [&] { done = true; });
  });
  sim.RunUntil(2 * eunomia::sim::kSecond);
  const auto vis1 = store.tracker().VisibleAt(0, 2);
  const auto vis2 = store.tracker().VisibleAt(1, 2);
  if (done && vis1 && vis2) {
    std::printf("dc2: audience visible at %.1f ms, post at %.1f ms\n",
                *vis1 / 1000.0, *vis2 / 1000.0);
    std::printf(
        "eventual consistency applies each update on arrival: nothing "
        "prevents the post\nfrom becoming visible before the audience change "
        "under jitter or partition skew.\n");
  }
}

}  // namespace

int main() {
  std::printf(
      "EunomiaKV geo-replication demo: 3 datacenters "
      "(Virginia/Oregon/Ireland-like RTTs: 80/80/160 ms)\n\n");
  RunEunomiaKv();
  RunEventual();
  return 0;
}
