// georepd — one datacenter of a real EunomiaKV geo-replicated deployment.
//
// Hosts a full geo::rt::GeoNode (partitions + Eunomia stabilizer +
// Algorithm 5 receiver on one event loop) behind a TCP listener, and dials
// the metadata + payload links to every peer datacenter — the runtime that
// the simulator reproduces figures with, deployed on real sockets.
//
//   # a 3-DC deployment on one machine:
//   georepd --dc=0 --listen=127.0.0.1:9100 --peers=-,127.0.0.1:9101,127.0.0.1:9102
//   georepd --dc=1 --listen=127.0.0.1:9101 --peers=127.0.0.1:9100,-,127.0.0.1:9102
//   georepd --dc=2 --listen=127.0.0.1:9102 --peers=127.0.0.1:9100,127.0.0.1:9101,-
//
// Flags:
//   --dc=N           this node's datacenter id            (default 0)
//   --dcs=N          datacenters in the deployment        (default 3)
//   --partitions=N   partitions per datacenter            (default 8)
//   --listen=H:P     listen address                       (default 127.0.0.1:9100)
//   --peers=A,B,...  peer addresses indexed by dc id; the self entry is
//                    ignored (use "-"). Dials retry until every peer is up.
//   --data-dir=PATH  write-ahead-log directory. The node logs every local
//                    install and inbound metadata/payload before processing,
//                    snapshots periodically, and recovers from the directory
//                    on startup — a kill -9'd datacenter rejoins from its
//                    own WAL with incremental catch-up from peers. Also
//                    enables peer-history retention (replay to restarting
//                    peers), truncated by their durable acks.
//   --fsync=POLICY   commit | interval | off  (default commit; needs
//                    --data-dir)
//   --metrics-port=N serve GET /metrics (Prometheus text exposition) and
//                    GET /healthz on the listen host at port N (0 =
//                    ephemeral) and register the node's per-dc series
//                    (visibility histograms, receiver queue depths,
//                    replay/reconnect counters)
//   --smoke          self-drive: spin up the whole multi-DC deployment
//                    in-process over ephemeral TCP ports, run causally
//                    chained clients at every datacenter, verify causal
//                    visibility order and store convergence, and check the
//                    deployment's own /metrics endpoint for the key series
//                    (present and monotone), exit 0/1. Used by ctest/CI.
//
// The daemon runs until SIGINT/SIGTERM, printing a stats line every ~5 s.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/flags.h"
#include "src/georep/runtime/geo_node.h"
#include "src/metrics/metrics_server.h"
#include "src/metrics/registry.h"
#include "src/net/epoll_transport.h"
#include "src/net/tcp_transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

using eunomia::metrics::SeriesSum;

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

// The ctest/CI smoke path: the full deployment in one process, every
// cross-DC byte over real loopback TCP sockets.
int RunSmoke(std::uint32_t num_dcs, std::uint32_t partitions,
             eunomia::net::TcpBackend io) {
  using namespace eunomia;
  geo::GeoConfig config;
  config.num_dcs = num_dcs;
  config.partitions_per_dc = partitions;
  config.batch_interval_us = 200;
  config.theta_us = 200;
  config.delta_us = 200;
  config.rho_us = 200;

  metrics::MetricsServer metrics_server;
  const std::string metrics_address = metrics_server.Start("127.0.0.1:0");
  if (metrics_address.empty()) {
    std::fprintf(stderr, "georepd --smoke: could not bind a metrics port\n");
    return 1;
  }

  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<geo::rt::GeoNode>> nodes;
  std::vector<std::string> addresses;
  for (DatacenterId m = 0; m < num_dcs; ++m) {
    transports.push_back(net::MakeTcpTransport(io));
    geo::rt::GeoNode::Options node_options;
    node_options.dc = m;
    node_options.config = config;
    node_options.detailed_visibility = true;
    // All nodes share the process registry: series are per-dc labeled. A
    // fast mirror tick so the short smoke run sees fresh values.
    node_options.metrics = &metrics::Registry::Default();
    node_options.metrics_interval_us = 50'000;
    nodes.push_back(std::make_unique<geo::rt::GeoNode>(transports.back().get(),
                                                       node_options));
    addresses.push_back(nodes.back()->Listen("127.0.0.1:0"));
    if (addresses.back().empty()) {
      std::fprintf(stderr, "georepd --smoke: dc%u could not bind a port\n", m);
      return 1;
    }
  }
  for (DatacenterId m = 0; m < num_dcs; ++m) {
    for (DatacenterId k = 0; k < num_dcs; ++k) {
      if (k != m && !nodes[m]->ConnectPeer(k, addresses[k])) {
        std::fprintf(stderr, "georepd --smoke: dc%u could not dial dc%u\n", m,
                     k);
        return 1;
      }
    }
  }
  for (auto& node : nodes) {
    node->Start();
  }
  // Early scrape: the counters below must never move backwards from here.
  std::string scrape1;
  if (!metrics::HttpGet(metrics_address, "/metrics", &scrape1)) {
    std::fprintf(stderr, "georepd --smoke: early GET /metrics failed\n");
    return 1;
  }
  std::printf("georepd --smoke: %u datacenters over TCP (", num_dcs);
  for (DatacenterId m = 0; m < num_dcs; ++m) {
    std::printf("%s%s", m > 0 ? " " : "", addresses[m].c_str());
  }
  std::printf(")\n");

  // One causally chained client per datacenter: update then read, repeat.
  constexpr int kOpsPerDc = 20;
  std::atomic<int> updates_done{0};
  std::vector<std::shared_ptr<std::function<void(int)>>> issues;
  for (DatacenterId m = 0; m < num_dcs; ++m) {
    const ClientId client = 100 + m;
    auto issue = std::make_shared<std::function<void(int)>>();
    issues.push_back(issue);
    geo::rt::GeoNode* node = nodes[m].get();
    *issue = [node, client, m, issue, &updates_done](int i) {
      if (i >= kOpsPerDc) {
        return;
      }
      const Key key = 1000 * m + i;
      node->ClientUpdate(client, key, "georepd-v" + std::to_string(i),
                         [node, client, key, issue, i, &updates_done] {
                           node->ClientRead(client, key,
                                            [issue, i, &updates_done] {
                                              updates_done.fetch_add(1);
                                              (*issue)(i + 1);
                                            });
                         });
    };
    (*issue)(0);
  }

  // Every datacenter applies every remote update.
  const std::uint64_t expected_remote =
      static_cast<std::uint64_t>(kOpsPerDc) * (num_dcs - 1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool converged = false;
  while (!converged && std::chrono::steady_clock::now() < deadline) {
    converged = true;
    for (auto& node : nodes) {
      std::uint64_t applied = 0;
      node->RunBlocking(
          [&] { applied = node->runtime().receiver().applied_count(); });
      converged = converged && applied == expected_remote;
    }
    if (!converged) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // Causal chains must be visible in order at every remote datacenter, and
  // all stores must converge to identical contents.
  bool ordered = true;
  for (DatacenterId d = 0; d < num_dcs && converged; ++d) {
    auto& node = *nodes[d];
    node.RunBlocking([&] {
      for (DatacenterId o = 0; o < num_dcs; ++o) {
        if (o == d) {
          continue;
        }
        std::uint64_t prev = 0;
        for (int i = 0; i < kOpsPerDc; ++i) {
          // Origin o's uid stream: o + i * num_dcs.
          const auto t = node.tracker().VisibleAt(
              o + static_cast<std::uint64_t>(i) * num_dcs, d);
          if (!t.has_value() || *t < prev) {
            ordered = false;
            return;
          }
          prev = *t;
        }
      }
    });
  }
  auto snapshot = [&](DatacenterId d) {
    std::map<Key, Value> contents;
    nodes[d]->RunBlocking([&] {
      for (PartitionId p = 0; p < partitions; ++p) {
        nodes[d]->runtime().StoreAt(p).ForEach(
            [&](Key k, const eunomia::geo::GeoVersion& v) {
              contents[k] = v.value;
            });
      }
    });
    return contents;
  };
  bool identical = converged;
  if (converged) {
    const auto dc0 = snapshot(0);
    identical = dc0.size() == static_cast<std::size_t>(kOpsPerDc) * num_dcs;
    for (DatacenterId d = 1; d < num_dcs; ++d) {
      identical = identical && dc0 == snapshot(d);
    }
  }
  // Self-scrape: let two mirror ticks pass so the gauges/counters reflect
  // the converged state, then assert the key per-dc series are present and
  // the counters are monotone across the run.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  std::string health;
  std::string scrape2;
  bool metrics_ok = metrics::HttpGet(metrics_address, "/healthz", &health) &&
                    health == "ok\n" &&
                    metrics::HttpGet(metrics_address, "/metrics", &scrape2);
  if (metrics_ok) {
    bool buffered_found = false;
    bool pending_found = false;
    SeriesSum(scrape2, "eunomia_georep_buffered_payloads", &buffered_found);
    SeriesSum(scrape2, "eunomia_georep_pending_applies", &pending_found);
    metrics_ok =
        buffered_found && pending_found &&
        SeriesSum(scrape2,
                  "eunomia_georep_visibility_latency_microseconds_count") >
            0 &&
        SeriesSum(scrape2, "eunomia_georep_updates_installed_total") > 0 &&
        SeriesSum(scrape2, "eunomia_net_frames_in_total") > 0;
    for (const char* counter :
         {"eunomia_georep_updates_installed_total",
          "eunomia_georep_visibility_latency_microseconds_count",
          "eunomia_net_frames_in_total", "eunomia_net_bytes_out_total"}) {
      metrics_ok = metrics_ok &&
                   SeriesSum(scrape2, counter) >= SeriesSum(scrape1, counter);
    }
  }

  std::uint64_t wire_errors = 0;
  for (auto& node : nodes) {
    wire_errors += node->wire_errors() + node->send_failures();
    node->Stop();
  }
  metrics_server.Stop();
  // The driver chains are self-referential (each function captures the
  // shared_ptr that owns it); with every event loop joined, break the
  // cycles so the sessions they capture can be reclaimed.
  for (auto& issue : issues) {
    *issue = nullptr;
  }
  if (!converged || !ordered || !identical || wire_errors != 0 ||
      !metrics_ok) {
    std::fprintf(stderr,
                 "georepd --smoke: FAILED (converged=%d ordered=%d "
                 "identical=%d wire_errors=%llu metrics_ok=%d)\n",
                 converged ? 1 : 0, ordered ? 1 : 0, identical ? 1 : 0,
                 static_cast<unsigned long long>(wire_errors),
                 metrics_ok ? 1 : 0);
    return 1;
  }
  std::printf(
      "georepd --smoke: OK — %d updates per DC over %u DCs, causal order "
      "preserved, stores identical (%d ops/DC driven); /metrics served %zu "
      "bytes with key series present and monotone\n",
      kOpsPerDc, num_dcs, updates_done.load(), scrape2.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(argc, argv,
                              {"dc", "dcs", "partitions", "listen", "peers",
                               "data-dir", "fsync", "metrics-port", "smoke",
                               "io"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  const auto dc = static_cast<eunomia::DatacenterId>(flags.GetUint("dc", 0));
  const auto num_dcs = static_cast<std::uint32_t>(flags.GetUint("dcs", 3));
  const auto partitions =
      static_cast<std::uint32_t>(flags.GetUint("partitions", 8));
  eunomia::net::TcpBackend io = eunomia::net::TcpBackend::kEpoll;
  if (!eunomia::net::ParseTcpBackend(flags.Get("io", "epoll"), &io)) {
    std::fprintf(stderr, "--io must be epoll or threaded (got '%s')\n",
                 flags.Get("io", "epoll").c_str());
    return 2;
  }
  if (flags.smoke()) {
    return RunSmoke(num_dcs, partitions, io);
  }
  if (dc >= num_dcs) {
    std::fprintf(stderr, "georepd: --dc=%u out of range (--dcs=%u)\n", dc,
                 num_dcs);
    return 2;
  }

  eunomia::geo::GeoConfig config;
  config.num_dcs = num_dcs;
  config.partitions_per_dc = partitions;
  eunomia::geo::rt::GeoNode::Options node_options;
  node_options.dc = dc;
  node_options.config = config;
  std::unique_ptr<eunomia::wal::PosixDisk> disk;
  const std::string data_dir = flags.Get("data-dir", "");
  if (!data_dir.empty()) {
    disk = std::make_unique<eunomia::wal::PosixDisk>(data_dir);
    if (!disk->ok()) {
      std::fprintf(stderr, "georepd: cannot open --data-dir=%s\n",
                   data_dir.c_str());
      return 1;
    }
    node_options.durability_disk = disk.get();
    if (!eunomia::wal::ParseFsyncPolicy(flags.Get("fsync", "commit"),
                                        &node_options.fsync)) {
      std::fprintf(stderr,
                   "--fsync must be commit, interval or off (got '%s')\n",
                   flags.Get("fsync", "commit").c_str());
      return 2;
    }
    // Keep what we send until peers durably ack it — a restarting peer gets
    // the gap replayed on reconnect.
    node_options.retain_peer_history = true;
  } else if (flags.Has("fsync")) {
    std::fprintf(stderr, "--fsync requires --data-dir\n");
    return 2;
  }
  if (flags.Has("metrics-port")) {
    node_options.metrics = &eunomia::metrics::Registry::Default();
  }
  std::unique_ptr<eunomia::net::Transport> transport =
      eunomia::net::MakeTcpTransport(io);
  eunomia::geo::rt::GeoNode node(transport.get(), node_options);
  const std::string bound =
      node.Listen(flags.Get("listen", "127.0.0.1:9100"));
  if (bound.empty()) {
    std::fprintf(stderr, "georepd: could not listen on %s\n",
                 flags.Get("listen", "127.0.0.1:9100").c_str());
    return 1;
  }
  eunomia::metrics::MetricsServer metrics_server;
  if (flags.Has("metrics-port")) {
    // Same host as the data listener, the metrics port next to it.
    const std::string listen = flags.Get("listen", "127.0.0.1:9100");
    const std::size_t colon = listen.rfind(':');
    const std::string host =
        colon == std::string::npos ? "127.0.0.1" : listen.substr(0, colon);
    const std::string metrics_bound = metrics_server.Start(
        host + ":" + std::to_string(flags.GetUint("metrics-port", 0)));
    if (metrics_bound.empty()) {
      std::fprintf(stderr, "georepd: could not bind --metrics-port\n");
      return 1;
    }
    std::printf("georepd: metrics on http://%s/metrics\n",
                metrics_bound.c_str());
  }
  std::printf("georepd: dc%u serving %u partitions on %s%s%s\n", dc,
              partitions, bound.c_str(),
              disk != nullptr ? ", wal fsync=" : "",
              disk != nullptr ? eunomia::wal::FsyncPolicyName(node_options.fsync)
                              : "");

  const std::vector<std::string> peers = SplitCsv(flags.Get("peers", ""));
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  for (eunomia::DatacenterId k = 0; k < num_dcs && g_stop == 0; ++k) {
    if (k == dc || k >= peers.size() || peers[k].empty() || peers[k] == "-") {
      continue;
    }
    while (g_stop == 0 && !node.ConnectPeer(k, peers[k])) {
      std::printf("georepd: waiting for dc%u at %s ...\n", k,
                  peers[k].c_str());
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }
  node.Start();
  std::printf("georepd: dc%u running\n", dc);

  int tick = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (++tick % 25 == 0) {  // every ~5 s
      std::uint64_t installed = 0;
      std::uint64_t applied = 0;
      node.RunBlocking([&] {
        installed = node.runtime().updates_installed();
        applied = node.runtime().receiver().applied_count();
      });
      std::printf(
          "georepd: dc%u installed=%llu remote_applied=%llu wire_errors=%llu "
          "send_failures=%llu\n",
          dc, static_cast<unsigned long long>(installed),
          static_cast<unsigned long long>(applied),
          static_cast<unsigned long long>(node.wire_errors()),
          static_cast<unsigned long long>(node.send_failures()));
    }
  }
  std::printf("georepd: shutting down\n");
  metrics_server.Stop();
  node.Stop();
  return 0;
}
