// eunomiad — the standalone Eunomia service daemon.
//
// Hosts an EunomiaService (or, with --ft, an FtEunomiaService) behind a
// real TCP listener, turning the in-process stabilizer into the networked
// service the paper deploys (§6–§7: partitions connect to Eunomia over
// FIFO links and push batched operations; the stable stream comes back in
// global (ts, partition) order). Remote partitions use net::EunomiaClient.
//
//   eunomiad --port=7777 --partitions=16 --shards=4 --buffer=partition_run
//   eunomiad --ft --replicas=3 --partitions=8
//
// Flags:
//   --host=A           listen address       (default 127.0.0.1)
//   --port=N           listen port          (default 7777; 0 = ephemeral)
//   --partitions=N     partitions served    (default 16)
//   --shards=N         stabilizer shards    (default 4, non-FT only)
//   --buffer=NAME      partition_run | rbtree | avl (default partition_run)
//   --period-us=N      stabilization fallback period (default 500)
//   --ft               fault-tolerant service (replicated, Alg. 4)
//   --replicas=N       FT replica count     (default 3)
//   --data-dir=PATH    write-ahead-log directory (non-FT only). The service
//                      logs every accepted batch before acking and recovers
//                      from the directory on startup, so a kill -9'd daemon
//                      restarted on the same directory loses no acked op.
//   --fsync=POLICY     commit | interval | off  (default commit; needs
//                      --data-dir)
//   --addr-file=PATH   write the bound address to PATH once listening
//                      (ephemeral-port orchestration, used by --crash-smoke)
//   --metrics-port=N   serve GET /metrics (Prometheus text exposition) and
//                      GET /healthz on --host:N (0 = ephemeral) and register
//                      the service's per-shard/per-partition series
//   --metrics-addr-file=PATH  write the bound metrics address to PATH
//                      (requires --metrics-port; used by --crash-smoke)
//   --smoke            self-drive: bind an ephemeral port, run a small
//                      multi-connection workload through net::EunomiaClient
//                      over real sockets, verify the stable stream arrives
//                      complete and in order, exit 0/1. Used by ctest/CI.
//   --crash-smoke      durability self-test: re-exec this binary as a durable
//                      child server, ack a write wave, SIGKILL the child
//                      mid-run, restart it on the same data dir and verify
//                      every acked op comes back on the stable stream.
//
// The daemon runs until SIGINT/SIGTERM, printing a stats line every few
// seconds (connections, ops received, ops stabilized).
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>
#include "src/common/sync.h"

#include "bench/flags.h"
#include "src/metrics/metrics_server.h"
#include "src/metrics/registry.h"
#include "src/net/eunomia_client.h"
#include "src/net/eunomia_server.h"
#include "src/net/epoll_transport.h"
#include "src/net/tcp_transport.h"
#include "src/ordbuf/ordered_buffer.h"
#include "src/wal/disk.h"
#include "src/wal/log_writer.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

using eunomia::metrics::SeriesSum;

bool ParseBackend(const std::string& name, eunomia::ordbuf::Backend* backend) {
  using eunomia::ordbuf::Backend;
  if (name == "partition_run") {
    *backend = Backend::kPartitionRun;
  } else if (name == "rbtree") {
    *backend = Backend::kRbTree;
  } else if (name == "avl") {
    *backend = Backend::kAvl;
  } else {
    return false;
  }
  return true;
}

// The ctest/CI smoke path: everything in-process, but every byte crosses a
// real loopback socket. Verifies the end-to-end contract: N connections of
// interleaved batches in, one complete stable stream out, in (ts, partition)
// order.
int RunSmoke(eunomia::net::EunomiaServer::Options options,
             eunomia::net::TcpBackend io) {
  using namespace eunomia;
  options.num_partitions = 4;
  options.stable_period_us = 200;
  options.metrics = &metrics::Registry::Default();
  metrics::MetricsServer metrics_server;
  const std::string metrics_address = metrics_server.Start("127.0.0.1:0");
  if (metrics_address.empty()) {
    std::fprintf(stderr, "eunomiad --smoke: could not bind a metrics port\n");
    return 1;
  }
  std::unique_ptr<net::Transport> transport_owner = net::MakeTcpTransport(io);
  net::Transport& transport = *transport_owner;
  net::EunomiaServer server(&transport, options);
  const std::string address = server.Start("127.0.0.1:0");
  if (address.empty()) {
    std::fprintf(stderr, "eunomiad --smoke: could not bind a port\n");
    return 1;
  }
  std::printf("eunomiad --smoke: serving on %s, metrics on %s\n",
              address.c_str(), metrics_address.c_str());

  eunomia::sync::Mutex mu{"eunomiad::mu", eunomia::sync::kRankLeaf};
  std::vector<OpRecord> stable;
  net::EunomiaClient::Options sub_options;
  sub_options.subscribe = true;
  sub_options.on_stable = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    stable.insert(stable.end(), ops.begin(), ops.end());
  };
  net::EunomiaClient subscriber(&transport, address, sub_options);
  if (!subscriber.Connect()) {
    std::fprintf(stderr, "eunomiad --smoke: subscriber failed to connect\n");
    return 1;
  }

  constexpr std::uint32_t kBatches = 50;
  constexpr std::uint32_t kOpsPerBatch = 100;
  const std::uint64_t total = 4ull * kBatches * kOpsPerBatch;
  std::vector<std::thread> producers;
  std::atomic<bool> ok{true};
  for (std::uint32_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      net::EunomiaClient client(&transport, address, {});
      if (!client.Connect()) {
        ok.store(false);
        return;
      }
      for (std::uint32_t b = 0; b < kBatches && ok.load(); ++b) {
        std::vector<OpRecord> batch;
        for (std::uint32_t i = 0; i < kOpsPerBatch; ++i) {
          const Timestamp ts =
              static_cast<Timestamp>(b * kOpsPerBatch + i + 1) * 5 + p;
          batch.push_back(OpRecord{ts, p, ts, b});
        }
        if (!client.SubmitBatch(p, std::move(batch))) {
          ok.store(false);
        }
      }
      client.Heartbeat(p, 1'000'000'000'000ULL);
      if (!client.WaitForAcks()) {
        ok.store(false);
      }
      client.Close();
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  // Mid-run scrape: every batch is in, the stable stream may still be
  // draining. The second scrape below must never show a smaller counter.
  std::string scrape1;
  if (!metrics::HttpGet(metrics_address, "/metrics", &scrape1)) {
    std::fprintf(stderr, "eunomiad --smoke: mid-run GET /metrics failed\n");
    return 1;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (subscriber.stable_ops_received() < total &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool ordered = true;
  {
    eunomia::sync::MutexLock lock(mu);
    for (std::size_t i = 1; i < stable.size(); ++i) {
      if (!(OrderKeyOf(stable[i - 1]) < OrderKeyOf(stable[i]))) {
        ordered = false;
      }
    }
  }
  const std::uint64_t received = subscriber.stable_ops_received();
  const bool stream_ok = !subscriber.stream_broken();

  // Self-scrape: the endpoint must serve /healthz and a text exposition in
  // which the key series exist and the counters never moved backwards
  // between the two scrapes.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // a shard tick
  std::string health;
  std::string scrape2;
  bool metrics_ok = metrics::HttpGet(metrics_address, "/healthz", &health) &&
                    health == "ok\n" &&
                    metrics::HttpGet(metrics_address, "/metrics", &scrape2);
  if (metrics_ok) {
    metrics_ok =
        SeriesSum(scrape2, "eunomia_server_ack_latency_microseconds_count") >
            0 &&
        SeriesSum(scrape2, "eunomia_net_frames_in_total") > 0;
    if (!options.fault_tolerant) {
      // Service-level series ride the non-FT path only.
      bool lag_found = false;
      bool occupancy_found = false;
      SeriesSum(scrape2, "eunomia_service_partition_frontier_lag", &lag_found);
      SeriesSum(scrape2, "eunomia_service_ordbuf_occupancy", &occupancy_found);
      metrics_ok =
          metrics_ok && lag_found && occupancy_found &&
          SeriesSum(scrape2, "eunomia_service_ops_stabilized_total") > 0;
    }
    for (const char* counter :
         {"eunomia_service_ops_received_total",
          "eunomia_service_ops_stabilized_total", "eunomia_net_frames_in_total",
          "eunomia_net_bytes_out_total",
          "eunomia_server_ack_latency_microseconds_count"}) {
      metrics_ok =
          metrics_ok && SeriesSum(scrape2, counter) >= SeriesSum(scrape1, counter);
    }
  }

  subscriber.Close();
  server.Stop();
  metrics_server.Stop();
  if (!ok.load() || received != total || !ordered || !stream_ok ||
      !metrics_ok) {
    std::fprintf(stderr,
                 "eunomiad --smoke: FAILED (clients ok=%d, received %llu/%llu, "
                 "ordered=%d, stream intact=%d, metrics ok=%d)\n",
                 ok.load() ? 1 : 0, static_cast<unsigned long long>(received),
                 static_cast<unsigned long long>(total), ordered ? 1 : 0,
                 stream_ok ? 1 : 0, metrics_ok ? 1 : 0);
    return 1;
  }
  std::printf(
      "eunomiad --smoke: OK — %llu ops over %u TCP connections, stable "
      "stream complete and in (ts, partition) order; /metrics served %zu "
      "bytes with key series present and monotone\n",
      static_cast<unsigned long long>(total), 4u, scrape2.size());
  return 0;
}

// ---------------------------------------------------------------------------
// --crash-smoke: the kill -9 end-to-end. The parent re-execs this binary as
// a durable child server (--data-dir on a fresh temp directory,
// --fsync=commit), then:
//
//   1. submits a write wave to partition 0 only and waits for the acks —
//      under fsync=commit an acked batch is on disk. Partition 1 never
//      receives an op or heartbeat, so NOTHING stabilizes: the stable stream
//      stays empty, pre-crash and right after recovery, until the parent
//      says so. That makes the verification race-free — a subscriber
//      connected after the restart cannot miss re-emitted ops.
//   2. starts a churn client hammering more (unacked) batches and SIGKILLs
//      the child mid-stream — a genuine kill -9, no flush, no warning.
//   3. respawns the child on the same data dir, subscribes, and only then
//      heartbeats both partitions past every wave: recovery must re-emit
//      every acked wave-1 op (the WAL is the only place they still exist),
//      followed by a live wave-2 proving the restarted service still serves.
//
// Checks: every acked op arrives, nothing arrives that was never submitted,
// and the stream is strictly (ts, partition) ordered.

std::string SelfExe() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return {};
  }
  buf[n] = '\0';
  return buf;
}

pid_t SpawnDurableServer(const std::string& exe, const std::string& data_dir,
                         const std::string& addr_file,
                         eunomia::net::TcpBackend io) {
  const pid_t pid = fork();
  if (pid != 0) {
    return pid;
  }
  prctl(PR_SET_PDEATHSIG, SIGKILL);  // no orphaned servers if the parent dies
  const std::string data_dir_arg = "--data-dir=" + data_dir;
  const std::string addr_file_arg = "--addr-file=" + addr_file;
  const std::string metrics_file_arg =
      "--metrics-addr-file=" + data_dir + "/metrics-address";
  const std::string io_arg =
      std::string("--io=") + eunomia::net::TcpBackendName(io);
  execl(exe.c_str(), exe.c_str(), "--port=0", "--partitions=2",
        "--period-us=200", "--fsync=commit", "--metrics-port=0",
        io_arg.c_str(), data_dir_arg.c_str(), addr_file_arg.c_str(),
        metrics_file_arg.c_str(), static_cast<char*>(nullptr));
  _exit(127);
}

// Polls for the child's atomically-renamed address file. Empty on timeout or
// child death.
std::string AwaitAddress(const std::string& addr_file, pid_t child) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (waitpid(child, &status, WNOHANG) == child) {
      return {};
    }
    if (std::FILE* f = std::fopen(addr_file.c_str(), "r")) {
      char buf[256] = {};
      const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
      std::fclose(f);
      std::string address(buf, n);
      while (!address.empty() &&
             (address.back() == '\n' || address.back() == '\r')) {
        address.pop_back();
      }
      if (!address.empty()) {
        return address;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return {};
}

// Submits `kBatches` batches to `partition` starting above `base`; records
// every op key into `submitted`. Waits for all acks.
constexpr std::uint32_t kCrashBatches = 10;
constexpr std::uint32_t kCrashOpsPerBatch = 50;

bool SubmitAckedWave(eunomia::net::Transport* transport,
                     const std::string& address, eunomia::PartitionId partition,
                     eunomia::Timestamp base,
                     std::set<eunomia::OpOrderKey>* submitted) {
  using namespace eunomia;
  net::EunomiaClient client(transport, address, {});
  if (!client.Connect()) {
    return false;
  }
  for (std::uint32_t b = 0; b < kCrashBatches; ++b) {
    std::vector<OpRecord> batch;
    for (std::uint32_t i = 0; i < kCrashOpsPerBatch; ++i) {
      const Timestamp ts = base + b * kCrashOpsPerBatch + i + 1;
      batch.push_back(OpRecord{ts, partition, ts, b});
      submitted->insert(OpOrderKey{ts, partition});
    }
    if (!client.SubmitBatch(partition, std::move(batch))) {
      return false;
    }
  }
  const bool acked = client.WaitForAcks();
  client.Close();
  return acked;
}

int RunCrashSmoke(eunomia::net::TcpBackend io) {
  using namespace eunomia;
  const std::string exe = SelfExe();
  if (exe.empty()) {
    std::fprintf(stderr, "eunomiad --crash-smoke: readlink(/proc/self/exe)\n");
    return 1;
  }
  char dir_template[] = "/tmp/eunomiad-crash-XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "eunomiad --crash-smoke: mkdtemp failed\n");
    return 1;
  }
  const std::string data_dir = dir_template;
  const std::string addr_file = data_dir + "/address";
  auto cleanup = [&] {
    std::error_code ec;
    std::filesystem::remove_all(data_dir, ec);
  };

  pid_t child = SpawnDurableServer(exe, data_dir, addr_file, io);
  std::string address = AwaitAddress(addr_file, child);
  if (address.empty()) {
    std::fprintf(stderr, "eunomiad --crash-smoke: child never came up\n");
    cleanup();
    return 1;
  }
  std::printf("eunomiad --crash-smoke: durable child pid %d on %s (%s)\n",
              static_cast<int>(child), address.c_str(), data_dir.c_str());

  // Wave 1: acked ops on partition 0 only. Partition 1 stays silent, so the
  // stable frontier is pinned at 0 until the post-restart heartbeats.
  std::unique_ptr<net::Transport> transport_owner = net::MakeTcpTransport(io);
  net::Transport& transport = *transport_owner;
  std::set<OpOrderKey> wave1;
  if (!SubmitAckedWave(&transport, address, /*partition=*/0, /*base=*/0,
                       &wave1)) {
    std::fprintf(stderr, "eunomiad --crash-smoke: wave 1 failed\n");
    cleanup();
    return 1;
  }

  // Churn: more partition-0 batches in flight, deliberately never awaited —
  // the kill lands mid-stream. Whatever subset reached the log may
  // legitimately reappear after recovery; none of it is *required* to.
  const Timestamp churn_base = 100'000;
  std::set<OpOrderKey> churn;
  std::thread churn_thread([&] {
    net::EunomiaClient client(&transport, address, {});
    if (!client.Connect()) {
      return;
    }
    for (std::uint32_t b = 0; b < kCrashBatches; ++b) {
      std::vector<OpRecord> batch;
      for (std::uint32_t i = 0; i < kCrashOpsPerBatch; ++i) {
        const Timestamp ts = churn_base + b * kCrashOpsPerBatch + i + 1;
        batch.push_back(OpRecord{ts, 0, ts, b});
      }
      if (!client.SubmitBatch(0, std::move(batch))) {
        break;  // expected once the child dies
      }
    }
    client.Close();
  });
  for (std::uint32_t k = 1; k <= kCrashBatches * kCrashOpsPerBatch; ++k) {
    churn.insert(OpOrderKey{churn_base + k, 0});
  }

  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  churn_thread.join();
  std::remove(addr_file.c_str());
  const std::string metrics_addr_file = data_dir + "/metrics-address";
  std::remove(metrics_addr_file.c_str());
  std::printf("eunomiad --crash-smoke: killed -9 mid-churn, respawning on the "
              "same data dir\n");

  child = SpawnDurableServer(exe, data_dir, addr_file, io);
  address = AwaitAddress(addr_file, child);
  if (address.empty()) {
    std::fprintf(stderr,
                 "eunomiad --crash-smoke: child did not recover/restart\n");
    cleanup();
    return 1;
  }

  // Recovery runs in the child's server construction, before it listens: by
  // the time the address files exist its recovery counters are final. Both
  // must be nonzero — wave 1 is on disk and nowhere else.
  bool recovery_counted = false;
  {
    const std::string metrics_address =
        AwaitAddress(metrics_addr_file, child);
    std::string scrape;
    if (!metrics_address.empty() &&
        metrics::HttpGet(metrics_address, "/metrics", &scrape)) {
      recovery_counted =
          SeriesSum(scrape, "eunomia_wal_recovered_records_total") > 0 &&
          SeriesSum(scrape, "eunomia_service_recovered_batches_total") > 0;
    }
  }

  // Subscribe first, release the frontier second: every recovered op is
  // re-emitted after this subscription exists.
  eunomia::sync::Mutex mu{"eunomiad::crash_mu", eunomia::sync::kRankLeaf};
  std::vector<OpRecord> stable;
  net::EunomiaClient::Options sub_options;
  sub_options.subscribe = true;
  sub_options.on_stable = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    stable.insert(stable.end(), ops.begin(), ops.end());
  };
  net::EunomiaClient subscriber(&transport, address, sub_options);
  if (!subscriber.Connect()) {
    std::fprintf(stderr, "eunomiad --crash-smoke: subscriber reconnect\n");
    cleanup();
    return 1;
  }

  // Wave 2 (both partitions, above every wave-1/churn ts), then the
  // frontier-releasing heartbeats.
  const Timestamp wave2_base = 2'000'000;
  std::set<OpOrderKey> wave2;
  bool wave2_ok =
      SubmitAckedWave(&transport, address, /*partition=*/0, wave2_base,
                      &wave2) &&
      SubmitAckedWave(&transport, address, /*partition=*/1,
                      wave2_base + 50'000, &wave2);
  {
    net::EunomiaClient beater(&transport, address, {});
    wave2_ok = wave2_ok && beater.Connect();
    if (wave2_ok) {
      beater.Heartbeat(0, 10'000'000);
      beater.Heartbeat(1, 10'000'000);
      wave2_ok = beater.WaitForAcks();
      beater.Close();
    }
  }
  if (!wave2_ok) {
    std::fprintf(stderr, "eunomiad --crash-smoke: wave 2 failed\n");
    cleanup();
    return 1;
  }

  // Everything required must now arrive: wave 1 from the WAL, wave 2 live.
  const std::uint64_t required = wave1.size() + wave2.size();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (subscriber.stable_ops_received() < required &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  bool ordered = true;
  bool only_submitted = true;
  std::set<OpOrderKey> seen;
  {
    eunomia::sync::MutexLock lock(mu);
    for (std::size_t i = 0; i < stable.size(); ++i) {
      const OpOrderKey key = OrderKeyOf(stable[i]);
      if (i > 0 && !(OrderKeyOf(stable[i - 1]) < key)) {
        ordered = false;
      }
      if (wave1.count(key) == 0 && wave2.count(key) == 0 &&
          churn.count(key) == 0) {
        only_submitted = false;
      }
      seen.insert(key);
    }
  }
  auto contains_all = [&seen](const std::set<OpOrderKey>& want) {
    for (const OpOrderKey& key : want) {
      if (seen.count(key) == 0) {
        return false;
      }
    }
    return true;
  };
  const bool wave1_recovered = contains_all(wave1);
  const bool wave2_arrived = contains_all(wave2);
  const bool stream_ok = !subscriber.stream_broken();
  subscriber.Close();
  kill(child, SIGKILL);
  waitpid(child, &status, 0);
  cleanup();

  if (!wave1_recovered || !wave2_arrived || !ordered || !only_submitted ||
      !stream_ok || !recovery_counted) {
    std::fprintf(stderr,
                 "eunomiad --crash-smoke: FAILED (wave1 recovered=%d, wave2=%d,"
                 " ordered=%d, only_submitted=%d, stream intact=%d,"
                 " recovery counters=%d, seen=%zu)\n",
                 wave1_recovered ? 1 : 0, wave2_arrived ? 1 : 0,
                 ordered ? 1 : 0, only_submitted ? 1 : 0, stream_ok ? 1 : 0,
                 recovery_counted ? 1 : 0, seen.size());
    return 1;
  }
  std::printf(
      "eunomiad --crash-smoke: OK — all %zu acked pre-kill ops re-emitted "
      "after kill -9 + recovery (recovery counters nonzero on /metrics), "
      "%zu live ops followed, stream in order\n",
      wave1.size(), wave2.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(
      argc, argv,
      {"host", "port", "partitions", "shards", "buffer", "period-us", "ft",
       "replicas", "data-dir", "fsync", "addr-file", "metrics-port",
       "metrics-addr-file", "smoke", "crash-smoke", "io"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::net::TcpBackend io = eunomia::net::TcpBackend::kEpoll;
  if (!eunomia::net::ParseTcpBackend(flags.Get("io", "epoll"), &io)) {
    std::fprintf(stderr, "--io must be epoll or threaded (got '%s')\n",
                 flags.Get("io", "epoll").c_str());
    return 2;
  }
  if (flags.Has("crash-smoke")) {
    return RunCrashSmoke(io);
  }
  eunomia::net::EunomiaServer::Options options;
  options.fault_tolerant = flags.Has("ft");
  options.num_partitions =
      static_cast<std::uint32_t>(flags.GetUint("partitions", 16));
  options.num_shards = static_cast<std::uint32_t>(flags.GetUint("shards", 4));
  options.num_replicas =
      static_cast<std::uint32_t>(flags.GetUint("replicas", 3));
  options.stable_period_us = flags.GetUint("period-us", 500);
  if (!ParseBackend(flags.Get("buffer", "partition_run"),
                    &options.buffer_backend)) {
    std::fprintf(stderr,
                 "--buffer must be partition_run, rbtree or avl (got '%s')\n",
                 flags.Get("buffer", "partition_run").c_str());
    return 2;
  }
  std::unique_ptr<eunomia::wal::PosixDisk> disk;
  const std::string data_dir = flags.Get("data-dir", "");
  if (!data_dir.empty()) {
    if (options.fault_tolerant) {
      std::fprintf(stderr, "--data-dir is not supported with --ft\n");
      return 2;
    }
    disk = std::make_unique<eunomia::wal::PosixDisk>(data_dir);
    if (!disk->ok()) {
      std::fprintf(stderr, "eunomiad: cannot open --data-dir=%s\n",
                   data_dir.c_str());
      return 1;
    }
    options.durability.disk = disk.get();
    if (!eunomia::wal::ParseFsyncPolicy(flags.Get("fsync", "commit"),
                                        &options.durability.fsync)) {
      std::fprintf(stderr, "--fsync must be commit, interval or off (got '%s')\n",
                   flags.Get("fsync", "commit").c_str());
      return 2;
    }
  } else if (flags.Has("fsync")) {
    std::fprintf(stderr, "--fsync requires --data-dir\n");
    return 2;
  }
  if (flags.smoke()) {
    return RunSmoke(options, io);
  }
  if (flags.Has("metrics-addr-file") && !flags.Has("metrics-port")) {
    std::fprintf(stderr, "--metrics-addr-file requires --metrics-port\n");
    return 2;
  }
  // Before the server is constructed: the hosted service registers its
  // per-shard/per-partition series at construction.
  if (flags.Has("metrics-port")) {
    options.metrics = &eunomia::metrics::Registry::Default();
  }

  const std::string address = flags.Get("host", "127.0.0.1") + ":" +
                              std::to_string(flags.GetUint("port", 7777));
  std::unique_ptr<eunomia::net::Transport> transport =
      eunomia::net::MakeTcpTransport(io);
  eunomia::net::EunomiaServer server(transport.get(), options);
  const std::string bound = server.Start(address);
  if (bound.empty()) {
    std::fprintf(stderr, "eunomiad: could not listen on %s\n", address.c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // Temp-then-rename so a polling orchestrator never reads a partial write.
  const auto publish_address = [](const std::string& path,
                                  const std::string& value) {
    const std::string tmp = path + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
      std::fprintf(f, "%s\n", value.c_str());
      std::fclose(f);
      std::rename(tmp.c_str(), path.c_str());
    }
  };
  eunomia::metrics::MetricsServer metrics_server;
  if (flags.Has("metrics-port")) {
    const std::string metrics_bound = metrics_server.Start(
        flags.Get("host", "127.0.0.1") + ":" +
        std::to_string(flags.GetUint("metrics-port", 0)));
    if (metrics_bound.empty()) {
      std::fprintf(stderr, "eunomiad: could not bind --metrics-port\n");
      server.Stop();
      return 1;
    }
    std::printf("eunomiad: metrics on http://%s/metrics\n",
                metrics_bound.c_str());
    const std::string metrics_addr_file = flags.Get("metrics-addr-file", "");
    if (!metrics_addr_file.empty()) {
      publish_address(metrics_addr_file, metrics_bound);
    }
  }
  const std::string addr_file = flags.Get("addr-file", "");
  if (!addr_file.empty()) {
    publish_address(addr_file, bound);
  }
  std::printf("eunomiad: serving %u partitions on %s (%s, %s%s%s)\n",
              options.num_partitions, bound.c_str(),
              options.fault_tolerant ? "fault-tolerant" : "sharded",
              eunomia::ordbuf::BackendName(options.buffer_backend),
              disk != nullptr ? ", wal fsync=" : "",
              disk != nullptr
                  ? eunomia::wal::FsyncPolicyName(options.durability.fsync)
                  : "");
  std::uint64_t last_stabilized = 0;
  int tick = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (++tick % 25 == 0) {  // every ~5 s
      const std::uint64_t stabilized = server.ops_stabilized();
      std::printf(
          "eunomiad: connections=%llu ops_received=%llu stabilized=%llu "
          "(+%llu)\n",
          static_cast<unsigned long long>(server.connections_accepted()),
          static_cast<unsigned long long>(server.ops_submitted_remote()),
          static_cast<unsigned long long>(stabilized),
          static_cast<unsigned long long>(stabilized - last_stabilized));
      last_stabilized = stabilized;
    }
  }
  std::printf("eunomiad: shutting down\n");
  metrics_server.Stop();
  server.Stop();
  return 0;
}
