// eunomiad — the standalone Eunomia service daemon.
//
// Hosts an EunomiaService (or, with --ft, an FtEunomiaService) behind a
// real TCP listener, turning the in-process stabilizer into the networked
// service the paper deploys (§6–§7: partitions connect to Eunomia over
// FIFO links and push batched operations; the stable stream comes back in
// global (ts, partition) order). Remote partitions use net::EunomiaClient.
//
//   eunomiad --port=7777 --partitions=16 --shards=4 --buffer=partition_run
//   eunomiad --ft --replicas=3 --partitions=8
//
// Flags:
//   --host=A           listen address       (default 127.0.0.1)
//   --port=N           listen port          (default 7777; 0 = ephemeral)
//   --partitions=N     partitions served    (default 16)
//   --shards=N         stabilizer shards    (default 4, non-FT only)
//   --buffer=NAME      partition_run | rbtree | avl (default partition_run)
//   --period-us=N      stabilization fallback period (default 500)
//   --ft               fault-tolerant service (replicated, Alg. 4)
//   --replicas=N       FT replica count     (default 3)
//   --smoke            self-drive: bind an ephemeral port, run a small
//                      multi-connection workload through net::EunomiaClient
//                      over real sockets, verify the stable stream arrives
//                      complete and in order, exit 0/1. Used by ctest/CI.
//
// The daemon runs until SIGINT/SIGTERM, printing a stats line every few
// seconds (connections, ops received, ops stabilized).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>
#include "src/common/sync.h"

#include "bench/flags.h"
#include "src/net/eunomia_client.h"
#include "src/net/eunomia_server.h"
#include "src/net/tcp_transport.h"
#include "src/ordbuf/ordered_buffer.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

bool ParseBackend(const std::string& name, eunomia::ordbuf::Backend* backend) {
  using eunomia::ordbuf::Backend;
  if (name == "partition_run") {
    *backend = Backend::kPartitionRun;
  } else if (name == "rbtree") {
    *backend = Backend::kRbTree;
  } else if (name == "avl") {
    *backend = Backend::kAvl;
  } else {
    return false;
  }
  return true;
}

// The ctest/CI smoke path: everything in-process, but every byte crosses a
// real loopback socket. Verifies the end-to-end contract: N connections of
// interleaved batches in, one complete stable stream out, in (ts, partition)
// order.
int RunSmoke(eunomia::net::EunomiaServer::Options options) {
  using namespace eunomia;
  options.num_partitions = 4;
  options.stable_period_us = 200;
  net::TcpTransport transport;
  net::EunomiaServer server(&transport, options);
  const std::string address = server.Start("127.0.0.1:0");
  if (address.empty()) {
    std::fprintf(stderr, "eunomiad --smoke: could not bind a port\n");
    return 1;
  }
  std::printf("eunomiad --smoke: serving on %s\n", address.c_str());

  eunomia::sync::Mutex mu{"eunomiad::mu", eunomia::sync::kRankLeaf};
  std::vector<OpRecord> stable;
  net::EunomiaClient::Options sub_options;
  sub_options.subscribe = true;
  sub_options.on_stable = [&](const std::vector<OpRecord>& ops) {
    eunomia::sync::MutexLock lock(mu);
    stable.insert(stable.end(), ops.begin(), ops.end());
  };
  net::EunomiaClient subscriber(&transport, address, sub_options);
  if (!subscriber.Connect()) {
    std::fprintf(stderr, "eunomiad --smoke: subscriber failed to connect\n");
    return 1;
  }

  constexpr std::uint32_t kBatches = 50;
  constexpr std::uint32_t kOpsPerBatch = 100;
  const std::uint64_t total = 4ull * kBatches * kOpsPerBatch;
  std::vector<std::thread> producers;
  std::atomic<bool> ok{true};
  for (std::uint32_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      net::EunomiaClient client(&transport, address, {});
      if (!client.Connect()) {
        ok.store(false);
        return;
      }
      for (std::uint32_t b = 0; b < kBatches && ok.load(); ++b) {
        std::vector<OpRecord> batch;
        for (std::uint32_t i = 0; i < kOpsPerBatch; ++i) {
          const Timestamp ts =
              static_cast<Timestamp>(b * kOpsPerBatch + i + 1) * 5 + p;
          batch.push_back(OpRecord{ts, p, ts, b});
        }
        if (!client.SubmitBatch(p, std::move(batch))) {
          ok.store(false);
        }
      }
      client.Heartbeat(p, 1'000'000'000'000ULL);
      if (!client.WaitForAcks()) {
        ok.store(false);
      }
      client.Close();
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (subscriber.stable_ops_received() < total &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool ordered = true;
  {
    eunomia::sync::MutexLock lock(mu);
    for (std::size_t i = 1; i < stable.size(); ++i) {
      if (!(OrderKeyOf(stable[i - 1]) < OrderKeyOf(stable[i]))) {
        ordered = false;
      }
    }
  }
  const std::uint64_t received = subscriber.stable_ops_received();
  const bool stream_ok = !subscriber.stream_broken();
  subscriber.Close();
  server.Stop();
  if (!ok.load() || received != total || !ordered || !stream_ok) {
    std::fprintf(stderr,
                 "eunomiad --smoke: FAILED (clients ok=%d, received %llu/%llu, "
                 "ordered=%d, stream intact=%d)\n",
                 ok.load() ? 1 : 0, static_cast<unsigned long long>(received),
                 static_cast<unsigned long long>(total), ordered ? 1 : 0,
                 stream_ok ? 1 : 0);
    return 1;
  }
  std::printf(
      "eunomiad --smoke: OK — %llu ops over %u TCP connections, stable "
      "stream complete and in (ts, partition) order\n",
      static_cast<unsigned long long>(total), 4u);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  eunomia::bench::Flags flags(
      argc, argv,
      {"host", "port", "partitions", "shards", "buffer", "period-us", "ft",
       "replicas", "smoke"});
  if (!flags.ok()) {
    return flags.FailUsage();
  }
  eunomia::net::EunomiaServer::Options options;
  options.fault_tolerant = flags.Has("ft");
  options.num_partitions =
      static_cast<std::uint32_t>(flags.GetUint("partitions", 16));
  options.num_shards = static_cast<std::uint32_t>(flags.GetUint("shards", 4));
  options.num_replicas =
      static_cast<std::uint32_t>(flags.GetUint("replicas", 3));
  options.stable_period_us = flags.GetUint("period-us", 500);
  if (!ParseBackend(flags.Get("buffer", "partition_run"),
                    &options.buffer_backend)) {
    std::fprintf(stderr,
                 "--buffer must be partition_run, rbtree or avl (got '%s')\n",
                 flags.Get("buffer", "partition_run").c_str());
    return 2;
  }
  if (flags.smoke()) {
    return RunSmoke(options);
  }

  const std::string address = flags.Get("host", "127.0.0.1") + ":" +
                              std::to_string(flags.GetUint("port", 7777));
  eunomia::net::TcpTransport transport;
  eunomia::net::EunomiaServer server(&transport, options);
  const std::string bound = server.Start(address);
  if (bound.empty()) {
    std::fprintf(stderr, "eunomiad: could not listen on %s\n", address.c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("eunomiad: serving %u partitions on %s (%s, %s)\n",
              options.num_partitions, bound.c_str(),
              options.fault_tolerant ? "fault-tolerant" : "sharded",
              eunomia::ordbuf::BackendName(options.buffer_backend));
  std::uint64_t last_stabilized = 0;
  int tick = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (++tick % 25 == 0) {  // every ~5 s
      const std::uint64_t stabilized = server.ops_stabilized();
      std::printf(
          "eunomiad: connections=%llu ops_received=%llu stabilized=%llu "
          "(+%llu)\n",
          static_cast<unsigned long long>(server.connections_accepted()),
          static_cast<unsigned long long>(server.ops_submitted_remote()),
          static_cast<unsigned long long>(stabilized),
          static_cast<unsigned long long>(stabilized - last_stabilized));
      last_stabilized = stabilized;
    }
  }
  std::printf("eunomiad: shutting down\n");
  server.Stop();
  return 0;
}
