#include "src/common/zipf.h"

#include <cmath>

namespace eunomia {

ZipfGenerator::ZipfGenerator(std::uint64_t num_items, double exponent)
    : num_items_(num_items == 0 ? 1 : num_items), exponent_(exponent) {
  h_x1_ = H(1.5) - 1.0;
  h_num_items_ = H(static_cast<double>(num_items_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -exponent_));
}

double ZipfGenerator::H(double x) const {
  // Integral of x^-exponent; the exponent == 1 case degenerates to log.
  if (exponent_ == 1.0) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - exponent_) - 1.0) / (1.0 - exponent_);
}

double ZipfGenerator::HInverse(double x) const {
  if (exponent_ == 1.0) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - exponent_), 1.0 / (1.0 - exponent_));
}

std::uint64_t ZipfGenerator::Sample(Rng& rng) const {
  if (num_items_ == 1) {
    return 0;
  }
  while (true) {
    const double u = h_num_items_ + rng.NextDouble() * (h_x1_ - h_num_items_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(num_items_)) {
      k = static_cast<double>(num_items_);
    }
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -exponent_)) {
      return static_cast<std::uint64_t>(k) - 1;  // 0-based rank
    }
  }
}

}  // namespace eunomia
