// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator and the workload generator draws
// from an explicitly seeded Rng so that whole experiments replay bit-for-bit.
// The generator is xoshiro256**, seeded through SplitMix64 per the authors'
// recommendation; both are tiny, fast, and well understood.
#pragma once

#include <cstdint>

namespace eunomia {

// SplitMix64: used to expand a single 64-bit seed into generator state and to
// derive independent child seeds ("streams") from a parent seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.Next();
    }
  }

  // Derives an independent generator; stream i of a given parent is stable
  // across runs. Used to give every simulated node its own sequence.
  Rng Fork(std::uint64_t stream) {
    SplitMix64 sm(Next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    return Rng(sm.Next());
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  // Unbiased integer in [0, bound) via Lemire's multiply-shift with rejection.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Double uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw.
  bool NextBool(double probability_true) { return NextDouble() < probability_true; }

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace eunomia
