// Zipf (power-law) key sampler for the workload generator.
//
// The paper evaluates both uniform and power-law key distributions (§7.2,
// Fig. 5, "U" and "P" workloads). This sampler implements the
// rejection-inversion method of Hörmann & Derflinger (1996), which is O(1)
// per sample regardless of the key-space size, so a 100k-key power-law
// workload costs the same as a uniform one.
#pragma once

#include <cstdint>

#include "src/common/random.h"

namespace eunomia {

class ZipfGenerator {
 public:
  // Ranks are 0-based: Sample() returns a value in [0, num_items). A larger
  // `exponent` (theta) skews harder; 0.99 is the YCSB-standard default used
  // throughout the benchmarks.
  ZipfGenerator(std::uint64_t num_items, double exponent = 0.99);

  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t num_items() const { return num_items_; }
  double exponent() const { return exponent_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t num_items_;
  double exponent_;
  double h_x1_;
  double h_num_items_;
  double s_;
};

}  // namespace eunomia
