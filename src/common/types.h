// Core scalar types shared by every module of the Eunomia reproduction.
//
// The paper (§3, Table 1 / §4, Table 2) works with:
//   - scalar hybrid timestamps assigned by partitions (microsecond-domain),
//   - partition identifiers within a datacenter,
//   - datacenter identifiers,
//   - string keys and opaque binary values.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace eunomia {

// Hybrid timestamp (§3.2). The scalar merges physical microseconds with a
// logical component: a partition tags an update with
//   max(physical_now, MaxTs + 1, ClientClock + 1)
// so the value is always microsecond-comparable but never blocks on clock
// skew. Timestamp 0 means "no dependency / beginning of time".
using Timestamp = std::uint64_t;
inline constexpr Timestamp kTimestampZero = 0;
inline constexpr Timestamp kTimestampMax = std::numeric_limits<Timestamp>::max();

// Identifier of a logical partition within one datacenter (p_n in the paper).
using PartitionId = std::uint32_t;

// Identifier of a datacenter / geo-location (m in the paper, M total).
using DatacenterId = std::uint32_t;

// Identifier of a client session.
using ClientId = std::uint64_t;

// Keys and values. The paper's workload uses fixed 100-byte binary values
// over a 100k-key space; we keep both opaque.
using Key = std::uint64_t;
using Value = std::string;

// Monotonically increasing per-partition sequence number, used to break ties
// between concurrent updates that legitimately carry equal timestamps on
// different partitions (the paper allows processing those in any order; we
// need a deterministic total order for reproducible runs).
using SequenceNumber = std::uint64_t;

// Unique update identifier used by the data/metadata separation optimization
// (§5): the pair (local timestamp entry, key) plus origin information.
struct UpdateId {
  Timestamp local_ts = 0;       // u.vts[m] at the origin.
  DatacenterId origin_dc = 0;   // m.
  PartitionId origin_partition = 0;

  friend bool operator==(const UpdateId&, const UpdateId&) = default;
  friend auto operator<=>(const UpdateId&, const UpdateId&) = default;
};

}  // namespace eunomia
