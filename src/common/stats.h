// Statistics utilities used by the benchmark harness and the tests:
//   - OnlineStats: streaming mean / variance / min / max (Welford).
//   - LatencyHistogram: log-bucketed histogram with percentile queries,
//     suitable for millions of visibility-latency samples.
//   - Cdf: exact empirical CDF built from retained samples (used for the
//     Fig. 6 visibility-latency CDFs, where we want faithful curves).
//   - TimeSeries: windowed throughput timeline (Fig. 4 / Fig. 7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eunomia {

class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log-bucketed latency histogram. Values are recorded in microseconds; the
// bucket layout gives <= ~2% relative error on percentile queries, which is
// ample for reproducing the paper's figures.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(std::uint64_t value_us);
  void Merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  // p in [0, 100].
  std::uint64_t Percentile(double p) const;
  std::uint64_t Max() const { return max_; }

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  static int BucketFor(std::uint64_t value);
  static std::uint64_t BucketUpperBound(int bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

// Exact empirical CDF from retained samples.
class Cdf {
 public:
  void Add(double sample) { samples_.push_back(sample); sorted_ = false; }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  // Value at quantile q in [0, 1].
  double Quantile(double q) const;
  // Fraction of samples <= x.
  double FractionBelow(double x) const;
  // Evenly spaced (quantile, value) points for plotting; `points` >= 2.
  std::vector<std::pair<double, double>> Curve(int points) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-window event-rate timeline: Record(t) increments the window that
// contains t; Rates() converts counts to events/second.
class TimeSeries {
 public:
  // window_us: window width in microseconds.
  explicit TimeSeries(std::uint64_t window_us) : window_us_(window_us) {}

  void Record(std::uint64_t t_us, std::uint64_t weight = 1);
  // Records a sampled value (e.g. a latency) into the window containing t;
  // ValueMeans() then reports per-window means.
  void RecordValue(std::uint64_t t_us, double value);

  std::uint64_t window_us() const { return window_us_; }
  std::size_t num_windows() const { return counts_.size(); }
  std::vector<double> Rates() const;       // events per second per window
  std::vector<double> ValueMeans() const;  // mean recorded value per window

 private:
  void GrowTo(std::size_t window_index);

  std::uint64_t window_us_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> value_sums_;
  std::vector<std::uint64_t> value_counts_;
};

}  // namespace eunomia
