#include "src/common/random.h"

#include <cmath>

namespace eunomia {

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) {
    return lo;
  }
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextExponential(double mean) {
  // Inverse CDF; guard the log argument away from 0.
  double u = NextDouble();
  if (u >= 1.0) {
    u = 0.9999999999999999;
  }
  return -mean * std::log1p(-u);
}

}  // namespace eunomia
