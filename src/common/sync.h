// Annotated synchronization primitives: the compiler-enforced half of the
// concurrency discipline (docs/ARCHITECTURE.md "Concurrency discipline").
//
// Every mutex in the tree is a sync::Mutex, every guarded field carries
// GUARDED_BY, and clang's -Wthread-safety analysis (promoted to an error in
// CI) proves at compile time that no annotated field is touched without its
// lock. The macros are the abseil-style spelling of clang's thread-safety
// attributes and expand to nothing on non-clang compilers, so gcc builds
// are unaffected.
//
// On top of the static analysis, debug builds carry a *lock-rank* deadlock
// detector. Each Mutex is constructed with a name and a rank (see the
// kRank* table below; ranks order mutexes outermost-first). A thread may
// only acquire a mutex whose rank is strictly greater than the rank of
// every ranked mutex it already holds — so any acquisition order that could
// participate in a cycle aborts immediately, printing both lock names,
// instead of deadlocking some run later under just the wrong interleaving.
// Mutexes constructed with kRankExempt opt out (leaf locks in tests and
// tools that never nest). The checks compile away entirely when
// EUNOMIA_LOCK_RANK_CHECKS is 0 (Release builds): Lock/Unlock reduce to the
// raw std::mutex calls.
//
// Waiting: CondVar deliberately has no predicate-taking overloads. A
// predicate lambda's body is analyzed as a separate function, so reads of
// GUARDED_BY fields inside it would trip the analysis even though the lock
// is held; writing the standard `while (!cond) cv.Wait(mu);` loop inline
// keeps the accesses visible to the checker. WaitFor/WaitUntil return
// std::cv_status so timeout loops read the same way.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>

// --- clang thread-safety annotation macros -----------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define EUNOMIA_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define EUNOMIA_TS_ATTRIBUTE(x)  // no-op on gcc/msvc
#endif

#define CAPABILITY(x) EUNOMIA_TS_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY EUNOMIA_TS_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) EUNOMIA_TS_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) EUNOMIA_TS_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) EUNOMIA_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) EUNOMIA_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) EUNOMIA_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  EUNOMIA_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) EUNOMIA_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define RELEASE(...) EUNOMIA_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  EUNOMIA_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) EUNOMIA_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) EUNOMIA_TS_ATTRIBUTE(assert_capability(x))
#define RETURN_CAPABILITY(x) EUNOMIA_TS_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  EUNOMIA_TS_ATTRIBUTE(no_thread_safety_analysis)

// --- lock-rank configuration -------------------------------------------------

// Default: rank checking follows assertions (on unless NDEBUG). The build
// overrides this per configuration: CMake defines EUNOMIA_LOCK_RANK_CHECKS=1
// for every build type except Release, so the CI test matrix always runs
// with the detector armed while Release perf builds compile it out.
#if !defined(EUNOMIA_LOCK_RANK_CHECKS)
#if defined(NDEBUG)
#define EUNOMIA_LOCK_RANK_CHECKS 0
#else
#define EUNOMIA_LOCK_RANK_CHECKS 1
#endif
#endif

namespace eunomia::sync {

// Lock ranks, outermost (acquired first) to innermost (acquired last). The
// bands are spaced so a future lock slots between its neighbours without
// renumbering. The full "who nests inside whom" rationale lives in
// docs/ARCHITECTURE.md; the invariant enforced here is only that every
// chain of nested acquisitions is strictly rank-increasing.
using LockRank = std::int32_t;

// Exempt from ordering checks entirely (never pushed on the held stack).
// For leaf mutexes that provably never hold anything else — test sinks,
// bench counters. Prefer a real rank for anything in src/.
inline constexpr LockRank kRankExempt = -1;

inline constexpr LockRank kRankLifecycle = 100;     // service Start/Stop
inline constexpr LockRank kRankTransport = 200;     // transport registries
inline constexpr LockRank kRankFanoutEmit = 300;    // StableFanout::emit_mu_
inline constexpr LockRank kRankFanoutListeners = 310;
inline constexpr LockRank kRankServerPeers = 400;   // net::EunomiaServer
inline constexpr LockRank kRankClientSession = 410; // net::EunomiaClient
inline constexpr LockRank kRankEventLoop = 500;     // rt::EventLoop
inline constexpr LockRank kRankSeqStage = 600;      // sequencer queues
inline constexpr LockRank kRankServiceInbox = 700;  // per-partition inboxes
inline constexpr LockRank kRankShardWake = 710;     // shard wakeup
inline constexpr LockRank kRankMergeStage = 720;    // merge publish state
inline constexpr LockRank kRankBatchPool = 730;     // batch free-list
inline constexpr LockRank kRankConnSend = 800;      // Connection::send_mu_
inline constexpr LockRank kRankConnQueue = 810;     // per-conn in/outboxes
inline constexpr LockRank kRankIoLoop = 820;        // net::IoLoop task queue
inline constexpr LockRank kRankSeqRequest = 900;    // blocking RPC requests
inline constexpr LockRank kRankWalSnapshot = 920;   // ServiceWal snapshot queue
inline constexpr LockRank kRankWalWriter = 930;     // wal::LogWriter queue
inline constexpr LockRank kRankWalDisk = 940;       // wal::MemDisk file map
inline constexpr LockRank kRankMetricsRegistry = 950;  // metrics::Registry
inline constexpr LockRank kRankLeaf = 1000;         // sinks, probes, stats

class Mutex;

namespace internal {

#if EUNOMIA_LOCK_RANK_CHECKS

// Per-thread stack of held *ranked* mutexes. Bounded: a thread holding
// kMaxHeldLocks ranked locks at once is itself a discipline violation.
struct HeldLocks {
  static constexpr int kMaxHeldLocks = 16;
  const Mutex* held[kMaxHeldLocks];
  int depth = 0;
};

inline HeldLocks& ThreadHeldLocks() {
  thread_local HeldLocks held;
  return held;
}

void PushHeldLock(const Mutex& mu);
void PopHeldLock(const Mutex& mu);

#endif  // EUNOMIA_LOCK_RANK_CHECKS

}  // namespace internal

// A std::mutex with a name, a lock rank, and thread-safety annotations.
// Non-recursive; acquisition order across ranked mutexes is asserted in
// debug builds (see file comment).
class CAPABILITY("mutex") Mutex {
 public:
  // `name` must outlive the mutex (string literals in practice); it is what
  // the rank-violation abort prints.
  explicit Mutex(const char* name, LockRank rank)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if EUNOMIA_LOCK_RANK_CHECKS
    internal::PushHeldLock(*this);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    // Bookkeeping strictly BEFORE the native unlock: the instant mu_ is
    // released, a waiter may wake, observe its predicate, return, and
    // destroy this Mutex (the blocking-RPC Request pattern in
    // src/sequencer/), so the native unlock must be the last access.
#if EUNOMIA_LOCK_RANK_CHECKS
    internal::PopHeldLock(*this);
#endif
    mu_.unlock();
  }

  // Try-acquisition cannot deadlock, so it is exempt from the rank assert;
  // on success the mutex still joins the held stack and constrains later
  // acquisitions.
  bool TryLock() TRY_ACQUIRE(true) {
#if EUNOMIA_LOCK_RANK_CHECKS
    if (!mu_.try_lock()) {
      return false;
    }
    internal::PushHeldLock(*this);
    return true;
#else
    return mu_.try_lock();
#endif
  }

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const char* const name_;
  const LockRank rank_;
};

namespace internal {

#if EUNOMIA_LOCK_RANK_CHECKS

[[noreturn]] inline void RankViolation(const Mutex& holding,
                                       const Mutex& acquiring) {
  std::fprintf(stderr,
               "lock-rank violation: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d); acquisition order must be "
               "strictly rank-increasing\n",
               acquiring.name(), acquiring.rank(), holding.name(),
               holding.rank());
  std::abort();
}

inline void PushHeldLock(const Mutex& mu) {
  if (mu.rank() == kRankExempt) {
    return;
  }
  HeldLocks& held = ThreadHeldLocks();
  if (held.depth > 0) {
    const Mutex& top = *held.held[held.depth - 1];
    if (top.rank() >= mu.rank()) {
      RankViolation(top, mu);
    }
  }
  if (held.depth == HeldLocks::kMaxHeldLocks) {
    std::fprintf(stderr,
                 "lock-rank violation: thread holds %d ranked locks while "
                 "acquiring \"%s\"\n",
                 HeldLocks::kMaxHeldLocks, mu.name());
    std::abort();
  }
  held.held[held.depth++] = &mu;
}

inline void PopHeldLock(const Mutex& mu) {
  if (mu.rank() == kRankExempt) {
    return;
  }
  HeldLocks& held = ThreadHeldLocks();
  // Releases are almost always LIFO, but out-of-order release (an early
  // MutexLock::Unlock below an inner scope) is legal — scan from the top.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.held[i] == &mu) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.held[j] = held.held[j + 1];
      }
      --held.depth;
      return;
    }
  }
  std::fprintf(stderr, "lock-rank violation: releasing \"%s\" not held\n",
               mu.name());
  std::abort();
}

#endif  // EUNOMIA_LOCK_RANK_CHECKS

}  // namespace internal

// RAII lock with optional early release (the absl::ReleasableMutexLock
// shape). `MutexLock lock(mu);` for the common case; lock.Unlock() when a
// value must be returned or a callback invoked after the critical section
// without waiting for scope exit.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  ~MutexLock() RELEASE() {
    if (held_) {
      mu_.Unlock();
    }
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

// Condition variable bound to sync::Mutex. Implemented on the native
// std::condition_variable (no condition_variable_any indirection): the
// underlying std::mutex is adopted for the wait and released back after.
// The waiting mutex stays on the rank stack for the duration — correct,
// because a blocked waiter acquires nothing until the wait returns with the
// lock re-held.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace eunomia::sync
