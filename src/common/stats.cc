#include "src/common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace eunomia {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ += delta * static_cast<double>(other.count_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double OnlineStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketFor(std::uint64_t value) {
  if (value < (1u << kSubBucketBits)) {
    return static_cast<int>(value);
  }
  const int octave = 63 - std::countl_zero(value);
  const int shift = octave - kSubBucketBits;
  const int sub = static_cast<int>((value >> shift) & ((1u << kSubBucketBits) - 1));
  const int bucket =
      ((octave - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

std::uint64_t LatencyHistogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) {
    return static_cast<std::uint64_t>(bucket);
  }
  const int octave_index = (bucket >> kSubBucketBits) - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const int shift = octave_index;
  const std::uint64_t base = 1ULL << (octave_index + kSubBucketBits);
  return base + ((static_cast<std::uint64_t>(sub) + 1) << shift) - 1;
}

void LatencyHistogram::Record(std::uint64_t value_us) {
  ++buckets_[static_cast<std::size_t>(BucketFor(value_us))];
  ++count_;
  max_ = std::max(max_, value_us);
  sum_ += static_cast<double>(value_us);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target && seen > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void Cdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::FractionBelow(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::Curve(int points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2) {
    points = 2;
  }
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(q, Quantile(q));
  }
  return out;
}

void TimeSeries::GrowTo(std::size_t window_index) {
  if (window_index >= counts_.size()) {
    counts_.resize(window_index + 1, 0);
    value_sums_.resize(window_index + 1, 0.0);
    value_counts_.resize(window_index + 1, 0);
  }
}

void TimeSeries::Record(std::uint64_t t_us, std::uint64_t weight) {
  const auto idx = static_cast<std::size_t>(t_us / window_us_);
  GrowTo(idx);
  counts_[idx] += weight;
}

void TimeSeries::RecordValue(std::uint64_t t_us, double value) {
  const auto idx = static_cast<std::size_t>(t_us / window_us_);
  GrowTo(idx);
  value_sums_[idx] += value;
  ++value_counts_[idx];
}

std::vector<double> TimeSeries::Rates() const {
  std::vector<double> rates(counts_.size());
  const double window_s = static_cast<double>(window_us_) / 1e6;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    rates[i] = static_cast<double>(counts_[i]) / window_s;
  }
  return rates;
}

std::vector<double> TimeSeries::ValueMeans() const {
  std::vector<double> means(value_sums_.size(), 0.0);
  for (std::size_t i = 0; i < value_sums_.size(); ++i) {
    if (value_counts_[i] > 0) {
      means[i] = value_sums_[i] / static_cast<double>(value_counts_[i]);
    }
  }
  return means;
}

}  // namespace eunomia
