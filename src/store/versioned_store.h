// Versioned key-value storage substrates.
//
// The paper's prototype is a variant of Riak KV; the protocols need two
// storage disciplines from it:
//
//   - ScalarStore: one version per key tagged with a scalar timestamp and
//     origin datacenter. Used by EunomiaKV, the sequencer systems and the
//     eventual baseline, where the replication layer already delivers
//     updates in a causally safe order and conflicting concurrent writes
//     resolve last-writer-wins on (timestamp, origin).
//
//   - MultiVersionStore<Stamp>: a short version chain per key with
//     predicate-based visibility. Used by GentleRain and Cure, which apply
//     remote updates immediately but only make them *visible* once the
//     global stabilization procedure (GST / GSS) has caught up.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace eunomia::store {

// --- single-version, last-writer-wins store ---------------------------------

struct ScalarVersion {
  Value value;
  Timestamp ts = 0;
  DatacenterId origin = 0;
};

class ScalarStore {
 public:
  // Applies a write with LWW arbitration on (ts, origin). Returns true if
  // the write became the current version.
  bool Put(Key key, Value value, Timestamp ts, DatacenterId origin) {
    auto [it, inserted] = map_.try_emplace(key);
    ScalarVersion& cur = it->second;
    if (!inserted && (cur.ts > ts || (cur.ts == ts && cur.origin > origin))) {
      return false;  // existing version wins
    }
    cur.value = std::move(value);
    cur.ts = ts;
    cur.origin = origin;
    return true;
  }

  // Returns the current version, or nullptr if the key was never written.
  const ScalarVersion* Get(Key key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return map_.size(); }

  // Iteration for the convergence checker.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, version] : map_) {
      fn(key, version);
    }
  }

 private:
  std::unordered_map<Key, ScalarVersion> map_;
};

// --- multi-version store with predicate visibility ---------------------------

// Stamp must provide a TotalOrderKey() usable with operator< for LWW
// arbitration among visible versions; see gentlerain/ and cure/ for the two
// instantiations.
template <typename Stamp>
class MultiVersionStore {
 public:
  struct Version {
    Value value;
    Stamp stamp;
    DatacenterId origin = 0;
    bool local = false;  // locally created versions are always visible
  };

  void Put(Key key, Value value, Stamp stamp, DatacenterId origin, bool local) {
    auto& chain = map_[key];
    chain.push_back(Version{std::move(value), std::move(stamp), origin, local});
  }

  // Newest (by Stamp total order, then origin) version that is either local
  // or satisfies `visible`. Returns nullptr if none qualifies.
  template <typename Predicate>
  const Version* Get(Key key, Predicate&& visible) const {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      return nullptr;
    }
    const Version* best = nullptr;
    for (const Version& v : it->second) {
      if (!v.local && !visible(v.stamp)) {
        continue;
      }
      if (best == nullptr || Less(*best, v)) {
        best = &v;
      }
    }
    return best;
  }

  // Garbage-collects versions dominated by a newer version that is already
  // visible (they can never be read again). Keeps chains short in long runs.
  template <typename Predicate>
  void Trim(Key key, Predicate&& visible) {
    const auto it = map_.find(key);
    if (it == map_.end() || it->second.size() <= 1) {
      return;
    }
    auto& chain = it->second;
    // Find the newest visible version.
    const Version* newest_visible = nullptr;
    for (const Version& v : chain) {
      if ((v.local || visible(v.stamp)) &&
          (newest_visible == nullptr || Less(*newest_visible, v))) {
        newest_visible = &v;
      }
    }
    if (newest_visible == nullptr) {
      return;
    }
    std::vector<Version> kept;
    kept.reserve(2);
    for (Version& v : chain) {
      if (&v == newest_visible || Less(*newest_visible, v)) {
        kept.push_back(std::move(v));
      }
    }
    chain = std::move(kept);
  }

  std::size_t size() const { return map_.size(); }

  std::size_t ChainLength(Key key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second.size();
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, chain] : map_) {
      fn(key, chain);
    }
  }

 private:
  static bool Less(const Version& a, const Version& b) {
    const auto ka = a.stamp.TotalOrderKey();
    const auto kb = b.stamp.TotalOrderKey();
    if (ka != kb) {
      return ka < kb;
    }
    return a.origin < b.origin;
  }

  std::unordered_map<Key, std::vector<Version>> map_;
};

}  // namespace eunomia::store
