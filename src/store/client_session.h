// Client-side session state — Algorithm 1 of the paper.
//
// A client maintains Clock_c, "the largest timestamp seen during its
// session", which aggregates its causal history into a single scalar:
//   - READ merges the returned version timestamp (Alg. 1 line 4);
//   - UPDATE replaces the clock with the returned update timestamp
//     (Alg. 1 line 9), which the partition guarantees to dominate it.
// The geo-replicated variant (vector clock per Table 2) lives in
// src/georep/vclock.h.
#pragma once

#include <algorithm>

#include "src/common/types.h"

namespace eunomia::store {

class ClientSession {
 public:
  explicit ClientSession(ClientId id = 0) : id_(id) {}

  ClientId id() const { return id_; }
  Timestamp clock() const { return clock_; }

  // Alg. 1 line 4: after a read returning version timestamp ts.
  void OnRead(Timestamp ts) { clock_ = std::max(clock_, ts); }

  // Alg. 1 line 9: after an update acknowledged with timestamp ts. The
  // partition guarantees ts > clock_; we assert-by-max anyway so a buggy
  // server cannot move the session backwards.
  void OnUpdate(Timestamp ts) { clock_ = std::max(clock_, ts); }

 private:
  ClientId id_;
  Timestamp clock_ = 0;
};

}  // namespace eunomia::store
