// Key -> partition routing.
//
// Riak KV partitions its key space with a consistent-hash ring; the protocol
// description in the paper only requires that "the key-space is divided into
// N partitions distributed among datacenter machines" and that sibling
// partitions across datacenters own the same keys. We provide the Riak-style
// consistent-hash ring (virtual-node based, so adding partitions moves
// O(1/N) of the keys) and a trivial modulo router for tests that want exact
// control over placement.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace eunomia::store {

// Deterministic 64-bit mix (SplitMix64 finalizer) used as the ring hash.
inline std::uint64_t MixHash(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

class KeyRouter {
 public:
  virtual ~KeyRouter() = default;
  virtual PartitionId Responsible(Key key) const = 0;
  virtual std::uint32_t num_partitions() const = 0;
};

class ModRouter final : public KeyRouter {
 public:
  explicit ModRouter(std::uint32_t num_partitions)
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {}

  PartitionId Responsible(Key key) const override {
    return static_cast<PartitionId>(MixHash(key) % num_partitions_);
  }
  std::uint32_t num_partitions() const override { return num_partitions_; }

 private:
  std::uint32_t num_partitions_;
};

class ConsistentHashRing final : public KeyRouter {
 public:
  // vnodes_per_partition: virtual nodes per partition; 64 gives < ~15% load
  // imbalance, plenty for the simulator.
  explicit ConsistentHashRing(std::uint32_t num_partitions,
                              std::uint32_t vnodes_per_partition = 64)
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {
    ring_.reserve(static_cast<std::size_t>(num_partitions_) * vnodes_per_partition);
    for (std::uint32_t p = 0; p < num_partitions_; ++p) {
      for (std::uint32_t v = 0; v < vnodes_per_partition; ++v) {
        const std::uint64_t point =
            MixHash((static_cast<std::uint64_t>(p) << 32) | (v + 1));
        ring_.push_back({point, p});
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }

  PartitionId Responsible(Key key) const override {
    const std::uint64_t h = MixHash(key ^ 0x5bf03635ULL);
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::pair<std::uint64_t, PartitionId>{h, 0});
    if (it == ring_.end()) {
      it = ring_.begin();  // wrap around
    }
    return it->second;
  }

  std::uint32_t num_partitions() const override { return num_partitions_; }

 private:
  std::uint32_t num_partitions_;
  std::vector<std::pair<std::uint64_t, PartitionId>> ring_;
};

// Balanced partition -> server placement: Riak spreads logical partitions
// round-robin over the physical servers of a cluster (the paper deploys 8
// logical partitions over 3 servers per datacenter).
inline std::uint32_t ServerOfPartition(PartitionId partition, std::uint32_t num_servers) {
  return num_servers == 0 ? 0 : partition % num_servers;
}

}  // namespace eunomia::store
