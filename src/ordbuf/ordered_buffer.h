// The ordered-buffer policy layer: which data structure holds the
// not-yet-stable op set?
//
// The paper's §6 implementation note picks a red-black tree. But Property 2
// (per-partition timestamp monotonicity) means the buffer's input is not an
// arbitrary key stream: it is P already-sorted runs, one per partition, and
// the global (ts, partition) order only has to be materialized at extraction
// time. That observation admits a strictly cheaper layout — one append-only
// ring buffer per partition plus a tournament merge over the P run heads —
// which PartitionRunBuffer implements. The tree-backed buffers are kept as
// selectable policies so the §6 design choice stays reproducible (ablation
// A1) and so the semantics of the fast path can be pinned against them.
//
// OrderedBuffer concept (all three implementations satisfy it):
//
//   // Tracks partitions [first_partition, first_partition + num_partitions);
//   // keys carry global partition ids.
//   Buffer(std::uint32_t num_partitions, std::uint32_t first_partition);
//
//   // Adds one element. Precondition (Property 2, enforced by EunomiaCore
//   // before the buffer is reached): key is strictly greater than every key
//   // previously appended for key.partition.
//   void Append(const OpOrderKey& key, V value);
//
//   // Removes every element with key <= bound and hands each to
//   // emit(const OpOrderKey&, V&&) in ascending global (ts, partition)
//   // order. Returns the number of elements emitted.
//   template <typename Emit>
//   std::size_t ExtractUpTo(const OpOrderKey& bound, Emit&& emit);
//
//   std::size_t size() const;
//   bool empty() const;
//
// The emit-callback form of ExtractUpTo is deliberate: the caller writes
// extracted ops straight into its destination (EunomiaCore appends to the
// sink vector) instead of staging (key, value) pairs in a scratch buffer.
#pragma once

namespace eunomia::ordbuf {

// Selects the ordered-buffer policy behind an EunomiaCore. Threaded through
// EunomiaService::Options, FtEunomiaService::Options and GeoConfig; the
// run-queue layout is the default everywhere.
enum class Backend {
  kPartitionRun,  // per-partition ring buffers + tournament-tree extraction
  kRbTree,        // the paper's §6 choice (src/rbtree/red_black_tree.h)
  kAvl,           // the §6 also-ran (src/rbtree/avl_tree.h)
};

constexpr const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kPartitionRun:
      return "partition_run";
    case Backend::kRbTree:
      return "rbtree";
    case Backend::kAvl:
      return "avl";
  }
  return "unknown";
}

}  // namespace eunomia::ordbuf
