// PartitionRunBuffer — the ordered buffer that exploits Property 2.
//
// Per-partition timestamp monotonicity means the op stream arriving at
// Eunomia is not an arbitrary key sequence: it is P sorted runs, one per
// partition. A comparison tree (the paper's §6 red-black tree) re-derives
// the global order on every insert at O(log n) with pointer-chasing and
// rebalancing; this buffer instead appends each op to its partition's
// growable ring buffer — O(1) amortized, no rebalancing, cache-linear
// memory — and materializes the global (ts, partition) order only at
// extraction time with a tournament-tree k-way merge over the P run heads —
// O(log P) per emitted op, on an index array that fits in cache (see
// tournament_tree.h for why the winner variant of the loser tree is used).
//
// Satisfies the OrderedBuffer concept (src/ordbuf/ordered_buffer.h). The
// Append precondition is per-partition key monotonicity — exactly what
// EunomiaCore enforces before the buffer is reached; it is asserted here.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/eunomia/op.h"
#include "src/ordbuf/tournament_tree.h"

namespace eunomia::ordbuf {

template <typename V>
class PartitionRunBuffer {
 public:
  PartitionRunBuffer(std::uint32_t num_partitions, std::uint32_t first_partition = 0)
      : first_partition_(first_partition),
        runs_(num_partitions == 0 ? 1 : num_partitions),
        merge_(static_cast<std::uint32_t>(runs_.size())) {
    merge_.Rebuild(HeadKeyFn{this});
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Append(const OpOrderKey& key, V value) {
    const std::uint32_t r = key.partition - first_partition_;
    assert(r < runs_.size());
    Run& run = runs_[r];
    assert((run.count == 0 || run.Back().first < key) &&
           "per-partition keys must be strictly increasing (Property 2)");
    const bool was_empty = run.count == 0;
    run.Push(Entry{key, std::move(value)});
    ++size_;
    if (was_empty) {
      // The run's head key changed (+inf -> key); replay its tournament
      // path. Appends to a non-empty run leave the head untouched.
      merge_.Update(r, HeadKeyFn{this});
    }
  }

  template <typename Emit>
  std::size_t ExtractUpTo(const OpOrderKey& bound, Emit&& emit) {
    std::size_t extracted = 0;
    const HeadKeyFn key_of{this};
    while (size_ > 0) {
      const std::uint32_t w = merge_.Winner();
      Run& run = runs_[w];
      assert(run.count > 0 && "winner of a non-empty buffer has a head");
      if (bound < run.Front().first) {
        break;  // global minimum already beyond the bound
      }
      Entry entry = run.Pop();
      --size_;
      ++extracted;
      merge_.Update(w, key_of);
      emit(entry.first, std::move(entry.second));
    }
    return extracted;
  }

 private:
  using Entry = std::pair<OpOrderKey, V>;

  // Growable ring buffer: O(1) amortized push at the tail, O(1) pop at the
  // head, popped slots reused in place. Capacity is a power of two so the
  // wraparound is a mask.
  struct Run {
    std::vector<Entry> slots;
    std::size_t head = 0;
    std::size_t count = 0;

    const Entry& Front() const { return slots[head]; }
    const Entry& Back() const {
      return slots[(head + count - 1) & (slots.size() - 1)];
    }

    void Push(Entry entry) {
      if (count == slots.size()) {
        Grow();
      }
      slots[(head + count) & (slots.size() - 1)] = std::move(entry);
      ++count;
    }

    Entry Pop() {
      Entry entry = std::move(slots[head]);
      head = (head + 1) & (slots.size() - 1);
      --count;
      return entry;
    }

    void Grow() {
      const std::size_t old_cap = slots.size();
      std::vector<Entry> bigger(old_cap == 0 ? 8 : old_cap * 2);
      for (std::size_t i = 0; i < count; ++i) {
        bigger[i] = std::move(slots[(head + i) & (old_cap - 1)]);
      }
      slots.swap(bigger);
      head = 0;
    }
  };

  // Head-key accessor for the tournament. Padding leaves (run index beyond
  // the partition count) and drained runs report nullptr == +infinity.
  struct HeadKeyFn {
    const PartitionRunBuffer* buf;
    const OpOrderKey* operator()(std::uint32_t r) const {
      if (r >= buf->runs_.size() || buf->runs_[r].count == 0) {
        return nullptr;
      }
      return &buf->runs_[r].Front().first;
    }
  };

  std::uint32_t first_partition_;
  std::vector<Run> runs_;
  MergeTournament merge_;
  std::size_t size_ = 0;
};

}  // namespace eunomia::ordbuf
