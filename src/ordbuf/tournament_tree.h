// Tournament tree for the k-way merge over per-partition run heads.
//
// A complete binary tournament over k entrants: each internal node stores
// the *winner* (smallest head key) of its subtree, so the global minimum is
// an O(1) read at the root and a single leaf-to-root replay — one match per
// level, O(log k) — repairs the tree after any one run's head key changes.
//
// Why winners and not Knuth's loser variant: the classic loser tree replays
// correctly only from the leaf of the *previous winner* (replacement
// selection always replaces the winner's head). Our buffer also has to
// repair the tree when an idle (empty) run revives on append — an arbitrary
// leaf whose key just dropped from +infinity — and the loser replay is
// unsound there (the revived leaf can meet itself stored as a loser on its
// own path and eject the true winner). Storing winners makes the same
// replay valid for every single-leaf change, at the cost of one extra key
// lookup per level; with keys sitting in a flat index array, that is noise
// next to what the merge saves over per-insert tree rebalancing.
//
// The tree stores only run indices. Keys are read on demand through the
// KeyFn passed to each call: KeyFn(run) returns a pointer to the run's
// current head key, or nullptr for an exhausted run (nullptr compares as
// +infinity, so empty runs sink to the bottom of the tournament). Run
// indices at and beyond the entrant count are padding; KeyFn must report
// them as nullptr too.
#pragma once

#include <cstdint>
#include <vector>

namespace eunomia::ordbuf {

class MergeTournament {
 public:
  // `runs` entrants; rounded up internally to a power of two.
  explicit MergeTournament(std::uint32_t runs) : runs_(runs == 0 ? 1 : runs) {
    cap_ = 1;
    while (cap_ < runs_) {
      cap_ <<= 1;
    }
    nodes_.assign(cap_, 0);
  }

  std::uint32_t runs() const { return runs_; }

  // The run holding the globally smallest head key. Ties cannot occur
  // between non-empty runs (keys are unique); among empty runs the winner
  // is arbitrary — callers check the winning run's head before using it.
  std::uint32_t Winner() const { return cap_ == 1 ? 0 : nodes_[1]; }

  // Full rebuild: plays every match bottom-up. O(k); used at construction.
  template <typename KeyFn>
  void Rebuild(const KeyFn& key_of) {
    for (std::uint32_t t = cap_ - 1; t >= 1; --t) {
      nodes_[t] = Match(Entrant(2 * t), Entrant(2 * t + 1), key_of);
    }
  }

  // Replays the path from leaf `run` to the root after that run's head key
  // changed (pop, or an empty run receiving its first element). O(log k).
  template <typename KeyFn>
  void Update(std::uint32_t run, const KeyFn& key_of) {
    for (std::uint32_t t = cap_ + run; t > 1; t >>= 1) {
      nodes_[t >> 1] = Match(Entrant(t), Entrant(t ^ 1), key_of);
    }
  }

 private:
  // Subtree winner at node x: leaves are implicit (leaf i at cap_ + i).
  std::uint32_t Entrant(std::uint32_t x) const {
    return x >= cap_ ? x - cap_ : nodes_[x];
  }

  template <typename KeyFn>
  static std::uint32_t Match(std::uint32_t a, std::uint32_t b, const KeyFn& key_of) {
    const auto* kb = key_of(b);
    if (kb == nullptr) {
      return a;
    }
    const auto* ka = key_of(a);
    if (ka == nullptr) {
      return b;
    }
    return *kb < *ka ? b : a;
  }

  std::uint32_t runs_;
  std::uint32_t cap_ = 1;
  // nodes_[t], t in [1, cap_): the winning run index of the subtree rooted
  // at t. nodes_[0] unused.
  std::vector<std::uint32_t> nodes_;
};

}  // namespace eunomia::ordbuf
