// Incrementally maintained minimum over a fixed-size array of timestamps.
//
// EunomiaCore evaluates min(PartitionTime) on every stabilization tick
// (Alg. 3 line 8). A flat std::min_element scan is O(P) per tick; this
// complete binary tournament makes the min an O(1) read, with O(log P) —
// and usually far less, the climb stops at the first unchanged ancestor —
// work per PartitionTime update.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace eunomia::ordbuf {

class MinTournament {
 public:
  explicit MinTournament(std::uint32_t n, Timestamp init = kTimestampZero)
      : n_(n == 0 ? 1 : n) {
    cap_ = 1;
    while (cap_ < n_) {
      cap_ <<= 1;
    }
    // Leaves live at [cap_, 2 * cap_); the padding beyond n_ holds
    // kTimestampMax so it can never win the tournament.
    nodes_.assign(2 * cap_, kTimestampMax);
    for (std::uint32_t i = 0; i < n_; ++i) {
      nodes_[cap_ + i] = init;
    }
    for (std::uint32_t t = cap_ - 1; t >= 1; --t) {
      nodes_[t] = std::min(nodes_[2 * t], nodes_[2 * t + 1]);
    }
  }

  std::uint32_t size() const { return n_; }

  Timestamp Get(std::uint32_t i) const {
    assert(i < n_);
    return nodes_[cap_ + i];
  }

  // O(1): the root holds min over all n entries. (With a single leaf the
  // "root" is the leaf itself at index 1.)
  Timestamp Min() const { return nodes_[1]; }

  void Set(std::uint32_t i, Timestamp v) {
    assert(i < n_);
    std::uint32_t t = cap_ + i;
    if (nodes_[t] == v) {
      return;
    }
    nodes_[t] = v;
    for (t >>= 1; t >= 1; t >>= 1) {
      const Timestamp m = std::min(nodes_[2 * t], nodes_[2 * t + 1]);
      if (nodes_[t] == m) {
        break;  // ancestors unchanged from here up
      }
      nodes_[t] = m;
    }
  }

 private:
  std::uint32_t n_;
  std::uint32_t cap_ = 1;
  std::vector<Timestamp> nodes_;
};

}  // namespace eunomia::ordbuf
