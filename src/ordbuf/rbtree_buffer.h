// RbTreeBuffer — the paper's §6 red-black tree behind the OrderedBuffer
// concept (src/ordbuf/ordered_buffer.h).
//
// Appends go through the hinted run-insert path with one persistent hint per
// partition: Property 2 makes each partition's stream an ascending run, so
// the previous insert for the same partition is almost always the in-order
// predecessor of the next one and the root descent is skipped. Hints are
// NodeRefs into the tree and are invalidated wholesale by extraction.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/eunomia/op.h"
#include "src/rbtree/red_black_tree.h"

namespace eunomia::ordbuf {

template <typename V>
class RbTreeBuffer {
 public:
  RbTreeBuffer(std::uint32_t num_partitions, std::uint32_t first_partition = 0)
      : first_partition_(first_partition),
        hints_(num_partitions == 0 ? 1 : num_partitions, nullptr) {}

  std::size_t size() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  void Append(const OpOrderKey& key, V value) {
    const std::uint32_t r = key.partition - first_partition_;
    assert(r < hints_.size());
    hints_[r] = tree_.InsertHinted(key, std::move(value), hints_[r]);
    assert(hints_[r] != nullptr && "(ts, partition) keys must be unique");
  }

  template <typename Emit>
  std::size_t ExtractUpTo(const OpOrderKey& bound, Emit&& emit) {
    const std::size_t extracted =
        tree_.ExtractUpToEmit(bound, std::forward<Emit>(emit));
    if (extracted > 0) {
      // Erasure invalidates NodeRefs; restart every partition's run.
      hints_.assign(hints_.size(), nullptr);
    }
    return extracted;
  }

 private:
  std::uint32_t first_partition_;
  RedBlackTree<OpOrderKey, V> tree_;
  std::vector<typename RedBlackTree<OpOrderKey, V>::NodeRef> hints_;
};

}  // namespace eunomia::ordbuf
