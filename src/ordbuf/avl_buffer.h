// AvlBuffer — the §6 also-ran self-balancing tree behind the OrderedBuffer
// concept (src/ordbuf/ordered_buffer.h), kept so ablation A1 can reproduce
// the paper's red-black-vs-AVL design-choice measurement on the real access
// pattern. AvlTree has no hinted insert; every append pays the root descent.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "src/eunomia/op.h"
#include "src/rbtree/avl_tree.h"

namespace eunomia::ordbuf {

template <typename V>
class AvlBuffer {
 public:
  AvlBuffer(std::uint32_t num_partitions, std::uint32_t first_partition = 0) {
    (void)num_partitions;  // the tree layout is partition-oblivious
    (void)first_partition;
  }

  std::size_t size() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  void Append(const OpOrderKey& key, V value) {
    const bool inserted = tree_.Insert(key, std::move(value));
    assert(inserted && "(ts, partition) keys must be unique");
    (void)inserted;
  }

  template <typename Emit>
  std::size_t ExtractUpTo(const OpOrderKey& bound, Emit&& emit) {
    return tree_.ExtractUpToEmit(bound, std::forward<Emit>(emit));
  }

 private:
  AvlTree<OpOrderKey, V> tree_;
};

}  // namespace eunomia::ordbuf
