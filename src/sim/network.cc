#include "src/sim/network.h"

#include <algorithm>
#include <cassert>

namespace eunomia::sim {

NetworkConfig PaperTopology() {
  NetworkConfig config;
  config.intra_dc_one_way_us = 150;
  config.wan_one_way_us = {
      {0, 40 * kMillisecond, 40 * kMillisecond},
      {40 * kMillisecond, 0, 80 * kMillisecond},
      {40 * kMillisecond, 80 * kMillisecond, 0},
  };
  config.jitter = 0.02;
  return config;
}

Network::Network(Simulator* sim, NetworkConfig config)
    : sim_(sim), config_(std::move(config)) {}

EndpointId Network::Register(DatacenterId dc) {
  endpoint_dc_.push_back(dc);
  return static_cast<EndpointId>(endpoint_dc_.size() - 1);
}

SimTime Network::BaseLatency(EndpointId src, EndpointId dst) const {
  assert(src < endpoint_dc_.size() && dst < endpoint_dc_.size());
  const DatacenterId sdc = endpoint_dc_[src];
  const DatacenterId ddc = endpoint_dc_[dst];
  if (sdc == ddc) {
    return config_.intra_dc_one_way_us;
  }
  assert(sdc < config_.wan_one_way_us.size() &&
         ddc < config_.wan_one_way_us[sdc].size() &&
         "WAN latency matrix does not cover this datacenter pair");
  return config_.wan_one_way_us[sdc][ddc];
}

SimTime Network::SampleLatency(EndpointId src, EndpointId dst,
                               const ChannelState& ch) {
  SimTime base = BaseLatency(src, dst) + ch.extra_delay;
  if (config_.jitter > 0.0) {
    const double factor =
        1.0 + config_.jitter * (2.0 * sim_->rng().NextDouble() - 1.0);
    base = static_cast<SimTime>(static_cast<double>(base) * factor);
  }
  return std::max<SimTime>(base, 1);
}

void Network::Deliver(ChannelState* ch, SimTime latency,
                      std::function<void()> deliver) {
  // FIFO: never deliver before the previous message on this channel.
  SimTime at = sim_->now() + latency;
  at = std::max(at, ch->last_delivery);
  ch->last_delivery = at;
  sim_->ScheduleAt(at, std::move(deliver));
}

void Network::Send(EndpointId src, EndpointId dst,
                   std::function<void()> deliver) {
  ChannelState& ch = channels_[{src, dst}];
  ++messages_sent_;
  if (ch.down || (ch.drop_probability > 0.0 &&
                  sim_->rng().NextBool(ch.drop_probability))) {
    ++messages_dropped_;
    return;
  }
  const bool duplicate = ch.duplicate_probability > 0.0 &&
                         sim_->rng().NextBool(ch.duplicate_probability);
  const SimTime latency = SampleLatency(src, dst, ch);
  if (duplicate) {
    auto copy = deliver;
    Deliver(&ch, latency, std::move(copy));
    Deliver(&ch, SampleLatency(src, dst, ch), std::move(deliver));
  } else {
    Deliver(&ch, latency, std::move(deliver));
  }
}

void Network::SetDropProbability(EndpointId src, EndpointId dst, double p) {
  channels_[{src, dst}].drop_probability = p;
}

void Network::SetDuplicateProbability(EndpointId src, EndpointId dst, double p) {
  channels_[{src, dst}].duplicate_probability = p;
}

void Network::SetLinkDown(EndpointId src, EndpointId dst, bool down) {
  channels_[{src, dst}].down = down;
}

void Network::SetExtraDelay(EndpointId src, EndpointId dst, SimTime extra_us) {
  channels_[{src, dst}].extra_delay = extra_us;
}

}  // namespace eunomia::sim
