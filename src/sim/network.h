// Simulated network with per-channel FIFO delivery.
//
// Models the paper's deployment assumptions:
//   - "We assume FIFO links among partitions and Eunomia" (§3.1) and
//     "FIFO links between datacenters" (§4): every (src, dst) endpoint pair
//     is a FIFO channel — a message is never delivered before an earlier
//     message on the same channel, even under jitter.
//   - WAN latencies are an inter-datacenter one-way latency matrix; the
//     default topology helper reproduces the paper's emulated RTTs
//     (80 ms dc0<->dc1, 80 ms dc0<->dc2, 160 ms dc1<->dc2 — approximately
//     Virginia / Oregon / Ireland on EC2).
//   - Fault injection: per-channel message drop and duplication
//     probabilities (the fault-tolerant Eunomia protocol of §3.3 only needs
//     at-least-once delivery, which the tests verify under loss), and
//     link up/down control.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace eunomia::sim {

using EndpointId = std::uint32_t;

struct NetworkConfig {
  // One-way latency between endpoints in the same datacenter.
  SimTime intra_dc_one_way_us = 150;
  // Symmetric inter-datacenter one-way latency matrix; entry [i][j] is the
  // one-way delay between a node in DC i and a node in DC j. Diagonal
  // entries are ignored (intra-DC latency applies).
  std::vector<std::vector<SimTime>> wan_one_way_us;
  // Uniform jitter: each message latency is multiplied by a factor drawn
  // from [1 - jitter, 1 + jitter].
  double jitter = 0.0;
};

// The paper's 3-DC topology: RTTs 80/80/160 ms => one-way 40/40/80 ms.
NetworkConfig PaperTopology();

class Network {
 public:
  Network(Simulator* sim, NetworkConfig config);

  // Registers an endpoint living in the given datacenter.
  EndpointId Register(DatacenterId dc);

  DatacenterId DatacenterOf(EndpointId ep) const { return endpoint_dc_[ep]; }
  std::size_t num_endpoints() const { return endpoint_dc_.size(); }

  // Sends a message from src to dst; `deliver` runs at the destination when
  // the message arrives. FIFO per (src, dst) channel.
  void Send(EndpointId src, EndpointId dst, std::function<void()> deliver);

  // One-way latency that the next message on (src, dst) would base on
  // (before jitter / FIFO clamping). Exposed for tests and the harness.
  SimTime BaseLatency(EndpointId src, EndpointId dst) const;

  // --- fault injection -----------------------------------------------------
  // Probability in [0, 1] that a message on (src, dst) is silently dropped.
  void SetDropProbability(EndpointId src, EndpointId dst, double p);
  // Probability in [0, 1] that a message is delivered twice (second copy
  // re-jittered, still FIFO-clamped).
  void SetDuplicateProbability(EndpointId src, EndpointId dst, double p);
  // Cuts / restores a directed link entirely.
  void SetLinkDown(EndpointId src, EndpointId dst, bool down);
  // Adds a constant extra delay on a directed channel (models a congested
  // or degraded path).
  void SetExtraDelay(EndpointId src, EndpointId dst, SimTime extra_us);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  using Channel = std::pair<EndpointId, EndpointId>;

  struct ChannelState {
    SimTime last_delivery = 0;
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    bool down = false;
    SimTime extra_delay = 0;
  };

  SimTime SampleLatency(EndpointId src, EndpointId dst, const ChannelState& ch);
  void Deliver(ChannelState* ch, SimTime latency, std::function<void()> deliver);

  Simulator* sim_;
  NetworkConfig config_;
  std::vector<DatacenterId> endpoint_dc_;
  std::map<Channel, ChannelState> channels_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace eunomia::sim
