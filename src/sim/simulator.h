// Deterministic discrete-event simulator.
//
// This substrate stands in for the paper's testbed (3 datacenters of VMs
// with netem-emulated WAN latencies, §7). All protocol logic runs unchanged
// on top of it; the simulator supplies virtual time, an event queue with a
// stable total order (ties broken by insertion sequence, so runs replay
// bit-for-bit), and a seeded RNG tree for every stochastic decision.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/random.h"

namespace eunomia::sim {

// Virtual time in microseconds since the start of the run.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;

// Handle that allows cancelling a scheduled event (used by protocol timers
// that are torn down when a simulated process crashes).
class TimerToken {
 public:
  TimerToken() : alive_(std::make_shared<bool>(true)) {}
  void Cancel() { *alive_ = false; }
  bool active() const { return *alive_; }
  std::shared_ptr<const bool> flag() const { return alive_; }

 private:
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules fn at absolute virtual time t (>= now).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules fn `delay` microseconds from now.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules fn at now + delay, but only runs it if the token is still
  // active at fire time.
  void ScheduleCancelable(SimTime delay, const TimerToken& token,
                          std::function<void()> fn);

  // Executes the next event; returns false if the queue is empty.
  bool Step();

  // Runs until the queue drains or virtual time would pass `until`.
  // Events scheduled exactly at `until` are executed.
  void RunUntil(SimTime until);

  // Runs until no events remain.
  void RunUntilIdle();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

}  // namespace eunomia::sim
