#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace eunomia::sim {

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
}

void Simulator::ScheduleCancelable(SimTime delay, const TimerToken& token,
                                   std::function<void()> fn) {
  ScheduleAt(now_ + delay,
             [flag = token.flag(), fn = std::move(fn)]() {
               if (*flag) {
                 fn();
               }
             });
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Copy out before pop: the handler may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace eunomia::sim
