// Single-server CPU model with a client lane and a preemptive background
// lane.
//
// Throughput differences between the protocols in the paper (Fig. 1, Fig. 5)
// come from how much *work* each protocol puts on the storage servers and on
// sequencers: per-operation processing, metadata enrichment (Cure's vectors),
// and periodic stabilization messages all consume server capacity. We model
// each physical server as a work-conserving queue with explicit per-task
// service times; closed-loop clients then make throughput an emergent
// property, exactly as in a real saturated cluster.
//
// Two lanes:
//   - Submit(): client operations, FCFS.
//   - SubmitPriority(): background protocol work — remote-update application,
//     stabilization and heartbeat handling. Riak runs on the Erlang VM,
//     whose scheduler is *preemptive* (reduction-based): a message to the
//     replication sink or a stabilization timer is serviced within its own
//     service time even while a client operation is in flight, with the
//     stolen cycles slowing the client work down. We model exactly that:
//     a background task completes `cost` after submission, and its cost is
//     charged to the server by inflating the client lane — so background
//     work eats throughput exactly as in the paper, without incurring the
//     closed-loop client queueing delays no fair scheduler would impose on
//     it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "src/sim/simulator.h"

namespace eunomia::sim {

class Server {
 public:
  explicit Server(Simulator* sim) : sim_(sim) {}

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueues a client-lane task occupying the server for cost_us; `done`
  // runs at completion time. FCFS within the lane.
  void Submit(SimTime cost_us, std::function<void()> done) {
    queue_.push_back(Task{cost_us, std::move(done)});
    queued_cost_ += cost_us;
    ++tasks_;
    if (!busy_) {
      StartNext();
    }
  }

  // Preemptive background-lane task (see file comment): completes cost_us
  // from now; the stolen cycles are charged to the client lane.
  void SubmitPriority(SimTime cost_us, std::function<void()> done) {
    busy_accum_ += cost_us;
    stolen_ += cost_us;
    ++tasks_;
    sim_->ScheduleAfter(cost_us, std::move(done));
  }

  // Queued-but-unstarted client work plus the remainder of the task in
  // service (excluding background inflation not yet materialized).
  SimTime Backlog() const {
    SimTime total = queued_cost_ + stolen_;
    if (busy_ && current_end_ > sim_->now()) {
      total += current_end_ - sim_->now();
    }
    return total;
  }

  // Total busy microseconds accumulated (for utilization reporting).
  SimTime busy_accum() const { return busy_accum_; }
  std::uint64_t tasks() const { return tasks_; }
  std::size_t queue_length() const { return queue_.size(); }

 private:
  struct Task {
    SimTime cost;
    std::function<void()> done;
  };

  void StartNext() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    queued_cost_ -= task.cost;
    // Charge cycles stolen by background work since the last client task:
    // the client operation runs that much longer.
    const SimTime cost = task.cost + stolen_;
    stolen_ = 0;
    busy_ = true;
    busy_accum_ += task.cost;
    current_end_ = sim_->now() + cost;
    sim_->ScheduleAt(current_end_, [this, done = std::move(task.done)] {
      done();
      StartNext();
    });
  }

  Simulator* sim_;
  std::deque<Task> queue_;
  bool busy_ = false;
  SimTime current_end_ = 0;
  SimTime queued_cost_ = 0;
  SimTime stolen_ = 0;   // background cost not yet charged to the client lane
  SimTime busy_accum_ = 0;
  std::uint64_t tasks_ = 0;
};

}  // namespace eunomia::sim
