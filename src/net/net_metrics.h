// Process-wide transport instrumentation (docs/METRICS.md §net). Always
// on for every transport backend: the hooks are relaxed atomic adds on
// pre-resolved counters, so the per-frame cost is two fetch_adds. Series
// are registered lazily into metrics::Registry::Default() on first use;
// that can happen under kRankConnSend (800), which nests cleanly under the
// registry mutex (kRankMetricsRegistry, 950).
#pragma once

#include <cstdint>
#include <memory>

#include "src/metrics/counter.h"
#include "src/metrics/histogram.h"
#include "src/net/wire.h"

namespace eunomia::net {

struct NetMetrics {
  // Indexed by raw MsgType value (1..kMaxMsgType; slot 0 is unused —
  // decoded frames always carry a valid type).
  std::shared_ptr<metrics::Counter> frames_out[wire::kMaxMsgType + 1];
  std::shared_ptr<metrics::Counter> bytes_out[wire::kMaxMsgType + 1];
  std::shared_ptr<metrics::Counter> frames_in[wire::kMaxMsgType + 1];
  std::shared_ptr<metrics::Counter> bytes_in[wire::kMaxMsgType + 1];

  // Connection churn: constructed / destroyed, any backend.
  std::shared_ptr<metrics::Counter> connections_opened;
  std::shared_ptr<metrics::Counter> connections_closed;
  // TCP accept/dial successes (churn split by direction).
  std::shared_ptr<metrics::Counter> tcp_accepts;
  std::shared_ptr<metrics::Counter> tcp_dials;
  // Times a sender blocked because a TCP connection's outbox was at
  // capacity (counted once per full-to-drained episode, not per wait).
  std::shared_ptr<metrics::Counter> outbox_stalls;

  // Event-loop (epoll) backend internals. epoll_wakeups counts epoll_wait
  // returns; writev_frames is the number of frames coalesced into each
  // writev (the syscall-amortization signal); io_loop_iteration_us is the
  // busy time per wakeup — readiness dispatch plus posted tasks, excluding
  // the blocked wait itself.
  std::shared_ptr<metrics::Counter> epoll_wakeups;
  std::shared_ptr<metrics::Histogram> writev_frames;
  std::shared_ptr<metrics::Histogram> io_loop_iteration_us;

  void RecordFrameOut(wire::MsgType type, std::size_t bytes) {
    const auto index = static_cast<std::size_t>(type);
    frames_out[index]->Increment();
    bytes_out[index]->Add(bytes);
  }
  void RecordFrameIn(wire::MsgType type, std::size_t bytes) {
    const auto index = static_cast<std::size_t>(type);
    frames_in[index]->Increment();
    bytes_in[index]->Add(bytes);
  }

  static NetMetrics& Get();
};

}  // namespace eunomia::net
