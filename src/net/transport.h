// The transport abstraction: connection-oriented, frame-delimited, FIFO
// links between an Eunomia client and the service — the same split
// FoundationDB makes in fdbrpc (one network interface, a simulated and a
// real socket implementation behind it) and glusterfs makes with rpc/.
//
// Two backends implement it:
//   - LoopbackTransport: in-process bounded queues plus one delivery thread
//     per connection side. Deterministic, no sockets — the backend tests and
//     simulator-adjacent code use it.
//   - TcpTransport: real sockets on a reactor-per-connection model (one
//     reader + one writer thread per connection), length-prefixed frames,
//     TCP_NODELAY.
//
// Both backends push every transmitted byte through the wire-format
// encoder/decoder (src/net/wire.h), so the framing, checksum and session
// sequence logic is exercised identically in-process and on the network.
// The session contract both guarantee:
//
//   - Frames delivered to ConnectionHandler::on_frame arrive in exactly the
//     order the peer sent them (per-channel FIFO, §3.1) — enforced, not
//     assumed: the wire session sequence makes any violation a detected
//     error that tears the connection down.
//   - on_frame / on_close for one connection are invoked from a single
//     transport thread (no concurrent callbacks per connection).
//   - Send applies backpressure: it blocks while the connection's outbound
//     buffer is at capacity and returns false once the connection is closed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.h"
#include "src/net/wire.h"

namespace eunomia::net {

class Connection;

// Callbacks an endpoint installs on a connection. on_frame receives decoded
// frames in FIFO order; the frame's payload view is only valid for the
// duration of the callback (it points into the transport's receive buffer)
// — handlers copy whatever they retain. on_close fires exactly once, with
// kNone for a clean peer close and the wire error otherwise. After on_close returns the
// transport drops the handler, releasing everything it captured — so a
// handler may own (a share of) the very object that owns this connection
// without leaking the pair.
struct ConnectionHandler {
  std::function<void(Connection&, wire::Frame&&)> on_frame;
  std::function<void(Connection&, wire::WireError)> on_close;
};

class Connection {
 public:
  virtual ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Encodes `payload` as one frame (stamping this direction's session
  // sequence number) and queues it for delivery. Frames from concurrent
  // callers are serialized; each is delivered intact and in the order the
  // sequence numbers were assigned. Blocks while the outbound buffer is
  // full; returns false if the connection is (or becomes) closed.
  bool SendFrame(wire::MsgType type, std::string_view payload);

  // Copy-free variant for the batch hot paths: `frame` is a pre-built frame
  // body from a wire::Encode*Frame builder (header hole + payload); the
  // header — including the session sequence number — is stamped in place
  // under the send lock, so the payload is never re-copied into a second
  // buffer. Same ordering, backpressure and failure semantics as SendFrame.
  bool SendFrameBody(wire::MsgType type, std::string frame);

  // Initiates teardown. Idempotent; the handler's on_close still fires
  // (once) from the transport thread. Pending outbound frames may be lost.
  virtual void Close() = 0;

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::uint64_t id() const { return id_; }

 protected:
  Connection();

  // Hands one encoded frame to the backend for transmission. Called with
  // send_mu_ held, so implementations see frames in sequence order.
  virtual bool SendBytes(std::string bytes) REQUIRES(send_mu_) = 0;

  std::atomic<bool> closed_{false};

 private:
  const std::uint64_t id_;  // process-unique, for logging/registries
  sync::Mutex send_mu_{"net::Connection::send_mu_", sync::kRankConnSend};
  std::uint64_t send_seq_ GUARDED_BY(send_mu_) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Invoked for each accepted connection, before any frame is delivered;
  // returns the handler to install on it.
  using AcceptHandler =
      std::function<ConnectionHandler(const std::shared_ptr<Connection>&)>;

  // Starts listening. `address` is backend-specific: "host:port" for TCP
  // (port 0 binds an ephemeral port) or any non-empty name for loopback.
  // Returns the concrete bound address ("127.0.0.1:41873"), or "" on
  // failure. One listener per transport instance.
  virtual std::string Listen(const std::string& address,
                             AcceptHandler handler) = 0;

  // Connects to a listener and installs `handler`. Returns nullptr on
  // failure.
  virtual std::shared_ptr<Connection> Dial(const std::string& address,
                                           ConnectionHandler handler) = 0;

  // Closes the listener and every connection, then joins all transport
  // threads. After Shutdown returns, no handler is running or will run.
  virtual void Shutdown() = 0;
};

namespace internal {

// Shared receive path: feeds raw bytes through the session decoder and
// dispatches completed frames. Returns false when the stream is malformed
// (error() names the failure); the caller must then tear the connection
// down. Used by both transport backends so session enforcement cannot
// diverge between them.
class FrameReceiver {
 public:
  bool Deliver(Connection& connection, const ConnectionHandler& handler,
               const char* data, std::size_t size);

  wire::WireError error() const { return decoder_.error(); }
  bool mid_frame() const { return decoder_.mid_frame(); }

 private:
  wire::FrameDecoder decoder_;
  std::vector<wire::Frame> scratch_;
};

}  // namespace internal
}  // namespace eunomia::net
