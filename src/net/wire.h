// The Eunomia wire format (version 1): how SubmitBatch / Heartbeat / acks /
// the stable-batch stream look as bytes on a transport.
//
// Every message travels as one length-prefixed frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  magic 0x45554E4F ("EUNO"), little-endian
//        4     1  protocol version (kProtocolVersion)
//        5     1  message type (MsgType)
//        6     2  reserved, must be 0
//        8     4  payload length in bytes (<= kMaxPayloadBytes)
//       12     4  CRC-32 of the payload
//       16     8  session sequence number
//       24     -  payload
//
// All integers are little-endian regardless of host order. The CRC rejects
// corruption; the bounded payload length rejects a garbage prefix before any
// allocation; the per-direction session sequence number (0, 1, 2, ...)
// enforces the FIFO contract the protocol assumes (§3.1): partitions rely on
// their batches arriving in submission order, so a transport that reorders,
// drops or duplicates frames must be detected as a session error rather than
// silently corrupt stabilization order.
//
// The decoder is incremental (frames may arrive split or coalesced — TCP
// guarantees neither message boundaries nor single-read delivery) and
// poisons itself on the first malformed byte: a framing error is not
// recoverable, the session must be torn down.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/op.h"

namespace eunomia::net::wire {

inline constexpr std::uint32_t kMagic = 0x45554E4Fu;  // "EUNO"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
// Upper bound on a frame payload. Large enough for ~599k OpRecords per
// batch; small enough that a corrupt length prefix cannot drive a huge
// allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

// Serialized OpRecord size, and the largest op count senders may put into
// one SubmitBatch/StableBatch frame (conservatively accounting for the
// larger of the two message headers). Senders chunk bigger batches into
// multiple frames — the receive-side cap is a defense, not a protocol
// limit on batch size.
inline constexpr std::size_t kOpRecordWireBytes = 28;
inline constexpr std::uint32_t kMaxOpsPerFrame =
    (kMaxPayloadBytes - 16) / kOpRecordWireBytes;

enum class MsgType : std::uint8_t {
  kHello = 1,        // client -> server: version check, opens the session
  kHelloAck = 2,     // server -> client: session accepted
  kSubmitBatch = 3,  // client -> server: one partition's op batch
  kHeartbeat = 4,    // client -> server: partition liveness (§4, Alg. 2)
  kSubmitAck = 5,    // server -> client: cumulative ops received (backpressure)
  kSubscribe = 6,    // client -> server: start streaming stable batches
  kSubscribeAck = 7, // server -> client: subscribed; carries the next stream seq
  kStableBatch = 8,  // server -> client: stable ops in (ts, partition) order

  // Geo-replication peer links (one datacenter node to another; payload
  // codecs live with the geo runtime in src/georep/runtime/geo_wire.h).
  kGeoHello = 9,     // link opener: origin DC, deployment shape, link kind
  kGeoMetaBatch = 10, // Eunomia@m -> receiver@k: stabilized metadata, FIFO
  kGeoFrontier = 11, // Eunomia@m -> receiver@k: scalar-mode stable beacon
  kGeoPayload = 12,  // partition (m,p) -> sibling (k,p): one update payload
  kGeoAck = 13,      // receiver@k -> Eunomia@m: durably-applied frontier ack
};

inline constexpr std::uint8_t kMinMsgType = 1;
inline constexpr std::uint8_t kMaxMsgType = 13;

// Stable snake_case name for a message type ("submit_batch"); used as the
// `type` label on the per-type net metrics, so renaming one is a
// dashboard-breaking change.
const char* MsgTypeName(MsgType type);

enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,         // frame does not start with "EUNO"
  kBadVersion,       // protocol version mismatch
  kBadType,          // message type outside [kMinMsgType, kMaxMsgType]
  kBadReserved,      // reserved header bytes not zero
  kOversizedPayload, // length prefix exceeds kMaxPayloadBytes
  kBadChecksum,      // payload CRC mismatch
  kBadSequence,      // session sequence number not the expected successor
  kTruncated,        // stream ended mid-frame (short read / torn connection)
  kMalformedPayload, // payload failed typed decoding
};

const char* WireErrorName(WireError error);

// CRC-32 (the IEEE 802.3 polynomial, as used by zlib).
std::uint32_t Crc32(const void* data, std::size_t size);

// A decoded frame: type + session sequence + raw payload bytes.
//
// `payload` is a zero-copy view into the decoder's input (the caller's
// receive buffer or the decoder's carry buffer) — valid only until the next
// Feed on the decoder that produced it. Transports dispatch every decoded
// frame before reading again, so handlers may use the payload for the
// duration of on_frame but must copy anything they retain.
struct Frame {
  MsgType type = MsgType::kHello;
  std::uint64_t seq = 0;
  std::string_view payload;
};

// Serializes one frame (header + payload) and appends it to *out.
void EncodeFrame(MsgType type, std::uint64_t seq, std::string_view payload,
                 std::string* out);

// Stamps a complete frame header over the first kHeaderBytes of *frame
// (built by one of the Encode*Frame body builders below): magic, version,
// type, payload length, payload CRC and the session sequence number. Split
// from payload encoding so senders can build the payload once, outside the
// connection's send lock, and stamp the (lock-ordered) sequence number in
// place — no second payload-sized buffer or copy per frame.
void FinalizeFrameHeader(MsgType type, std::uint64_t seq, std::string* frame);

// Incremental frame decoder for one receive direction of a session.
//
// Complete frames are parsed in place from the caller's receive buffer;
// only a trailing partial frame is copied into the carry buffer. A reader
// that hands over whole frames per chunk (the common case under epoll's
// read-until-EAGAIN) therefore never pays an intermediate memcpy of the
// stream.
class FrameDecoder {
 public:
  // Consumes `size` bytes and appends every completed frame to *frames.
  // Returns false once the stream is malformed; error() then names the
  // failure and every further Feed is rejected.
  bool Feed(const char* data, std::size_t size, std::vector<Frame>* frames);

  WireError error() const { return error_; }
  // True while a partial frame is buffered: an EOF in this state is a
  // truncated stream, not a clean close.
  bool mid_frame() const { return buffer_.size() > buffer_pos_; }
  std::uint64_t frames_decoded() const { return next_seq_; }

 private:
  // Parses complete frames from [data, data+size), appending to *frames.
  // Returns the number of bytes consumed; stops at the first partial frame
  // or (setting error_) the first malformed header/payload.
  std::size_t Parse(const char* data, std::size_t size,
                    std::vector<Frame>* frames);

  // Carry buffer for a trailing partial frame. The prefix [0, buffer_pos_)
  // was consumed by the previous Feed but is erased lazily at the start of
  // the next one — compacting immediately would invalidate the payload
  // views just handed out.
  std::string buffer_;
  std::size_t buffer_pos_ = 0;
  std::uint64_t next_seq_ = 0;
  WireError error_ = WireError::kNone;
};

// --- typed messages ----------------------------------------------------------
//
// Encode* builds the payload for SendFrame; Decode* validates and parses a
// received payload (returning false on any structural violation — callers
// must treat that as WireError::kMalformedPayload and drop the session).

struct HelloMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t num_partitions = 0;  // partitions the client will submit for
};

struct HelloAckMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t num_partitions = 0;  // partitions the hosted service runs
};

struct SubmitBatchMsg {
  PartitionId partition = 0;
  std::vector<OpRecord> ops;
};

struct HeartbeatMsg {
  PartitionId partition = 0;
  Timestamp ts = 0;
};

struct SubmitAckMsg {
  std::uint64_t ops_received = 0;  // cumulative over the connection
};

struct SubscribeAckMsg {
  std::uint64_t next_stream_seq = 0;
};

struct StableBatchMsg {
  std::uint64_t stream_seq = 0;  // dense per-subscription batch counter
  std::vector<OpRecord> ops;
};

std::string EncodeHello(const HelloMsg& msg);
bool DecodeHello(std::string_view payload, HelloMsg* msg);

std::string EncodeHelloAck(const HelloAckMsg& msg);
bool DecodeHelloAck(std::string_view payload, HelloAckMsg* msg);

// The pointer/count forms exist so senders can chunk a large batch into
// several ≤ kMaxOpsPerFrame frames without copying sub-vectors.
std::string EncodeSubmitBatch(PartitionId partition, const OpRecord* ops,
                              std::size_t count);
// Frame-body builder for the batch hot paths: returns a buffer with
// kHeaderBytes of (zeroed) header hole followed by the encoded payload,
// ready for Connection::SendFrameBody, which fills the hole via
// FinalizeFrameHeader. Byte-for-byte identical on the wire to
// EncodeFrame(EncodeSubmitBatch(...)) — pinned by wire_test — but without
// the second payload-sized allocation and copy.
std::string EncodeSubmitBatchFrame(PartitionId partition, const OpRecord* ops,
                                   std::size_t count);
inline std::string EncodeSubmitBatch(PartitionId partition,
                                     const std::vector<OpRecord>& ops) {
  return EncodeSubmitBatch(partition, ops.data(), ops.size());
}
bool DecodeSubmitBatch(std::string_view payload, SubmitBatchMsg* msg);

std::string EncodeHeartbeat(const HeartbeatMsg& msg);
bool DecodeHeartbeat(std::string_view payload, HeartbeatMsg* msg);

std::string EncodeSubmitAck(const SubmitAckMsg& msg);
bool DecodeSubmitAck(std::string_view payload, SubmitAckMsg* msg);

std::string EncodeSubscribeAck(const SubscribeAckMsg& msg);
bool DecodeSubscribeAck(std::string_view payload, SubscribeAckMsg* msg);

std::string EncodeStableBatch(std::uint64_t stream_seq, const OpRecord* ops,
                              std::size_t count);
// Frame-body builder; see EncodeSubmitBatchFrame.
std::string EncodeStableBatchFrame(std::uint64_t stream_seq,
                                   const OpRecord* ops, std::size_t count);
inline std::string EncodeStableBatch(std::uint64_t stream_seq,
                                     const std::vector<OpRecord>& ops) {
  return EncodeStableBatch(stream_seq, ops.data(), ops.size());
}
bool DecodeStableBatch(std::string_view payload, StableBatchMsg* msg);

}  // namespace eunomia::net::wire
