#include "src/net/transport.h"

#include "src/net/net_metrics.h"

namespace eunomia::net {

namespace {

std::uint64_t NextConnectionId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Connection::Connection() : id_(NextConnectionId()) {
  NetMetrics::Get().connections_opened->Increment();
}

Connection::~Connection() {
  NetMetrics::Get().connections_closed->Increment();
}

bool Connection::SendFrame(wire::MsgType type, std::string_view payload) {
  if (closed_.load(std::memory_order_acquire)) {
    return false;
  }
  // Sequence assignment and transmission happen under one lock so the wire
  // order always matches the stamped order — two racing senders can never
  // interleave seq n after n+1 on the byte stream.
  sync::MutexLock lock(send_mu_);
  std::string bytes;
  wire::EncodeFrame(type, send_seq_, payload, &bytes);
  const std::size_t frame_bytes = bytes.size();
  if (!SendBytes(std::move(bytes))) {
    return false;
  }
  ++send_seq_;
  // Both transport backends route every outbound frame through here, so
  // this is the single egress instrumentation point.
  NetMetrics::Get().RecordFrameOut(type, frame_bytes);
  return true;
}

bool Connection::SendFrameBody(wire::MsgType type, std::string frame) {
  if (closed_.load(std::memory_order_acquire)) {
    return false;
  }
  sync::MutexLock lock(send_mu_);
  wire::FinalizeFrameHeader(type, send_seq_, &frame);
  const std::size_t frame_bytes = frame.size();
  if (!SendBytes(std::move(frame))) {
    return false;
  }
  ++send_seq_;
  NetMetrics::Get().RecordFrameOut(type, frame_bytes);
  return true;
}

namespace internal {

bool FrameReceiver::Deliver(Connection& connection,
                            const ConnectionHandler& handler, const char* data,
                            std::size_t size) {
  scratch_.clear();
  const bool ok = decoder_.Feed(data, size, &scratch_);
  // Frames decoded before a mid-buffer error are still valid and FIFO;
  // deliver them, then report the failure. Frames already received may be
  // delivered even after a local Close — like bytes already in a socket
  // buffer, teardown is asynchronous and handlers must tolerate it.
  NetMetrics& nm = NetMetrics::Get();
  for (wire::Frame& frame : scratch_) {
    // Single ingress instrumentation point (both backends deliver through
    // this receiver).
    nm.RecordFrameIn(frame.type, wire::kHeaderBytes + frame.payload.size());
    if (handler.on_frame) {
      handler.on_frame(connection, std::move(frame));
    }
  }
  scratch_.clear();
  return ok;
}

}  // namespace internal
}  // namespace eunomia::net
