#include "src/net/wire.h"

#include <array>
#include <cassert>
#include <cstring>

#include "src/net/wire_io.h"

namespace eunomia::net::wire {

namespace {

using io::GetU16;
using io::GetU32;
using io::GetU64;
using io::PayloadReader;
using io::PutU16;
using io::PutU32;
using io::PutU64;

// One serialized OpRecord: ts u64 | partition u32 | key u64 | tag u64
// (kOpRecordWireBytes).

// Bulk-encodes `count` ops through a raw cursor (the caller sized the
// buffer); one op is ts u64 | partition u32 | key u64 | tag u64
// (kOpRecordWireBytes). Per-field Put* appends cost a capacity check and a
// call per field, which dominates the frame path at Mops/s rates — the
// cursor stores compile to straight unconditional moves.
char* StoreOps(char* p, const OpRecord* ops, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    io::StoreU64(p, ops[i].ts);
    io::StoreU32(p + 8, ops[i].partition);
    io::StoreU64(p + 12, ops[i].key);
    io::StoreU64(p + 20, ops[i].tag);
    p += kOpRecordWireBytes;
  }
  return p;
}

bool ReadOps(PayloadReader* reader, std::uint32_t count,
             std::vector<OpRecord>* ops) {
  if (reader->remaining() != static_cast<std::size_t>(count) * kOpRecordWireBytes) {
    return false;  // count must match the payload exactly — no trailing bytes
  }
  // The size check above covers the whole array, so the per-op reads skip
  // the PayloadReader's per-field bounds checks (mirror of StoreOps).
  const char* p = reader->cursor();
  ops->resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    OpRecord& op = (*ops)[i];
    op.ts = GetU64(p);
    op.partition = GetU32(p + 8);
    op.key = GetU64(p + 12);
    op.tag = GetU64(p + 20);
    p += kOpRecordWireBytes;
  }
  reader->Skip(static_cast<std::size_t>(count) * kOpRecordWireBytes);
  return true;
}

// Slice-by-16 tables: table[0] is the classic byte-at-a-time CRC-32 table
// (polynomial 0xEDB88320); table[j][b] gives the CRC contribution of byte b
// placed j positions ahead, so sixteen input bytes fold into the
// accumulator with sixteen independent lookups per iteration — two 8-byte
// halves with no serial dependency between them — instead of a dependency
// chain per byte. Same polynomial, bit-identical results — only the
// throughput changes (the frame path checksums every payload byte in both
// directions, so this is the transport's hottest loop).
std::array<std::array<std::uint32_t, 256>, 16> MakeCrcTables() {
  std::array<std::array<std::uint32_t, 256>, 16> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t j = 1; j < 16; ++j) {
      c = tables[0][c & 0xffu] ^ (c >> 8);
      tables[j][i] = c;
    }
  }
  return tables;
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kSubmitBatch: return "submit_batch";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kSubmitAck: return "submit_ack";
    case MsgType::kSubscribe: return "subscribe";
    case MsgType::kSubscribeAck: return "subscribe_ack";
    case MsgType::kStableBatch: return "stable_batch";
    case MsgType::kGeoHello: return "geo_hello";
    case MsgType::kGeoMetaBatch: return "geo_meta_batch";
    case MsgType::kGeoFrontier: return "geo_frontier";
    case MsgType::kGeoPayload: return "geo_payload";
    case MsgType::kGeoAck: return "geo_ack";
  }
  return "unknown";
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadType: return "bad_type";
    case WireError::kBadReserved: return "bad_reserved";
    case WireError::kOversizedPayload: return "oversized_payload";
    case WireError::kBadChecksum: return "bad_checksum";
    case WireError::kBadSequence: return "bad_sequence";
    case WireError::kTruncated: return "truncated";
    case WireError::kMalformedPayload: return "malformed_payload";
  }
  return "unknown";
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  static const std::array<std::array<std::uint32_t, 256>, 16> tables =
      MakeCrcTables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  while (size >= 16) {
    // Little-endian fold: the running CRC mixes into the first 8-byte
    // chunk; the second chunk's lookups are fully independent of it, so
    // the two halves overlap in the pipeline.
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, p, sizeof(a));
    std::memcpy(&b, p + 8, sizeof(b));
    a ^= crc;
    crc = tables[15][a & 0xffu] ^ tables[14][(a >> 8) & 0xffu] ^
          tables[13][(a >> 16) & 0xffu] ^ tables[12][(a >> 24) & 0xffu] ^
          tables[11][(a >> 32) & 0xffu] ^ tables[10][(a >> 40) & 0xffu] ^
          tables[9][(a >> 48) & 0xffu] ^ tables[8][a >> 56] ^
          tables[7][b & 0xffu] ^ tables[6][(b >> 8) & 0xffu] ^
          tables[5][(b >> 16) & 0xffu] ^ tables[4][(b >> 24) & 0xffu] ^
          tables[3][(b >> 32) & 0xffu] ^ tables[2][(b >> 40) & 0xffu] ^
          tables[1][(b >> 48) & 0xffu] ^ tables[0][b >> 56];
    p += 16;
    size -= 16;
  }
  for (std::size_t i = 0; i < size; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeFrame(MsgType type, std::uint64_t seq, std::string_view payload,
                 std::string* out) {
  // A frame the receiver is required to reject must never be produced;
  // batch senders chunk at kMaxOpsPerFrame, so hitting this is a bug.
  assert(payload.size() <= kMaxPayloadBytes);
  out->reserve(out->size() + kHeaderBytes + payload.size());
  PutU32(out, kMagic);
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(type));
  PutU16(out, 0);  // reserved
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  PutU64(out, seq);
  out->append(payload);
}

void FinalizeFrameHeader(MsgType type, std::uint64_t seq, std::string* frame) {
  assert(frame->size() >= kHeaderBytes);
  assert(frame->size() - kHeaderBytes <= kMaxPayloadBytes);
  char* h = frame->data();
  const char* payload = h + kHeaderBytes;
  const std::size_t payload_len = frame->size() - kHeaderBytes;
  io::StoreU32(h, kMagic);
  h[4] = static_cast<char>(kProtocolVersion);
  h[5] = static_cast<char>(type);
  io::StoreU16(h + 6, 0);  // reserved
  io::StoreU32(h + 8, static_cast<std::uint32_t>(payload_len));
  io::StoreU32(h + 12, Crc32(payload, payload_len));
  io::StoreU64(h + 16, seq);
}

bool FrameDecoder::Feed(const char* data, std::size_t size,
                        std::vector<Frame>* frames) {
  if (error_ != WireError::kNone) {
    return false;
  }
  // Drop the prefix the previous Feed consumed. Deferred to here (rather
  // than compacted before returning) because the payload views handed out
  // by that Feed pointed into it and stay valid until this call.
  if (buffer_pos_ > 0) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  if (buffer_.empty()) {
    // Fast path: no carried-over partial frame, so complete frames decode
    // straight out of the caller's buffer (payload views point into it);
    // only the trailing partial frame (if any) is copied into the carry
    // buffer.
    const std::size_t consumed = Parse(data, size, frames);
    if (error_ != WireError::kNone) {
      return false;
    }
    buffer_.append(data + consumed, size - consumed);
    return true;
  }
  buffer_.append(data, size);
  buffer_pos_ = Parse(buffer_.data(), buffer_.size(), frames);
  if (error_ != WireError::kNone) {
    buffer_.clear();
    buffer_pos_ = 0;
    return false;
  }
  return true;
}

std::size_t FrameDecoder::Parse(const char* data, std::size_t size,
                                std::vector<Frame>* frames) {
  std::size_t pos = 0;
  while (size - pos >= kHeaderBytes) {
    const char* h = data + pos;
    if (GetU32(h) != kMagic) {
      error_ = WireError::kBadMagic;
      break;
    }
    if (static_cast<std::uint8_t>(h[4]) != kProtocolVersion) {
      error_ = WireError::kBadVersion;
      break;
    }
    const auto raw_type = static_cast<std::uint8_t>(h[5]);
    if (raw_type < kMinMsgType || raw_type > kMaxMsgType) {
      error_ = WireError::kBadType;
      break;
    }
    if (GetU16(h + 6) != 0) {
      error_ = WireError::kBadReserved;
      break;
    }
    const std::uint32_t payload_len = GetU32(h + 8);
    if (payload_len > kMaxPayloadBytes) {
      // Reject before buffering toward the bogus length: a corrupt prefix
      // must not commit us to a multi-gigabyte read.
      error_ = WireError::kOversizedPayload;
      break;
    }
    if (size - pos < kHeaderBytes + payload_len) {
      break;  // partial frame; wait for more bytes
    }
    const char* payload = h + kHeaderBytes;
    if (Crc32(payload, payload_len) != GetU32(h + 12)) {
      error_ = WireError::kBadChecksum;
      break;
    }
    const std::uint64_t seq = GetU64(h + 16);
    if (seq != next_seq_) {
      error_ = WireError::kBadSequence;
      break;
    }
    ++next_seq_;
    Frame frame;
    frame.type = static_cast<MsgType>(raw_type);
    frame.seq = seq;
    frame.payload = std::string_view(payload, payload_len);
    frames->push_back(frame);
    pos += kHeaderBytes + payload_len;
  }
  return pos;
}

// --- typed messages ----------------------------------------------------------

std::string EncodeHello(const HelloMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.protocol_version);
  PutU32(&payload, msg.num_partitions);
  return payload;
}

bool DecodeHello(std::string_view payload, HelloMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->protocol_version) &&
         reader.U32(&msg->num_partitions) && reader.done();
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.protocol_version);
  PutU32(&payload, msg.num_partitions);
  return payload;
}

bool DecodeHelloAck(std::string_view payload, HelloAckMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->protocol_version) &&
         reader.U32(&msg->num_partitions) && reader.done();
}

std::string EncodeSubmitBatch(PartitionId partition, const OpRecord* ops,
                              std::size_t count) {
  assert(count <= kMaxOpsPerFrame);
  std::string payload;
  payload.resize(8 + count * kOpRecordWireBytes);
  char* p = payload.data();
  io::StoreU32(p, partition);
  io::StoreU32(p + 4, static_cast<std::uint32_t>(count));
  StoreOps(p + 8, ops, count);
  return payload;
}

std::string EncodeSubmitBatchFrame(PartitionId partition, const OpRecord* ops,
                                   std::size_t count) {
  assert(count <= kMaxOpsPerFrame);
  std::string frame;
  frame.resize(kHeaderBytes + 8 + count * kOpRecordWireBytes);
  char* p = frame.data() + kHeaderBytes;
  io::StoreU32(p, partition);
  io::StoreU32(p + 4, static_cast<std::uint32_t>(count));
  StoreOps(p + 8, ops, count);
  return frame;
}

bool DecodeSubmitBatch(std::string_view payload, SubmitBatchMsg* msg) {
  PayloadReader reader(payload);
  std::uint32_t count = 0;
  return reader.U32(&msg->partition) && reader.U32(&count) &&
         ReadOps(&reader, count, &msg->ops);
}

std::string EncodeHeartbeat(const HeartbeatMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.partition);
  PutU64(&payload, msg.ts);
  return payload;
}

bool DecodeHeartbeat(std::string_view payload, HeartbeatMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->partition) && reader.U64(&msg->ts) && reader.done();
}

std::string EncodeSubmitAck(const SubmitAckMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.ops_received);
  return payload;
}

bool DecodeSubmitAck(std::string_view payload, SubmitAckMsg* msg) {
  PayloadReader reader(payload);
  return reader.U64(&msg->ops_received) && reader.done();
}

std::string EncodeSubscribeAck(const SubscribeAckMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.next_stream_seq);
  return payload;
}

bool DecodeSubscribeAck(std::string_view payload, SubscribeAckMsg* msg) {
  PayloadReader reader(payload);
  return reader.U64(&msg->next_stream_seq) && reader.done();
}

std::string EncodeStableBatch(std::uint64_t stream_seq, const OpRecord* ops,
                              std::size_t count) {
  assert(count <= kMaxOpsPerFrame);
  std::string payload;
  payload.resize(12 + count * kOpRecordWireBytes);
  char* p = payload.data();
  io::StoreU64(p, stream_seq);
  io::StoreU32(p + 8, static_cast<std::uint32_t>(count));
  StoreOps(p + 12, ops, count);
  return payload;
}

std::string EncodeStableBatchFrame(std::uint64_t stream_seq,
                                   const OpRecord* ops, std::size_t count) {
  assert(count <= kMaxOpsPerFrame);
  std::string frame;
  frame.resize(kHeaderBytes + 12 + count * kOpRecordWireBytes);
  char* p = frame.data() + kHeaderBytes;
  io::StoreU64(p, stream_seq);
  io::StoreU32(p + 8, static_cast<std::uint32_t>(count));
  StoreOps(p + 12, ops, count);
  return frame;
}

bool DecodeStableBatch(std::string_view payload, StableBatchMsg* msg) {
  PayloadReader reader(payload);
  std::uint32_t count = 0;
  return reader.U64(&msg->stream_seq) && reader.U32(&count) &&
         ReadOps(&reader, count, &msg->ops);
}

}  // namespace eunomia::net::wire
