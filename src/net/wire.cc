#include "src/net/wire.h"

#include <array>
#include <cassert>
#include <cstring>

#include "src/net/wire_io.h"

namespace eunomia::net::wire {

namespace {

using io::GetU16;
using io::GetU32;
using io::GetU64;
using io::PayloadReader;
using io::PutU16;
using io::PutU32;
using io::PutU64;

// One serialized OpRecord: ts u64 | partition u32 | key u64 | tag u64
// (kOpRecordWireBytes).

void PutOpRecord(std::string* out, const OpRecord& op) {
  PutU64(out, op.ts);
  PutU32(out, op.partition);
  PutU64(out, op.key);
  PutU64(out, op.tag);
}

bool ReadOps(PayloadReader* reader, std::uint32_t count,
             std::vector<OpRecord>* ops) {
  if (reader->remaining() != static_cast<std::size_t>(count) * kOpRecordWireBytes) {
    return false;  // count must match the payload exactly — no trailing bytes
  }
  ops->clear();
  ops->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    OpRecord op;
    std::uint64_t ts = 0, key = 0, tag = 0;
    std::uint32_t partition = 0;
    if (!reader->U64(&ts) || !reader->U32(&partition) || !reader->U64(&key) ||
        !reader->U64(&tag)) {
      return false;
    }
    op.ts = ts;
    op.partition = partition;
    op.key = key;
    op.tag = tag;
    ops->push_back(op);
  }
  return true;
}

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kSubmitBatch: return "submit_batch";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kSubmitAck: return "submit_ack";
    case MsgType::kSubscribe: return "subscribe";
    case MsgType::kSubscribeAck: return "subscribe_ack";
    case MsgType::kStableBatch: return "stable_batch";
    case MsgType::kGeoHello: return "geo_hello";
    case MsgType::kGeoMetaBatch: return "geo_meta_batch";
    case MsgType::kGeoFrontier: return "geo_frontier";
    case MsgType::kGeoPayload: return "geo_payload";
    case MsgType::kGeoAck: return "geo_ack";
  }
  return "unknown";
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadType: return "bad_type";
    case WireError::kBadReserved: return "bad_reserved";
    case WireError::kOversizedPayload: return "oversized_payload";
    case WireError::kBadChecksum: return "bad_checksum";
    case WireError::kBadSequence: return "bad_sequence";
    case WireError::kTruncated: return "truncated";
    case WireError::kMalformedPayload: return "malformed_payload";
  }
  return "unknown";
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeFrame(MsgType type, std::uint64_t seq, std::string_view payload,
                 std::string* out) {
  // A frame the receiver is required to reject must never be produced;
  // batch senders chunk at kMaxOpsPerFrame, so hitting this is a bug.
  assert(payload.size() <= kMaxPayloadBytes);
  out->reserve(out->size() + kHeaderBytes + payload.size());
  PutU32(out, kMagic);
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(type));
  PutU16(out, 0);  // reserved
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  PutU64(out, seq);
  out->append(payload);
}

bool FrameDecoder::Feed(const char* data, std::size_t size,
                        std::vector<Frame>* frames) {
  if (error_ != WireError::kNone) {
    return false;
  }
  buffer_.append(data, size);
  std::size_t pos = 0;
  while (buffer_.size() - pos >= kHeaderBytes) {
    const char* h = buffer_.data() + pos;
    if (GetU32(h) != kMagic) {
      error_ = WireError::kBadMagic;
      break;
    }
    if (static_cast<std::uint8_t>(h[4]) != kProtocolVersion) {
      error_ = WireError::kBadVersion;
      break;
    }
    const auto raw_type = static_cast<std::uint8_t>(h[5]);
    if (raw_type < kMinMsgType || raw_type > kMaxMsgType) {
      error_ = WireError::kBadType;
      break;
    }
    if (GetU16(h + 6) != 0) {
      error_ = WireError::kBadReserved;
      break;
    }
    const std::uint32_t payload_len = GetU32(h + 8);
    if (payload_len > kMaxPayloadBytes) {
      // Reject before buffering toward the bogus length: a corrupt prefix
      // must not commit us to a multi-gigabyte read.
      error_ = WireError::kOversizedPayload;
      break;
    }
    if (buffer_.size() - pos < kHeaderBytes + payload_len) {
      break;  // partial frame; wait for more bytes
    }
    const char* payload = h + kHeaderBytes;
    if (Crc32(payload, payload_len) != GetU32(h + 12)) {
      error_ = WireError::kBadChecksum;
      break;
    }
    const std::uint64_t seq = GetU64(h + 16);
    if (seq != next_seq_) {
      error_ = WireError::kBadSequence;
      break;
    }
    ++next_seq_;
    Frame frame;
    frame.type = static_cast<MsgType>(raw_type);
    frame.seq = seq;
    frame.payload.assign(payload, payload_len);
    frames->push_back(std::move(frame));
    pos += kHeaderBytes + payload_len;
  }
  buffer_.erase(0, pos);
  if (error_ != WireError::kNone) {
    buffer_.clear();
    return false;
  }
  return true;
}

// --- typed messages ----------------------------------------------------------

std::string EncodeHello(const HelloMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.protocol_version);
  PutU32(&payload, msg.num_partitions);
  return payload;
}

bool DecodeHello(std::string_view payload, HelloMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->protocol_version) &&
         reader.U32(&msg->num_partitions) && reader.done();
}

std::string EncodeHelloAck(const HelloAckMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.protocol_version);
  PutU32(&payload, msg.num_partitions);
  return payload;
}

bool DecodeHelloAck(std::string_view payload, HelloAckMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->protocol_version) &&
         reader.U32(&msg->num_partitions) && reader.done();
}

std::string EncodeSubmitBatch(PartitionId partition, const OpRecord* ops,
                              std::size_t count) {
  assert(count <= kMaxOpsPerFrame);
  std::string payload;
  payload.reserve(8 + count * kOpRecordWireBytes);
  PutU32(&payload, partition);
  PutU32(&payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    PutOpRecord(&payload, ops[i]);
  }
  return payload;
}

bool DecodeSubmitBatch(std::string_view payload, SubmitBatchMsg* msg) {
  PayloadReader reader(payload);
  std::uint32_t count = 0;
  return reader.U32(&msg->partition) && reader.U32(&count) &&
         ReadOps(&reader, count, &msg->ops);
}

std::string EncodeHeartbeat(const HeartbeatMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.partition);
  PutU64(&payload, msg.ts);
  return payload;
}

bool DecodeHeartbeat(std::string_view payload, HeartbeatMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->partition) && reader.U64(&msg->ts) && reader.done();
}

std::string EncodeSubmitAck(const SubmitAckMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.ops_received);
  return payload;
}

bool DecodeSubmitAck(std::string_view payload, SubmitAckMsg* msg) {
  PayloadReader reader(payload);
  return reader.U64(&msg->ops_received) && reader.done();
}

std::string EncodeSubscribeAck(const SubscribeAckMsg& msg) {
  std::string payload;
  PutU64(&payload, msg.next_stream_seq);
  return payload;
}

bool DecodeSubscribeAck(std::string_view payload, SubscribeAckMsg* msg) {
  PayloadReader reader(payload);
  return reader.U64(&msg->next_stream_seq) && reader.done();
}

std::string EncodeStableBatch(std::uint64_t stream_seq, const OpRecord* ops,
                              std::size_t count) {
  assert(count <= kMaxOpsPerFrame);
  std::string payload;
  payload.reserve(12 + count * kOpRecordWireBytes);
  PutU64(&payload, stream_seq);
  PutU32(&payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    PutOpRecord(&payload, ops[i]);
  }
  return payload;
}

bool DecodeStableBatch(std::string_view payload, StableBatchMsg* msg) {
  PayloadReader reader(payload);
  std::uint32_t count = 0;
  return reader.U64(&msg->stream_seq) && reader.U32(&count) &&
         ReadOps(&reader, count, &msg->ops);
}

}  // namespace eunomia::net::wire
