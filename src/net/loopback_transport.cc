#include "src/net/loopback_transport.h"

namespace eunomia::net {

// One endpoint of an in-process connection pair. The peer's SendBytes lands
// encoded frames in inbox_; DeliveryLoop drains them through the shared
// session receiver. A close tears down both endpoints, like a socket.
class LoopbackTransport::Conn : public Connection,
                                public std::enable_shared_from_this<Conn> {
 public:
  void SetPeer(std::shared_ptr<Conn> peer) { peer_ = std::move(peer); }
  void SetHandler(ConnectionHandler handler) { handler_ = std::move(handler); }

  void StartDelivery() {
    delivery_ = std::thread([this] { DeliveryLoop(); });
  }

  void Close() override { CloseInternal(wire::WireError::kNone); }

  // Called by the transport only; a connection never joins itself.
  void JoinDelivery() {
    if (delivery_.joinable()) {
      delivery_.join();
    }
  }

 protected:
  bool SendBytes(std::string bytes) override {
    const std::shared_ptr<Conn> peer = peer_.lock();
    return peer != nullptr && peer->Enqueue(std::move(bytes));
  }

 private:
  bool Enqueue(std::string bytes) {
    sync::MutexLock lock(mu_);
    while (inbox_bytes_ >= kInboxCapacityBytes && !closing_) {
      space_cv_.Wait(mu_);
    }
    if (closing_) {
      return false;
    }
    inbox_bytes_ += bytes.size();
    inbox_.push_back(std::move(bytes));
    deliver_cv_.NotifyOne();
    return true;
  }

  void DeliveryLoop() {
    for (;;) {
      std::string bytes;
      {
        sync::MutexLock lock(mu_);
        while (inbox_.empty() && !closing_ && !eof_) {
          deliver_cv_.Wait(mu_);
        }
        if (closing_) {
          break;  // local hard close: drop whatever was still queued
        }
        if (inbox_.empty()) {
          break;  // eof_ and fully drained: the peer's FIN, after its data
        }
        // Peer-initiated close (eof_) still delivers what was already
        // enqueued — the FIN-after-data behavior of a socket, which the
        // clean "submit, heartbeat, close" client shutdown depends on.
        bytes = std::move(inbox_.front());
        inbox_.pop_front();
        inbox_bytes_ -= bytes.size();
        space_cv_.NotifyOne();
      }
      if (!receiver_.Deliver(*this, handler_, bytes.data(), bytes.size())) {
        CloseInternal(receiver_.error());
        break;
      }
    }
    if (handler_.on_close) {
      wire::WireError error;
      {
        sync::MutexLock lock(mu_);
        error = close_error_;
      }
      handler_.on_close(*this, error);
    }
    // No callback can follow on_close; release the handler's captures.
    // Handlers commonly close a cycle (a client session owns this
    // connection, the handler owns the session), and dropping them here is
    // what lets such pairs be reclaimed after teardown.
    handler_ = ConnectionHandler{};
  }

  void CloseInternal(wire::WireError error) {
    {
      sync::MutexLock lock(mu_);
      if (!closing_) {
        closing_ = true;
        close_error_ = error;
      }
    }
    closed_.store(true, std::memory_order_release);
    deliver_cv_.NotifyAll();
    space_cv_.NotifyAll();
    if (const std::shared_ptr<Conn> peer = peer_.lock()) {
      peer->OnPeerClosed();
    }
  }

  // The peer closed: no more input will arrive, but everything it already
  // sent stays deliverable. Sends from this side are pointless now.
  void OnPeerClosed() {
    {
      sync::MutexLock lock(mu_);
      eof_ = true;
    }
    closed_.store(true, std::memory_order_release);
    deliver_cv_.NotifyAll();
  }

  sync::Mutex mu_{"LoopbackTransport::Conn::mu_", sync::kRankConnQueue};
  sync::CondVar deliver_cv_;
  sync::CondVar space_cv_;
  std::deque<std::string> inbox_ GUARDED_BY(mu_);
  std::size_t inbox_bytes_ GUARDED_BY(mu_) = 0;
  bool closing_ GUARDED_BY(mu_) = false;
  bool eof_ GUARDED_BY(mu_) = false;
  wire::WireError close_error_ GUARDED_BY(mu_) = wire::WireError::kNone;

  std::weak_ptr<Conn> peer_;  // weak: the pair must not keep itself alive
  ConnectionHandler handler_;
  internal::FrameReceiver receiver_;
  std::thread delivery_;
};

LoopbackTransport::~LoopbackTransport() { Shutdown(); }

std::string LoopbackTransport::Listen(const std::string& address,
                                      AcceptHandler handler) {
  if (address.empty() || handler == nullptr) {
    return "";
  }
  sync::MutexLock lock(mu_);
  if (shutdown_ || listeners_.count(address) != 0) {
    return "";
  }
  listeners_[address] = std::move(handler);
  return address;
}

std::shared_ptr<Connection> LoopbackTransport::Dial(const std::string& address,
                                                    ConnectionHandler handler) {
  AcceptHandler accept;
  {
    sync::MutexLock lock(mu_);
    if (shutdown_) {
      return nullptr;
    }
    const auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return nullptr;
    }
    accept = it->second;
  }
  auto client = std::make_shared<Conn>();
  auto server = std::make_shared<Conn>();
  client->SetPeer(server);
  server->SetPeer(client);
  client->SetHandler(std::move(handler));
  // The accept callback runs outside mu_ — it may call back into the
  // transport — and before delivery starts, so no frame races the setup.
  server->SetHandler(accept(server));
  client->StartDelivery();
  server->StartDelivery();
  {
    sync::MutexLock lock(mu_);
    if (!shutdown_) {
      connections_.push_back(client);
      connections_.push_back(server);
      return client;
    }
  }
  // Lost the race with Shutdown: tear the fresh pair down ourselves.
  client->Close();
  client->JoinDelivery();
  server->JoinDelivery();
  return nullptr;
}

void LoopbackTransport::Shutdown() {
  std::vector<std::shared_ptr<Conn>> connections;
  {
    sync::MutexLock lock(mu_);
    shutdown_ = true;
    listeners_.clear();
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    connection->Close();
  }
  for (const auto& connection : connections) {
    connection->JoinDelivery();
  }
}

}  // namespace eunomia::net
