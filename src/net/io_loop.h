// IoLoop: the event-loop core of the epoll transport backend. One IoLoop is
// one thread running epoll_wait over many registered nonblocking fds plus a
// wakeup eventfd for cross-thread submission.
//
// Threading model (the glusterfs/libuv registry shape):
//   - Every FdHandler callback runs on the loop thread. A handler owns its
//     per-fd state without locks as long as only the loop thread touches it.
//   - Other threads communicate with the loop exclusively through Post(),
//     which enqueues a task and (if needed) writes the wakeup eventfd. Tasks
//     run on the loop thread after the current readiness dispatch, in FIFO
//     order per queue.
//   - epoll interest changes (Add/Modify/Remove) are loop-thread-only; call
//     them from a handler or a posted task. Remove() additionally suppresses
//     any not-yet-dispatched events for that handler in the current batch,
//     so a handler that tears another one down mid-iteration cannot leave a
//     dangling dispatch behind.
//
// Post() from the loop thread itself skips the eventfd write: the loop
// always drains the task queue after dispatching readiness, so tasks posted
// during dispatch (e.g. "flush this connection's outbox") run in the same
// iteration — this is what lets every ack generated in one wakeup coalesce
// into one writev.
//
// The task queue mutex ranks at kRankIoLoop (820): senders may post a flush
// kick while holding a connection outbox lock (kRankConnQueue, 810).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/sync.h"

namespace eunomia::net {

class IoLoop {
 public:
  // Callbacks for one registered fd; all invocations are on the loop thread.
  class FdHandler {
   public:
    virtual ~FdHandler() = default;
    // `events` is the epoll readiness bitmask (EPOLLIN | EPOLLOUT | ...).
    virtual void OnEvents(std::uint32_t events) = 0;
  };

  // Starts the loop thread. `name` must outlive the loop (string literal).
  explicit IoLoop(const char* name);
  ~IoLoop();

  IoLoop(const IoLoop&) = delete;
  IoLoop& operator=(const IoLoop&) = delete;

  // Enqueues `fn` to run on the loop thread; wakes the loop if it is (or may
  // be) blocked in epoll_wait. Safe from any thread, including the loop
  // thread itself and callers holding a kRankConnQueue lock.
  void Post(std::function<void()> fn) EXCLUDES(task_mu_);

  // The IoLoop whose thread is executing, or nullptr off all loop threads.
  static IoLoop* Current();
  bool OnLoopThread() const { return Current() == this; }

  // epoll registration. Loop-thread-only. `handler` must stay valid until
  // Remove() returns (the transport pins handlers via its connection
  // registry).
  bool Add(int fd, FdHandler* handler, std::uint32_t events);
  bool Modify(int fd, FdHandler* handler, std::uint32_t events);
  void Remove(int fd, FdHandler* handler);

  // Shared per-loop receive scratch buffer (loop-thread-only): every
  // connection on this loop decodes out of the same pooled block instead of
  // carrying kReadChunkBytes of its own.
  std::vector<char>& scratch() { return scratch_; }

  // Stops the loop and joins the thread. Tasks already posted (and tasks
  // they post while draining) still run; afterwards no callback runs again.
  // Must not be called from the loop thread.
  void Stop() EXCLUDES(task_mu_);

 private:
  void Run();
  void Wake();

  const char* const name_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  sync::Mutex task_mu_{"IoLoop::task_mu_", sync::kRankIoLoop};
  std::deque<std::function<void()>> tasks_ GUARDED_BY(task_mu_);
  bool stop_ GUARDED_BY(task_mu_) = false;

  // Loop-thread-only: handlers removed during the current dispatch batch.
  std::vector<FdHandler*> removed_this_round_;
  std::vector<char> scratch_;

  std::thread thread_;
};

}  // namespace eunomia::net
