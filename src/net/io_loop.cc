#include "src/net/io_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/net/net_metrics.h"

namespace eunomia::net {

namespace {

constexpr int kMaxEventsPerWait = 64;
constexpr std::size_t kScratchBytes = 256u << 10;

thread_local IoLoop* current_loop = nullptr;

}  // namespace

IoLoop* IoLoop::Current() { return current_loop; }

IoLoop::IoLoop(const char* name) : name_(name) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    std::fprintf(stderr, "IoLoop(%s): epoll_create1/eventfd failed: %s\n",
                 name_, std::strerror(errno));
    std::abort();
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: drained every wakeup
  ev.data.ptr = nullptr;  // nullptr marks the wakeup fd in dispatch
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    std::fprintf(stderr, "IoLoop(%s): epoll_ctl(wake_fd) failed: %s\n", name_,
                 std::strerror(errno));
    std::abort();
  }
  scratch_.resize(kScratchBytes);
  thread_ = std::thread([this] { Run(); });
}

IoLoop::~IoLoop() {
  Stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void IoLoop::Post(std::function<void()> fn) {
  bool need_wake;
  {
    sync::MutexLock lock(task_mu_);
    need_wake = tasks_.empty();
    tasks_.push_back(std::move(fn));
  }
  // The loop drains the queue after every dispatch, so a task posted from
  // the loop thread is picked up in the current iteration without a wake.
  if (need_wake && Current() != this) {
    Wake();
  }
}

void IoLoop::Wake() {
  const std::uint64_t one = 1;
  for (;;) {
    if (::write(wake_fd_, &one, sizeof(one)) >= 0 || errno != EINTR) {
      return;  // EAGAIN means the counter is already nonzero: loop will wake
    }
  }
}

bool IoLoop::Add(int fd, FdHandler* handler, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool IoLoop::Modify(int fd, FdHandler* handler, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void IoLoop::Remove(int fd, FdHandler* handler) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Events for this handler may already sit in the batch being dispatched;
  // mark it so the remainder of the batch skips them.
  removed_this_round_.push_back(handler);
}

void IoLoop::Stop() {
  {
    sync::MutexLock lock(task_mu_);
    if (stop_) {
      lock.Unlock();
      if (thread_.joinable()) {
        thread_.join();
      }
      return;
    }
    stop_ = true;
  }
  Wake();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void IoLoop::Run() {
  current_loop = this;
  NetMetrics& metrics = NetMetrics::Get();
  std::array<epoll_event, kMaxEventsPerWait> events;
  std::deque<std::function<void()>> tasks;
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), kMaxEventsPerWait, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "IoLoop(%s): epoll_wait failed: %s\n", name_,
                   std::strerror(errno));
      std::abort();
    }
    metrics.epoll_wakeups->Increment();
    const auto busy_start = std::chrono::steady_clock::now();
    removed_this_round_.clear();
    for (int i = 0; i < n; ++i) {
      auto* handler = static_cast<FdHandler*>(events[i].data.ptr);
      if (handler == nullptr) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (std::find(removed_this_round_.begin(), removed_this_round_.end(),
                    handler) != removed_this_round_.end()) {
        continue;
      }
      handler->OnEvents(events[i].events);
    }
    bool stop;
    {
      sync::MutexLock lock(task_mu_);
      tasks.swap(tasks_);
      stop = stop_;
    }
    for (auto& task : tasks) {
      task();
    }
    tasks.clear();
    metrics.io_loop_iteration_us->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - busy_start)
            .count()));
    if (stop) {
      // Drain tasks posted by the tasks above (teardown chains) before the
      // thread exits; afterwards nothing runs on this loop again.
      for (;;) {
        {
          sync::MutexLock lock(task_mu_);
          tasks.swap(tasks_);
        }
        if (tasks.empty()) {
          break;
        }
        for (auto& task : tasks) {
          task();
        }
        tasks.clear();
      }
      break;
    }
  }
  current_loop = nullptr;
}

}  // namespace eunomia::net
