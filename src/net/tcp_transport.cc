#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "src/common/sync.h"
#include "src/net/net_metrics.h"

namespace eunomia::net {

namespace {

constexpr std::size_t kReadChunkBytes = 256u << 10;

// Parses "ipv4:port" into a sockaddr. Returns false on any malformed input.
bool ParseAddress(const std::string& address, sockaddr_in* out,
                  std::string* host) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return false;
  }
  *host = address.substr(0, colon);
  char* end = nullptr;
  const unsigned long port = std::strtoul(address.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port > 65535) {
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(port));
  return inet_pton(AF_INET, host->c_str(), &out->sin_addr) == 1;
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

class TcpTransport::Conn : public Connection,
                           public std::enable_shared_from_this<Conn> {
 public:
  explicit Conn(int fd) : fd_(fd) {}

  void SetHandler(ConnectionHandler handler) { handler_ = std::move(handler); }

  void Start() {
    live_threads_.store(2, std::memory_order_release);
    reader_ = std::thread([this] {
      ReaderLoop();
      live_threads_.fetch_sub(1, std::memory_order_release);
    });
    writer_ = std::thread([this] {
      WriterLoop();
      live_threads_.fetch_sub(1, std::memory_order_release);
    });
    // Published only after both std::thread members are assigned: the
    // loops can run to completion (instantly-closed peer) before Start
    // returns, and a concurrent reaper keying on live_threads_ alone
    // would then join the members mid-assignment.
    started_.store(true, std::memory_order_release);
  }

  // True once Start has returned and both threads have finished their
  // loops: JoinAndRelease will return immediately. Lets the transport reap
  // dead connections without blocking on live ones.
  bool finished() const {
    return started_.load(std::memory_order_acquire) &&
           live_threads_.load(std::memory_order_acquire) == 0;
  }

  void Close() override { CloseInternal(wire::WireError::kNone, false); }

  // Transport Shutdown uses this: a graceful close can block on a peer that
  // stopped reading, a teardown must not.
  void CloseHard() { CloseInternal(wire::WireError::kNone, true); }

  // Called by the transport only; the reader/writer never join themselves.
  void JoinAndRelease() {
    if (reader_.joinable()) {
      reader_.join();
    }
    if (writer_.joinable()) {
      writer_.join();
    }
    ::close(fd_);
  }

 protected:
  bool SendBytes(std::string bytes) override {
    sync::MutexLock lock(out_mu_);
    if (outbox_bytes_ >= kOutboxCapacityBytes && !closing_) {
      // One stall episode, however many waits it takes to drain.
      NetMetrics::Get().outbox_stalls->Increment();
    }
    while (outbox_bytes_ >= kOutboxCapacityBytes && !closing_) {
      space_cv_.Wait(out_mu_);
    }
    if (closing_) {
      return false;
    }
    outbox_bytes_ += bytes.size();
    outbox_.push_back(std::move(bytes));
    out_cv_.NotifyOne();
    return true;
  }

 private:
  // hard = true tears the socket down immediately (protocol error, write
  // failure, transport shutdown); hard = false is the graceful path: frames
  // already accepted into the outbox are flushed and the writer sends the
  // FIN (SHUT_WR) once drained, so "submit, heartbeat, Close" loses
  // nothing. Reads stop immediately either way.
  void CloseInternal(wire::WireError error, bool hard) {
    {
      sync::MutexLock lock(out_mu_);
      if (!closing_) {
        closing_ = true;
        close_error_ = error;
      }
    }
    closed_.store(true, std::memory_order_release);
    // The fd itself stays open until JoinAndRelease so the threads race
    // nothing; shutdown() just unblocks them.
    ::shutdown(fd_, hard ? SHUT_RDWR : SHUT_RD);
    out_cv_.NotifyAll();
    space_cv_.NotifyAll();
  }

  void ReaderLoop() {
    std::vector<char> buffer(kReadChunkBytes);
    wire::WireError error = wire::WireError::kNone;
    for (;;) {
      const ssize_t n = ::read(fd_, buffer.data(), buffer.size());
      if (n > 0) {
        if (!receiver_.Deliver(*this, handler_, buffer.data(),
                               static_cast<std::size_t>(n))) {
          error = receiver_.error();
          CloseInternal(error, true);  // framing violation: tear down now
          break;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // n == 0 with no partial frame is the peer's clean FIN. Everything
      // else — EOF mid-frame, ECONNRESET, any hard read error — is a torn
      // stream and must not masquerade as a graceful close (unless we
      // initiated the teardown ourselves).
      if (!closed() && (n < 0 || receiver_.mid_frame())) {
        error = wire::WireError::kTruncated;
      }
      break;
    }
    CloseInternal(error, false);
    if (handler_.on_close) {
      wire::WireError reported;
      {
        sync::MutexLock lock(out_mu_);
        reported = close_error_;
      }
      handler_.on_close(*this, reported);
    }
    // No callback can follow on_close; release the handler's captures.
    // Handlers commonly close a cycle (a client session owns this
    // connection, the handler owns the session), and dropping them here is
    // what lets such pairs be reclaimed after teardown.
    handler_ = ConnectionHandler{};
  }

  void WriterLoop() {
    std::deque<std::string> local;
    for (;;) {
      {
        sync::MutexLock lock(out_mu_);
        while (outbox_.empty() && !closing_) {
          out_cv_.Wait(out_mu_);
        }
        if (outbox_.empty()) {
          break;  // closing and fully drained: time for the FIN
        }
        local.swap(outbox_);
        outbox_bytes_ = 0;
        space_cv_.NotifyAll();
      }
      for (const std::string& bytes : local) {
        if (!WriteFully(bytes)) {
          CloseInternal(wire::WireError::kNone, true);
          return;
        }
      }
      local.clear();
    }
    // Graceful drain complete (or hard close, where this is a no-op on an
    // already-RDWR-shutdown socket): send the FIN.
    ::shutdown(fd_, SHUT_WR);
  }

  bool WriteFully(const std::string& bytes) {
    std::size_t written = 0;
    while (written < bytes.size()) {
      // MSG_NOSIGNAL: a peer reset must surface as EPIPE, not kill the
      // process with SIGPIPE.
      const ssize_t n = ::send(fd_, bytes.data() + written,
                               bytes.size() - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    return true;
  }

  const int fd_;
  ConnectionHandler handler_;
  internal::FrameReceiver receiver_;
  std::atomic<int> live_threads_{-1};
  std::atomic<bool> started_{false};

  sync::Mutex out_mu_{"TcpTransport::Conn::out_mu_", sync::kRankConnQueue};
  sync::CondVar out_cv_;
  sync::CondVar space_cv_;
  std::deque<std::string> outbox_ GUARDED_BY(out_mu_);
  std::size_t outbox_bytes_ GUARDED_BY(out_mu_) = 0;
  bool closing_ GUARDED_BY(out_mu_) = false;
  wire::WireError close_error_ GUARDED_BY(out_mu_) = wire::WireError::kNone;

  std::thread reader_;
  std::thread writer_;
};

TcpTransport::~TcpTransport() { Shutdown(); }

std::string TcpTransport::Listen(const std::string& address,
                                 AcceptHandler handler) {
  sockaddr_in addr;
  std::string host;
  if (handler == nullptr || !ParseAddress(address, &addr, &host)) {
    return "";
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    return "";
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return "";
  }
  {
    sync::MutexLock lock(mu_);
    if (shutdown_ || listen_fd_ >= 0) {
      ::close(fd);
      return "";
    }
    listen_fd_ = fd;
    listen_host_ = host;
    accept_handler_ = std::move(handler);
    EnsureReaperLocked();
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return host + ":" + std::to_string(ntohs(bound.sin_port));
}

void TcpTransport::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // A transient failure must not kill the listener: ECONNABORTED is a
      // client aborting its handshake while queued, and fd/buffer
      // exhaustion recovers once connections are reaped — back off briefly
      // and keep accepting. Anything else (EBADF/EINVAL after Shutdown's
      // ::shutdown of the listener) ends the loop.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        {
          sync::MutexLock lock(mu_);
          if (shutdown_) {
            return;
          }
        }
        ReapFinishedConnections();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener shut down (or unrecoverable error): stop accepting
    }
    ReapFinishedConnections();
    SetNoDelay(fd);
    auto connection = std::make_shared<Conn>(fd);
    connection->SetHandler(accept_handler_(connection));
    {
      sync::MutexLock lock(mu_);
      if (shutdown_) {
        ::close(fd);
        return;
      }
      connections_.push_back(connection);
    }
    NetMetrics::Get().tcp_accepts->Increment();
    connection->Start();
  }
}

// Starts the periodic idle reaper the first time the transport has
// anything to reap for. Runs until Shutdown; bounds how long finished
// connections linger when the accept/dial path goes quiet.
void TcpTransport::EnsureReaperLocked() {
  if (reaper_started_ || shutdown_) {
    return;
  }
  reaper_started_ = true;
  reaper_thread_ = std::thread([this] { ReaperLoop(); });
}

void TcpTransport::ReaperLoop() {
  for (;;) {
    {
      sync::MutexLock lock(mu_);
      while (!shutdown_) {
        if (reaper_cv_.WaitFor(mu_, idle_reap_period_) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (shutdown_) {
        return;
      }
    }
    ReapFinishedConnections();
  }
}

std::size_t TcpTransport::tracked_connections() {
  sync::MutexLock lock(mu_);
  return connections_.size();
}

// Joins and releases connections whose reader and writer have both already
// exited (closed peers). Called opportunistically from AcceptLoop and Dial
// plus periodically from ReaperLoop, so on a churny workload dead
// connections do not accumulate fds/threads until Shutdown; the joins are
// instant because the threads are done.
void TcpTransport::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Conn>> finished;
  {
    sync::MutexLock lock(mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->finished()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& connection : finished) {
    connection->JoinAndRelease();
  }
}

std::shared_ptr<Connection> TcpTransport::Dial(const std::string& address,
                                               ConnectionHandler handler) {
  ReapFinishedConnections();
  sockaddr_in addr;
  std::string host;
  if (!ParseAddress(address, &addr, &host)) {
    return nullptr;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  SetNoDelay(fd);
  auto connection = std::make_shared<Conn>(fd);
  connection->SetHandler(std::move(handler));
  {
    sync::MutexLock lock(mu_);
    if (shutdown_) {
      ::close(fd);
      return nullptr;
    }
    connections_.push_back(connection);
    EnsureReaperLocked();
  }
  NetMetrics::Get().tcp_dials->Increment();
  connection->Start();
  return connection;
}

void TcpTransport::Shutdown() {
  int listen_fd = -1;
  {
    sync::MutexLock lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    listen_fd = listen_fd_;
  }
  reaper_cv_.NotifyAll();
  if (reaper_thread_.joinable()) {
    reaper_thread_.join();
  }
  if (listen_fd >= 0) {
    // shutdown() (not close()) unblocks the accept thread without freeing
    // the descriptor under it.
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd >= 0) {
    ::close(listen_fd);
  }
  std::vector<std::shared_ptr<Conn>> connections;
  {
    sync::MutexLock lock(mu_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    connection->CloseHard();
  }
  for (const auto& connection : connections) {
    connection->JoinAndRelease();
  }
}

}  // namespace eunomia::net
