// EpollTransport: the async event-loop TCP backend (the default; the
// thread-pair-per-connection TcpTransport remains as --io=threaded).
//
// A small pool of IoLoop threads owns every socket: the listener accepts on
// loop 0, accepted/dialed connections are assigned round-robin, and all of a
// connection's I/O and callbacks happen on its owning loop thread. Reads are
// edge-triggered and drained to EAGAIN into the loop's pooled scratch
// buffer, with complete frames decoded in place (FrameDecoder's fast path).
// Writes go through a bounded per-connection outbox that the loop drains
// with one sendmsg/writev of up to kMaxIovPerWritev coalesced frames per
// syscall; EPOLLOUT is armed only while the kernel buffer is full.
//
// Backpressure: SendFrame blocks while the outbox is at capacity — except
// on io-loop threads, which must never block on an outbox they drain.
// Instead the connection stops reading (drops EPOLLIN) while its outbox is
// over capacity, so a peer that stops reading our acks eventually stops
// getting its frames processed: boundedness via TCP's own window instead of
// a blocked loop.
//
// Same session contract as every backend: FIFO frames, on_frame/on_close
// from one thread (the owning loop), on_close exactly once, handler dropped
// after on_close.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.h"
#include "src/net/io_loop.h"
#include "src/net/transport.h"

namespace eunomia::net {

class EpollTransport : public Transport {
 public:
  struct Options {
    // I/O threads in the pool. 0 = auto: scaled to the machine, at least 1.
    unsigned num_io_threads = 0;
  };

  EpollTransport() : EpollTransport(Options{}) {}
  explicit EpollTransport(Options options);
  ~EpollTransport() override;

  std::string Listen(const std::string& address, AcceptHandler handler) override;
  std::shared_ptr<Connection> Dial(const std::string& address,
                                   ConnectionHandler handler) override;
  void Shutdown() override;

  static constexpr std::size_t kOutboxCapacityBytes = 8u << 20;
  static constexpr int kMaxIovPerWritev = 64;

 private:
  class Conn;
  class Listener;

  IoLoop& NextLoop();
  // Accept-path completion: wraps the fd, installs the handler, registers
  // the conn on its loop. Runs on loop 0 (the listener's dispatch).
  void HandleAccepted(int fd, const AcceptHandler& handler);
  // Joins nothing (loop threads are shared): drops finished connections
  // from the registry so their fds/buffers free up before Shutdown.
  void ReapFinished();
  // Runs `fn` on `loop` and blocks until it completed.
  static void PostAndWait(IoLoop& loop, std::function<void()> fn);

  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::atomic<unsigned> next_loop_{0};

  sync::Mutex mu_{"EpollTransport::mu_", sync::kRankTransport};
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::unique_ptr<Listener> listener_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<Conn>> connections_ GUARDED_BY(mu_);
};

// --- backend selection (the --io flag) ---------------------------------------

enum class TcpBackend {
  kEpoll,     // event-loop pool (default)
  kThreaded,  // reader+writer thread pair per connection
};

// Parses an --io flag value ("epoll" | "threaded"). Returns false on
// anything else.
bool ParseTcpBackend(const std::string& name, TcpBackend* out);
const char* TcpBackendName(TcpBackend backend);
std::unique_ptr<Transport> MakeTcpTransport(TcpBackend backend);

}  // namespace eunomia::net
