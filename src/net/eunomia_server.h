// net::EunomiaServer — hosts an EunomiaService (or FtEunomiaService) behind
// a Transport: the piece that turns the in-process stabilizer into a real
// networked service (§6–§7: load generators connect to Eunomia over FIFO
// links; here the link is a transport connection).
//
// Protocol per connection (all frames defined in src/net/wire.h):
//
//   client                         server
//   ------------------------------------------------------------------
//   Hello{version, partitions} ->
//                               <- HelloAck{version, service partitions}
//   SubmitBatch{p, ops}        ->
//                               <- SubmitAck{cumulative ops received}
//   Heartbeat{p, ts}           ->
//   Subscribe                  ->
//                               <- SubscribeAck{next stream seq}
//                               <- StableBatch{seq, ops}   (repeating)
//
// Any protocol violation — a frame before Hello, a version mismatch, an
// out-of-range partition, a malformed payload — closes the connection.
// The per-channel FIFO contract (§3.1) maps onto the session layer: one
// partition's batches must all travel over one connection, which both
// transports deliver in order (and the wire sequence verifies).
//
// The stable stream is fanned out via the service's AddStableListener hook:
// one listener, installed at Start, multiplexes every subscribed connection.
// Stream frames carry a dense per-server sequence so a subscriber can prove
// it observed the exact emission order.
//
// Lifecycle: the server owns its service but not the transport. Stop()
// shuts the transport down (joining every connection thread) before
// stopping the service, so a disconnecting client can never race service
// teardown — and the hardened Stop drops any submission that slips past.
// The transport is therefore dedicated to this server once Start is called.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/sync.h"
#include "src/eunomia/service.h"
#include "src/metrics/histogram.h"
#include "src/net/transport.h"
#include "src/ordbuf/ordered_buffer.h"

namespace eunomia::net {

class EunomiaServer {
 public:
  struct Options {
    // Service shape, mirrored into EunomiaService::Options or
    // FtEunomiaService::Options depending on fault_tolerant.
    bool fault_tolerant = false;
    std::uint32_t num_partitions = 1;
    std::uint32_t num_shards = 1;    // non-FT stabilizer workers
    std::uint32_t num_replicas = 3;  // FT replica count
    std::uint64_t stable_period_us = 500;
    ordbuf::Backend buffer_backend = ordbuf::Backend::kPartitionRun;
    // Optional local consumer of the stable stream, independent of network
    // subscribers (eunomiad uses it for --log-stable).
    StableSink sink;
    // Ops per StableBatch frame; bigger emissions are split into several
    // frames with consecutive stream sequence numbers. Clamped to the
    // wire-format cap; only tests normally lower it.
    std::uint32_t max_ops_per_stable_frame = wire::kMaxOpsPerFrame;
    // Durability passthrough (non-FT only; the FT service's durability story
    // is replication). With durability.disk set, the hosted service recovers
    // from it at construction and logs every accepted batch before acking.
    ServiceDurability durability;
    // Observability: forwarded to the hosted service (per-shard/partition
    // series) and used by the server itself for the server-side ack latency
    // histogram (submit-frame decode to ack send). Null: off.
    metrics::Registry* metrics = nullptr;
  };

  EunomiaServer(Transport* transport, Options options);
  ~EunomiaServer();

  EunomiaServer(const EunomiaServer&) = delete;
  EunomiaServer& operator=(const EunomiaServer&) = delete;

  // Starts the service and begins listening on `address` (transport
  // syntax; "127.0.0.1:0" binds an ephemeral TCP port). Returns the bound
  // address, or "" on failure.
  std::string Start(const std::string& address);

  // Shuts the transport down, then the service. Idempotent.
  void Stop();

  std::uint64_t ops_stabilized() const;
  std::uint64_t ops_submitted_remote() const {
    return ops_submitted_remote_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  const std::string& address() const { return address_; }

 private:
  struct Peer {
    std::shared_ptr<Connection> connection;
    bool hello_done = false;
    bool subscribed = false;
    std::uint64_t ops_received = 0;
  };

  ConnectionHandler MakeHandler(const std::shared_ptr<Connection>& connection);
  void OnFrame(Connection& connection, wire::Frame&& frame);
  void OnStable(const std::vector<OpRecord>& ops);
  // Drops the peer and closes its connection (protocol violation).
  void Reject(Connection& connection);

  void SubmitToService(PartitionId partition, std::vector<OpRecord> batch);
  // An empty batch vector recycled from the service's shard pipeline (or a
  // fresh one for services without a pool); submit decoding resizes it
  // without allocating, closing the acquire → submit → drain → recycle loop
  // for remote producers too.
  std::vector<OpRecord> AcquireBatchBuffer();
  void HeartbeatToService(PartitionId partition, Timestamp ts);

  Transport* const transport_;
  const Options options_;
  std::unique_ptr<EunomiaService> service_;
  std::unique_ptr<FtEunomiaService> ft_service_;
  // Submit-to-ack service time; null when Options::metrics is unset.
  std::shared_ptr<metrics::Histogram> ack_latency_us_;

  // Guards peers_ and stream_seq_. Emission snapshots subscribers under the
  // lock and sends outside it, so a slow subscriber blocks only the merge
  // thread, never unrelated connections' frame handling.
  sync::Mutex mu_{"net::EunomiaServer::mu_", sync::kRankServerPeers};
  std::unordered_map<std::uint64_t, Peer> peers_ GUARDED_BY(mu_);
  std::uint64_t stream_seq_ GUARDED_BY(mu_) = 0;

  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> ops_submitted_remote_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::string address_;
};

}  // namespace eunomia::net
