#include "src/net/eunomia_server.h"

#include <algorithm>
#include <chrono>

#include "src/metrics/registry.h"

namespace eunomia::net {

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EunomiaServer::EunomiaServer(Transport* transport, Options options)
    : transport_(transport), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    ack_latency_us_ = options_.metrics->AddHistogram(
        "eunomia_server_ack_latency_microseconds",
        "Server-side submit service time: SubmitBatch frame decoded to "
        "SubmitAck handed to the transport, in microseconds");
  }
  if (options_.fault_tolerant) {
    FtEunomiaService::Options service_options;
    service_options.num_partitions = options_.num_partitions;
    service_options.num_replicas = options_.num_replicas;
    service_options.stable_period_us = options_.stable_period_us;
    service_options.buffer_backend = options_.buffer_backend;
    service_options.sink = options_.sink;
    ft_service_ = std::make_unique<FtEunomiaService>(std::move(service_options));
    ft_service_->AddStableListener(
        [this](const std::vector<OpRecord>& ops) { OnStable(ops); });
  } else {
    EunomiaService::Options service_options;
    service_options.num_partitions = options_.num_partitions;
    service_options.num_shards = options_.num_shards;
    service_options.stable_period_us = options_.stable_period_us;
    service_options.buffer_backend = options_.buffer_backend;
    service_options.sink = options_.sink;
    service_options.durability = options_.durability;
    service_options.metrics = options_.metrics;
    service_ = std::make_unique<EunomiaService>(std::move(service_options));
    service_->AddStableListener(
        [this](const std::vector<OpRecord>& ops) { OnStable(ops); });
  }
}

EunomiaServer::~EunomiaServer() { Stop(); }

std::string EunomiaServer::Start(const std::string& address) {
  if (started_.exchange(true)) {
    return address_;
  }
  if (service_ != nullptr) {
    service_->Start();
  } else {
    ft_service_->Start();
  }
  address_ = transport_->Listen(
      address, [this](const std::shared_ptr<Connection>& connection) {
        return MakeHandler(connection);
      });
  if (address_.empty()) {
    if (service_ != nullptr) {
      service_->Stop();
    } else {
      ft_service_->Stop();
    }
    started_.store(false);
  }
  return address_;
}

void EunomiaServer::Stop() {
  if (!started_.exchange(false)) {
    return;
  }
  // Transport first: after Shutdown no frame handler is running, so no
  // submission can race the service teardown below. (A handler that already
  // passed the running() check hits the service's own hardened Stop path.)
  transport_->Shutdown();
  if (service_ != nullptr) {
    service_->Stop();
  } else {
    ft_service_->Stop();
  }
  sync::MutexLock lock(mu_);
  peers_.clear();
}

std::uint64_t EunomiaServer::ops_stabilized() const {
  return service_ != nullptr ? service_->ops_stabilized()
                             : ft_service_->ops_stabilized();
}

ConnectionHandler EunomiaServer::MakeHandler(
    const std::shared_ptr<Connection>& connection) {
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  {
    sync::MutexLock lock(mu_);
    peers_[connection->id()].connection = connection;
  }
  ConnectionHandler handler;
  handler.on_frame = [this](Connection& c, wire::Frame&& frame) {
    OnFrame(c, std::move(frame));
  };
  handler.on_close = [this](Connection& c, wire::WireError) {
    sync::MutexLock lock(mu_);
    peers_.erase(c.id());
  };
  return handler;
}

void EunomiaServer::Reject(Connection& connection) {
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
  {
    sync::MutexLock lock(mu_);
    peers_.erase(connection.id());
  }
  connection.Close();
}

void EunomiaServer::SubmitToService(PartitionId partition,
                                    std::vector<OpRecord> batch) {
  if (service_ != nullptr) {
    service_->SubmitBatch(partition, std::move(batch));
  } else {
    ft_service_->SubmitBatch(partition, std::move(batch));
  }
}

std::vector<OpRecord> EunomiaServer::AcquireBatchBuffer() {
  return service_ != nullptr ? service_->AcquireBatchBuffer()
                             : std::vector<OpRecord>{};
}

void EunomiaServer::HeartbeatToService(PartitionId partition, Timestamp ts) {
  if (service_ != nullptr) {
    service_->Heartbeat(partition, ts);
  } else {
    ft_service_->Heartbeat(partition, ts);
  }
}

void EunomiaServer::OnFrame(Connection& connection, wire::Frame&& frame) {
  // Runs on the connection's transport thread; per-connection state needs
  // mu_ only because the stable fanout reads it from the merge thread.
  switch (frame.type) {
    case wire::MsgType::kHello: {
      wire::HelloMsg hello;
      if (!wire::DecodeHello(frame.payload, &hello) ||
          hello.protocol_version != wire::kProtocolVersion) {
        Reject(connection);
        return;
      }
      bool accepted = false;
      {
        sync::MutexLock lock(mu_);
        const auto it = peers_.find(connection.id());
        // A double Hello is a protocol violation.
        if (it != peers_.end() && !it->second.hello_done) {
          it->second.hello_done = true;
          accepted = true;
        }
      }
      if (!accepted) {
        Reject(connection);
        return;
      }
      wire::HelloAckMsg ack;
      ack.num_partitions = options_.num_partitions;
      connection.SendFrame(wire::MsgType::kHelloAck,
                           wire::EncodeHelloAck(ack));
      return;
    }
    case wire::MsgType::kSubmitBatch: {
      const std::uint64_t received_at =
          ack_latency_us_ != nullptr ? NowMicros() : 0;
      wire::SubmitBatchMsg msg;
      msg.ops = AcquireBatchBuffer();
      if (!wire::DecodeSubmitBatch(frame.payload, &msg) ||
          msg.partition >= options_.num_partitions) {
        Reject(connection);
        return;
      }
      std::uint64_t cumulative = 0;
      bool accepted = false;
      {
        sync::MutexLock lock(mu_);
        const auto it = peers_.find(connection.id());
        if (it != peers_.end() && it->second.hello_done) {
          it->second.ops_received += msg.ops.size();
          cumulative = it->second.ops_received;
          accepted = true;
        }
      }
      if (!accepted) {
        Reject(connection);
        return;
      }
      ops_submitted_remote_.fetch_add(msg.ops.size(),
                                      std::memory_order_relaxed);
      SubmitToService(msg.partition, std::move(msg.ops));
      // The ack is sent after the service accepted the batch: cumulative
      // acked ops are exactly the client's safe-to-release window.
      wire::SubmitAckMsg ack;
      ack.ops_received = cumulative;
      connection.SendFrame(wire::MsgType::kSubmitAck,
                           wire::EncodeSubmitAck(ack));
      if (ack_latency_us_ != nullptr) {
        ack_latency_us_->Record(NowMicros() - received_at);
      }
      return;
    }
    case wire::MsgType::kHeartbeat: {
      wire::HeartbeatMsg msg;
      if (!wire::DecodeHeartbeat(frame.payload, &msg) ||
          msg.partition >= options_.num_partitions) {
        Reject(connection);
        return;
      }
      bool hello_done = false;
      {
        sync::MutexLock lock(mu_);
        const auto it = peers_.find(connection.id());
        hello_done = it != peers_.end() && it->second.hello_done;
      }
      if (!hello_done) {
        Reject(connection);
        return;
      }
      HeartbeatToService(msg.partition, msg.ts);
      return;
    }
    case wire::MsgType::kSubscribe: {
      wire::SubscribeAckMsg ack;
      bool accepted = false;
      {
        sync::MutexLock lock(mu_);
        const auto it = peers_.find(connection.id());
        if (it != peers_.end() && it->second.hello_done) {
          it->second.subscribed = true;
          // Read under mu_ so the first StableBatch this subscriber sees
          // carries exactly this sequence number.
          ack.next_stream_seq = stream_seq_;
          accepted = true;
        }
      }
      if (!accepted) {
        Reject(connection);
        return;
      }
      connection.SendFrame(wire::MsgType::kSubscribeAck,
                           wire::EncodeSubscribeAck(ack));
      return;
    }
    default:
      // Server-to-client types (or anything else) from a client.
      Reject(connection);
      return;
  }
}

void EunomiaServer::OnStable(const std::vector<OpRecord>& ops) {
  // Runs inside the service's StableFanout::Emit, which serializes
  // emitters, so stream_seq_ assignment order matches send order. An
  // emission bigger than one frame is split into several StableBatch
  // frames with consecutive stream sequence numbers.
  const std::size_t frame_cap = std::min<std::size_t>(
      std::max<std::uint32_t>(1, options_.max_ops_per_stable_frame),
      wire::kMaxOpsPerFrame);
  const std::size_t chunks = std::max<std::size_t>(
      1, (ops.size() + frame_cap - 1) / frame_cap);
  std::vector<std::shared_ptr<Connection>> subscribers;
  std::uint64_t seq = 0;
  {
    sync::MutexLock lock(mu_);
    seq = stream_seq_;
    stream_seq_ += chunks;
    for (const auto& [id, peer] : peers_) {
      if (peer.subscribed) {
        subscribers.push_back(peer.connection);
      }
    }
  }
  if (subscribers.empty()) {
    return;
  }
  std::size_t offset = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t count =
        std::min<std::size_t>(ops.size() - offset, frame_cap);
    // Each subscriber's frame differs only in the header (its session
    // sequence), so build the body once and copy it per extra subscriber —
    // the single-subscriber case sends with no copy at all.
    std::string frame =
        wire::EncodeStableBatchFrame(seq + c, ops.data() + offset, count);
    for (std::size_t i = 0; i + 1 < subscribers.size(); ++i) {
      subscribers[i]->SendFrameBody(wire::MsgType::kStableBatch,
                                    std::string(frame));
    }
    subscribers.back()->SendFrameBody(wire::MsgType::kStableBatch,
                                      std::move(frame));
    offset += count;
  }
}

}  // namespace eunomia::net
