// TcpTransport: the real-socket Transport backend.
//
// Connection model: one reader thread and one writer thread per connection
// (the reactor/writer split), plus one accept thread per listener. The
// reader feeds the kernel byte stream through the shared session receiver —
// TCP preserves byte order, the wire sequence numbers prove frame order end
// to end. The writer drains a bounded outbox (SendFrame blocks at
// kOutboxCapacityBytes — backpressure propagates from the kernel's socket
// buffer to the submitting thread) and coalesces queued frames into large
// writes. TCP_NODELAY is set on every socket: the protocol already batches
// at the partition (~1 ms, §6), Nagle would only add latency on top.
//
// Addresses are "ipv4:port" strings; Listen("127.0.0.1:0") binds an
// ephemeral port and returns the concrete "127.0.0.1:41873" form.
//
// Finished connections (both threads exited) are reaped opportunistically
// on the accept/dial path AND by a periodic idle reaper thread, so a quiet
// listener does not hold dead fds and joined-out threads indefinitely
// after a burst of client churn.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/net/transport.h"

namespace eunomia::net {

class TcpTransport : public Transport {
 public:
  // `idle_reap_period` bounds how long a finished connection can outlive
  // its peer on an otherwise idle transport (tests shrink it).
  explicit TcpTransport(
      std::chrono::milliseconds idle_reap_period = std::chrono::seconds(1))
      : idle_reap_period_(idle_reap_period) {}
  ~TcpTransport() override;

  std::string Listen(const std::string& address, AcceptHandler handler) override;
  std::shared_ptr<Connection> Dial(const std::string& address,
                                   ConnectionHandler handler) override;
  void Shutdown() override;

  // Connections currently tracked (live or finished-but-unreaped). Drops
  // back to the live count within ~idle_reap_period of peers going away.
  std::size_t tracked_connections() EXCLUDES(mu_);

  static constexpr std::size_t kOutboxCapacityBytes = 8u << 20;

 private:
  class Conn;

  void AcceptLoop();
  void ReapFinishedConnections();
  void ReaperLoop();
  void EnsureReaperLocked() REQUIRES(mu_);

  const std::chrono::milliseconds idle_reap_period_;
  sync::Mutex mu_{"TcpTransport::mu_", sync::kRankTransport};
  bool shutdown_ GUARDED_BY(mu_) = false;
  bool reaper_started_ GUARDED_BY(mu_) = false;
  sync::CondVar reaper_cv_;
  std::thread reaper_thread_;
  // Written once under mu_ by Listen before the accept thread exists, then
  // read lock-free by AcceptLoop; Shutdown closes the fd only after joining
  // the accept thread. Not GUARDED_BY: the publish order is the guard.
  int listen_fd_ = -1;
  std::string listen_host_;
  AcceptHandler accept_handler_;
  std::thread accept_thread_;
  std::vector<std::shared_ptr<Conn>> connections_ GUARDED_BY(mu_);
};

}  // namespace eunomia::net
