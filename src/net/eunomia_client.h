// net::EunomiaClient — the client-side library for talking to a remote
// Eunomia service (an EunomiaServer behind any Transport backend).
//
// One client owns one connection and plays one-or-more partitions over it
// (the per-channel FIFO contract means a partition must never be split
// across connections). It provides:
//
//   - connection management: Dial + Hello/HelloAck version handshake,
//     Close, connected()/disconnected() observation;
//   - batch submission with backpressure: SubmitBatch blocks while more
//     than Options::max_inflight_ops are unacknowledged, so a slow or
//     remote-saturated server throttles producers instead of letting them
//     queue unbounded frames (on top of the transport's own byte-bounded
//     outbox);
//   - subscription to the stable stream: Options::subscribe + on_stable;
//     the client verifies the stream sequence is dense, so any dropped or
//     reordered stable batch surfaces as stream_broken() instead of a
//     silently wrong order;
//   - per-connection statistics: a metrics::Histogram of batch
//     acknowledgement round-trip latency; multi-connection drivers pass
//     one shared histogram through Options so all connections aggregate
//     into a single series with no merge step.
//
// Threading: SubmitBatch/Heartbeat must come from one producer thread at a
// time (the partition contract already implies a single submitter);
// on_stable runs on the transport's delivery thread. The transport invokes
// the connection handlers asynchronously, so all state those handlers touch
// lives in a shared session object owned jointly by this wrapper and the
// handler closures — destroying the EunomiaClient (after Close) is safe
// even while the transport is still delivering its final callbacks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/eunomia/service.h"
#include "src/metrics/histogram.h"
#include "src/net/transport.h"

namespace eunomia::net {

class EunomiaClient {
 public:
  struct Options {
    // Backpressure window: SubmitBatch blocks while ops submitted but not
    // yet acknowledged exceed this.
    std::uint64_t max_inflight_ops = 64 * 1024;
    // Ops per SubmitBatch frame; larger batches are split into several
    // frames (FIFO, so the server ingests them in order). Clamped to the
    // wire-format cap; only tests normally lower it.
    std::uint32_t max_ops_per_frame = wire::kMaxOpsPerFrame;
    bool subscribe = false;
    // Stable batches, in emission order, on the transport thread.
    StableSink on_stable;
    // Handshake / ack wait bound.
    std::uint64_t timeout_ms = 10'000;
    // Destination for batch ack round-trip latencies (microseconds).
    // Multi-connection drivers pass one histogram to every client so the
    // connections aggregate into a single series (recording is wait-free,
    // so sharing costs nothing). Null: the client creates a private,
    // unregistered histogram.
    std::shared_ptr<metrics::Histogram> ack_latency_us;
  };

  EunomiaClient(Transport* transport, std::string address, Options options);
  ~EunomiaClient();

  EunomiaClient(const EunomiaClient&) = delete;
  EunomiaClient& operator=(const EunomiaClient&) = delete;

  // Dials, completes the Hello handshake and (if configured) the stable
  // subscription. Returns false on any failure or timeout; a failed
  // Connect poisons the client (one connection per client) — create a new
  // EunomiaClient to retry rather than calling Connect again.
  bool Connect();
  void Close();

  bool connected() const;
  // True once the server closed on us or a session error surfaced.
  bool disconnected() const;
  // True if the stable stream sequence ever broke (should never happen over
  // a correct transport).
  bool stream_broken() const;

  // Blocks while the in-flight window is full; false once disconnected.
  bool SubmitBatch(PartitionId partition, std::vector<OpRecord> batch);
  bool Heartbeat(PartitionId partition, Timestamp ts);

  // Returns an empty batch vector whose capacity was recycled from a
  // previous SubmitBatch (the submitted vector is dead once its ops are
  // encoded), or a fresh one. Producers that submit continuously pair this
  // with SubmitBatch to stop allocating a new vector per batch — the same
  // contract as EunomiaService::AcquireBatchBuffer, so generic drivers can
  // use either through one hook. Producer thread only, like SubmitBatch.
  std::vector<OpRecord> AcquireBatchBuffer();

  // Waits until every submitted op is acknowledged (or timeout/disconnect).
  bool WaitForAcks();

  std::uint64_t ops_submitted() const;
  std::uint64_t ops_acked() const;
  std::uint64_t stable_ops_received() const;
  std::uint32_t server_partitions() const;

  // The ack round-trip latency histogram this client records into (the
  // one from Options, or the private one). Snap() it for statistics.
  const std::shared_ptr<metrics::Histogram>& ack_latency_histogram() const;

 private:
  // All state the transport callbacks touch; kept alive by the handler
  // closures past this wrapper's destruction.
  struct Session;

  Transport* const transport_;
  const std::string address_;
  const std::shared_ptr<Session> session_;
  // Single-slot batch-vector recycle for AcquireBatchBuffer. Touched only
  // from the producer thread (the SubmitBatch caller), so no lock.
  std::vector<OpRecord> spare_batch_;
};

}  // namespace eunomia::net
