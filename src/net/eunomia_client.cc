#include "src/net/eunomia_client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <utility>

#include "src/common/sync.h"

namespace eunomia::net {

namespace {

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// The connection handlers capture a shared_ptr to this, so it outlives the
// EunomiaClient wrapper: a producer can Close() and destroy the client
// while the transport is still delivering the connection's last frames or
// its on_close.
struct EunomiaClient::Session {
  explicit Session(Options opts)
      : options(std::move(opts)),
        ack_latency_us(options.ack_latency_us != nullptr
                           ? options.ack_latency_us
                           : std::make_shared<metrics::Histogram>(
                                 "eunomia_client_ack_latency_microseconds",
                                 "Batch ack round-trip latency seen by this "
                                 "client, in microseconds")) {}

  const Options options;
  // Wait-free to record into; shared with the driver when Options supplied
  // one. Never null.
  const std::shared_ptr<metrics::Histogram> ack_latency_us;

  std::shared_ptr<Connection> connection;  // set by Connect (wrapper thread)

  mutable sync::Mutex mu{"EunomiaClient::Session::mu",
                         sync::kRankClientSession};
  sync::CondVar cv;
  bool hello_acked GUARDED_BY(mu) = false;
  bool subscribe_acked GUARDED_BY(mu) = false;
  std::uint64_t ops_submitted GUARDED_BY(mu) = 0;  // written by the producer
  std::uint64_t ops_acked GUARDED_BY(mu) = 0;
  // (submission cumulative-op target, send time) of unacked batches, for
  // ack round-trip latency.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> inflight_batches
      GUARDED_BY(mu);
  // Next expected stable stream sequence; unset until the first
  // SubscribeAck or StableBatch (whichever the races deliver first).
  bool stream_seq_known GUARDED_BY(mu) = false;
  std::uint64_t next_stream_seq GUARDED_BY(mu) = 0;
  std::uint32_t server_partitions GUARDED_BY(mu) = 0;

  std::atomic<bool> connected{false};
  std::atomic<bool> disconnected{false};
  std::atomic<bool> stream_broken{false};
  std::atomic<std::uint64_t> stable_ops_received{0};

  void OnFrame(wire::Frame&& frame);
  void OnDisconnected() {
    disconnected.store(true, std::memory_order_release);
    connected.store(false, std::memory_order_release);
    cv.NotifyAll();
  }
  // A protocol violation from the server: flag the session dead. The
  // connection itself is torn down by Close()/transport Shutdown — touching
  // `connection` here would race Connect()'s write of it on another thread.
  void FailSession() { OnDisconnected(); }
};

void EunomiaClient::Session::OnFrame(wire::Frame&& frame) {
  if (disconnected.load(std::memory_order_acquire)) {
    return;  // session already failed: ignore whatever else arrives
  }
  switch (frame.type) {
    case wire::MsgType::kHelloAck: {
      wire::HelloAckMsg ack;
      if (!wire::DecodeHelloAck(frame.payload, &ack) ||
          ack.protocol_version != wire::kProtocolVersion) {
        FailSession();
        return;
      }
      {
        sync::MutexLock lock(mu);
        server_partitions = ack.num_partitions;
        hello_acked = true;
      }
      cv.NotifyAll();
      return;
    }
    case wire::MsgType::kSubmitAck: {
      wire::SubmitAckMsg ack;
      if (!wire::DecodeSubmitAck(frame.payload, &ack)) {
        FailSession();
        return;
      }
      const std::uint64_t now = NowMicros();
      {
        sync::MutexLock lock(mu);
        ops_acked = std::max(ops_acked, ack.ops_received);
        while (!inflight_batches.empty() &&
               inflight_batches.front().first <= ops_acked) {
          ack_latency_us->Record(now - inflight_batches.front().second);
          inflight_batches.pop_front();
        }
      }
      cv.NotifyAll();
      return;
    }
    case wire::MsgType::kSubscribeAck: {
      wire::SubscribeAckMsg ack;
      if (!wire::DecodeSubscribeAck(frame.payload, &ack)) {
        FailSession();
        return;
      }
      {
        sync::MutexLock lock(mu);
        // A StableBatch can legitimately overtake the SubscribeAck (they
        // come from different server threads); only adopt the ack's base if
        // no batch established one yet.
        if (!stream_seq_known) {
          stream_seq_known = true;
          next_stream_seq = ack.next_stream_seq;
        }
        subscribe_acked = true;
      }
      cv.NotifyAll();
      return;
    }
    case wire::MsgType::kStableBatch: {
      wire::StableBatchMsg msg;
      if (!wire::DecodeStableBatch(frame.payload, &msg)) {
        FailSession();
        return;
      }
      {
        sync::MutexLock lock(mu);
        if (stream_seq_known && msg.stream_seq != next_stream_seq) {
          stream_broken.store(true, std::memory_order_release);
        }
        stream_seq_known = true;
        next_stream_seq = msg.stream_seq + 1;
      }
      stable_ops_received.fetch_add(msg.ops.size(), std::memory_order_relaxed);
      if (options.on_stable) {
        options.on_stable(msg.ops);
      }
      return;
    }
    default:
      // Client-to-server types from the server: protocol violation.
      FailSession();
      return;
  }
}

EunomiaClient::EunomiaClient(Transport* transport, std::string address,
                             Options options)
    : transport_(transport),
      address_(std::move(address)),
      session_(std::make_shared<Session>(std::move(options))) {}

EunomiaClient::~EunomiaClient() { Close(); }

bool EunomiaClient::Connect() {
  if (session_->connected.load(std::memory_order_acquire)) {
    return true;
  }
  // A failed handshake poisons the session (one connection per client):
  // the connection is closed and the session marked disconnected, so a
  // mistaken retry fails fast instead of racing the first dial's late
  // frames into fresh handshake state.
  const auto fail = [this] {
    session_->OnDisconnected();
    if (session_->connection != nullptr) {
      session_->connection->Close();
    }
    return false;
  };
  if (session_->disconnected.load(std::memory_order_acquire)) {
    return false;
  }
  ConnectionHandler handler;
  // The closures share ownership of the session; `this` is never captured.
  handler.on_frame = [session = session_](Connection&, wire::Frame&& frame) {
    session->OnFrame(std::move(frame));
  };
  handler.on_close = [session = session_](Connection&, wire::WireError) {
    session->OnDisconnected();
  };
  session_->connection = transport_->Dial(address_, std::move(handler));
  if (session_->connection == nullptr) {
    return fail();
  }
  wire::HelloMsg hello;
  if (!session_->connection->SendFrame(wire::MsgType::kHello,
                                       wire::EncodeHello(hello))) {
    return fail();
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(session_->options.timeout_ms);
  {
    sync::MutexLock lock(session_->mu);
    while (!session_->hello_acked &&
           !session_->disconnected.load(std::memory_order_acquire)) {
      if (session_->cv.WaitUntil(session_->mu, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (!session_->hello_acked) {
      lock.Unlock();
      return fail();
    }
  }
  if (session_->options.subscribe) {
    if (!session_->connection->SendFrame(wire::MsgType::kSubscribe, {})) {
      return fail();
    }
    sync::MutexLock lock(session_->mu);
    while (!session_->subscribe_acked &&
           !session_->disconnected.load(std::memory_order_acquire)) {
      if (session_->cv.WaitUntil(session_->mu, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (!session_->subscribe_acked) {
      lock.Unlock();
      return fail();
    }
  }
  session_->connected.store(true, std::memory_order_release);
  return true;
}

void EunomiaClient::Close() {
  session_->connected.store(false, std::memory_order_release);
  if (session_->connection != nullptr) {
    session_->connection->Close();
  }
}

bool EunomiaClient::connected() const {
  return session_->connected.load(std::memory_order_acquire);
}

bool EunomiaClient::disconnected() const {
  return session_->disconnected.load(std::memory_order_acquire);
}

bool EunomiaClient::stream_broken() const {
  return session_->stream_broken.load(std::memory_order_acquire);
}

bool EunomiaClient::SubmitBatch(PartitionId partition,
                                std::vector<OpRecord> batch) {
  if (!connected() || batch.empty()) {
    return connected();
  }
  Session& s = *session_;
  // A batch larger than one frame admits is split into several frames
  // (FIFO on one connection, so the server still ingests it in order).
  const std::size_t frame_cap = std::min<std::size_t>(
      std::max<std::uint32_t>(1, s.options.max_ops_per_frame),
      wire::kMaxOpsPerFrame);
  std::size_t offset = 0;
  while (offset < batch.size()) {
    const std::uint64_t n =
        std::min<std::size_t>(batch.size() - offset, frame_cap);
    {
      // Backpressure: block while the unacked window is full. The server
      // acks each frame after handing it to the service, so the window
      // bounds both transport queues and server-side inbox growth from
      // this producer. An idle window always admits one frame, even one
      // larger than the window — otherwise a single oversized frame would
      // wait forever.
      sync::MutexLock lock(s.mu);
      while (!(s.ops_acked >= s.ops_submitted ||
               s.ops_submitted + n - s.ops_acked <=
                   s.options.max_inflight_ops ||
               s.disconnected.load(std::memory_order_acquire))) {
        s.cv.Wait(s.mu);
      }
      if (s.disconnected.load(std::memory_order_acquire)) {
        return false;
      }
      s.inflight_batches.emplace_back(s.ops_submitted + n, NowMicros());
      s.ops_submitted += n;
    }
    // Build the frame body outside the send lock; SendFrameBody stamps the
    // header (sequence number included) in place — one buffer per frame,
    // no payload re-copy.
    std::string frame = wire::EncodeSubmitBatchFrame(
        partition, batch.data() + offset, static_cast<std::size_t>(n));
    if (!s.connection->SendFrameBody(wire::MsgType::kSubmitBatch,
                                     std::move(frame))) {
      return false;
    }
    offset += static_cast<std::size_t>(n);
  }
  // The batch is fully encoded; hand its capacity to the next
  // AcquireBatchBuffer instead of freeing it.
  if (batch.capacity() > spare_batch_.capacity()) {
    batch.clear();
    spare_batch_ = std::move(batch);
  }
  return true;
}

std::vector<OpRecord> EunomiaClient::AcquireBatchBuffer() {
  return std::move(spare_batch_);
}

bool EunomiaClient::Heartbeat(PartitionId partition, Timestamp ts) {
  if (!connected()) {
    return false;
  }
  wire::HeartbeatMsg msg;
  msg.partition = partition;
  msg.ts = ts;
  return session_->connection->SendFrame(wire::MsgType::kHeartbeat,
                                         wire::EncodeHeartbeat(msg));
}

bool EunomiaClient::WaitForAcks() {
  Session& s = *session_;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(s.options.timeout_ms);
  sync::MutexLock lock(s.mu);
  while (!(s.ops_acked >= s.ops_submitted ||
           s.disconnected.load(std::memory_order_acquire))) {
    if (s.cv.WaitUntil(s.mu, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  return s.ops_acked >= s.ops_submitted;
}

std::uint64_t EunomiaClient::ops_submitted() const {
  sync::MutexLock lock(session_->mu);
  return session_->ops_submitted;
}

std::uint64_t EunomiaClient::ops_acked() const {
  sync::MutexLock lock(session_->mu);
  return session_->ops_acked;
}

std::uint64_t EunomiaClient::stable_ops_received() const {
  return session_->stable_ops_received.load(std::memory_order_relaxed);
}

std::uint32_t EunomiaClient::server_partitions() const {
  sync::MutexLock lock(session_->mu);
  return session_->server_partitions;
}

const std::shared_ptr<metrics::Histogram>&
EunomiaClient::ack_latency_histogram() const {
  return session_->ack_latency_us;
}

}  // namespace eunomia::net
