#include "src/net/net_metrics.h"

#include "src/metrics/registry.h"

namespace eunomia::net {

NetMetrics& NetMetrics::Get() {
  // Leaked: transport threads may record into these during process exit.
  static NetMetrics* instance = [] {
    metrics::Registry& registry = metrics::Registry::Default();
    auto* m = new NetMetrics();
    for (std::uint8_t t = wire::kMinMsgType; t <= wire::kMaxMsgType; ++t) {
      const auto type = static_cast<wire::MsgType>(t);
      const metrics::Labels labels = {{"type", wire::MsgTypeName(type)}};
      m->frames_out[t] = registry.AddCounter(
          "eunomia_net_frames_out_total", "Frames sent, by message type",
          labels);
      m->bytes_out[t] = registry.AddCounter(
          "eunomia_net_bytes_out_total",
          "Bytes sent (header + payload), by message type", labels);
      m->frames_in[t] = registry.AddCounter(
          "eunomia_net_frames_in_total", "Frames received, by message type",
          labels);
      m->bytes_in[t] = registry.AddCounter(
          "eunomia_net_bytes_in_total",
          "Bytes received (header + payload), by message type", labels);
    }
    m->connections_opened = registry.AddCounter(
        "eunomia_net_connections_opened_total",
        "Transport connections constructed (any backend)");
    m->connections_closed = registry.AddCounter(
        "eunomia_net_connections_closed_total",
        "Transport connections destroyed (any backend)");
    m->tcp_accepts = registry.AddCounter(
        "eunomia_net_tcp_accepts_total", "TCP connections accepted");
    m->tcp_dials = registry.AddCounter(
        "eunomia_net_tcp_dials_total", "TCP connections dialed successfully");
    m->outbox_stalls = registry.AddCounter(
        "eunomia_net_outbox_stalls_total",
        "Send-side backpressure episodes (outbox hit capacity)");
    m->epoll_wakeups = registry.AddCounter(
        "eunomia_net_epoll_wakeups_total",
        "epoll_wait returns across all io-loop threads");
    m->writev_frames = registry.AddHistogram(
        "eunomia_net_writev_frames",
        "Frames coalesced into one writev (epoll backend)");
    m->io_loop_iteration_us = registry.AddHistogram(
        "eunomia_net_io_loop_iteration_us",
        "Busy microseconds per io-loop wakeup (dispatch + posted tasks)");
    return m;
  }();
  return *instance;
}

}  // namespace eunomia::net
