// LoopbackTransport: the in-process Transport backend.
//
// Listeners are names in a per-transport registry; Dial pairs two
// connection endpoints whose outbound frames land in the peer's bounded
// inbox (a queue of encoded frames) and are drained by one delivery thread
// per endpoint — the same thread-per-connection shape as TcpTransport, so
// code written against loopback behaves identically on sockets, minus the
// kernel. Every frame still round-trips through the wire encoder and the
// session decoder, so framing, checksums and FIFO sequence enforcement are
// exercised even in fully in-process tests.
//
// Backpressure: an inbox holds at most kInboxCapacityBytes of encoded
// frames; Send blocks until the peer's delivery thread drains below the
// cap (or either side closes).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/net/transport.h"

namespace eunomia::net {

class LoopbackTransport : public Transport {
 public:
  LoopbackTransport() = default;
  ~LoopbackTransport() override;

  std::string Listen(const std::string& address, AcceptHandler handler) override;
  std::shared_ptr<Connection> Dial(const std::string& address,
                                   ConnectionHandler handler) override;
  void Shutdown() override;

  static constexpr std::size_t kInboxCapacityBytes = 8u << 20;

 private:
  class Conn;

  sync::Mutex mu_{"LoopbackTransport::mu_", sync::kRankTransport};
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::map<std::string, AcceptHandler> listeners_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<Conn>> connections_ GUARDED_BY(mu_);
};

}  // namespace eunomia::net
