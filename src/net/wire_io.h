// Shared little-endian byte codecs for wire payloads.
//
// One definition of the scalar writers and the bounds-checked sequential
// reader, used by the core wire format (src/net/wire.cc) and the geo
// runtime's peer-link codecs (src/georep/runtime/geo_wire.cc) — the
// endianness and bounds logic must not be able to diverge between them.
// All integers are little-endian regardless of host order; reads are
// byte-wise, so there are no alignment traps.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace eunomia::net::wire::io {

// Raw in-place stores, for encoders that size their buffer up front and
// write through a cursor — the bulk-encode fast path (one resize, straight
// stores) instead of per-byte push_backs.
inline void StoreU16(char* p, std::uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}

inline void StoreU32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

inline void StoreU64(char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

inline void PutU16(std::string* out, std::uint16_t v) {
  char b[2];
  StoreU16(b, v);
  out->append(b, sizeof(b));
}

inline void PutU32(std::string* out, std::uint32_t v) {
  char b[4];
  StoreU32(b, v);
  out->append(b, sizeof(b));
}

inline void PutU64(std::string* out, std::uint64_t v) {
  char b[8];
  StoreU64(b, v);
  out->append(b, sizeof(b));
}

inline std::uint16_t GetU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

inline std::uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

inline std::uint64_t GetU64(const char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

// Bounds-checked sequential payload reader. Every accessor returns false
// instead of reading past the end; decoders combine the calls with && and
// finish with done() so trailing garbage is rejected too.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  bool U32(std::uint32_t* v) {
    if (payload_.size() - pos_ < 4) return false;
    *v = GetU32(payload_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool U64(std::uint64_t* v) {
    if (payload_.size() - pos_ < 8) return false;
    *v = GetU64(payload_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool Bytes(std::uint32_t len, std::string* out) {
    if (remaining() < len) return false;
    out->assign(payload_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  std::size_t remaining() const { return payload_.size() - pos_; }
  bool done() const { return pos_ == payload_.size(); }

  // Bulk-decode escape hatch: after a caller-side size check against
  // remaining(), fixed-layout arrays read straight through cursor() and
  // advance with Skip() — skipping the per-field branches above, which
  // dominate at Mops/s decode rates.
  const char* cursor() const { return payload_.data() + pos_; }
  void Skip(std::size_t n) { pos_ += n; }

 private:
  std::string_view payload_;
  std::size_t pos_ = 0;
};

}  // namespace eunomia::net::wire::io
