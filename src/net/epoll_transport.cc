#include "src/net/epoll_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <thread>
#include <utility>

#include "src/net/net_metrics.h"
#include "src/net/tcp_transport.h"

namespace eunomia::net {

namespace {

// Reads drain to EAGAIN in chunks of the loop's pooled scratch buffer, but
// yield back to the loop after this many chunks (re-posting a continuation)
// so one firehose connection cannot starve its loop-mates.
constexpr int kMaxChunksPerDispatch = 16;

bool ParseAddress(const std::string& address, sockaddr_in* out,
                  std::string* host) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return false;
  }
  *host = address.substr(0, colon);
  char* end = nullptr;
  const unsigned long port = std::strtoul(address.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port > 65535) {
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(port));
  return inet_pton(AF_INET, host->c_str(), &out->sin_addr) == 1;
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// One epoll-owned connection. Loop-thread-only fields (read/write state,
// epoll interest, the frame receiver) carry no locks: every access happens
// on the owning loop's thread. Cross-thread senders touch only the
// out_mu_-guarded outbox and the closing flags.
class EpollTransport::Conn : public Connection,
                             public IoLoop::FdHandler,
                             public std::enable_shared_from_this<Conn> {
 public:
  Conn(IoLoop* loop, int fd) : loop_(loop), fd_(fd) {}

  void SetHandler(ConnectionHandler handler) { handler_ = std::move(handler); }

  // Posts epoll registration to the owning loop. Posted before any other
  // task can reference this conn, so FIFO task order guarantees the fd is
  // registered before any flush kick or close nudge runs.
  void Register() {
    loop_->Post([self = shared_from_this()] { self->RegisterOnLoop(); });
  }

  void Close() override { CloseInternal(wire::WireError::kNone, false); }
  void CloseHard() { CloseInternal(wire::WireError::kNone, true); }

  // True once teardown fully completed on the loop thread: on_close fired,
  // fd removed from epoll and closed. The transport reaps such conns.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  void OnEvents(std::uint32_t events) override {
    if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
      HandleReadable();
    }
    if (events & (EPOLLOUT | EPOLLERR)) {
      FlushOutbox();
    }
  }

 protected:
  bool SendBytes(std::string bytes) override {
    // An io-loop thread must never block on an outbox only loop threads
    // drain (the server acks from the loop that read the submit). Loop
    // threads enqueue unconditionally; boundedness comes from the read
    // throttle — the conn stops reading while its outbox is over capacity,
    // so no more acks get generated for it.
    const bool may_block = IoLoop::Current() == nullptr;
    sync::MutexLock lock(out_mu_);
    if (may_block) {
      if (outbox_bytes_ >= kOutboxCapacityBytes && !closing_) {
        // One stall episode, however many waits it takes to drain.
        NetMetrics::Get().outbox_stalls->Increment();
      }
      while (outbox_bytes_ >= kOutboxCapacityBytes && !closing_) {
        space_cv_.Wait(out_mu_);
      }
    }
    if (closing_) {
      return false;
    }
    outbox_bytes_ += bytes.size();
    outbox_.push_back(std::move(bytes));
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      lock.Unlock();
      // From the loop thread this needs no wakeup: the task runs after the
      // current dispatch, which is exactly what coalesces every frame
      // generated this iteration into one writev.
      loop_->Post([self = shared_from_this()] { self->FlushOutbox(); });
    }
    return true;
  }

 private:
  void RegisterOnLoop() {
    if (finished_.load(std::memory_order_relaxed)) {
      return;
    }
    registered_ = true;
    interest_ = EPOLLIN | EPOLLRDHUP | EPOLLET;
    if (!loop_->Add(fd_, this, interest_)) {
      HardFailOnLoop();
    }
  }

  // hard = true tears the socket down immediately (protocol error, write
  // failure, transport shutdown); hard = false flushes accepted frames and
  // FINs once drained. Reads stop immediately either way. Any thread.
  void CloseInternal(wire::WireError error, bool hard) {
    {
      sync::MutexLock lock(out_mu_);
      if (!closing_) {
        closing_ = true;
        close_error_ = error;
      }
      if (hard) {
        hard_close_ = true;
      }
    }
    closed_.store(true, std::memory_order_release);
    // The fd stays open until the loop finishes teardown; shutdown() just
    // makes it readable (EOF) so the loop notices. The nudge task covers
    // the no-pending-event cases (e.g. read side already done).
    ::shutdown(fd_, hard ? SHUT_RDWR : SHUT_RD);
    space_cv_.NotifyAll();
    loop_->Post([self = shared_from_this()] { self->CloseNudgeOnLoop(); });
  }

  void CloseNudgeOnLoop() {
    if (finished_.load(std::memory_order_relaxed)) {
      return;
    }
    if (!read_done_) {
      HandleReadable();  // observes EOF / reset, fires on_close
    }
    FlushOutbox();  // graceful: drain + FIN; hard: discard
    MaybeFinish();
  }

  // Loop thread: read to EAGAIN through the loop's pooled scratch buffer,
  // decoding frames in place.
  void HandleReadable() {
    if (read_done_) {
      return;
    }
    std::vector<char>& buffer = loop_->scratch();
    int chunks = 0;
    for (;;) {
      const ssize_t n = ::read(fd_, buffer.data(), buffer.size());
      if (n > 0) {
        if (!receiver_.Deliver(*this, handler_,
                               buffer.data(), static_cast<std::size_t>(n))) {
          FinishRead(receiver_.error(), /*hard=*/true);
          return;
        }
        if (!read_paused_) {
          bool over;
          {
            sync::MutexLock lock(out_mu_);
            over = outbox_bytes_ >= kOutboxCapacityBytes;
          }
          if (over) {
            // Inbound throttle: stop reading until the outbox drains below
            // half capacity (FlushOutbox re-arms). TCP's receive window
            // then pushes back on the peer.
            read_paused_ = true;
            UpdateInterest();
          }
        }
        if (read_paused_) {
          return;
        }
        if (++chunks >= kMaxChunksPerDispatch) {
          // Yield to the loop's other connections; continue via a task
          // (edge-triggered readiness would not re-fire on its own).
          loop_->Post([self = shared_from_this()] { self->HandleReadable(); });
          return;
        }
        continue;
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;  // drained
        }
      }
      // n == 0 with no partial frame is the peer's clean FIN; EOF mid-frame
      // or a hard read error is a torn stream — unless we initiated the
      // teardown ourselves.
      wire::WireError error = wire::WireError::kNone;
      if (!closed() && (n < 0 || receiver_.mid_frame())) {
        error = wire::WireError::kTruncated;
      }
      FinishRead(error, /*hard=*/false);
      return;
    }
  }

  // Loop thread: the read side is over. Fires on_close (exactly once) and
  // hands the write side its closing orders.
  void FinishRead(wire::WireError error, bool hard) {
    if (read_done_) {
      return;
    }
    read_done_ = true;
    wire::WireError reported;
    {
      sync::MutexLock lock(out_mu_);
      if (!closing_) {
        closing_ = true;
        close_error_ = error;
      }
      if (hard) {
        hard_close_ = true;
      }
      reported = close_error_;
    }
    closed_.store(true, std::memory_order_release);
    ::shutdown(fd_, hard ? SHUT_RDWR : SHUT_RD);
    space_cv_.NotifyAll();
    if (handler_.on_close) {
      handler_.on_close(*this, reported);
    }
    // No callback can follow on_close; release the handler's captures (the
    // client-session/connection ownership cycle breaks here).
    handler_ = ConnectionHandler{};
    FlushOutbox();
    MaybeFinish();
  }

  // Loop thread: drain the outbox with one sendmsg of up to
  // kMaxIovPerWritev coalesced frames per syscall. Arms EPOLLOUT only when
  // the kernel buffer pushes back; sends the FIN once a closing conn is
  // fully drained.
  void FlushOutbox() {
    if (write_done_) {
      return;
    }
    NetMetrics& metrics = NetMetrics::Get();
    for (;;) {
      iovec iov[kMaxIovPerWritev];
      int iovcnt = 0;
      bool hard = false;
      bool drained_closing = false;
      {
        sync::MutexLock lock(out_mu_);
        flush_scheduled_ = false;
        hard = hard_close_;
        if (hard) {
          outbox_.clear();
          outbox_bytes_ = 0;
          front_offset_ = 0;
          space_cv_.NotifyAll();
        } else {
          // deque growth never moves existing elements and senders only
          // push_back, so the fronts snapshotted here stay pinned while we
          // writev outside the lock.
          std::size_t skip = front_offset_;
          for (auto it = outbox_.begin();
               it != outbox_.end() && iovcnt < kMaxIovPerWritev; ++it) {
            iov[iovcnt].iov_base = const_cast<char*>(it->data()) + skip;
            iov[iovcnt].iov_len = it->size() - skip;
            skip = 0;
            ++iovcnt;
          }
          drained_closing = iovcnt == 0 && closing_;
        }
      }
      if (hard) {
        write_done_ = true;  // socket already SHUT_RDWR by the hard closer
        MaybeFinish();
        return;
      }
      if (iovcnt == 0) {
        if (drained_closing) {
          ::shutdown(fd_, SHUT_WR);  // graceful drain complete: FIN
          write_done_ = true;
          MaybeFinish();
          return;
        }
        if (write_armed_) {
          write_armed_ = false;
          UpdateInterest();
        }
        return;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
      // MSG_NOSIGNAL: a peer reset must surface as EPIPE, not SIGPIPE.
      const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!write_armed_) {
            write_armed_ = true;
            UpdateInterest();
          }
          return;
        }
        HardFailOnLoop();
        return;
      }
      metrics.writev_frames->Record(static_cast<std::uint64_t>(iovcnt));
      bool resume_read = false;
      {
        sync::MutexLock lock(out_mu_);
        std::size_t remaining = static_cast<std::size_t>(n);
        while (remaining > 0) {
          std::string& front = outbox_.front();
          const std::size_t avail = front.size() - front_offset_;
          if (remaining >= avail) {
            remaining -= avail;
            outbox_bytes_ -= front.size();
            outbox_.pop_front();
            front_offset_ = 0;
          } else {
            front_offset_ += remaining;
            remaining = 0;
          }
        }
        if (outbox_bytes_ < kOutboxCapacityBytes) {
          space_cv_.NotifyAll();
        }
        resume_read = read_paused_ && outbox_bytes_ < kOutboxCapacityBytes / 2;
      }
      if (resume_read) {
        read_paused_ = false;
        // EPOLL_CTL_MOD re-checks readiness, so bytes that arrived while
        // paused fire EPOLLIN again despite edge triggering.
        UpdateInterest();
      }
    }
  }

  // Loop thread: a write failed hard (EPIPE/ECONNRESET). Mirror the
  // threaded backend: tear the whole connection down now; the read side
  // observes the shutdown and fires on_close.
  void HardFailOnLoop() {
    {
      sync::MutexLock lock(out_mu_);
      if (!closing_) {
        closing_ = true;
        close_error_ = wire::WireError::kNone;
      }
      hard_close_ = true;
      outbox_.clear();
      outbox_bytes_ = 0;
      front_offset_ = 0;
      space_cv_.NotifyAll();
    }
    closed_.store(true, std::memory_order_release);
    ::shutdown(fd_, SHUT_RDWR);
    write_done_ = true;
    if (!read_done_) {
      HandleReadable();
    }
    MaybeFinish();
  }

  void UpdateInterest() {
    if (!registered_ || finished_.load(std::memory_order_relaxed) ||
        (read_done_ && write_done_)) {
      return;
    }
    std::uint32_t events = EPOLLET | EPOLLRDHUP;
    if (!read_done_ && !read_paused_) {
      events |= EPOLLIN;
    }
    if (!write_done_ && write_armed_) {
      events |= EPOLLOUT;
    }
    if (events != interest_) {
      interest_ = events;
      (void)loop_->Modify(fd_, this, events);
    }
  }

  void MaybeFinish() {
    if (!read_done_ || !write_done_ ||
        finished_.load(std::memory_order_relaxed)) {
      return;
    }
    if (registered_) {
      loop_->Remove(fd_, this);
      registered_ = false;
    }
    ::close(fd_);
    finished_.store(true, std::memory_order_release);
  }

  IoLoop* const loop_;
  const int fd_;

  // Loop-thread-only state.
  ConnectionHandler handler_;
  internal::FrameReceiver receiver_;
  bool registered_ = false;
  bool read_done_ = false;
  bool write_done_ = false;
  bool read_paused_ = false;
  bool write_armed_ = false;
  std::uint32_t interest_ = 0;
  std::size_t front_offset_ = 0;  // bytes of outbox_ front already written

  std::atomic<bool> finished_{false};

  sync::Mutex out_mu_{"EpollTransport::Conn::out_mu_", sync::kRankConnQueue};
  sync::CondVar space_cv_;
  std::deque<std::string> outbox_ GUARDED_BY(out_mu_);
  std::size_t outbox_bytes_ GUARDED_BY(out_mu_) = 0;
  bool flush_scheduled_ GUARDED_BY(out_mu_) = false;
  bool closing_ GUARDED_BY(out_mu_) = false;
  bool hard_close_ GUARDED_BY(out_mu_) = false;
  wire::WireError close_error_ GUARDED_BY(out_mu_) = wire::WireError::kNone;
};

// The accepting socket, registered level-triggered on loop 0 (a stall —
// e.g. fd exhaustion — must re-fire without a new SYN).
class EpollTransport::Listener : public IoLoop::FdHandler {
 public:
  Listener(EpollTransport* transport, IoLoop* loop, int fd,
           AcceptHandler handler)
      : transport_(transport),
        loop_(loop),
        fd_(fd),
        handler_(std::move(handler)) {}

  IoLoop* loop() const { return loop_; }
  int fd() const { return fd_; }

  void OnEvents(std::uint32_t) override {
    for (;;) {
      const int fd =
          ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
          continue;  // client aborted its handshake while queued
        }
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
            errno == ENOMEM) {
          // fd/buffer exhaustion recovers once connections are reaped; back
          // off briefly (level-triggered registration re-fires).
          transport_->ReapFinished();
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return;  // EAGAIN: backlog drained
      }
      transport_->HandleAccepted(fd, handler_);
    }
  }

  void CloseOnLoop() {
    loop_->Remove(fd_, this);
    ::close(fd_);
  }

 private:
  EpollTransport* const transport_;
  IoLoop* const loop_;
  const int fd_;
  const AcceptHandler handler_;
};

EpollTransport::EpollTransport(Options options) {
  unsigned n = options.num_io_threads;
  if (n == 0) {
    // A few loops go a long way: each owns many sockets. Scale gently with
    // the machine so small hosts (and CI runners) get one loop.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    n = std::min(4u, std::max(1u, hw / 4));
  }
  loops_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<IoLoop>("net::IoLoop"));
  }
}

EpollTransport::~EpollTransport() { Shutdown(); }

IoLoop& EpollTransport::NextLoop() {
  const unsigned i = next_loop_.fetch_add(1, std::memory_order_relaxed);
  return *loops_[i % loops_.size()];
}

void EpollTransport::PostAndWait(IoLoop& loop, std::function<void()> fn) {
  // Caller is never a loop thread (Listen/Shutdown run on user threads), so
  // blocking on the loop here cannot self-deadlock.
  std::promise<void> done;
  std::future<void> completed = done.get_future();
  loop.Post([&fn, &done] {
    fn();
    done.set_value();
  });
  completed.wait();
}

std::string EpollTransport::Listen(const std::string& address,
                                   AcceptHandler handler) {
  sockaddr_in addr;
  std::string host;
  if (handler == nullptr || !ParseAddress(address, &addr, &host)) {
    return "";
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return "";
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    return "";
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return "";
  }
  SetNonBlocking(fd);
  Listener* listener = nullptr;
  {
    sync::MutexLock lock(mu_);
    if (shutdown_ || listener_ != nullptr) {
      ::close(fd);
      return "";
    }
    listener_ = std::make_unique<Listener>(this, loops_[0].get(), fd,
                                           std::move(handler));
    listener = listener_.get();
  }
  PostAndWait(*loops_[0], [this, listener, fd] {
    (void)loops_[0]->Add(fd, listener, EPOLLIN);  // level-triggered
  });
  return host + ":" + std::to_string(ntohs(bound.sin_port));
}

void EpollTransport::HandleAccepted(int fd, const AcceptHandler& handler) {
  ReapFinished();
  SetNoDelay(fd);
  auto connection = std::make_shared<Conn>(&NextLoop(), fd);
  connection->SetHandler(handler(connection));
  {
    sync::MutexLock lock(mu_);
    if (shutdown_) {
      ::close(fd);
      return;
    }
    connections_.push_back(connection);
  }
  NetMetrics::Get().tcp_accepts->Increment();
  connection->Register();
}

std::shared_ptr<Connection> EpollTransport::Dial(const std::string& address,
                                                 ConnectionHandler handler) {
  ReapFinished();
  sockaddr_in addr;
  std::string host;
  if (!ParseAddress(address, &addr, &host)) {
    return nullptr;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  auto connection = std::make_shared<Conn>(&NextLoop(), fd);
  connection->SetHandler(std::move(handler));
  {
    sync::MutexLock lock(mu_);
    if (shutdown_) {
      ::close(fd);
      return nullptr;
    }
    connections_.push_back(connection);
  }
  NetMetrics::Get().tcp_dials->Increment();
  connection->Register();
  return connection;
}

void EpollTransport::ReapFinished() {
  std::vector<std::shared_ptr<Conn>> finished;
  {
    sync::MutexLock lock(mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->finished()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Dropped outside mu_; a finished conn's fd is already closed, this just
  // releases buffers (and the Conn, unless a queued task still pins it).
}

void EpollTransport::Shutdown() {
  std::unique_ptr<Listener> listener;
  std::vector<std::shared_ptr<Conn>> connections;
  {
    sync::MutexLock lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    listener = std::move(listener_);
    connections = std::move(connections_);
  }
  if (listener != nullptr) {
    Listener* raw = listener.get();
    PostAndWait(*raw->loop(), [raw] { raw->CloseOnLoop(); });
  }
  for (const auto& connection : connections) {
    connection->CloseHard();
  }
  // The hard-close nudges tear each conn down synchronously on its loop;
  // a barrier per loop (FIFO after every nudge) means all on_close have
  // fired and every fd is closed once these return.
  for (const auto& loop : loops_) {
    PostAndWait(*loop, [] {});
  }
  for (const auto& loop : loops_) {
    loop->Stop();
  }
}

// --- backend selection (the --io flag) ---------------------------------------

bool ParseTcpBackend(const std::string& name, TcpBackend* out) {
  if (name == "epoll") {
    *out = TcpBackend::kEpoll;
    return true;
  }
  if (name == "threaded") {
    *out = TcpBackend::kThreaded;
    return true;
  }
  return false;
}

const char* TcpBackendName(TcpBackend backend) {
  return backend == TcpBackend::kEpoll ? "epoll" : "threaded";
}

std::unique_ptr<Transport> MakeTcpTransport(TcpBackend backend) {
  if (backend == TcpBackend::kThreaded) {
    return std::make_unique<TcpTransport>();
  }
  return std::make_unique<EpollTransport>();
}

}  // namespace eunomia::net
