// Workload generation — the Basho Bench substitute (§7 "Workload Generator").
//
// Closed-loop clients, each attached to one datacenter, repeatedly draw an
// operation (read or update by ratio), a key (uniform or power-law over the
// key space), and a fixed-size opaque value, then issue the next operation
// as soon as the previous completes (plus optional think time). The paper's
// defaults: 100 k keys, 100-byte values, read:write ratios from 99:1 to
// 50:50, uniform ("U") and power-law ("P") key distributions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/common/zipf.h"
#include "src/georep/geo_system.h"
#include "src/sim/simulator.h"

namespace eunomia::wl {

enum class KeyDistribution {
  kUniform,
  kZipf,  // "power-law" in the paper
};

struct WorkloadConfig {
  std::uint64_t num_keys = 100'000;
  double update_fraction = 0.10;  // 90:10 default
  KeyDistribution distribution = KeyDistribution::kUniform;
  double zipf_exponent = 0.99;
  std::uint32_t value_size = 100;
  std::uint32_t clients_per_dc = 16;
  std::uint64_t think_time_us = 0;  // closed loop when 0
  std::uint64_t duration_us = 10 * sim::kSecond;
  // Steady-state measurement window (the paper ignores the first and last
  // minute of each run; scaled-down runs use proportional margins).
  std::uint64_t warmup_us = 1 * sim::kSecond;
  std::uint64_t cooldown_us = 1 * sim::kSecond;
  std::uint64_t seed = 42;
};

// Drives a GeoSystem with closed-loop clients. Use:
//   WorkloadDriver driver(&sim, system, config, num_dcs);
//   driver.Start();
//   sim.RunUntil(config.duration_us);
class WorkloadDriver {
 public:
  WorkloadDriver(sim::Simulator* sim, geo::GeoSystem* system,
                 WorkloadConfig config, std::uint32_t num_dcs);

  void Start();
  // Stops issuing new operations (in-flight ones complete).
  void Stop() { stopped_ = true; }

  std::uint64_t ops_issued() const { return ops_issued_; }
  const WorkloadConfig& config() const { return config_; }

  // Measurement window helpers.
  std::uint64_t measure_from_us() const { return config_.warmup_us; }
  std::uint64_t measure_to_us() const {
    return config_.duration_us > config_.cooldown_us
               ? config_.duration_us - config_.cooldown_us
               : config_.duration_us;
  }

 private:
  struct Client {
    ClientId id = 0;
    DatacenterId dc = 0;
    Rng rng;
  };

  Key PickKey(Client& client);
  void IssueNext(std::size_t client_index);

  sim::Simulator* sim_;
  geo::GeoSystem* system_;
  WorkloadConfig config_;
  std::uint32_t num_dcs_;
  std::vector<Client> clients_;
  std::unique_ptr<ZipfGenerator> zipf_;
  Value value_template_;
  bool stopped_ = false;
  std::uint64_t ops_issued_ = 0;
};

// Human-readable mix label, e.g. "90:10 U" (Fig. 5 x-axis labels).
std::string MixLabel(const WorkloadConfig& config);

}  // namespace eunomia::wl
