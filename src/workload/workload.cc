#include "src/workload/workload.h"

#include <cassert>

#include "src/store/hash_ring.h"

namespace eunomia::wl {

WorkloadDriver::WorkloadDriver(sim::Simulator* sim, geo::GeoSystem* system,
                               WorkloadConfig config, std::uint32_t num_dcs)
    : sim_(sim), system_(system), config_(config), num_dcs_(num_dcs) {
  assert(num_dcs_ >= 1);
  Rng root(config_.seed);
  const std::uint32_t total = config_.clients_per_dc * num_dcs_;
  clients_.reserve(total);
  for (std::uint32_t i = 0; i < total; ++i) {
    Client c;
    c.id = i + 1;
    c.dc = i % num_dcs_;
    c.rng = root.Fork(i);
    clients_.push_back(std::move(c));
  }
  if (config_.distribution == KeyDistribution::kZipf) {
    zipf_ = std::make_unique<ZipfGenerator>(config_.num_keys, config_.zipf_exponent);
  }
  value_template_.assign(config_.value_size, 'x');
}

Key WorkloadDriver::PickKey(Client& client) {
  if (zipf_ != nullptr) {
    // Scramble ranks so the hottest keys do not cluster on one partition
    // (YCSB-style scrambled zipfian).
    const std::uint64_t rank = zipf_->Sample(client.rng);
    return store::MixHash(rank) % config_.num_keys;
  }
  return client.rng.NextBounded(config_.num_keys);
}

void WorkloadDriver::Start() {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    // Stagger client starts across the first millisecond to avoid a
    // synchronized thundering herd at t=0.
    const std::uint64_t offset = clients_[i].rng.NextBounded(1000);
    sim_->ScheduleAfter(offset, [this, i] { IssueNext(i); });
  }
}

void WorkloadDriver::IssueNext(std::size_t client_index) {
  if (stopped_ || sim_->now() >= config_.duration_us) {
    return;
  }
  Client& client = clients_[client_index];
  const Key key = PickKey(client);
  const bool is_update = client.rng.NextBool(config_.update_fraction);
  ++ops_issued_;
  auto continuation = [this, client_index] {
    if (config_.think_time_us > 0) {
      sim_->ScheduleAfter(config_.think_time_us,
                          [this, client_index] { IssueNext(client_index); });
    } else {
      IssueNext(client_index);
    }
  };
  if (is_update) {
    system_->ClientUpdate(client.id, client.dc, key, value_template_,
                          std::move(continuation));
  } else {
    system_->ClientRead(client.id, client.dc, key, std::move(continuation));
  }
}

std::string MixLabel(const WorkloadConfig& config) {
  const int updates = static_cast<int>(config.update_fraction * 100.0 + 0.5);
  std::string label = std::to_string(100 - updates) + ":" + std::to_string(updates);
  label += config.distribution == KeyDistribution::kZipf ? " P" : " U";
  return label;
}

}  // namespace eunomia::wl
