// Eventually consistent multi-cluster baseline (§7.2).
//
// The paper's reference point: "an eventually consistent multi-cluster
// version of Riak KV [that] does not enforce causality, and thus partitions
// execute remote updates as soon as they are received". It shares the exact
// datacenter substrate (partitions, servers, clocks, LWW store, direct
// payload shipping) with EunomiaKV, so the throughput difference between the
// two isolates the cost of causal consistency — the paper's headline 4.7%
// average overhead (Fig. 5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/clock/physical_clock.h"
#include "src/common/types.h"
#include "src/georep/config.h"
#include "src/georep/geo_store.h"
#include "src/georep/geo_system.h"
#include "src/georep/remote_update.h"
#include "src/georep/visibility.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/store/hash_ring.h"

namespace eunomia::geo {

class EventualSystem final : public GeoSystem {
 public:
  EventualSystem(sim::Simulator* sim, GeoConfig config);

  std::string name() const override { return "Eventual"; }

  void ClientRead(ClientId client, DatacenterId dc, Key key,
                  std::function<void()> done) override;
  void ClientUpdate(ClientId client, DatacenterId dc, Key key, Value value,
                    std::function<void()> done) override;

  VisibilityTracker& tracker() override { return tracker_; }
  const VisibilityTracker& tracker() const override { return tracker_; }

  const GeoStore& StoreAt(DatacenterId dc, PartitionId partition) const {
    return dcs_[dc].partitions[partition].store;
  }

 private:
  struct Partition {
    PartitionId id = 0;
    DatacenterId dc = 0;
    sim::Server* server = nullptr;
    sim::EndpointId endpoint = 0;
    PhysicalClock clock;
    HybridClock hybrid;
    GeoStore store;
  };

  struct Datacenter {
    std::vector<std::unique_ptr<sim::Server>> servers;
    std::vector<Partition> partitions;
  };

  sim::Simulator* sim_;
  GeoConfig config_;
  sim::Network network_;
  store::ConsistentHashRing router_;
  std::vector<Datacenter> dcs_;
  VisibilityTracker tracker_;
};

}  // namespace eunomia::geo
