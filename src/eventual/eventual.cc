#include "src/eventual/eventual.h"

#include <cassert>
#include <utility>

namespace eunomia::geo {

EventualSystem::EventualSystem(sim::Simulator* sim, GeoConfig config)
    : sim_(sim),
      config_(std::move(config)),
      network_(sim, config_.network),
      router_(config_.partitions_per_dc),
      tracker_(config_.timeline_window_us, config_.num_dcs) {
  dcs_.resize(config_.num_dcs);
  Rng clock_rng = sim_->rng().Fork(0xC10C);
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    Datacenter& dc = dcs_[m];
    for (std::uint32_t s = 0; s < config_.servers_per_dc; ++s) {
      dc.servers.push_back(std::make_unique<sim::Server>(sim_));
    }
    dc.partitions.resize(config_.partitions_per_dc);
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      Partition& part = dc.partitions[p];
      part.id = p;
      part.dc = m;
      part.server =
          dc.servers[store::ServerOfPartition(p, config_.servers_per_dc)].get();
      part.endpoint = network_.Register(m);
      const std::int64_t off = clock_rng.NextInRange(-config_.clocks.max_offset_us,
                                                     config_.clocks.max_offset_us);
      const double drift = (2.0 * clock_rng.NextDouble() - 1.0) *
                           config_.clocks.max_drift_ppm;
      part.clock = PhysicalClock(off, drift);
    }
  }
}

void EventualSystem::ClientRead(ClientId client, DatacenterId dc, Key key,
                                std::function<void()> done) {
  (void)client;  // no session state: eventual consistency tracks nothing
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  Partition& part = dcs_[dc].partitions[router_.Responsible(key)];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  sim_->ScheduleAfter(hop, [this, &part, done = std::move(done), issued_at, dc,
                            hop] {
    part.server->Submit(config_.costs.read_us, [this, done, issued_at, dc, hop] {
      sim_->ScheduleAfter(hop, [this, done, issued_at, dc] {
        tracker_.OnOpComplete(dc, /*is_update=*/false, sim_->now(),
                              sim_->now() - issued_at);
        done();
      });
    });
  });
}

void EventualSystem::ClientUpdate(ClientId client, DatacenterId dc, Key key,
                                  Value value, std::function<void()> done) {
  (void)client;
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  Partition& part = dcs_[dc].partitions[router_.Responsible(key)];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  sim_->ScheduleAfter(hop, [this, &part, key, value = std::move(value),
                            done = std::move(done), issued_at, dc, hop]() mutable {
    part.server->Submit(config_.costs.update_us, [this, &part, key,
                                                  value = std::move(value), done,
                                                  issued_at, dc, hop]() mutable {
      const DatacenterId m = part.dc;
      const Timestamp ts =
          part.hybrid.TimestampUpdate(part.clock.Read(sim_->now()), 0);
      VectorTimestamp vts(config_.num_dcs);
      vts[m] = ts;
      part.store.Put(key, value, vts, m);
      const std::uint64_t uid = tracker_.OnInstalled(m, sim_->now());

      // Ship directly to siblings; applied on receipt, no gating.
      RemotePayload payload{uid, key, value, vts, m};
      for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
        if (k == m) {
          continue;
        }
        network_.Send(part.endpoint, dcs_[k].partitions[part.id].endpoint,
                      [this, k, pid = part.id, payload] {
                        Partition& sibling = dcs_[k].partitions[pid];
                        tracker_.OnRemoteArrival(payload.uid, k, sim_->now());
                        sibling.server->SubmitPriority(
                            config_.costs.apply_remote_us,
                            [this, &sibling, k, payload]() mutable {
                              sibling.store.Put(payload.key,
                                                std::move(payload.value),
                                                payload.vts, payload.origin);
                              tracker_.OnRemoteVisible(payload.uid, k, sim_->now());
                            });
                      });
      }

      sim_->ScheduleAfter(hop, [this, done, issued_at, dc] {
        tracker_.OnOpComplete(dc, /*is_update=*/true, sim_->now(),
                              sim_->now() - issued_at);
        done();
      });
    });
  });
}

}  // namespace eunomia::geo
