#include "src/harness/table.h"

#include <algorithm>
#include <cstdio>

namespace eunomia::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&widths] {
    std::printf("+");
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) {
        std::printf("-");
      }
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_sep();
}

void Table::PrintCsv() const {
  auto print_row = [](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%s", c == 0 ? "" : ",", cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, v);
  return buf;
}

void PrintBanner(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) {
    std::printf("%s\n", subtitle.c_str());
  }
  std::printf("================================================================\n");
}

}  // namespace eunomia::harness
