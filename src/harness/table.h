// Fixed-width table printing for the benchmark binaries.
//
// Every bench target prints the rows/series of the paper figure it
// reproduces in a plain-text table (plus an optional CSV block for easy
// plotting), so `for b in build/bench/*; do $b; done` regenerates the whole
// evaluation on stdout.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace eunomia::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);

  // Renders with column alignment to stdout.
  void Print() const;
  // Renders a CSV block (comma-separated, one line per row).
  void PrintCsv() const;

  static std::string Num(double v, int precision = 1);
  static std::string Pct(double v, int precision = 1);  // e.g. "-4.7%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner for bench output.
void PrintBanner(const std::string& title, const std::string& subtitle = "");

}  // namespace eunomia::harness
