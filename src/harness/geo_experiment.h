// Geo-replication experiment runner shared by the bench binaries and the
// integration tests: builds a named system over a fresh simulator, drives it
// with a workload, and returns the steady-state measurements.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/georep/config.h"
#include "src/georep/geo_system.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace eunomia::harness {

enum class SystemKind {
  kEventual,
  kEunomiaKv,
  kGentleRain,
  kCure,
  kSSeq,
  kASeq,
};

std::string SystemName(SystemKind kind);

// A constructed system together with the simulator that owns its time.
struct SystemUnderTest {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<geo::GeoSystem> system;
};

SystemUnderTest MakeSystem(SystemKind kind, const geo::GeoConfig& config,
                           std::uint64_t seed);

struct GeoRunResult {
  std::string system;
  double throughput_ops_s = 0.0;  // steady-state window
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  // Visibility percentiles (artificial delay, ms) for a chosen origin->dest
  // pair; negative if no samples.
  double vis_p50_ms = -1.0;
  double vis_p90_ms = -1.0;
  double vis_p95_ms = -1.0;
  double vis_p99_ms = -1.0;
};

// Runs `workload` against a fresh instance of `kind` and reports the
// steady-state throughput plus visibility stats for updates originating at
// `vis_origin` observed at `vis_dest`.
GeoRunResult RunGeoExperiment(SystemKind kind, const geo::GeoConfig& config,
                              const wl::WorkloadConfig& workload,
                              DatacenterId vis_origin = 0,
                              DatacenterId vis_dest = 1);

}  // namespace eunomia::harness
