#include "src/harness/geo_experiment.h"

#include <cassert>

#include "src/cure/cure.h"
#include "src/eventual/eventual.h"
#include "src/georep/eunomiakv.h"
#include "src/gentlerain/gentlerain.h"
#include "src/sequencer/seq_system.h"

namespace eunomia::harness {

std::string SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kEventual:
      return "Eventual";
    case SystemKind::kEunomiaKv:
      return "EunomiaKV";
    case SystemKind::kGentleRain:
      return "GentleRain";
    case SystemKind::kCure:
      return "Cure";
    case SystemKind::kSSeq:
      return "S-Seq";
    case SystemKind::kASeq:
      return "A-Seq";
  }
  return "?";
}

SystemUnderTest MakeSystem(SystemKind kind, const geo::GeoConfig& config,
                           std::uint64_t seed) {
  SystemUnderTest out;
  out.sim = std::make_unique<sim::Simulator>(seed);
  switch (kind) {
    case SystemKind::kEventual:
      out.system = std::make_unique<geo::EventualSystem>(out.sim.get(), config);
      break;
    case SystemKind::kEunomiaKv:
      out.system = std::make_unique<geo::EunomiaKvSystem>(out.sim.get(), config);
      break;
    case SystemKind::kGentleRain:
      out.system = std::make_unique<geo::GentleRainSystem>(out.sim.get(), config);
      break;
    case SystemKind::kCure:
      out.system = std::make_unique<geo::CureSystem>(out.sim.get(), config);
      break;
    case SystemKind::kSSeq:
      out.system = std::make_unique<geo::SeqSystem>(
          out.sim.get(), config, geo::SeqSystem::Mode::kSynchronous);
      break;
    case SystemKind::kASeq:
      out.system = std::make_unique<geo::SeqSystem>(
          out.sim.get(), config, geo::SeqSystem::Mode::kAsynchronous);
      break;
  }
  return out;
}

GeoRunResult RunGeoExperiment(SystemKind kind, const geo::GeoConfig& config,
                              const wl::WorkloadConfig& workload,
                              DatacenterId vis_origin, DatacenterId vis_dest) {
  SystemUnderTest sut = MakeSystem(kind, config, workload.seed);
  wl::WorkloadDriver driver(sut.sim.get(), sut.system.get(), workload,
                            config.num_dcs);
  driver.Start();
  sut.sim->RunUntil(workload.duration_us);
  // Let in-flight operations and replication drain without new load.
  driver.Stop();
  sut.sim->RunUntil(workload.duration_us + 2 * sim::kSecond);

  const auto& tracker = sut.system->tracker();
  GeoRunResult result;
  result.system = SystemName(kind);
  result.throughput_ops_s =
      tracker.Throughput(driver.measure_from_us(), driver.measure_to_us());
  result.reads = tracker.reads_completed();
  result.updates = tracker.updates_completed();
  if (const Cdf* vis = tracker.Visibility(vis_origin, vis_dest);
      vis != nullptr && vis->count() > 0) {
    result.vis_p50_ms = vis->Quantile(0.50) / 1000.0;
    result.vis_p90_ms = vis->Quantile(0.90) / 1000.0;
    result.vis_p95_ms = vis->Quantile(0.95) / 1000.0;
    result.vis_p99_ms = vis->Quantile(0.99) / 1000.0;
  }
  return result;
}

}  // namespace eunomia::harness
