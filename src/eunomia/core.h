// EunomiaCore — Algorithm 3 of the paper: the site stabilization procedure.
//
// The core keeps:
//   - Ops: the set of not-yet-stable operations, held in a red-black tree
//     ordered by (timestamp, partition) — the data structure the paper's C++
//     implementation uses (§6), because the hot loop is insert + ordered
//     bulk extraction;
//   - PartitionTime: a vector with the latest timestamp received from every
//     partition (updated by both operations and heartbeats).
//
// A timestamp is *stable* when it is <= min(PartitionTime): Property 2
// guarantees no partition will ever produce a smaller one. ProcessStable
// extracts all stable operations in timestamp order — an order consistent
// with causality by Property 1 — ready to be shipped to remote datacenters.
//
// The class is single-threaded on purpose: the service wrapper (service.h)
// serializes access, mirroring the single stabilizer thread of the paper's
// implementation.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/op.h"
#include "src/rbtree/red_black_tree.h"

namespace eunomia {

class EunomiaCore {
 public:
  // The core tracks partitions [first_partition, first_partition +
  // num_partitions). A non-zero base lets a sharded service give each worker
  // a private core over its contiguous partition range while ops keep their
  // global partition ids.
  explicit EunomiaCore(std::uint32_t num_partitions,
                       std::uint32_t first_partition = 0);

  std::uint32_t num_partitions() const { return num_partitions_; }
  std::uint32_t first_partition() const { return first_partition_; }

  // ADD_OP (Alg. 3 lines 1-4). Returns false — and ignores the op — if it
  // violates Property 2 (non-monotonic timestamp from its partition); the
  // violation counter lets tests and the service assert this never happens
  // with correct partitions.
  bool AddOp(const OpRecord& op);

  // Bulk ADD_OP for a partition batch. Batches arrive in increasing
  // timestamp order (Property 2), so consecutive ops are adjacent runs in
  // the ordered buffer: each insert is hinted by the previous one and skips
  // the root descent whenever the run is contiguous. Non-monotone ops are
  // counted and dropped exactly as AddOp does. Returns the number accepted.
  std::size_t AddBatch(std::span<const OpRecord> batch);

  // HEARTBEAT (Alg. 3 lines 5-6). Heartbeats only move PartitionTime; a
  // stale heartbeat (<= current entry) is ignored.
  void Heartbeat(PartitionId partition, Timestamp ts);

  // min(PartitionTime) (Alg. 3 line 8). Zero until every partition has been
  // heard from at least once.
  Timestamp StableTime() const;

  // PROCESS_STABLE (Alg. 3 lines 7-11): extracts every pending op with
  // ts <= StableTime() in (ts, partition) order, appending to *out.
  // Returns the number of ops emitted.
  std::size_t ProcessStable(std::vector<OpRecord>* out);

  // Extracts every pending op with ts <= bound regardless of the local
  // StableTime. Used by fault-tolerant followers applying the leader's
  // authoritative STABLE notice (Alg. 4 lines 13-15): the leader may have
  // heard from partitions this replica has not.
  std::size_t ForceExtractUpTo(Timestamp bound, std::vector<OpRecord>* out);

  // --- introspection ---------------------------------------------------------
  std::size_t pending_ops() const { return ops_.size(); }
  Timestamp partition_time(PartitionId p) const {
    assert(p >= first_partition_ && p - first_partition_ < num_partitions_);
    return partition_time_[p - first_partition_];
  }
  Timestamp last_emitted() const { return last_emitted_; }
  std::uint64_t ops_received() const { return ops_received_; }
  std::uint64_t ops_emitted() const { return ops_emitted_; }
  std::uint64_t heartbeats_received() const { return heartbeats_received_; }
  std::uint64_t monotonicity_violations() const { return monotonicity_violations_; }

 private:
  std::uint32_t num_partitions_;
  std::uint32_t first_partition_;
  RedBlackTree<OpOrderKey, OpRecord> ops_;
  std::vector<Timestamp> partition_time_;
  Timestamp last_emitted_ = 0;
  std::uint64_t ops_received_ = 0;
  std::uint64_t ops_emitted_ = 0;
  std::uint64_t heartbeats_received_ = 0;
  std::uint64_t monotonicity_violations_ = 0;
  std::vector<std::pair<OpOrderKey, OpRecord>> scratch_;
};

}  // namespace eunomia
