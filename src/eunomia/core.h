// EunomiaCore — Algorithm 3 of the paper: the site stabilization procedure.
//
// The core keeps:
//   - Ops: the set of not-yet-stable operations, held in a pluggable
//     *ordered buffer* (src/ordbuf/). The paper's C++ implementation (§6)
//     uses a red-black tree; Property 2 (per-partition timestamp
//     monotonicity) admits a strictly cheaper layout — one sorted run per
//     partition with a tournament-tree merge at extraction — which is the
//     default backend. The red-black and AVL trees remain selectable so
//     the §6 design choice stays reproducible and the fast path's
//     semantics stay pinned against them (the emitted sequence is
//     bit-for-bit identical across backends).
//   - PartitionTime: the latest timestamp received from every partition
//     (updated by both operations and heartbeats), held in an incremental
//     min-tournament so StableTime() is an O(1) read instead of an O(P)
//     scan on every stabilization tick.
//
// A timestamp is *stable* when it is <= min(PartitionTime): Property 2
// guarantees no partition will ever produce a smaller one. ProcessStable
// extracts all stable operations in timestamp order — an order consistent
// with causality by Property 1 — ready to be shipped to remote datacenters.
//
// The class is single-threaded on purpose: the service wrapper (service.h)
// serializes access, mirroring the single stabilizer thread of the paper's
// implementation.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/op.h"
#include "src/ordbuf/avl_buffer.h"
#include "src/ordbuf/min_tournament.h"
#include "src/ordbuf/ordered_buffer.h"
#include "src/ordbuf/partition_run_buffer.h"
#include "src/ordbuf/rbtree_buffer.h"

namespace eunomia {

class EunomiaCore {
 public:
  // The core tracks partitions [first_partition, first_partition +
  // num_partitions). A non-zero base lets a sharded service give each worker
  // a private core over its contiguous partition range while ops keep their
  // global partition ids. `backend` selects the ordered-buffer policy
  // holding the not-yet-stable op set.
  explicit EunomiaCore(std::uint32_t num_partitions,
                       std::uint32_t first_partition = 0,
                       ordbuf::Backend backend = ordbuf::Backend::kPartitionRun);

  std::uint32_t num_partitions() const { return num_partitions_; }
  std::uint32_t first_partition() const { return first_partition_; }
  // Derived from the engaged variant alternative — no shadow state to keep
  // in sync with the buffer.
  ordbuf::Backend backend() const {
    if (std::holds_alternative<ordbuf::RbTreeBuffer<OpRecord>>(ops_)) {
      return ordbuf::Backend::kRbTree;
    }
    if (std::holds_alternative<ordbuf::AvlBuffer<OpRecord>>(ops_)) {
      return ordbuf::Backend::kAvl;
    }
    return ordbuf::Backend::kPartitionRun;
  }

  // ADD_OP (Alg. 3 lines 1-4). Returns false — and ignores the op — if it
  // violates Property 2 (non-monotonic timestamp from its partition); the
  // violation counter lets tests and the service assert this never happens
  // with correct partitions.
  bool AddOp(const OpRecord& op);

  // Bulk ADD_OP for a partition batch. Batches arrive in increasing
  // timestamp order (Property 2), so consecutive ops are O(1) appends in
  // the run-queue backend and hinted (root-descent-free) inserts in the
  // tree backends. Non-monotone ops are counted and dropped exactly as
  // AddOp does. Returns the number accepted.
  std::size_t AddBatch(std::span<const OpRecord> batch);

  // HEARTBEAT (Alg. 3 lines 5-6). Heartbeats only move PartitionTime; a
  // stale heartbeat (<= current entry) is ignored.
  void Heartbeat(PartitionId partition, Timestamp ts);

  // min(PartitionTime) (Alg. 3 line 8) — O(1) from the tournament root.
  // Zero until every partition has been heard from at least once.
  Timestamp StableTime() const { return partition_time_.Min(); }

  // PROCESS_STABLE (Alg. 3 lines 7-11): extracts every pending op with
  // ts <= StableTime() in (ts, partition) order, appending to *out.
  // Returns the number of ops emitted.
  std::size_t ProcessStable(std::vector<OpRecord>* out);

  // Extracts every pending op with ts <= bound regardless of the local
  // StableTime. Used by fault-tolerant followers applying the leader's
  // authoritative STABLE notice (Alg. 4 lines 13-15): the leader may have
  // heard from partitions this replica has not.
  std::size_t ForceExtractUpTo(Timestamp bound, std::vector<OpRecord>* out);

  // --- introspection ---------------------------------------------------------
  std::size_t pending_ops() const {
    return std::visit([](const auto& buf) { return buf.size(); }, ops_);
  }
  Timestamp partition_time(PartitionId p) const {
    assert(p >= first_partition_ && p - first_partition_ < num_partitions_);
    return partition_time_.Get(p - first_partition_);
  }
  Timestamp last_emitted() const { return last_emitted_; }
  std::uint64_t ops_received() const { return ops_received_; }
  std::uint64_t ops_emitted() const { return ops_emitted_; }
  std::uint64_t heartbeats_received() const { return heartbeats_received_; }
  std::uint64_t monotonicity_violations() const { return monotonicity_violations_; }

 private:
  using OpsBuffer = std::variant<ordbuf::PartitionRunBuffer<OpRecord>,
                                 ordbuf::RbTreeBuffer<OpRecord>,
                                 ordbuf::AvlBuffer<OpRecord>>;

  static OpsBuffer MakeBuffer(ordbuf::Backend backend, std::uint32_t num_partitions,
                              std::uint32_t first_partition);

  std::uint32_t num_partitions_;
  std::uint32_t first_partition_;
  OpsBuffer ops_;
  ordbuf::MinTournament partition_time_;
  Timestamp last_emitted_ = 0;
  std::uint64_t ops_received_ = 0;
  std::uint64_t ops_emitted_ = 0;
  std::uint64_t heartbeats_received_ = 0;
  std::uint64_t monotonicity_violations_ = 0;
};

}  // namespace eunomia
