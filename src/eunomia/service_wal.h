// Durability for EunomiaService: per-partition write-ahead logs plus a
// stable-frontier snapshot.
//
// What must survive a kill -9 is exactly the service's external promise:
// every batch/heartbeat it accepted (logged *before* the submission returns,
// so acked implies recoverable) and the prefix of the stable stream it has
// already emitted (so a restart does not silently rewind the frontier).
// The state itself is tiny — EunomiaCore holds only unstable ops — so
// instead of snapshotting core state, the snapshot records the *emitted
// frontier* (the (ts, partition) order key of the last stable op), and the
// logs retain every record not wholly covered by it. Recovery is then:
// replay the retained batches/heartbeats into the shard cores (they are
// idempotent re-inserts of exactly the pre-crash inputs), and suppress
// re-emission of stable ops at or below the snapshot mark.
//
// Stream semantics after a crash: ops between the last snapshot mark and
// the pre-crash stable frontier are re-emitted — the stable stream is
// at-least-once across restarts, deduplicable by the unique (ts, partition)
// key (Property 2). At-least-once is the deliberate choice: a subscriber
// that missed the pre-crash tail sees no hole, and one that saw it drops
// the duplicates by key.
//
// Files on the Disk (one logical directory per service):
//   log-p<P>  per-partition record log: kBatch / kHeartbeat records
//   snap      one framed kSnapshot record, replaced via WriteAtomic
//
// Log truncation: once the emitted frontier has advanced past a threshold
// of logged bytes, the snapshot is rewritten and each partition log is
// compacted, dropping batch records whose *last* op is covered by the mark
// (a straddling batch is kept whole; replay + suppression handles the
// overlap) and keeping only the newest heartbeat per partition.
//
// The fault-tolerant variant (FtEunomiaService) is intentionally not wired
// here: its durability story is replication (Alg. 4), and mixing the two
// recovery paths would blur which one a test is exercising.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/common/types.h"
#include "src/eunomia/op.h"
#include "src/wal/log_writer.h"

namespace eunomia {

// Durability knobs embedded in EunomiaService::Options. disk == nullptr
// means durability is off and the service behaves exactly as before.
struct ServiceDurability {
  wal::Disk* disk = nullptr;  // borrowed; must outlive the service
  wal::FsyncPolicy fsync = wal::FsyncPolicy::kPerCommit;
  std::uint64_t fsync_interval_us = 5000;
  // Rewrite the snapshot + compact the logs once this many bytes of
  // records have been appended since the last snapshot.
  std::uint64_t snapshot_interval_bytes = 1u << 20;
  // Run a background maintenance thread for snapshot/compaction work and
  // the kInterval time-bounded sync. Appends are always inline (the logs
  // are per-partition files, so cross-committer group commit has nothing
  // to share). Off = fully synchronous for deterministic tests.
  bool threaded = true;
};

class ServiceWal {
 public:
  // Record types in the per-partition logs / snapshot file.
  static constexpr std::uint8_t kBatchRecord = 1;
  static constexpr std::uint8_t kHeartbeatRecord = 2;
  static constexpr std::uint8_t kSnapshotRecord = 3;

  ServiceWal(std::uint32_t num_partitions, const ServiceDurability& options);
  ~ServiceWal();

  ServiceWal(const ServiceWal&) = delete;
  ServiceWal& operator=(const ServiceWal&) = delete;

  struct Recovered {
    // Batches in original per-partition log order, and the newest logged
    // heartbeat per partition.
    std::vector<std::vector<std::vector<OpRecord>>> batches;  // [partition]
    std::vector<Timestamp> heartbeats;                        // [partition]
    // Emission suppression point: stable ops with order key <= mark were
    // already covered by the snapshot and must not re-emit.
    OpOrderKey stable_mark{0, 0};
    bool any_torn_tail = false;  // at least one log ended mid-record
  };

  // Reads the snapshot and all partition logs (repairing torn tails on
  // disk), then opens the append pipelines. Must be called exactly once,
  // before any Log* call; single-threaded.
  Recovered Recover();

  // Appends a batch record; under FsyncPolicy::kPerCommit it is synced
  // before this returns. Returns false if the disk failed.
  bool LogBatch(PartitionId partition, const std::vector<OpRecord>& batch);
  // Appends a heartbeat record (never blocks for durability: a lost
  // heartbeat only delays stabilization, it loses no data).
  void LogHeartbeat(PartitionId partition, Timestamp ts);

  // Called from the merge thread with the order key of the last op of each
  // emitted stable batch. Rewrites the snapshot and compacts logs when
  // enough bytes have accumulated — on a background maintenance thread in
  // threaded mode (compacting a large log inline would stall stabilization
  // itself), synchronously in inline/deterministic mode.
  void NoteStable(OpOrderKey frontier);

  // Drains and syncs every log (clean shutdown; kill -9 tests skip it).
  void Flush();

  std::uint64_t snapshots_taken() const {
    return snapshots_taken_.load(std::memory_order_relaxed);
  }
  std::uint64_t append_failures() const {
    return append_failures_.load(std::memory_order_relaxed);
  }

  static std::string LogName(PartitionId partition);

 private:
  void WriteSnapshotAndCompact(OpOrderKey mark);
  void SnapshotLoop();

  const ServiceDurability options_;
  const std::uint32_t num_partitions_;
  std::vector<std::unique_ptr<wal::LogWriter>> logs_;  // [partition]

  // Snapshot scheduling state, shared between the merge thread (NoteStable)
  // and the maintenance thread. Never held across a compaction — the thread
  // takes the request out and releases before touching the logs.
  mutable sync::Mutex snap_mu_{"ServiceWal::snap_mu_",
                               sync::kRankWalSnapshot};
  sync::CondVar snap_cv_;
  OpOrderKey last_snapshot_mark_ GUARDED_BY(snap_mu_){0, 0};
  std::uint64_t bytes_at_last_snapshot_ GUARDED_BY(snap_mu_) = 0;
  OpOrderKey snap_mark_ GUARDED_BY(snap_mu_){0, 0};  // requested mark
  bool snap_requested_ GUARDED_BY(snap_mu_) = false;
  bool snap_stop_ GUARDED_BY(snap_mu_) = false;
  std::thread snap_thread_;  // threaded mode only; joined in the destructor

  std::atomic<std::uint64_t> snapshots_taken_{0};
  std::atomic<std::uint64_t> append_failures_{0};
};

}  // namespace eunomia
