// Native multithreaded Eunomia service — the C++ implementation of §6.
//
// This is the component the paper benchmarks in §7.1 by connecting load
// generators directly to it (bypassing the data store): partitions batch
// operations locally (~1 ms) and push them to the service.
//
// The stabilizer is a *sharded pipeline*. N worker threads each own a
// contiguous partition range with a private EunomiaCore shard — there is no
// shared mutex on the ingest hot path. A worker is woken by submissions and
// heartbeats for its partitions (condition variable, with the stabilization
// period as a fallback tick), drains its inboxes via swap, bulk-inserts each
// batch (EunomiaCore::AddBatch exploits per-partition timestamp
// monotonicity), and publishes its (stable_time, stable_ops) to a merge
// stage. A dedicated merge thread computes the global minimum stable time
// across shards and emits ops in global (timestamp, partition) order through
// a k-way merge of the per-shard sorted streams. With num_shards == 1 the
// emitted sequence is bit-for-bit the single-stabilizer order, so the
// unsharded configuration pins the semantics.
//
// Two variants:
//   - EunomiaService: the non-fault-tolerant service described above.
//   - FtEunomiaService: N replicas (Alg. 4); partitions fan batches out to
//     every replica, replicas deduplicate and acknowledge cumulatively, the
//     leader stabilizes and notifies followers. Replicas never coordinate on
//     the input order — that is why fault tolerance costs so little compared
//     to a chain-replicated sequencer (Fig. 3).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/common/types.h"
#include "src/eunomia/core.h"
#include "src/eunomia/op.h"
#include "src/eunomia/replica.h"
#include "src/eunomia/service_wal.h"
#include "src/metrics/counter.h"
#include "src/metrics/gauge.h"

namespace eunomia::metrics {
class Registry;
}

namespace eunomia {

// Callback invoked with each stable batch (ops are in timestamp order).
// May be empty; the service then just counts.
using StableSink = std::function<void(const std::vector<OpRecord>&)>;

// Shared stable-stream fanout used by both service variants: the primary
// Options sink plus a copy-on-write registry of added listeners. Emit
// serializes concurrent emitters (the FT service can briefly have two
// replicas believing they lead during a failover; subscribers must still
// observe one totally ordered stream).
class StableFanout {
 public:
  void SetSink(StableSink sink) EXCLUDES(emit_mu_);
  void AddListener(StableSink listener) EXCLUDES(listener_mu_);
  void Emit(const std::vector<OpRecord>& ops) EXCLUDES(emit_mu_);

 private:
  sync::Mutex emit_mu_{"StableFanout::emit_mu_", sync::kRankFanoutEmit};
  sync::Mutex listener_mu_{"StableFanout::listener_mu_",
                           sync::kRankFanoutListeners};
  StableSink sink_ GUARDED_BY(emit_mu_);
  std::shared_ptr<const std::vector<StableSink>> listeners_
      GUARDED_BY(listener_mu_);
};

class EunomiaService {
 public:
  struct Options {
    std::uint32_t num_partitions = 1;
    // Stabilizer worker count; clamped to [1, num_partitions]. Each shard
    // owns a contiguous partition range and a private EunomiaCore.
    std::uint32_t num_shards = 1;
    std::uint64_t stable_period_us = 500;  // theta (fallback wakeup period)
    // Ordered-buffer policy backing every shard core. The run-queue layout
    // is the fast path; the tree backends pin the §6 design choice.
    ordbuf::Backend buffer_backend = ordbuf::Backend::kPartitionRun;
    StableSink sink;
    // Durability (src/eunomia/service_wal.h). With durability.disk set, the
    // constructor recovers accepted-but-unstable state from the disk and
    // SubmitBatch logs each batch before accepting it; stable ops above the
    // last snapshot may re-emit after a crash (at-least-once, dedup by
    // (ts, partition)). disk == nullptr keeps the service purely in-memory.
    ServiceDurability durability;
    // Observability (docs/METRICS.md §eunomia). When set, the service
    // registers per-shard submit/emit counters, per-partition stable-
    // frontier lag gauges, ordbuf occupancy and merge-queue depth into this
    // registry and refreshes them once per pipeline tick (delta-mirroring
    // the cores' cumulative counters — never per-op work). Null: no
    // instrumentation at all, which is the baseline the ≤2% overhead gate
    // (bench/metrics_overhead) compares against.
    metrics::Registry* metrics = nullptr;
  };

  explicit EunomiaService(Options options);
  ~EunomiaService();

  EunomiaService(const EunomiaService&) = delete;
  EunomiaService& operator=(const EunomiaService&) = delete;

  // Start/Stop are serialized and idempotent: concurrent callers block until
  // the transition completes, repeated calls are no-ops. A remote frontend
  // (src/net/) may race disconnecting clients against shutdown, so Stop must
  // be safe against concurrent SubmitBatch/Heartbeat — late calls are
  // dropped, never crash.
  void Start();
  // Stops the pipeline. Ops a shard already extracted as stable are flushed
  // to the sink (in order) even if the global-min gate was still withholding
  // them; ops still in inboxes or shard cores are dropped, as before.
  // Because the flush may emit past the global gate, the sorted-emission
  // guarantee is per Start/Stop cycle: a restarted service may emit retained
  // ops whose timestamps precede the final flush of the previous cycle.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  // Registers an additional consumer of the stable stream, invoked after the
  // Options sink with the same batches in the same order (on the merge
  // thread). This is the fanout point remote frontends use to attach
  // subscribers without owning the service's primary sink. Listeners cannot
  // be removed — a frontend installs one listener and multiplexes its own
  // dynamic subscriber set behind it.
  void AddStableListener(StableSink listener);

  // Producer API — callable concurrently from partition threads. Ops inside
  // a batch must be in increasing timestamp order (the partition guarantees
  // it; Property 2). Only valid between Start() and Stop(): submissions
  // outside that window are dropped (there is no consumer, so buffering
  // them would grow the inboxes without bound).
  void SubmitBatch(PartitionId partition, std::vector<OpRecord> batch);
  void Heartbeat(PartitionId partition, Timestamp ts);

  // Returns an empty batch vector recycled from the shard pipeline (with its
  // previous capacity intact), or a fresh one if the free-list is empty.
  // Producers that submit continuously can pair this with SubmitBatch to
  // stop allocating a new vector per batch interval.
  std::vector<OpRecord> AcquireBatchBuffer();

  std::uint64_t ops_stabilized() const {
    return ops_stabilized_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_submitted() const {
    return ops_submitted_.load(std::memory_order_relaxed);
  }
  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  // Heartbeats actually forwarded to the shard cores. A heartbeat is
  // forwarded only when it advances past the last value forwarded for its
  // partition, so an idle service does not inflate this on every tick.
  std::uint64_t heartbeats_forwarded() const;

  // Durability observability (0 / nullptr-safe when durability is off).
  std::uint64_t wal_snapshots() const {
    return wal_ ? wal_->snapshots_taken() : 0;
  }
  std::uint64_t wal_append_failures() const {
    return wal_ ? wal_->append_failures() : 0;
  }
  // True if recovery found (and discarded) a torn final record in any log.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

 private:
  struct Inbox {
    sync::Mutex mu{"EunomiaService::Inbox::mu", sync::kRankServiceInbox};
    std::vector<std::vector<OpRecord>> batches GUARDED_BY(mu);
    Timestamp heartbeat GUARDED_BY(mu) = 0;
  };

  struct Shard {
    Shard(std::uint32_t first, std::uint32_t count, ordbuf::Backend backend)
        : first_partition(first),
          num_partitions(count),
          core(count, first, backend),
          last_forwarded_hb(count, 0) {}

    const std::uint32_t first_partition;
    const std::uint32_t num_partitions;
    EunomiaCore core;  // private to the owning worker thread
    sync::Mutex wake_mu{"EunomiaService::Shard::wake_mu",
                        sync::kRankShardWake};
    sync::CondVar wake_cv;
    bool work_pending GUARDED_BY(wake_mu) = false;
    std::vector<Timestamp> last_forwarded_hb;  // owning thread only
    std::atomic<std::uint64_t> heartbeats_forwarded{0};
    std::thread thread;
  };

  // Per-shard state published to the merge stage: the shard's stable time
  // and its extracted stable ops (a sorted stream).
  struct MergeStage {
    sync::Mutex mu{"EunomiaService::MergeStage::mu", sync::kRankMergeStage};
    sync::CondVar cv;
    bool dirty GUARDED_BY(mu) = false;
    // Set by Stop() only after every shard thread is joined, so the final
    // flush cannot run before the last shard's publish.
    bool shutdown GUARDED_BY(mu) = false;
    std::vector<Timestamp> shard_stable GUARDED_BY(mu);
    std::vector<std::deque<OpRecord>> staged GUARDED_BY(mu);
  };

  // Drained inbox batch vectors are recycled through this small free-list
  // instead of being destroyed every tick; AcquireBatchBuffer hands their
  // capacity back to producers.
  struct BatchPool {
    sync::Mutex mu{"EunomiaService::BatchPool::mu", sync::kRankBatchPool};
    std::vector<std::vector<OpRecord>> free GUARDED_BY(mu);
  };
  static constexpr std::size_t kBatchPoolCap = 64;

  // Series registered when Options::metrics is set; all updates are relaxed
  // atomic writes performed once per shard/merge tick.
  struct Telemetry {
    std::vector<std::shared_ptr<metrics::Counter>> shard_ops_received;
    std::vector<std::shared_ptr<metrics::Counter>> shard_ops_emitted;
    std::vector<std::shared_ptr<metrics::Gauge>> shard_occupancy;
    std::vector<std::shared_ptr<metrics::Gauge>> partition_lag;
    std::shared_ptr<metrics::Gauge> merge_queue_depth;
    std::shared_ptr<metrics::Counter> ops_stabilized;
    std::shared_ptr<metrics::Counter> recovered_batches;
  };

  void ShardLoop(std::uint32_t shard_index);
  void MergeLoop();
  void WakeShard(std::uint32_t shard_index);
  void RecycleBatches(std::vector<std::vector<OpRecord>>* drained);

  Options options_;
  std::unique_ptr<Telemetry> telemetry_;  // null when metrics are off
  // Latest global-min stable time, published by the merge thread so shard
  // ticks can compute per-partition frontier lag without taking merge_.mu.
  std::atomic<Timestamp> global_stable_{0};
  // Durability pipeline; nullptr when Options::durability.disk is unset.
  std::unique_ptr<ServiceWal> wal_;
  // Recovery artifacts, fixed at construction: stable ops at or below the
  // suppression mark were covered by the on-disk snapshot and must not be
  // re-emitted by the merge thread.
  OpOrderKey wal_suppress_mark_{0, 0};
  bool recovered_torn_tail_ = false;
  // Serializes Start/Stop so concurrent lifecycle calls cannot interleave
  // with thread spawning/joining.
  sync::Mutex lifecycle_mu_{"EunomiaService::lifecycle_mu_",
                            sync::kRankLifecycle};
  StableFanout fanout_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  BatchPool batch_pool_;
  std::vector<std::uint32_t> shard_of_partition_;
  std::vector<std::unique_ptr<Shard>> shards_;
  MergeStage merge_;
  std::thread merge_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> ops_stabilized_{0};
  std::atomic<std::uint64_t> ops_submitted_{0};
};

class FtEunomiaService {
 public:
  struct Options {
    std::uint32_t num_partitions = 1;
    std::uint32_t num_replicas = 3;
    std::uint64_t stable_period_us = 500;  // theta
    // Ordered-buffer policy backing every replica's core.
    ordbuf::Backend buffer_backend = ordbuf::Backend::kPartitionRun;
    StableSink sink;  // invoked by whichever replica is currently leader
  };

  explicit FtEunomiaService(Options options);
  ~FtEunomiaService();

  FtEunomiaService(const FtEunomiaService&) = delete;
  FtEunomiaService& operator=(const FtEunomiaService&) = delete;

  // Serialized and idempotent, like the non-FT service: safe against
  // concurrent SubmitBatch from disconnecting remote clients.
  void Start();
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  // Same contract as EunomiaService::AddStableListener; invoked by whichever
  // replica is currently leader, after the Options sink.
  void AddStableListener(StableSink listener);

  // Fans the batch out to every live replica as one shared immutable copy
  // (the partition-side ReplicatedSender logic — resend-until-acked — is
  // handled by the caller via AckOf; see bench/service_driver.h). Only
  // valid between Start() and Stop(): submissions outside that window are
  // dropped. Moving the batch in avoids even the single copy.
  void SubmitBatch(PartitionId partition, std::vector<OpRecord> batch);
  void Heartbeat(PartitionId partition, Timestamp ts);

  // Latest cumulative ack from `replica` for `partition`; kTimestampMax if
  // the replica crashed (callers treat it as "stop buffering for it").
  // Stopping the service is not a crash: after Stop() this still reports the
  // real ack frontier of every replica.
  Timestamp AckOf(std::uint32_t replica, PartitionId partition) const;

  // Crash injection: stops the replica thread; if it was the leader, the
  // next live replica takes over (lowest id, Omega-style). Safe to call from
  // the leader's own sink callback (self-crash defers the join to Stop).
  void CrashReplica(std::uint32_t replica);

  bool AnyReplicaAlive() const;
  std::optional<std::uint32_t> CurrentLeader() const;

  std::uint64_t ops_stabilized() const {
    return ops_stabilized_.load(std::memory_order_relaxed);
  }

 private:
  // Batches are fanned out to every replica as one shared immutable vector
  // (replicas only read them through NewBatch's span), so SubmitBatch pays
  // one copy total instead of one per replica.
  using SharedBatch = std::shared_ptr<const std::vector<OpRecord>>;

  struct ReplicaState {
    sync::Mutex mu{"FtEunomiaService::ReplicaState::mu",
                   sync::kRankServiceInbox};
    std::vector<std::pair<PartitionId, SharedBatch>> batches GUARDED_BY(mu);
    std::vector<Timestamp> heartbeats GUARDED_BY(mu);  // per partition
    std::unique_ptr<EunomiaReplica> logic;
    std::thread thread;
    // "Not crashed". Independent of the service-running flag: Stop() leaves
    // it untouched so shutdown is not observed as a failure.
    std::atomic<bool> alive{false};
    std::vector<std::atomic<Timestamp>> acks;  // per partition
    // Stable notices from the leader, applied by followers.
    std::atomic<Timestamp> stable_notice{0};
  };

  void ReplicaLoop(std::uint32_t replica_id);
  void RecomputeLeader();

  Options options_;
  sync::Mutex lifecycle_mu_{"FtEunomiaService::lifecycle_mu_",
                            sync::kRankLifecycle};
  StableFanout fanout_;
  std::vector<std::unique_ptr<ReplicaState>> replicas_;
  std::atomic<bool> running_{false};
  std::atomic<std::int32_t> leader_{0};  // -1 when none alive
  std::atomic<std::uint64_t> ops_stabilized_{0};
};

}  // namespace eunomia
