// Native multithreaded Eunomia service — the C++ implementation of §6.
//
// This is the component the paper benchmarks in §7.1 by connecting load
// generators directly to it (bypassing the data store): partitions batch
// operations locally (~1 ms) and push them to the service; a single
// stabilizer thread drains the per-partition inboxes into the red-black-tree
// core, periodically computes the stable time, and emits the stable prefix,
// in timestamp order, to a sink (in production, the propagation path to
// remote datacenters).
//
// Two variants:
//   - EunomiaService: the non-fault-tolerant single-instance service.
//   - FtEunomiaService: N replicas (Alg. 4); partitions fan batches out to
//     every replica, replicas deduplicate and acknowledge cumulatively, the
//     leader stabilizes and notifies followers. Replicas never coordinate on
//     the input order — that is why fault tolerance costs so little compared
//     to a chain-replicated sequencer (Fig. 3).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/core.h"
#include "src/eunomia/op.h"
#include "src/eunomia/replica.h"

namespace eunomia {

// Callback invoked with each stable batch (ops are in timestamp order).
// May be empty; the service then just counts.
using StableSink = std::function<void(const std::vector<OpRecord>&)>;

class EunomiaService {
 public:
  struct Options {
    std::uint32_t num_partitions = 1;
    std::uint64_t stable_period_us = 500;  // theta
    StableSink sink;
  };

  explicit EunomiaService(Options options);
  ~EunomiaService();

  EunomiaService(const EunomiaService&) = delete;
  EunomiaService& operator=(const EunomiaService&) = delete;

  void Start();
  void Stop();

  // Producer API — callable concurrently from partition threads. Ops inside
  // a batch must be in increasing timestamp order (the partition guarantees
  // it; Property 2).
  void SubmitBatch(PartitionId partition, std::vector<OpRecord> batch);
  void Heartbeat(PartitionId partition, Timestamp ts);

  std::uint64_t ops_stabilized() const {
    return ops_stabilized_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_submitted() const {
    return ops_submitted_.load(std::memory_order_relaxed);
  }

 private:
  struct Inbox {
    std::mutex mu;
    std::vector<std::vector<OpRecord>> batches;
    Timestamp heartbeat = 0;
  };

  void StabilizerLoop();

  Options options_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  EunomiaCore core_;
  std::thread stabilizer_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> ops_stabilized_{0};
  std::atomic<std::uint64_t> ops_submitted_{0};
  std::vector<OpRecord> stable_buffer_;
};

class FtEunomiaService {
 public:
  struct Options {
    std::uint32_t num_partitions = 1;
    std::uint32_t num_replicas = 3;
    std::uint64_t stable_period_us = 500;  // theta
    StableSink sink;  // invoked by whichever replica is currently leader
  };

  explicit FtEunomiaService(Options options);
  ~FtEunomiaService();

  FtEunomiaService(const FtEunomiaService&) = delete;
  FtEunomiaService& operator=(const FtEunomiaService&) = delete;

  void Start();
  void Stop();

  // Fans the batch out to every live replica (the partition-side
  // ReplicatedSender logic — resend-until-acked — is handled by the caller
  // via AckOf; see bench/service_driver.h).
  void SubmitBatch(PartitionId partition, const std::vector<OpRecord>& batch);
  void Heartbeat(PartitionId partition, Timestamp ts);

  // Latest cumulative ack from `replica` for `partition`; kTimestampMax if
  // the replica was crashed (callers treat it as "stop buffering for it").
  Timestamp AckOf(std::uint32_t replica, PartitionId partition) const;

  // Crash injection: stops the replica thread; if it was the leader, the
  // next live replica takes over (lowest id, Omega-style).
  void CrashReplica(std::uint32_t replica);

  bool AnyReplicaAlive() const;
  std::optional<std::uint32_t> CurrentLeader() const;

  std::uint64_t ops_stabilized() const {
    return ops_stabilized_.load(std::memory_order_relaxed);
  }

 private:
  struct ReplicaState {
    std::mutex mu;
    std::vector<std::pair<PartitionId, std::vector<OpRecord>>> batches;
    std::vector<Timestamp> heartbeats;  // per partition
    std::unique_ptr<EunomiaReplica> logic;
    std::thread thread;
    std::atomic<bool> alive{false};
    std::vector<std::atomic<Timestamp>> acks;  // per partition
    // Stable notices from the leader, applied by followers.
    std::atomic<Timestamp> stable_notice{0};
  };

  void ReplicaLoop(std::uint32_t replica_id);
  void RecomputeLeader();

  Options options_;
  std::vector<std::unique_ptr<ReplicaState>> replicas_;
  std::atomic<bool> running_{false};
  std::atomic<std::int32_t> leader_{0};  // -1 when none alive
  std::atomic<std::uint64_t> ops_stabilized_{0};
};

}  // namespace eunomia
