// Propagation tree — the first §5 "Communication Patterns" optimization.
//
// "Eunomia constantly receives operations and heartbeats from partitions.
// This is an all-to-one communication schema and, if the number of
// partitions is large, it may not scale in practice. [We] build a
// propagation tree among partition servers [and] batch operations" — both
// reduce the number of messages Eunomia receives per unit of time at the
// cost of a slight increase in stabilization delay.
//
// PropagationTree computes a k-ary tree topology over the partitions (node
// 0 is the root and talks to Eunomia directly); TreeRelay is the per-node
// forwarding logic: it accumulates the node's own batches plus everything
// received from its children and hands the merged payload upstream once per
// flush interval. Per-partition FIFO is preserved because each relay
// forwards records in arrival order and links are FIFO; Eunomia's dedup /
// PartitionTime machinery is oblivious to the extra hops.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/op.h"

namespace eunomia {

class PropagationTree {
 public:
  // n nodes (one per partition server), fanout >= 2 children per node.
  PropagationTree(std::uint32_t n, std::uint32_t fanout)
      : n_(n == 0 ? 1 : n), fanout_(fanout < 2 ? 2 : fanout) {}

  std::uint32_t size() const { return n_; }
  std::uint32_t fanout() const { return fanout_; }

  bool IsRoot(std::uint32_t node) const { return node == 0; }

  // Parent of `node`, or nullopt for the root.
  std::optional<std::uint32_t> Parent(std::uint32_t node) const {
    assert(node < n_);
    if (node == 0) {
      return std::nullopt;
    }
    return (node - 1) / fanout_;
  }

  std::vector<std::uint32_t> Children(std::uint32_t node) const {
    assert(node < n_);
    std::vector<std::uint32_t> out;
    for (std::uint32_t c = node * fanout_ + 1;
         c <= node * fanout_ + fanout_ && c < n_; ++c) {
      out.push_back(c);
    }
    return out;
  }

  // Number of hops from `node` to the root.
  std::uint32_t Depth(std::uint32_t node) const {
    std::uint32_t depth = 0;
    while (node != 0) {
      node = (node - 1) / fanout_;
      ++depth;
    }
    return depth;
  }

 private:
  std::uint32_t n_;
  std::uint32_t fanout_;
};

// Per-node relay state: merged ops and heartbeats waiting to move upstream.
class TreeRelay {
 public:
  explicit TreeRelay(std::uint32_t num_partitions)
      : heartbeats_(num_partitions, 0) {}

  // The node's own freshly timestamped operations (in timestamp order).
  void AddLocal(const std::vector<OpRecord>& ops) {
    pending_ops_.insert(pending_ops_.end(), ops.begin(), ops.end());
  }

  // The node's own heartbeat (when it has no ops).
  void AddLocalHeartbeat(PartitionId partition, Timestamp ts) {
    if (partition < heartbeats_.size() && ts > heartbeats_[partition]) {
      heartbeats_[partition] = ts;
    }
  }

  struct Payload {
    std::vector<OpRecord> ops;
    // (partition, ts) pairs; only the freshest per partition is kept.
    std::vector<std::pair<PartitionId, Timestamp>> heartbeats;
  };

  // A child's flushed payload arriving over a FIFO link.
  void OnChildPayload(const Payload& payload) {
    pending_ops_.insert(pending_ops_.end(), payload.ops.begin(),
                        payload.ops.end());
    for (const auto& [partition, ts] : payload.heartbeats) {
      AddLocalHeartbeat(partition, ts);
    }
  }

  bool HasPending() const {
    if (!pending_ops_.empty()) {
      return true;
    }
    for (const Timestamp hb : heartbeats_) {
      if (hb > 0) {
        return true;
      }
    }
    return false;
  }

  // Hands everything accumulated upstream (or to Eunomia at the root).
  // Heartbeats for partitions that also have pending ops newer than the
  // heartbeat are dropped — the op already carries fresher information.
  Payload TakeUpstream() {
    Payload out;
    out.ops.swap(pending_ops_);
    for (PartitionId p = 0; p < heartbeats_.size(); ++p) {
      if (heartbeats_[p] > 0) {
        out.heartbeats.emplace_back(p, heartbeats_[p]);
        heartbeats_[p] = 0;
      }
    }
    return out;
  }

  std::size_t pending_ops() const { return pending_ops_.size(); }

 private:
  std::vector<OpRecord> pending_ops_;
  std::vector<Timestamp> heartbeats_;
};

}  // namespace eunomia
