#include "src/eunomia/service_wal.h"

#include <chrono>
#include <utility>

#include "src/net/wire_io.h"

namespace eunomia {

namespace io = net::wire::io;

std::string ServiceWal::LogName(PartitionId partition) {
  return "log-p" + std::to_string(partition);
}

ServiceWal::ServiceWal(std::uint32_t num_partitions,
                       const ServiceDurability& options)
    : options_(options), num_partitions_(num_partitions) {}

ServiceWal::~ServiceWal() {
  if (snap_thread_.joinable()) {
    {
      sync::MutexLock lock(snap_mu_);
      snap_stop_ = true;
    }
    snap_cv_.NotifyAll();
    snap_thread_.join();
  }
}

namespace {

constexpr std::size_t kOpWireBytes = 28;  // ts, partition, key, tag

// Sized-once + raw stores: this runs on the commit path for every accepted
// batch, where per-byte appends measurably tax a small host.
void EncodeBatch(std::string* out, PartitionId partition,
                 const std::vector<OpRecord>& batch) {
  const std::size_t base = out->size();
  out->resize(base + 8 + batch.size() * kOpWireBytes);
  char* p = out->data() + base;
  io::StoreU32(p, partition);
  io::StoreU32(p + 4, static_cast<std::uint32_t>(batch.size()));
  p += 8;
  for (const OpRecord& op : batch) {
    io::StoreU64(p, op.ts);
    io::StoreU32(p + 8, op.partition);
    io::StoreU64(p + 12, op.key);
    io::StoreU64(p + 20, op.tag);
    p += kOpWireBytes;
  }
}

bool DecodeBatch(const std::string& payload, PartitionId* partition,
                 std::vector<OpRecord>* batch) {
  io::PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.U32(partition) || !reader.U32(&count)) {
    return false;
  }
  batch->resize(count);
  for (OpRecord& op : *batch) {
    if (!reader.U64(&op.ts) || !reader.U32(&op.partition) ||
        !reader.U64(&op.key) || !reader.U64(&op.tag)) {
      return false;
    }
  }
  return reader.done();
}

}  // namespace

ServiceWal::Recovered ServiceWal::Recover() {
  Recovered out;
  out.batches.resize(num_partitions_);
  out.heartbeats.assign(num_partitions_, 0);

  // Snapshot first: a missing/invalid snapshot is simply mark (0, 0).
  std::string snap_bytes;
  if (options_.disk->ReadAll("snap", &snap_bytes)) {
    std::vector<wal::Record> records;
    // The snapshot is replaced atomically, so a CRC failure here means
    // external corruption; falling back to the zero mark only costs
    // duplicate re-emission, never a hole.
    wal::ReadLog(snap_bytes, &records);
    if (!records.empty() && records.back().type == kSnapshotRecord) {
      io::PayloadReader reader(records.back().payload);
      std::uint64_t ts = 0;
      std::uint32_t partition = 0;
      if (reader.U64(&ts) && reader.U32(&partition) && reader.done()) {
        out.stable_mark = OpOrderKey{ts, partition};
      }
    }
  }
  {
    sync::MutexLock lock(snap_mu_);
    last_snapshot_mark_ = out.stable_mark;
  }

  logs_.resize(num_partitions_);
  wal::LogWriter::Options writer_options;
  writer_options.policy = options_.fsync;
  writer_options.interval_us = options_.fsync_interval_us;
  // Always inline, even in threaded mode. The logs are per-partition FILES:
  // committers on different partitions never share an fsync, so a dedicated
  // writer thread per log buys no group commit here — it only multiplies
  // runnable threads (one per partition) that thrash small hosts with
  // context switches. Inline appends are one page-cache write on the
  // submit path; the maintenance thread provides the kInterval time bound
  // (see SnapshotLoop).
  writer_options.threaded = false;
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    std::vector<wal::Record> records;
    if (wal::RecoverLog(options_.disk, LogName(p), &records) ==
        wal::LogState::kTornTail) {
      out.any_torn_tail = true;
    }
    for (const wal::Record& record : records) {
      if (record.type == kBatchRecord) {
        PartitionId logged_partition = 0;
        std::vector<OpRecord> batch;
        if (DecodeBatch(record.payload, &logged_partition, &batch) &&
            logged_partition == p) {
          out.batches[p].push_back(std::move(batch));
        }
      } else if (record.type == kHeartbeatRecord) {
        io::PayloadReader reader(record.payload);
        std::uint32_t partition = 0;
        std::uint64_t ts = 0;
        if (reader.U32(&partition) && reader.U64(&ts) && reader.done() &&
            partition == p && ts > out.heartbeats[p]) {
          out.heartbeats[p] = ts;
        }
      }
      // Unknown record types are skipped, not fatal: the CRC already
      // vouched for them, they are just from a newer writer.
    }
    // Append pipelines open only after RecoverLog truncated any torn tail,
    // so new records always start on a record boundary.
    logs_[p] = std::make_unique<wal::LogWriter>(options_.disk, LogName(p),
                                                writer_options);
  }
  if (options_.threaded) {
    snap_thread_ = std::thread([this] { SnapshotLoop(); });
  }
  return out;
}

bool ServiceWal::LogBatch(PartitionId partition,
                          const std::vector<OpRecord>& batch) {
  // Reused per producer thread: a full batch record is tens of KB, and an
  // allocate/free per append is measurable on the commit path.
  static thread_local std::string payload;
  payload.clear();
  EncodeBatch(&payload, partition, batch);
  if (!logs_[partition]->Append(kBatchRecord, payload)) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ServiceWal::LogHeartbeat(PartitionId partition, Timestamp ts) {
  std::string payload;
  io::PutU32(&payload, partition);
  io::PutU64(&payload, ts);
  // Heartbeats ride the same log and the same group commit as batches; a
  // lost heartbeat only delays stabilization after a restart, it loses no
  // data, so there is no need for a separate non-durable path.
  if (!logs_[partition]->Append(kHeartbeatRecord, payload)) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServiceWal::NoteStable(OpOrderKey frontier) {
  {
    sync::MutexLock lock(snap_mu_);
    if (frontier <= last_snapshot_mark_) {
      return;
    }
    std::uint64_t total_bytes = 0;
    for (const auto& log : logs_) {
      total_bytes += log->bytes_appended();  // lock-free reads
    }
    if (total_bytes - bytes_at_last_snapshot_ <
        options_.snapshot_interval_bytes) {
      return;
    }
    // Debit the byte budget at request time so a merge thread emitting
    // faster than the maintenance thread compacts does not pile up
    // requests for the same span of log.
    bytes_at_last_snapshot_ = total_bytes;
    if (snap_thread_.joinable()) {
      snap_mark_ = frontier;
      snap_requested_ = true;
      snap_cv_.NotifyOne();
      return;
    }
  }
  // Inline/deterministic mode: compact right here on the merge thread.
  WriteSnapshotAndCompact(frontier);
}

void ServiceWal::SnapshotLoop() {
  // Besides servicing snapshot requests, this thread is the kInterval
  // syncer: appends are inline (no per-log writer threads), so the "a
  // written byte stays un-synced at most interval_us" half of the interval
  // policy is enforced here by flushing every log each window. Flush is a
  // no-op on a log with nothing un-synced.
  using Clock = std::chrono::steady_clock;
  const bool interval_sync =
      options_.fsync == wal::FsyncPolicy::kInterval;
  const auto interval = std::chrono::microseconds(options_.fsync_interval_us);
  auto next_sync = Clock::now() + interval;
  for (;;) {
    OpOrderKey mark{0, 0};
    bool do_snapshot = false;
    {
      sync::MutexLock lock(snap_mu_);
      while (!snap_requested_ && !snap_stop_) {
        if (interval_sync) {
          if (Clock::now() >= next_sync) {
            break;
          }
          snap_cv_.WaitUntil(snap_mu_, next_sync);
        } else {
          snap_cv_.Wait(snap_mu_);
        }
      }
      if (snap_stop_ && !snap_requested_) {
        return;  // stopping with nothing pending
      }
      if (snap_requested_) {
        mark = snap_mark_;
        snap_requested_ = false;
        do_snapshot = true;
      }
    }
    if (do_snapshot) {
      WriteSnapshotAndCompact(mark);
    }
    if (interval_sync && Clock::now() >= next_sync) {
      for (auto& log : logs_) {
        log->Flush();
      }
      next_sync = Clock::now() + interval;
    }
  }
}

void ServiceWal::WriteSnapshotAndCompact(OpOrderKey mark) {
  // Snapshot first: only once the new mark is durable may the logs drop
  // records it covers. (The reverse order could lose ops: compacted logs
  // plus the old mark would replay nothing for the gap.)
  std::string payload;
  io::PutU64(&payload, mark.ts);
  io::PutU32(&payload, mark.partition);
  std::string framed;
  wal::AppendRecord(&framed, kSnapshotRecord, payload);
  if (!options_.disk->WriteAtomic("snap", framed)) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    sync::MutexLock lock(snap_mu_);
    last_snapshot_mark_ = mark;
  }
  snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    // The filter runs in log order; track the newest heartbeat seen so only
    // the monotone survivors (in practice, the last) are kept.
    Timestamp newest_hb = 0;
    logs_[p]->Compact([&](const wal::RecordView& record) {
      if (record.type == kBatchRecord) {
        // A batch is droppable only when *all* its ops are covered by the
        // snapshot mark; a straddler stays whole (replay + suppression
        // absorbs the covered prefix). Ops are fixed-width, so peeking at
        // the last one is O(1) — decoding every op of every batch would
        // make compaction quadratic-feeling on big logs for no benefit.
        if (record.payload.size() < 8) {
          return false;  // malformed: drop
        }
        const char* data = record.payload.data();
        const std::uint32_t count = io::GetU32(data + 4);
        if (count == 0 || record.payload.size() !=
                              8 + std::size_t{count} * kOpWireBytes) {
          return false;
        }
        const char* last = data + 8 + std::size_t{count - 1} * kOpWireBytes;
        return OpOrderKey{io::GetU64(last), io::GetU32(last + 8)} > mark;
      }
      if (record.type == kHeartbeatRecord) {
        io::PayloadReader reader(record.payload);
        std::uint32_t partition = 0;
        std::uint64_t ts = 0;
        if (!reader.U32(&partition) || !reader.U64(&ts) || !reader.done()) {
          return false;
        }
        // Keep monotone-increasing heartbeats only; the replay takes the
        // max anyway, this just sheds the bulk of a heartbeat-heavy log.
        if (ts <= newest_hb) {
          return false;
        }
        newest_hb = ts;
        return true;
      }
      return true;  // unknown-but-valid: preserve
    });
  }
}

void ServiceWal::Flush() {
  for (const auto& log : logs_) {
    log->Flush();
  }
}

}  // namespace eunomia
