#include "src/eunomia/core.h"

#include <cassert>
#include <utility>

namespace eunomia {

EunomiaCore::OpsBuffer EunomiaCore::MakeBuffer(ordbuf::Backend backend,
                                               std::uint32_t num_partitions,
                                               std::uint32_t first_partition) {
  switch (backend) {
    case ordbuf::Backend::kRbTree:
      return OpsBuffer(std::in_place_type<ordbuf::RbTreeBuffer<OpRecord>>,
                       num_partitions, first_partition);
    case ordbuf::Backend::kAvl:
      return OpsBuffer(std::in_place_type<ordbuf::AvlBuffer<OpRecord>>,
                       num_partitions, first_partition);
    case ordbuf::Backend::kPartitionRun:
      break;
  }
  return OpsBuffer(std::in_place_type<ordbuf::PartitionRunBuffer<OpRecord>>,
                   num_partitions, first_partition);
}

EunomiaCore::EunomiaCore(std::uint32_t num_partitions, std::uint32_t first_partition,
                         ordbuf::Backend backend)
    : num_partitions_(num_partitions == 0 ? 1 : num_partitions),
      first_partition_(first_partition),
      ops_(MakeBuffer(backend, num_partitions_, first_partition_)),
      partition_time_(num_partitions_, kTimestampZero) {}

bool EunomiaCore::AddOp(const OpRecord& op) {
  return AddBatch(std::span<const OpRecord>(&op, 1)) == 1;
}

std::size_t EunomiaCore::AddBatch(std::span<const OpRecord> batch) {
  std::size_t accepted = 0;
  std::visit(
      [&](auto& buf) {
        // PartitionTime is published to the min-tournament once per
        // contiguous same-partition run, not once per op: a batch is
        // typically one partition's ascending stream, so the tournament
        // climb is paid once per batch.
        bool in_run = false;
        PartitionId run_partition = 0;
        std::uint32_t run_index = 0;
        Timestamp run_time = 0;
        for (const OpRecord& op : batch) {
          assert(op.partition >= first_partition_ &&
                 op.partition - first_partition_ < num_partitions_);
          if (!in_run || op.partition != run_partition) {
            if (in_run) {
              partition_time_.Set(run_index, run_time);
            }
            in_run = true;
            run_partition = op.partition;
            run_index = op.partition - first_partition_;
            run_time = partition_time_.Get(run_index);
          }
          if (op.ts <= run_time) {
            // Property 2 says this cannot happen with correct partitions and
            // FIFO links; a replica receiving re-sent batches (§3.3) filters
            // duplicates before reaching the core. Count and drop.
            ++monotonicity_violations_;
            continue;
          }
          buf.Append(OrderKeyOf(op), op);
          run_time = op.ts;
          ++ops_received_;
          ++accepted;
        }
        if (in_run) {
          partition_time_.Set(run_index, run_time);
        }
      },
      ops_);
  return accepted;
}

void EunomiaCore::Heartbeat(PartitionId partition, Timestamp ts) {
  assert(partition >= first_partition_ &&
         partition - first_partition_ < num_partitions_);
  ++heartbeats_received_;
  const std::uint32_t index = partition - first_partition_;
  if (ts > partition_time_.Get(index)) {
    partition_time_.Set(index, ts);
  }
}

std::size_t EunomiaCore::ProcessStable(std::vector<OpRecord>* out) {
  return ForceExtractUpTo(StableTime(), out);
}

std::size_t EunomiaCore::ForceExtractUpTo(Timestamp bound, std::vector<OpRecord>* out) {
  if (bound == kTimestampZero || pending_ops() == 0) {
    return 0;
  }
  // Everything with key <= (bound, max partition) qualifies: an op with
  // ts == bound is extracted regardless of its partition id. Extraction
  // writes straight into *out — no intermediate (key, value) staging.
  const OpOrderKey key_bound{bound, ~PartitionId{0}};
  const std::size_t extracted = std::visit(
      [&](auto& buf) {
        return buf.ExtractUpTo(key_bound, [&](const OpOrderKey& key, OpRecord&& op) {
          assert(key.ts >= last_emitted_ && "emission must be monotone");
          last_emitted_ = key.ts;
          out->push_back(std::move(op));
        });
      },
      ops_);
  ops_emitted_ += extracted;
  return extracted;
}

}  // namespace eunomia
