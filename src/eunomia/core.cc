#include "src/eunomia/core.h"

#include <algorithm>
#include <cassert>

namespace eunomia {

EunomiaCore::EunomiaCore(std::uint32_t num_partitions, std::uint32_t first_partition)
    : num_partitions_(num_partitions == 0 ? 1 : num_partitions),
      first_partition_(first_partition),
      partition_time_(num_partitions_, kTimestampZero) {}

bool EunomiaCore::AddOp(const OpRecord& op) {
  return AddBatch(std::span<const OpRecord>(&op, 1)) == 1;
}

std::size_t EunomiaCore::AddBatch(std::span<const OpRecord> batch) {
  std::size_t accepted = 0;
  RedBlackTree<OpOrderKey, OpRecord>::NodeRef hint = nullptr;
  for (const OpRecord& op : batch) {
    assert(op.partition >= first_partition_ &&
           op.partition - first_partition_ < num_partitions_);
    Timestamp& ptime = partition_time_[op.partition - first_partition_];
    if (op.ts <= ptime) {
      // Property 2 says this cannot happen with correct partitions and FIFO
      // links; a replica receiving re-sent batches (§3.3) filters duplicates
      // before reaching the core. Count and drop (and restart the hint run).
      ++monotonicity_violations_;
      hint = nullptr;
      continue;
    }
    hint = ops_.InsertHinted(OrderKeyOf(op), op, hint);
    assert(hint != nullptr && "(ts, partition) keys must be unique");
    ptime = op.ts;
    ++ops_received_;
    ++accepted;
  }
  return accepted;
}

void EunomiaCore::Heartbeat(PartitionId partition, Timestamp ts) {
  assert(partition >= first_partition_ &&
         partition - first_partition_ < num_partitions_);
  ++heartbeats_received_;
  Timestamp& ptime = partition_time_[partition - first_partition_];
  if (ts > ptime) {
    ptime = ts;
  }
}

Timestamp EunomiaCore::StableTime() const {
  return *std::min_element(partition_time_.begin(), partition_time_.end());
}

std::size_t EunomiaCore::ProcessStable(std::vector<OpRecord>* out) {
  const Timestamp stable = StableTime();
  if (ops_.empty() || stable == kTimestampZero) {
    return 0;
  }
  return ForceExtractUpTo(stable, out);
}

std::size_t EunomiaCore::ForceExtractUpTo(Timestamp bound, std::vector<OpRecord>* out) {
  if (ops_.empty() || bound == kTimestampZero) {
    return 0;
  }
  scratch_.clear();
  // Everything with key <= (bound, max partition) qualifies: an op with
  // ts == bound is extracted regardless of its partition id.
  ops_.ExtractUpTo(OpOrderKey{bound, ~PartitionId{0}}, &scratch_);
  for (auto& [key, op] : scratch_) {
    assert(key.ts >= last_emitted_ && "emission must be monotone");
    last_emitted_ = key.ts;
    out->push_back(op);
  }
  ops_emitted_ += scratch_.size();
  return scratch_.size();
}

}  // namespace eunomia
