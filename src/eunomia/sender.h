// Partition-side senders towards the Eunomia service.
//
// Two pieces of §5 / §3.3 live here as pure (transport-agnostic) logic so
// that both the simulator and the native multithreaded service reuse them:
//
//   - PartitionBatcher (§5 "Communication Patterns"): ops are accumulated at
//     the partition and flushed to Eunomia periodically (the paper uses a
//     1 ms batching interval in the throughput experiments). Batching trades
//     a bounded increase in stabilization delay for far fewer messages.
//
//   - ReplicatedSender (§3.3): with a fault-tolerant Eunomia, a partition
//     keeps, per replica e_f, the latest timestamp that replica acknowledged
//     (Ack_n[f]) and sends every op with ts > Ack_n[f] in each batch. This
//     enforces the *prefix property* — a replica holding u_j also holds
//     every earlier op from the same partition — over channels that may
//     drop or duplicate messages (at-least-once is enough; ordering and
//     exactly-once are NOT required).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/op.h"

namespace eunomia {

class PartitionBatcher {
 public:
  void Add(const OpRecord& op) {
    assert(buffer_.empty() || op.ts > buffer_.back().ts);
    buffer_.push_back(op);
  }

  bool empty() const { return buffer_.empty(); }
  std::size_t size() const { return buffer_.size(); }

  // Hands the accumulated batch over (ops are in timestamp order).
  std::vector<OpRecord> TakeBatch() {
    std::vector<OpRecord> out;
    out.swap(buffer_);
    return out;
  }

 private:
  std::vector<OpRecord> buffer_;
};

class ReplicatedSender {
 public:
  explicit ReplicatedSender(std::uint32_t num_replicas)
      : acks_(num_replicas, kTimestampZero) {}

  std::uint32_t num_replicas() const {
    return static_cast<std::uint32_t>(acks_.size());
  }

  void Add(const OpRecord& op) {
    assert(unacked_.empty() || op.ts > unacked_.back().ts);
    unacked_.push_back(op);
  }

  // The batch for replica f: every buffered op with ts > Ack_n[f], in
  // timestamp order. Resending already-sent-but-unacked ops is what makes
  // the protocol immune to message loss.
  std::vector<OpRecord> BatchFor(std::uint32_t replica) const {
    assert(replica < acks_.size());
    std::vector<OpRecord> out;
    const Timestamp ack = acks_[replica];
    for (const OpRecord& op : unacked_) {
      if (op.ts > ack) {
        out.push_back(op);
      }
    }
    return out;
  }

  // ACK from replica f carrying PartitionTime_f[p_n] (Alg. 4 line 5).
  // Acknowledgements can arrive out of order; only forward movement counts.
  void OnAck(std::uint32_t replica, Timestamp ts) {
    assert(replica < acks_.size());
    if (ts > acks_[replica]) {
      acks_[replica] = ts;
    }
    Trim();
  }

  // Removes a replica from the ack set (it crashed permanently); buffered
  // ops it never acknowledged can then be trimmed against the others.
  void DropReplica(std::uint32_t replica) {
    assert(replica < acks_.size());
    acks_[replica] = kTimestampMax;
    Trim();
  }

  std::size_t unacked_size() const { return unacked_.size(); }
  Timestamp ack_of(std::uint32_t replica) const { return acks_[replica]; }

 private:
  void Trim() {
    Timestamp min_ack = kTimestampMax;
    for (const Timestamp a : acks_) {
      min_ack = a < min_ack ? a : min_ack;
    }
    while (!unacked_.empty() && unacked_.front().ts <= min_ack) {
      unacked_.pop_front();
    }
  }

  std::deque<OpRecord> unacked_;
  std::vector<Timestamp> acks_;
};

}  // namespace eunomia
