// The unit of metadata flowing through Eunomia.
//
// With the data/metadata separation of §5, partitions do not send update
// values to Eunomia — only a lightweight record: the update's local
// timestamp, the origin partition, and a unique identifier (the paper uses
// (u.vts[m], Key)). The opaque `tag` lets the embedding system (the
// geo-replication layer, the native benchmark driver, tests) attach its own
// handle without the ordering core knowing about payloads.
#pragma once

#include <compare>
#include <cstdint>

#include "src/common/types.h"

namespace eunomia {

struct OpRecord {
  Timestamp ts = 0;          // scalar local timestamp assigned by the partition
  PartitionId partition = 0; // origin partition p_n
  Key key = 0;               // object identifier (part of the unique update id)
  std::uint64_t tag = 0;     // opaque handle for the embedding system

  friend bool operator==(const OpRecord&, const OpRecord&) = default;
};

// Total-order key for the ordered buffer. Property 2 makes (ts, partition)
// unique: one partition never reuses a timestamp, and ties across partitions
// are concurrent updates the paper allows to be processed in any (fixed)
// order — we break them by partition id for determinism.
struct OpOrderKey {
  Timestamp ts = 0;
  PartitionId partition = 0;

  friend bool operator==(const OpOrderKey&, const OpOrderKey&) = default;
  friend auto operator<=>(const OpOrderKey&, const OpOrderKey&) = default;
};

inline OpOrderKey OrderKeyOf(const OpRecord& op) { return {op.ts, op.partition}; }

}  // namespace eunomia
