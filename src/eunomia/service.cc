#include "src/eunomia/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace eunomia {

namespace {

void SleepMicros(std::uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

// --- EunomiaService ----------------------------------------------------------

EunomiaService::EunomiaService(Options options)
    : options_(std::move(options)), core_(options_.num_partitions) {
  inboxes_.reserve(options_.num_partitions);
  for (std::uint32_t i = 0; i < options_.num_partitions; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

EunomiaService::~EunomiaService() { Stop(); }

void EunomiaService::Start() {
  if (running_.exchange(true)) {
    return;
  }
  stabilizer_ = std::thread([this] { StabilizerLoop(); });
}

void EunomiaService::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (stabilizer_.joinable()) {
    stabilizer_.join();
  }
}

void EunomiaService::SubmitBatch(PartitionId partition, std::vector<OpRecord> batch) {
  assert(partition < inboxes_.size());
  ops_submitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  Inbox& inbox = *inboxes_[partition];
  std::lock_guard<std::mutex> lock(inbox.mu);
  inbox.batches.push_back(std::move(batch));
}

void EunomiaService::Heartbeat(PartitionId partition, Timestamp ts) {
  assert(partition < inboxes_.size());
  Inbox& inbox = *inboxes_[partition];
  std::lock_guard<std::mutex> lock(inbox.mu);
  inbox.heartbeat = std::max(inbox.heartbeat, ts);
}

void EunomiaService::StabilizerLoop() {
  std::vector<std::vector<OpRecord>> drained;
  while (running_.load(std::memory_order_relaxed)) {
    // Drain every partition inbox into the core.
    for (std::uint32_t p = 0; p < inboxes_.size(); ++p) {
      Inbox& inbox = *inboxes_[p];
      Timestamp hb = 0;
      {
        std::lock_guard<std::mutex> lock(inbox.mu);
        drained.swap(inbox.batches);
        hb = inbox.heartbeat;
      }
      for (const auto& batch : drained) {
        for (const OpRecord& op : batch) {
          core_.AddOp(op);
        }
      }
      drained.clear();
      if (hb > 0) {
        core_.Heartbeat(p, hb);
      }
    }
    // PROCESS_STABLE.
    stable_buffer_.clear();
    const std::size_t emitted = core_.ProcessStable(&stable_buffer_);
    if (emitted > 0) {
      ops_stabilized_.fetch_add(emitted, std::memory_order_relaxed);
      if (options_.sink) {
        options_.sink(stable_buffer_);
      }
    }
    SleepMicros(options_.stable_period_us);
  }
}

// --- FtEunomiaService --------------------------------------------------------

FtEunomiaService::FtEunomiaService(Options options) : options_(std::move(options)) {
  assert(options_.num_replicas >= 1);
  replicas_.reserve(options_.num_replicas);
  for (std::uint32_t r = 0; r < options_.num_replicas; ++r) {
    auto state = std::make_unique<ReplicaState>();
    state->heartbeats.assign(options_.num_partitions, 0);
    state->logic = std::make_unique<EunomiaReplica>(r, options_.num_partitions);
    state->acks = std::vector<std::atomic<Timestamp>>(options_.num_partitions);
    for (auto& a : state->acks) {
      a.store(0, std::memory_order_relaxed);
    }
    replicas_.push_back(std::move(state));
  }
}

FtEunomiaService::~FtEunomiaService() { Stop(); }

void FtEunomiaService::Start() {
  if (running_.exchange(true)) {
    return;
  }
  leader_.store(0);
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    replicas_[r]->alive.store(true);
    replicas_[r]->thread = std::thread([this, r] { ReplicaLoop(r); });
  }
}

void FtEunomiaService::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  for (auto& replica : replicas_) {
    replica->alive.store(false);
    if (replica->thread.joinable()) {
      replica->thread.join();
    }
  }
}

void FtEunomiaService::SubmitBatch(PartitionId partition,
                                   const std::vector<OpRecord>& batch) {
  for (auto& replica : replicas_) {
    if (!replica->alive.load(std::memory_order_relaxed)) {
      continue;
    }
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->batches.emplace_back(partition, batch);  // deliberate copy per replica
  }
}

void FtEunomiaService::Heartbeat(PartitionId partition, Timestamp ts) {
  for (auto& replica : replicas_) {
    if (!replica->alive.load(std::memory_order_relaxed)) {
      continue;
    }
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->heartbeats[partition] = std::max(replica->heartbeats[partition], ts);
  }
}

Timestamp FtEunomiaService::AckOf(std::uint32_t replica, PartitionId partition) const {
  assert(replica < replicas_.size() && partition < options_.num_partitions);
  if (!replicas_[replica]->alive.load(std::memory_order_relaxed)) {
    return kTimestampMax;
  }
  return replicas_[replica]->acks[partition].load(std::memory_order_relaxed);
}

void FtEunomiaService::CrashReplica(std::uint32_t replica) {
  assert(replica < replicas_.size());
  ReplicaState& state = *replicas_[replica];
  if (!state.alive.exchange(false)) {
    return;
  }
  if (state.thread.joinable()) {
    state.thread.join();
  }
  RecomputeLeader();
}

void FtEunomiaService::RecomputeLeader() {
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    if (replicas_[r]->alive.load(std::memory_order_relaxed)) {
      leader_.store(static_cast<std::int32_t>(r));
      return;
    }
  }
  leader_.store(-1);
}

bool FtEunomiaService::AnyReplicaAlive() const {
  for (const auto& replica : replicas_) {
    if (replica->alive.load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::optional<std::uint32_t> FtEunomiaService::CurrentLeader() const {
  const std::int32_t l = leader_.load(std::memory_order_relaxed);
  return l >= 0 ? std::optional<std::uint32_t>(static_cast<std::uint32_t>(l))
                : std::nullopt;
}

void FtEunomiaService::ReplicaLoop(std::uint32_t replica_id) {
  ReplicaState& state = *replicas_[replica_id];
  std::vector<std::pair<PartitionId, std::vector<OpRecord>>> drained;
  std::vector<Timestamp> heartbeats(options_.num_partitions, 0);
  std::vector<OpRecord> stable_ops;
  while (running_.load(std::memory_order_relaxed) &&
         state.alive.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      drained.swap(state.batches);
      heartbeats = state.heartbeats;
    }
    // NEW_BATCH per Alg. 4: dedup against PartitionTime_f, then cumulative ack.
    for (auto& [partition, batch] : drained) {
      const Timestamp ack = state.logic->NewBatch(batch, partition);
      state.acks[partition].store(ack, std::memory_order_relaxed);
    }
    drained.clear();
    for (PartitionId p = 0; p < heartbeats.size(); ++p) {
      if (heartbeats[p] > 0) {
        state.logic->Heartbeat(p, heartbeats[p]);
      }
    }
    const bool is_leader =
        leader_.load(std::memory_order_relaxed) == static_cast<std::int32_t>(replica_id);
    if (is_leader) {
      stable_ops.clear();
      const auto result = state.logic->ProcessStable(&stable_ops);
      if (result.emitted > 0) {
        ops_stabilized_.fetch_add(result.emitted, std::memory_order_relaxed);
        if (options_.sink) {
          options_.sink(stable_ops);
        }
      }
      if (result.stable_time > 0) {
        // STABLE broadcast (Alg. 4 line 12).
        for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
          if (r != replica_id && replicas_[r]->alive.load(std::memory_order_relaxed)) {
            Timestamp cur = replicas_[r]->stable_notice.load(std::memory_order_relaxed);
            while (cur < result.stable_time &&
                   !replicas_[r]->stable_notice.compare_exchange_weak(
                       cur, result.stable_time, std::memory_order_relaxed)) {
            }
          }
        }
      }
    } else {
      // Follower: apply the leader's stable notice (Alg. 4 lines 13-15).
      const Timestamp notice = state.stable_notice.load(std::memory_order_relaxed);
      if (notice > 0) {
        state.logic->OnStableNotice(notice);
      }
    }
    SleepMicros(options_.stable_period_us);
  }
}

}  // namespace eunomia
