#include "src/eunomia/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>

#include "src/metrics/registry.h"

namespace eunomia {

namespace {

void SleepMicros(std::uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

// --- StableFanout ------------------------------------------------------------

void StableFanout::SetSink(StableSink sink) {
  sync::MutexLock lock(emit_mu_);
  sink_ = std::move(sink);
}

void StableFanout::AddListener(StableSink listener) {
  if (!listener) {
    return;
  }
  sync::MutexLock lock(listener_mu_);
  auto next = listeners_ ? std::make_shared<std::vector<StableSink>>(*listeners_)
                         : std::make_shared<std::vector<StableSink>>();
  next->push_back(std::move(listener));
  listeners_ = std::move(next);
}

void StableFanout::Emit(const std::vector<OpRecord>& ops) {
  // emit_mu_ makes the whole fanout of one batch atomic with respect to
  // other emitters, so a failover's momentary second leader cannot
  // interleave its batch into a listener mid-delivery.
  sync::MutexLock emit_lock(emit_mu_);
  if (sink_) {
    sink_(ops);
  }
  std::shared_ptr<const std::vector<StableSink>> listeners;
  {
    sync::MutexLock lock(listener_mu_);
    listeners = listeners_;
  }
  if (listeners) {
    for (const StableSink& listener : *listeners) {
      listener(ops);
    }
  }
}

// --- EunomiaService ----------------------------------------------------------

EunomiaService::EunomiaService(Options options) : options_(std::move(options)) {
  assert(options_.num_partitions >= 1);
  fanout_.SetSink(options_.sink);
  const std::uint32_t partitions = options_.num_partitions;
  const std::uint32_t shards =
      std::clamp<std::uint32_t>(options_.num_shards, 1, partitions);
  inboxes_.reserve(partitions);
  for (std::uint32_t i = 0; i < partitions; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
  // Contiguous ranges, remainder spread over the first shards.
  shard_of_partition_.resize(partitions);
  const std::uint32_t base = partitions / shards;
  const std::uint32_t rem = partitions % shards;
  std::uint32_t first = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint32_t count = base + (s < rem ? 1 : 0);
    shards_.push_back(std::make_unique<Shard>(first, count, options_.buffer_backend));
    for (std::uint32_t p = first; p < first + count; ++p) {
      shard_of_partition_[p] = s;
    }
    first += count;
  }
  {
    // No pipeline threads exist yet, but the analysis (rightly) has no
    // notion of "before Start": take the lock.
    sync::MutexLock lock(merge_.mu);
    merge_.shard_stable.assign(shards, 0);
    merge_.staged.resize(shards);
  }
  if (options_.metrics != nullptr) {
    metrics::Registry& registry = *options_.metrics;
    telemetry_ = std::make_unique<Telemetry>();
    for (std::uint32_t s = 0; s < shards; ++s) {
      const metrics::Labels labels = {{"shard", std::to_string(s)}};
      telemetry_->shard_ops_received.push_back(registry.AddCounter(
          "eunomia_service_ops_received_total",
          "Ops ingested into the shard's stabilization core", labels));
      telemetry_->shard_ops_emitted.push_back(registry.AddCounter(
          "eunomia_service_ops_emitted_total",
          "Ops the shard extracted as stable", labels));
      telemetry_->shard_occupancy.push_back(registry.AddGauge(
          "eunomia_service_ordbuf_occupancy",
          "Ops buffered in the shard's ordered buffer, pending stability",
          labels));
    }
    for (std::uint32_t p = 0; p < partitions; ++p) {
      telemetry_->partition_lag.push_back(registry.AddGauge(
          "eunomia_service_partition_frontier_lag",
          "Timestamp distance (us) by which the partition's reported time "
          "leads the global stable frontier; the partition pinned at 0 is "
          "the straggler gating stabilization",
          {{"partition", std::to_string(p)}}));
    }
    telemetry_->merge_queue_depth = registry.AddGauge(
        "eunomia_service_merge_queue_depth",
        "Stable ops staged at the merge gate, waiting for the global "
        "minimum to pass them");
    telemetry_->ops_stabilized = registry.AddCounter(
        "eunomia_service_ops_stabilized_total",
        "Ops emitted in global (timestamp, partition) order");
    telemetry_->recovered_batches = registry.AddCounter(
        "eunomia_service_recovered_batches_total",
        "Accepted-but-unstable batches replayed from the WAL at startup");
  }
  if (options_.durability.disk != nullptr) {
    wal_ = std::make_unique<ServiceWal>(partitions, options_.durability);
    ServiceWal::Recovered recovered = wal_->Recover();
    wal_suppress_mark_ = recovered.stable_mark;
    recovered_torn_tail_ = recovered.any_torn_tail;
    // Replay the accepted pre-crash inputs straight into the shard cores —
    // no pipeline threads exist yet, and going through SubmitBatch would
    // re-log records that are already on disk. Emission of the replayed ops
    // resumes once heartbeats/submissions advance the stable frontier; the
    // merge thread suppresses the prefix the snapshot already covered.
    for (std::uint32_t p = 0; p < partitions; ++p) {
      Shard& shard = *shards_[shard_of_partition_[p]];
      for (auto& batch : recovered.batches[p]) {
        shard.core.AddBatch(batch);
        if (telemetry_) {
          telemetry_->recovered_batches->Increment();
        }
      }
      if (recovered.heartbeats[p] > 0) {
        shard.core.Heartbeat(p, recovered.heartbeats[p]);
        shard.last_forwarded_hb[p - shard.first_partition] =
            recovered.heartbeats[p];
      }
    }
  }
}

EunomiaService::~EunomiaService() { Stop(); }

void EunomiaService::Start() {
  sync::MutexLock lifecycle(lifecycle_mu_);
  if (running_.exchange(true)) {
    return;
  }
  {
    sync::MutexLock lock(merge_.mu);
    merge_.shutdown = false;
  }
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->thread = std::thread([this, s] { ShardLoop(s); });
  }
  merge_thread_ = std::thread([this] { MergeLoop(); });
}

void EunomiaService::Stop() {
  // Serialized with Start and with other Stop callers: a second concurrent
  // Stop blocks here until the pipeline is fully down instead of returning
  // while threads are still draining.
  sync::MutexLock lifecycle(lifecycle_mu_);
  if (!running_.exchange(false)) {
    return;
  }
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    WakeShard(s);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  // Every shard has now published its last extraction; let the merge thread
  // run its final flush and exit.
  {
    sync::MutexLock lock(merge_.mu);
    merge_.shutdown = true;
  }
  merge_.cv.NotifyOne();
  if (merge_thread_.joinable()) {
    merge_thread_.join();
  }
  if (wal_) {
    // Clean shutdown: everything accepted is made durable regardless of the
    // fsync policy. A kill -9 never reaches this line — that is the point.
    wal_->Flush();
  }
}

void EunomiaService::SubmitBatch(PartitionId partition, std::vector<OpRecord> batch) {
  assert(partition < inboxes_.size());
  if (!running_.load(std::memory_order_relaxed)) {
    return;  // no consumer after Stop: accepting would grow inboxes forever
  }
  if (wal_) {
    // Log-before-accept: the record reaches the WAL (and, under
    // FsyncPolicy::kPerCommit, the platter — this call group-commits)
    // before the batch can have any downstream effect, so anything the
    // caller sees acknowledged is recoverable. An append failure is counted
    // (wal_append_failures) but does not reject the batch: a dying disk
    // degrades durability, not availability.
    wal_->LogBatch(partition, batch);
  }
  ops_submitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  Inbox& inbox = *inboxes_[partition];
  {
    sync::MutexLock lock(inbox.mu);
    inbox.batches.push_back(std::move(batch));
  }
  WakeShard(shard_of_partition_[partition]);
}

void EunomiaService::Heartbeat(PartitionId partition, Timestamp ts) {
  assert(partition < inboxes_.size());
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  if (wal_) {
    wal_->LogHeartbeat(partition, ts);
  }
  Inbox& inbox = *inboxes_[partition];
  {
    sync::MutexLock lock(inbox.mu);
    inbox.heartbeat = std::max(inbox.heartbeat, ts);
  }
  WakeShard(shard_of_partition_[partition]);
}

void EunomiaService::AddStableListener(StableSink listener) {
  fanout_.AddListener(std::move(listener));
}

std::vector<OpRecord> EunomiaService::AcquireBatchBuffer() {
  sync::MutexLock lock(batch_pool_.mu);
  if (batch_pool_.free.empty()) {
    return {};
  }
  std::vector<OpRecord> buffer = std::move(batch_pool_.free.back());
  batch_pool_.free.pop_back();
  return buffer;
}

void EunomiaService::RecycleBatches(std::vector<std::vector<OpRecord>>* drained) {
  sync::MutexLock lock(batch_pool_.mu);
  for (auto& batch : *drained) {
    if (batch_pool_.free.size() >= kBatchPoolCap) {
      break;
    }
    batch.clear();  // keep the capacity, drop the ops
    batch_pool_.free.push_back(std::move(batch));
  }
  // Anything past the cap is destroyed with *drained as usual.
}

std::uint64_t EunomiaService::heartbeats_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->heartbeats_forwarded.load(std::memory_order_relaxed);
  }
  return total;
}

void EunomiaService::WakeShard(std::uint32_t shard_index) {
  Shard& shard = *shards_[shard_index];
  {
    sync::MutexLock lock(shard.wake_mu);
    shard.work_pending = true;
  }
  shard.wake_cv.NotifyOne();
}

void EunomiaService::ShardLoop(std::uint32_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<std::vector<OpRecord>> drained;
  std::vector<std::vector<OpRecord>> recycle;
  std::vector<OpRecord> stable_ops;
  // Shard-thread-local mirror of merge_.shard_stable[shard_index] (only this
  // thread ever advances it), so the publish-needed test below does not have
  // to take merge_.mu on idle ticks.
  Timestamp published_stable = 0;
  // Last values mirrored into the telemetry counters (counters are deltas
  // of the core's cumulative numbers, applied every 64th tick — see the
  // telemetry block below).
  std::uint64_t mirrored_received = 0;
  std::uint64_t mirrored_emitted = 0;
  std::uint64_t telemetry_tick = 0;
  while (running_.load(std::memory_order_relaxed)) {
    {
      // Sleep until a submission/heartbeat for this shard arrives; the
      // stabilization period is only a fallback tick.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.stable_period_us);
      sync::MutexLock lock(shard.wake_mu);
      while (!shard.work_pending && running_.load(std::memory_order_relaxed)) {
        if (shard.wake_cv.WaitUntil(shard.wake_mu, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      shard.work_pending = false;
    }
    if (!running_.load(std::memory_order_relaxed)) {
      break;
    }
    // Drain this shard's inboxes into the private core.
    for (std::uint32_t p = shard.first_partition;
         p < shard.first_partition + shard.num_partitions; ++p) {
      Inbox& inbox = *inboxes_[p];
      Timestamp hb = 0;
      {
        sync::MutexLock lock(inbox.mu);
        drained.swap(inbox.batches);
        hb = inbox.heartbeat;
      }
      for (auto& batch : drained) {
        shard.core.AddBatch(batch);
        recycle.push_back(std::move(batch));
      }
      drained.clear();
      Timestamp& forwarded = shard.last_forwarded_hb[p - shard.first_partition];
      if (hb > forwarded) {
        shard.core.Heartbeat(p, hb);
        forwarded = hb;
        shard.heartbeats_forwarded.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Return drained batch capacity to producers — one pool-lock per tick,
    // not one per partition.
    if (!recycle.empty()) {
      RecycleBatches(&recycle);
      recycle.clear();
    }
    // PROCESS_STABLE on the shard, then publish to the merge stage. The
    // extracted ops all have ts <= shard_stable; the merge stage withholds
    // them until the *global* minimum passes them.
    const Timestamp shard_stable = shard.core.StableTime();
    stable_ops.clear();
    shard.core.ProcessStable(&stable_ops);
    if (shard_stable > published_stable || !stable_ops.empty()) {
      published_stable = std::max(published_stable, shard_stable);
      {
        sync::MutexLock lock(merge_.mu);
        merge_.shard_stable[shard_index] =
            std::max(merge_.shard_stable[shard_index], published_stable);
        auto& queue = merge_.staged[shard_index];
        queue.insert(queue.end(), stable_ops.begin(), stable_ops.end());
        merge_.dirty = true;
      }
      merge_.cv.NotifyOne();
    }
    if (telemetry_ && (++telemetry_tick & 63) == 0) {
      // Mirrored every 64th tick, not every tick: under load the loop wakes
      // per submission, and a per-wake O(partitions) gauge refresh is the
      // kind of cost the <=2% overhead gate (bench/metrics_overhead) exists
      // to catch. Scrapes sample at seconds granularity; 64 ticks of
      // staleness is invisible to them.
      const std::uint64_t received = shard.core.ops_received();
      const std::uint64_t emitted = shard.core.ops_emitted();
      telemetry_->shard_ops_received[shard_index]->Add(received -
                                                       mirrored_received);
      telemetry_->shard_ops_emitted[shard_index]->Add(emitted -
                                                      mirrored_emitted);
      mirrored_received = received;
      mirrored_emitted = emitted;
      telemetry_->shard_occupancy[shard_index]->Set(
          static_cast<std::int64_t>(shard.core.pending_ops()));
      const Timestamp global = global_stable_.load(std::memory_order_relaxed);
      for (std::uint32_t p = shard.first_partition;
           p < shard.first_partition + shard.num_partitions; ++p) {
        const Timestamp seen = shard.core.partition_time(p);
        telemetry_->partition_lag[p]->Set(
            seen > global ? static_cast<std::int64_t>(seen - global) : 0);
      }
    }
  }
}

void EunomiaService::MergeLoop() {
  std::vector<std::vector<OpRecord>> ready(shards_.size());
  std::vector<std::size_t> heads(shards_.size(), 0);
  std::vector<OpRecord> emit;
  for (;;) {
    bool shutting_down = false;
    // Under the lock, only detach each shard's eligible prefix; the k-way
    // merge itself runs unlocked so large emissions never stall publishes.
    {
      sync::MutexLock lock(merge_.mu);
      while (!merge_.dirty && !merge_.shutdown) {
        merge_.cv.Wait(merge_.mu);
      }
      const bool was_dirty = merge_.dirty;
      merge_.dirty = false;
      shutting_down = !was_dirty && merge_.shutdown;
      if (shutting_down) {
        // Final pass: ops a shard already extracted from its core must not
        // be destroyed with the service. No emission can follow this one, so
        // flushing every staged (sorted) stream past the global-min gate
        // still leaves the total emitted sequence in (ts, partition) order —
        // matching the old single-stabilizer service, which delivered
        // everything it extracted.
        for (std::size_t s = 0; s < merge_.staged.size(); ++s) {
          auto& queue = merge_.staged[s];
          ready[s].assign(queue.begin(), queue.end());
          queue.clear();
        }
      } else {
        const Timestamp global = *std::min_element(merge_.shard_stable.begin(),
                                                   merge_.shard_stable.end());
        global_stable_.store(global, std::memory_order_relaxed);
        if (global > kTimestampZero) {
          for (std::size_t s = 0; s < merge_.staged.size(); ++s) {
            auto& queue = merge_.staged[s];
            while (!queue.empty() && queue.front().ts <= global) {
              ready[s].push_back(queue.front());
              queue.pop_front();
            }
          }
        }
      }
      if (telemetry_) {
        std::size_t staged = 0;
        for (const auto& queue : merge_.staged) {
          staged += queue.size();
        }
        telemetry_->merge_queue_depth->Set(static_cast<std::int64_t>(staged));
      }
    }
    // K-way merge of the detached per-shard sorted streams. Ties across
    // shards are ordered by partition id — the same (ts, partition) total
    // order EunomiaCore emits.
    emit.clear();
    for (;;) {
      int best = -1;
      for (std::size_t s = 0; s < ready.size(); ++s) {
        if (heads[s] == ready[s].size()) {
          continue;
        }
        if (best < 0 || OrderKeyOf(ready[s][heads[s]]) <
                            OrderKeyOf(ready[best][heads[best]])) {
          best = static_cast<int>(s);
        }
      }
      if (best < 0) {
        break;
      }
      emit.push_back(ready[best][heads[best]++]);
    }
    for (std::size_t s = 0; s < ready.size(); ++s) {
      ready[s].clear();
      heads[s] = 0;
    }
    // After a recovery, the prefix of the stable stream covered by the
    // on-disk snapshot was already emitted by the pre-crash incarnation;
    // re-emitting it would rewind subscribers. The stream is sorted, so the
    // covered ops are a prefix of this emission.
    if (wal_ && !emit.empty() &&
        OrderKeyOf(emit.front()) <= wal_suppress_mark_) {
      const auto first_kept =
          std::find_if(emit.begin(), emit.end(), [this](const OpRecord& op) {
            return OrderKeyOf(op) > wal_suppress_mark_;
          });
      emit.erase(emit.begin(), first_kept);
    }
    if (!emit.empty()) {
      ops_stabilized_.fetch_add(emit.size(), std::memory_order_relaxed);
      if (telemetry_) {
        telemetry_->ops_stabilized->Add(emit.size());
      }
      fanout_.Emit(emit);
      if (wal_) {
        // Advance the durable frontier; periodically snapshots the mark and
        // compacts the logs (merge thread only — appends keep flowing, they
        // just queue behind the compaction's brief writer pause).
        wal_->NoteStable(OrderKeyOf(emit.back()));
      }
    }
    if (shutting_down) {
      break;
    }
  }
}

// --- FtEunomiaService --------------------------------------------------------

FtEunomiaService::FtEunomiaService(Options options) : options_(std::move(options)) {
  assert(options_.num_replicas >= 1);
  fanout_.SetSink(options_.sink);
  replicas_.reserve(options_.num_replicas);
  for (std::uint32_t r = 0; r < options_.num_replicas; ++r) {
    auto state = std::make_unique<ReplicaState>();
    state->heartbeats.assign(options_.num_partitions, 0);
    state->logic = std::make_unique<EunomiaReplica>(r, options_.num_partitions,
                                                    options_.buffer_backend);
    state->acks = std::vector<std::atomic<Timestamp>>(options_.num_partitions);
    for (auto& a : state->acks) {
      a.store(0, std::memory_order_relaxed);
    }
    replicas_.push_back(std::move(state));
  }
}

FtEunomiaService::~FtEunomiaService() { Stop(); }

void FtEunomiaService::Start() {
  sync::MutexLock lifecycle(lifecycle_mu_);
  if (running_.exchange(true)) {
    return;
  }
  leader_.store(0);
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    replicas_[r]->alive.store(true);
    replicas_[r]->thread = std::thread([this, r] { ReplicaLoop(r); });
  }
}

void FtEunomiaService::Stop() {
  sync::MutexLock lifecycle(lifecycle_mu_);
  if (!running_.exchange(false)) {
    return;
  }
  // Shutdown is not a crash: per-replica liveness is left untouched so that
  // AckOf keeps reporting the real frontiers after Stop.
  for (auto& replica : replicas_) {
    if (replica->thread.joinable()) {
      replica->thread.join();
    }
  }
}

void FtEunomiaService::AddStableListener(StableSink listener) {
  fanout_.AddListener(std::move(listener));
}

void FtEunomiaService::SubmitBatch(PartitionId partition,
                                   std::vector<OpRecord> batch) {
  if (!running_.load(std::memory_order_relaxed)) {
    return;  // replica threads are gone; inboxes would grow unboundedly
  }
  // One immutable batch shared by every replica inbox: replicas only read
  // batches (NewBatch takes a span), so the per-replica deep copies the
  // fan-out used to make were pure waste.
  const SharedBatch shared =
      std::make_shared<const std::vector<OpRecord>>(std::move(batch));
  for (auto& replica : replicas_) {
    if (!replica->alive.load(std::memory_order_relaxed)) {
      continue;
    }
    sync::MutexLock lock(replica->mu);
    replica->batches.emplace_back(partition, shared);
  }
}

void FtEunomiaService::Heartbeat(PartitionId partition, Timestamp ts) {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  for (auto& replica : replicas_) {
    if (!replica->alive.load(std::memory_order_relaxed)) {
      continue;
    }
    sync::MutexLock lock(replica->mu);
    replica->heartbeats[partition] = std::max(replica->heartbeats[partition], ts);
  }
}

Timestamp FtEunomiaService::AckOf(std::uint32_t replica, PartitionId partition) const {
  assert(replica < replicas_.size() && partition < options_.num_partitions);
  if (!replicas_[replica]->alive.load(std::memory_order_relaxed)) {
    return kTimestampMax;
  }
  return replicas_[replica]->acks[partition].load(std::memory_order_relaxed);
}

void FtEunomiaService::CrashReplica(std::uint32_t replica) {
  assert(replica < replicas_.size());
  ReplicaState& state = *replicas_[replica];
  if (!state.alive.exchange(false)) {
    return;
  }
  // The leader's sink callback runs on the replica's own thread; a crash
  // injected from there must not self-join. The loop observes alive == false
  // and exits on its own; Stop() reaps the thread.
  if (state.thread.joinable() &&
      state.thread.get_id() != std::this_thread::get_id()) {
    state.thread.join();
  }
  RecomputeLeader();
}

void FtEunomiaService::RecomputeLeader() {
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    if (replicas_[r]->alive.load(std::memory_order_relaxed)) {
      leader_.store(static_cast<std::int32_t>(r));
      return;
    }
  }
  leader_.store(-1);
}

bool FtEunomiaService::AnyReplicaAlive() const {
  for (const auto& replica : replicas_) {
    if (replica->alive.load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::optional<std::uint32_t> FtEunomiaService::CurrentLeader() const {
  const std::int32_t l = leader_.load(std::memory_order_relaxed);
  return l >= 0 ? std::optional<std::uint32_t>(static_cast<std::uint32_t>(l))
                : std::nullopt;
}

void FtEunomiaService::ReplicaLoop(std::uint32_t replica_id) {
  ReplicaState& state = *replicas_[replica_id];
  std::vector<std::pair<PartitionId, SharedBatch>> drained;
  std::vector<Timestamp> heartbeats(options_.num_partitions, 0);
  std::vector<Timestamp> forwarded_hb(options_.num_partitions, 0);
  Timestamp applied_notice = 0;
  std::vector<OpRecord> stable_ops;
  while (running_.load(std::memory_order_relaxed) &&
         state.alive.load(std::memory_order_relaxed)) {
    {
      sync::MutexLock lock(state.mu);
      drained.swap(state.batches);
      heartbeats = state.heartbeats;
    }
    // NEW_BATCH per Alg. 4: dedup against PartitionTime_f, then cumulative ack.
    for (auto& [partition, batch] : drained) {
      const Timestamp ack = state.logic->NewBatch(*batch, partition);
      state.acks[partition].store(ack, std::memory_order_relaxed);
    }
    drained.clear();
    for (PartitionId p = 0; p < heartbeats.size(); ++p) {
      // Forward a heartbeat only when it advances past the last value
      // forwarded for that partition; redelivering the unchanged inbox value
      // every tick would only inflate the core's counters.
      if (heartbeats[p] > forwarded_hb[p]) {
        state.logic->Heartbeat(p, heartbeats[p]);
        forwarded_hb[p] = heartbeats[p];
      }
    }
    // The acquire read of leader_ synchronizes with a crashing leader's
    // final release-broadcast: if we observe ourselves as the new leader,
    // the predecessor's last stable notice is visible below.
    const bool is_leader =
        leader_.load(std::memory_order_acquire) == static_cast<std::int32_t>(replica_id);
    // Apply any pending stable notice first, leader or not (Alg. 4 lines
    // 13-15): a replica that just took over leadership must discard the
    // prefix the previous leader already shipped before it emits, or the
    // failover would re-emit (and double-count) those ops.
    const Timestamp notice = state.stable_notice.load(std::memory_order_acquire);
    if (notice > applied_notice) {  // skip re-applying an unchanged notice
      state.logic->OnStableNotice(notice);
      applied_notice = notice;
    }
    if (is_leader) {
      stable_ops.clear();
      const auto result = state.logic->ProcessStable(&stable_ops);
      if (result.stable_time > 0) {
        // STABLE broadcast (Alg. 4 line 12) — before the sink, so a crash
        // injected from the sink callback hands over to a follower that
        // already holds the notice covering this emission.
        for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
          if (r != replica_id && replicas_[r]->alive.load(std::memory_order_relaxed)) {
            Timestamp cur = replicas_[r]->stable_notice.load(std::memory_order_relaxed);
            while (cur < result.stable_time &&
                   !replicas_[r]->stable_notice.compare_exchange_weak(
                       cur, result.stable_time, std::memory_order_release,
                       std::memory_order_relaxed)) {
            }
          }
        }
      }
      if (result.emitted > 0) {
        ops_stabilized_.fetch_add(result.emitted, std::memory_order_relaxed);
        fanout_.Emit(stable_ops);
      }
    }
    SleepMicros(options_.stable_period_us);
  }
}

}  // namespace eunomia
