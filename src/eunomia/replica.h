// Fault-tolerant Eunomia replica — Algorithm 4 of the paper.
//
// Each replica e_f embeds an EunomiaCore (Ops_f + PartitionTime_f). Batches
// from partitions may contain duplicates (the ReplicatedSender resends
// everything unacknowledged); NEW_BATCH filters them by comparing against
// PartitionTime_f[p_n] and returns the cumulative ACK for that partition.
//
// Only the current leader runs PROCESS_STABLE and ships ordered updates to
// remote datacenters; it then broadcasts the StableTime so followers can
// discard the ops the leader already processed (Alg. 4 lines 13-15). The
// leader is an optimization, not a correctness requirement: replicas do not
// coordinate, their outputs are deterministic functions of their inputs, so
// any replica can take over mid-stream and at worst re-ship a suffix that
// receivers deduplicate via SiteTime (see src/georep/receiver.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/core.h"
#include "src/eunomia/op.h"

namespace eunomia {

class EunomiaReplica {
 public:
  EunomiaReplica(std::uint32_t replica_id, std::uint32_t num_partitions,
                 ordbuf::Backend backend = ordbuf::Backend::kPartitionRun)
      : replica_id_(replica_id), core_(num_partitions, 0, backend) {}

  std::uint32_t replica_id() const { return replica_id_; }

  // NEW_BATCH (Alg. 4 lines 1-5). `batch` must be in timestamp order (the
  // senders guarantee it). Returns PartitionTime_f[p_n] — the cumulative
  // acknowledgement for the sending partition.
  Timestamp NewBatch(std::span<const OpRecord> batch, PartitionId partition) {
    // Re-sent duplicates (ops already seen) form a prefix of the ordered
    // batch — filtered per Alg. 4 line 2 *before* the core, so they are not
    // miscounted as Property 2 violations; the rest bulk-inserts through
    // the hinted run path.
    std::size_t first_new = 0;
    const Timestamp seen = core_.partition_time(partition);
    while (first_new < batch.size() && batch[first_new].ts <= seen) {
      ++first_new;
    }
    if (first_new < batch.size()) {
      core_.AddBatch(batch.subspan(first_new));
    }
    return core_.partition_time(partition);
  }

  void Heartbeat(PartitionId partition, Timestamp ts) {
    core_.Heartbeat(partition, ts);
  }

  // Leader path: PROCESS_STABLE (Alg. 4 lines 6-12). Emits stable ops in
  // order and returns the new StableTime to broadcast to the followers.
  struct StableResult {
    Timestamp stable_time = 0;
    std::size_t emitted = 0;
  };
  StableResult ProcessStable(std::vector<OpRecord>* out) {
    StableResult result;
    result.stable_time = core_.StableTime();
    result.emitted = core_.ProcessStable(out);
    return result;
  }

  // Follower path: STABLE(StableTime) (Alg. 4 lines 13-15) — drop ops the
  // leader already shipped. Followers discard *by the notified bound*, not
  // by recomputing their own StableTime: the leader may have heard from
  // partitions this replica has not, and the notice is authoritative.
  void OnStableNotice(Timestamp stable_time) {
    if (stable_time == 0) {
      return;
    }
    discard_buffer_.clear();
    core_.ForceExtractUpTo(stable_time, &discard_buffer_);
  }

  const EunomiaCore& core() const { return core_; }
  EunomiaCore& core() { return core_; }

 private:
  std::uint32_t replica_id_;
  EunomiaCore core_;
  std::vector<OpRecord> discard_buffer_;
};

}  // namespace eunomia
