// Leader election hook for the fault-tolerant Eunomia service.
//
// The paper (§3.3) notes that "the existence of a unique leader is not
// required for the correctness of the algorithm; it is simply a mechanism to
// save network resources. Thus, any leader election protocol designed for
// asynchronous systems (such as Ω) can be plugged into our implementation."
//
// We provide the classic Ω-style eventual leader detector over a
// heartbeat-monitored membership: the leader is the lowest-id replica not
// currently suspected. Suspicion is driven by the embedding layer (simulator
// or native service) reporting last-heard-from times.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace eunomia {

class OmegaDetector {
 public:
  // timeout_us: a replica silent for longer than this is suspected.
  OmegaDetector(std::uint32_t num_replicas, std::uint64_t timeout_us)
      : last_heard_(num_replicas, 0), timeout_us_(timeout_us) {}

  std::uint32_t num_replicas() const {
    return static_cast<std::uint32_t>(last_heard_.size());
  }

  // Records a heartbeat (or any message) from `replica` at local time now.
  void OnAlive(std::uint32_t replica, std::uint64_t now_us) {
    if (replica < last_heard_.size() && now_us > last_heard_[replica]) {
      last_heard_[replica] = now_us;
    }
  }

  // Marks a replica as permanently removed from the membership.
  void Remove(std::uint32_t replica) {
    if (replica < last_heard_.size()) {
      removed_.resize(last_heard_.size(), false);
      removed_[replica] = true;
    }
  }

  bool Suspected(std::uint32_t replica, std::uint64_t now_us) const {
    if (replica < removed_.size() && removed_[replica]) {
      return true;
    }
    return now_us > last_heard_[replica] + timeout_us_;
  }

  // The current leader: lowest-id unsuspected replica, or nullopt if all
  // are suspected.
  std::optional<std::uint32_t> Leader(std::uint64_t now_us) const {
    for (std::uint32_t r = 0; r < last_heard_.size(); ++r) {
      if (!Suspected(r, now_us)) {
        return r;
      }
    }
    return std::nullopt;
  }

 private:
  std::vector<std::uint64_t> last_heard_;
  std::vector<bool> removed_;
  std::uint64_t timeout_us_;
};

}  // namespace eunomia
