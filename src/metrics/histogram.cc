#include "src/metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace eunomia::metrics {

Histogram::Histogram(std::string name, std::string help, Labels labels)
    : Metric(std::move(name), std::move(help), std::move(labels)),
      stripes_(new Stripe[kStripes]) {}

std::size_t Histogram::StripeIndex() {
  // Threads are assigned stripes round-robin on first Record from that
  // thread (across all histograms — one thread, one stripe). Round-robin
  // spreads the common fixed thread pools (shard loops, transport
  // read/write pairs) more evenly than hashing opaque thread ids.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

void Histogram::Record(std::uint64_t value) {
  Stripe& stripe = stripes_[StripeIndex()];
  stripe.buckets[static_cast<std::size_t>(BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
}

int Histogram::BucketFor(std::uint64_t value) {
  constexpr std::uint64_t kLinearMax = 1ULL << kSubBucketBits;  // 32
  if (value < kLinearMax) return static_cast<int>(value);
  const int octave = 63 - std::countl_zero(value);
  const int shift = octave - kSubBucketBits;
  const int sub = static_cast<int>((value >> shift) & (kLinearMax - 1));
  const int bucket = ((octave - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

std::uint64_t Histogram::BucketUpperBound(int bucket) {
  constexpr int kLinearMax = 1 << kSubBucketBits;  // 32
  if (bucket < kLinearMax) return static_cast<std::uint64_t>(bucket);
  const int octave_index = (bucket >> kSubBucketBits) - 1;
  const int sub = bucket & (kLinearMax - 1);
  if (octave_index + kSubBucketBits >= 64) {
    // Buckets past the one holding UINT64_MAX are unreachable from
    // BucketFor; saturate instead of shifting past the word.
    return ~0ULL;
  }
  const std::uint64_t base = 1ULL << (octave_index + kSubBucketBits);
  return base +
         ((static_cast<std::uint64_t>(sub) + 1) << octave_index) - 1;
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  for (std::size_t s = 0; s < kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    snap.count += stripe.count.load(std::memory_order_relaxed);
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; ++b) {
      snap.buckets[static_cast<std::size_t>(b)] +=
          stripe.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  return snap;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kStripes; ++s) {
    total += stripes_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Snapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

std::uint64_t Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

std::uint64_t Histogram::Snapshot::Max() const {
  for (int b = kNumBuckets - 1; b >= 0; --b) {
    if (buckets[static_cast<std::size_t>(b)] != 0) return BucketUpperBound(b);
  }
  return 0;
}

void Histogram::AppendSeries(std::string* out) const {
  const Snapshot snap = Snap();
  // Only non-empty buckets are emitted (cumulatively) — a 2048-bucket
  // histogram would otherwise dominate every scrape. Prometheus treats a
  // missing le as "same cumulative count as the previous one", so this is
  // lossless. +Inf is always present, as the format requires.
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t in_bucket = snap.buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    out->append(name());
    out->append("_bucket");
    out->append(LabelString("le", std::to_string(BucketUpperBound(b))));
    out->push_back(' ');
    out->append(std::to_string(cumulative));
    out->push_back('\n');
  }
  out->append(name());
  out->append("_bucket");
  out->append(LabelString("le", "+Inf"));
  out->push_back(' ');
  out->append(std::to_string(snap.count));
  out->push_back('\n');
  out->append(name());
  out->append("_sum");
  out->append(LabelString());
  out->push_back(' ');
  out->append(std::to_string(snap.sum));
  out->push_back('\n');
  out->append(name());
  out->append("_count");
  out->append(LabelString());
  out->push_back(' ');
  out->append(std::to_string(snap.count));
  out->push_back('\n');
}

}  // namespace eunomia::metrics
