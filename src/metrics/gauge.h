// Gauge: a value that goes up and down (queue depth, lag, occupancy).
// Set/Add are single relaxed atomic operations — wait-free. The value is a
// signed 64-bit integer; everything this tree gauges (depths, byte counts,
// microsecond lags) is integral, and integer exposition keeps the format
// pin in tests exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/metrics/metric.h"

namespace eunomia::metrics {

class Gauge final : public Metric {
 public:
  Gauge(std::string name, std::string help, Labels labels = {})
      : Metric(std::move(name), std::move(help), std::move(labels)) {}

  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }

  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  MetricType type() const override { return MetricType::kGauge; }

  void AppendSeries(std::string* out) const override {
    out->append(name());
    out->append(LabelString());
    out->push_back(' ');
    out->append(std::to_string(value()));
    out->push_back('\n');
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

}  // namespace eunomia::metrics
