// Counter: a monotonically increasing value (events since process start).
// Increment is one relaxed fetch_add — wait-free, safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/metrics/metric.h"

namespace eunomia::metrics {

class Counter final : public Metric {
 public:
  Counter(std::string name, std::string help, Labels labels = {})
      : Metric(std::move(name), std::move(help), std::move(labels)) {}

  void Increment() { Add(1); }
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  MetricType type() const override { return MetricType::kCounter; }

  void AppendSeries(std::string* out) const override {
    out->append(name());
    out->append(LabelString());
    out->push_back(' ');
    out->append(std::to_string(value()));
    out->push_back('\n');
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace eunomia::metrics
