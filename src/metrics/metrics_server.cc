#include "src/metrics/metrics_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/metrics/registry.h"

namespace eunomia::metrics {

namespace {

// Parses "host:port" (or bare "port", meaning 127.0.0.1) into a sockaddr.
// Only IPv4 literals and "localhost" — this is a loopback debug endpoint,
// not a general listener.
bool ParseAddress(const std::string& address, sockaddr_in* out) {
  std::string host = "127.0.0.1";
  std::string port = address;
  const std::size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
  }
  if (host.empty() || host == "localhost") host = "127.0.0.1";
  char* end = nullptr;
  const long port_num = std::strtol(port.c_str(), &end, 10);
  if (end == port.c_str() || *end != '\0' || port_num < 0 ||
      port_num > 65535) {
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(port_num));
  return inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

std::string FormatAddress(const sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void SendResponse(int fd, const char* status, std::string_view body,
                  const char* content_type = "text/plain; charset=utf-8") {
  std::string response = "HTTP/1.0 ";
  response.append(status);
  response.append("\r\nContent-Type: ");
  response.append(content_type);
  response.append("\r\nContent-Length: ");
  response.append(std::to_string(body.size()));
  response.append("\r\nConnection: close\r\n\r\n");
  response.append(body);
  SendAll(fd, response);
}

}  // namespace

MetricsServer::MetricsServer(Registry* registry)
    : registry_(registry != nullptr ? registry : &Registry::Default()) {}

MetricsServer::~MetricsServer() { Stop(); }

std::string MetricsServer::Start(const std::string& address) {
  sockaddr_in addr;
  if (!ParseAddress(address, &addr)) {
    std::fprintf(stderr, "metrics: bad listen address \"%s\"\n",
                 address.c_str());
    return "";
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    std::fprintf(stderr, "metrics: cannot listen on \"%s\": %s\n",
                 address.c_str(), std::strerror(errno));
    ::close(fd);
    return "";
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return "";
  }
  listen_fd_ = fd;
  address_ = FormatAddress(bound);
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return address_;
}

void MetricsServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wakes the blocked accept() (returns EINVAL on Linux).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable)
    }
    // A stalled scraper must not wedge the single accept thread.
    timeval timeout{.tv_sec = 2, .tv_usec = 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    HandleConnection(client);
    ::close(client);
  }
}

void MetricsServer::HandleConnection(int fd) {
  // Read until the end of the request head (or a small cap — scrape
  // requests have no body worth reading).
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // not even a request line
  const std::string_view line(request.data(), line_end);
  if (line.substr(0, 4) != "GET ") {
    SendResponse(fd, "405 Method Not Allowed", "method not allowed\n");
    return;
  }
  const std::size_t path_end = line.find(' ', 4);
  const std::string_view path =
      line.substr(4, path_end == std::string_view::npos ? std::string_view::npos
                                                        : path_end - 4);
  if (path == "/metrics") {
    SendResponse(fd, "200 OK", registry_->TextExposition(),
                 "text/plain; version=0.0.4; charset=utf-8");
  } else if (path == "/healthz") {
    SendResponse(fd, "200 OK", "ok\n");
  } else {
    SendResponse(fd, "404 Not Found", "not found\n");
  }
}

bool HttpGet(const std::string& address, const std::string& path,
             std::string* body) {
  sockaddr_in addr;
  if (!ParseAddress(address, &addr)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  timeval timeout{.tv_sec = 5, .tv_usec = 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + address + "\r\n\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.0 200 ..." — status code is the second token.
  if (response.compare(0, 5, "HTTP/") != 0) return false;
  const std::size_t space = response.find(' ');
  if (space == std::string::npos ||
      response.compare(space + 1, 3, "200") != 0) {
    return false;
  }
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  if (body != nullptr) *body = response.substr(head_end + 4);
  return true;
}

double SeriesSum(const std::string& exposition, const std::string& name,
                 bool* found) {
  double total = 0.0;
  bool any = false;
  std::size_t line_start = 0;
  while (line_start < exposition.size()) {
    std::size_t eol = exposition.find('\n', line_start);
    if (eol == std::string::npos) {
      eol = exposition.size();
    }
    const std::string_view line(exposition.data() + line_start,
                                eol - line_start);
    const std::size_t value_base = line_start;
    line_start = eol + 1;
    if (line.size() <= name.size() || line[0] == '#' ||
        line.compare(0, name.size(), name) != 0) {
      continue;
    }
    const char next = line[name.size()];
    if (next != '{' && next != ' ') {
      continue;  // a longer family sharing this prefix
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      continue;
    }
    // The value runs from after the last space to end-of-line; strtod stops
    // at the newline on its own.
    total += std::strtod(exposition.c_str() + value_base + space + 1, nullptr);
    any = true;
  }
  if (found != nullptr) {
    *found = any;
  }
  return total;
}

}  // namespace eunomia::metrics
