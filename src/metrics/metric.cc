#include "src/metrics/metric.h"

namespace eunomia::metrics {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

namespace internal {

void AppendEscapedLabelValue(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendEscapedHelp(std::string* out, std::string_view help) {
  for (char c : help) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

}  // namespace internal

std::string Metric::LabelString(std::string_view extra_key,
                                std::string_view extra_value) const {
  if (labels_.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels_) {
    if (!first) out.push_back(',');
    first = false;
    out.append(key);
    out.append("=\"");
    internal::AppendEscapedLabelValue(&out, value);
    out.push_back('"');
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out.append(extra_key);
    out.append("=\"");
    internal::AppendEscapedLabelValue(&out, extra_value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

}  // namespace eunomia::metrics
