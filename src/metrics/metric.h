// Base type for the metrics subsystem (docs/METRICS.md): a named series
// with help text and static labels, renderable in the Prometheus text
// exposition format.
//
// Design rules the whole subsystem follows:
//   - Writes are wait-free. Every concrete metric keeps its state in
//     per-object relaxed atomics (histograms additionally stripe them per
//     thread group); no metric ever takes a lock on a hot path.
//   - Reads are merges. Scrapes load the atomics and aggregate; a scrape
//     observes each individual update atomically but the set of updates is
//     only loosely consistent across series — exactly the Prometheus
//     contract.
//   - Registration is cold. The registry serializes it under an annotated
//     sync::Mutex (kRankMetricsRegistry); after registration the registry
//     is never consulted again on the write path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eunomia::metrics {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

// Returns "counter" / "gauge" / "histogram" (the TYPE line spelling).
const char* MetricTypeName(MetricType type);

// Static labels attached at construction; {key, value} pairs. Order is
// preserved into the exposition, so tests can pin exact output.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Metric {
 public:
  Metric(std::string name, std::string help, Labels labels)
      : name_(std::move(name)), help_(std::move(help)),
        labels_(std::move(labels)) {}
  virtual ~Metric() = default;

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  virtual MetricType type() const = 0;

  // Appends this instance's sample line(s) — no HELP/TYPE header, the
  // registry emits that once per family. Must be callable concurrently
  // with writers (it only loads atomics).
  virtual void AppendSeries(std::string* out) const = 0;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const Labels& labels() const { return labels_; }

 protected:
  // Renders the label set as `{k="v",...}` (empty string when there are no
  // labels), optionally merged with one extra trailing label (histograms'
  // `le`). Values are escaped per the exposition format.
  std::string LabelString(std::string_view extra_key = {},
                          std::string_view extra_value = {}) const;

 private:
  const std::string name_;
  const std::string help_;
  const Labels labels_;
};

namespace internal {
// Exposition-format escaping for label values (\\, \", \n) and help text
// (\\, \n).
void AppendEscapedLabelValue(std::string* out, std::string_view value);
void AppendEscapedHelp(std::string* out, std::string_view help);
}  // namespace internal

}  // namespace eunomia::metrics
