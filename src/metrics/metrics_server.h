// MetricsServer: a deliberately tiny HTTP/1.0 endpoint for scrapes.
//
// One accept thread, one request per connection, two routes:
//   GET /metrics  -> the registry's text exposition
//   GET /healthz  -> "ok\n" (liveness for process supervisors)
// Anything else is a 404; anything that isn't a GET is a 405.
//
// It speaks raw POSIX sockets rather than net::Transport on purpose: the
// metrics library sits BELOW net in the layer DAG (net instruments itself
// via metrics), and an observability endpoint must keep working when the
// data-plane transport is the thing being debugged.
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace eunomia::metrics {

class Registry;

class MetricsServer {
 public:
  // Scrapes `registry` (defaults to Registry::Default()).
  explicit MetricsServer(Registry* registry = nullptr);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  // Binds + listens on `address` ("host:port"; bare "port" means
  // 127.0.0.1; port 0 picks an ephemeral port) and starts the accept
  // thread. Returns the bound "host:port" on success, "" on failure.
  std::string Start(const std::string& address);

  // Stops the accept thread and closes the socket. Idempotent; called by
  // the destructor.
  void Stop();

  // The bound "host:port" ("" before a successful Start).
  const std::string& address() const { return address_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Registry* const registry_;
  int listen_fd_ = -1;
  std::string address_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

// Minimal HTTP/1.0 GET client for self-scrapes (daemon smokes, CI bench
// artifacts, tests). On a 200 response fills *body and returns true.
bool HttpGet(const std::string& address, const std::string& path,
             std::string* body);

// Sum of every sample of metric family `name` in a text exposition (for a
// histogram, pass the full sample name, e.g. "..._count"). `found` (when
// non-null) reports whether at least one sample line matched — a counter
// legitimately at 0 is distinguishable from a missing series.
double SeriesSum(const std::string& exposition, const std::string& name,
                 bool* found = nullptr);

}  // namespace eunomia::metrics
