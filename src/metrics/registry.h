// MetricRegistry: the process-wide catalogue of metrics and the Prometheus
// text formatter.
//
// The registry is only involved at registration and scrape time — writes
// go straight to the metric objects (see metric.h for the wait-free
// contract). Registration takes an annotated sync::Mutex at
// kRankMetricsRegistry (950): metrics are created lazily from hot-ish
// paths that may already hold kRankConnSend (800, first frame on a
// connection) or kRankWalWriter (930, first fsync), so the registry rank
// sits above both; the scrape path takes only this mutex and then reads
// atomics, so it can never participate in a cycle with the data plane.
//
// Add* are get-or-create: asking for an existing (name, labels) pair
// returns the existing instance (type mismatch aborts — that is a
// programming error, like a rank violation). This makes registration
// idempotent, which benches that construct a service per rep rely on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.h"
#include "src/metrics/counter.h"
#include "src/metrics/gauge.h"
#include "src/metrics/histogram.h"
#include "src/metrics/metric.h"

namespace eunomia::metrics {

class Registry {
 public:
  Registry() = default;

  // The process-wide registry the MetricsServer scrapes by default and the
  // always-on net/wal instrumentation registers into. Leaked, never
  // destroyed (metrics may be recorded from detached threads at exit).
  static Registry& Default();

  std::shared_ptr<Counter> AddCounter(const std::string& name,
                                      const std::string& help,
                                      Labels labels = {}) EXCLUDES(mu_);
  std::shared_ptr<Gauge> AddGauge(const std::string& name,
                                  const std::string& help,
                                  Labels labels = {}) EXCLUDES(mu_);
  std::shared_ptr<Histogram> AddHistogram(const std::string& name,
                                          const std::string& help,
                                          Labels labels = {}) EXCLUDES(mu_);

  // Registers an externally constructed metric. Aborts on a (name, labels)
  // collision — external registration has no get-or-create fallback.
  void Register(std::shared_ptr<Metric> metric) EXCLUDES(mu_);

  // Looks up an already-registered metric; nullptr if absent. Mostly for
  // tests and smoke assertions.
  std::shared_ptr<Metric> Find(const std::string& name,
                               const Labels& labels = {}) const EXCLUDES(mu_);

  // Renders every registered metric in the Prometheus text exposition
  // format (version 0.0.4): one HELP/TYPE header per family, then each
  // instance's series. Families appear sorted by name; instances within a
  // family keep registration order. Formatting happens outside the
  // registry lock, off a snapshot of the metric list.
  std::string TextExposition() const EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);

 private:
  std::shared_ptr<Metric> FindLocked(const std::string& name,
                                     const Labels& labels) const
      REQUIRES(mu_);

  mutable sync::Mutex mu_{"metrics::Registry::mu_",
                          sync::kRankMetricsRegistry};
  std::vector<std::shared_ptr<Metric>> metrics_ GUARDED_BY(mu_);
};

}  // namespace eunomia::metrics
