// Histogram: fixed-bucket log-linear latency/size histogram with wait-free
// recording.
//
// Bucket scheme — identical to common::LatencyHistogram (stats.h) so a
// scrape and a bench summary of the same stream agree: values 0..31 get
// exact buckets; above that each power-of-two octave is split into 32
// linear sub-buckets (kSubBucketBits = 5), giving ~2% relative error over
// the full uint64 range in 2048 buckets.
//
// Concurrency: recording is 3 relaxed fetch_adds into one of kStripes
// cache-line-isolated shards; threads are assigned stripes round-robin on
// first use. No locks, no CAS loops — writers can never stall each other
// or a scrape. Scrapes (Snap / AppendSeries) sum the stripes; the result
// is loosely consistent across buckets, which is all the exposition format
// promises. Max() is approximated as the upper bound of the highest
// non-empty bucket (exact tracking would need a CAS loop on the record
// path, breaking wait-freedom for a number nobody alerts on).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/metrics/metric.h"

namespace eunomia::metrics {

class Histogram final : public Metric {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kNumBuckets = 64 << kSubBucketBits;  // 2048
  static constexpr std::size_t kStripes = 8;

  Histogram(std::string name, std::string help, Labels labels = {});

  // Wait-free; safe from any thread, any lock context.
  void Record(std::uint64_t value);

  // A merged point-in-time view. All derived statistics (quantiles, mean)
  // are computed on snapshots so the endpoint and the benches share one
  // code path.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;  // kNumBuckets entries

    double Mean() const;
    // q in [0, 1]; returns the upper bound of the bucket holding the
    // q-quantile observation (0 when empty).
    std::uint64_t Quantile(double q) const;
    std::uint64_t Percentile(double p) const { return Quantile(p / 100.0); }
    std::uint64_t Max() const;
  };
  Snapshot Snap() const;

  // Merged observation count (cheaper than a full Snap).
  std::uint64_t count() const;

  MetricType type() const override { return MetricType::kHistogram; }
  void AppendSeries(std::string* out) const override;

  static int BucketFor(std::uint64_t value);
  static std::uint64_t BucketUpperBound(int bucket);

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  };
  static std::size_t StripeIndex();

  const std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace eunomia::metrics
