#include "src/metrics/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace eunomia::metrics {

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

std::shared_ptr<Metric> Registry::FindLocked(const std::string& name,
                                             const Labels& labels) const {
  for (const std::shared_ptr<Metric>& metric : metrics_) {
    if (metric->name() == name && metric->labels() == labels) return metric;
  }
  return nullptr;
}

namespace {

[[noreturn]] void DieOnTypeMismatch(const std::string& name,
                                    MetricType want, MetricType have) {
  std::fprintf(stderr,
               "metrics: \"%s\" registered as %s but requested as %s\n",
               name.c_str(), MetricTypeName(have), MetricTypeName(want));
  std::abort();
}

template <typename T>
std::shared_ptr<T> CastOrDie(std::shared_ptr<Metric> metric, MetricType want,
                             const std::string& name) {
  if (metric->type() != want) {
    DieOnTypeMismatch(name, want, metric->type());
  }
  return std::static_pointer_cast<T>(std::move(metric));
}

}  // namespace

std::shared_ptr<Counter> Registry::AddCounter(const std::string& name,
                                              const std::string& help,
                                              Labels labels) {
  sync::MutexLock lock(mu_);
  if (std::shared_ptr<Metric> existing = FindLocked(name, labels)) {
    return CastOrDie<Counter>(std::move(existing), MetricType::kCounter, name);
  }
  auto counter = std::make_shared<Counter>(name, help, std::move(labels));
  metrics_.push_back(counter);
  return counter;
}

std::shared_ptr<Gauge> Registry::AddGauge(const std::string& name,
                                          const std::string& help,
                                          Labels labels) {
  sync::MutexLock lock(mu_);
  if (std::shared_ptr<Metric> existing = FindLocked(name, labels)) {
    return CastOrDie<Gauge>(std::move(existing), MetricType::kGauge, name);
  }
  auto gauge = std::make_shared<Gauge>(name, help, std::move(labels));
  metrics_.push_back(gauge);
  return gauge;
}

std::shared_ptr<Histogram> Registry::AddHistogram(const std::string& name,
                                                  const std::string& help,
                                                  Labels labels) {
  sync::MutexLock lock(mu_);
  if (std::shared_ptr<Metric> existing = FindLocked(name, labels)) {
    return CastOrDie<Histogram>(std::move(existing), MetricType::kHistogram,
                                name);
  }
  auto histogram = std::make_shared<Histogram>(name, help, std::move(labels));
  metrics_.push_back(histogram);
  return histogram;
}

void Registry::Register(std::shared_ptr<Metric> metric) {
  sync::MutexLock lock(mu_);
  if (FindLocked(metric->name(), metric->labels()) != nullptr) {
    std::fprintf(stderr, "metrics: duplicate registration of \"%s\"\n",
                 metric->name().c_str());
    std::abort();
  }
  metrics_.push_back(std::move(metric));
}

std::shared_ptr<Metric> Registry::Find(const std::string& name,
                                       const Labels& labels) const {
  sync::MutexLock lock(mu_);
  return FindLocked(name, labels);
}

std::size_t Registry::size() const {
  sync::MutexLock lock(mu_);
  return metrics_.size();
}

std::string Registry::TextExposition() const {
  std::vector<std::shared_ptr<Metric>> snapshot;
  {
    sync::MutexLock lock(mu_);
    snapshot = metrics_;
  }
  // Group families: sort by name, stably, so instances registered in order
  // (e.g. per-partition gauges) stay in order within their family.
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const std::shared_ptr<Metric>& a,
                      const std::shared_ptr<Metric>& b) {
                     return a->name() < b->name();
                   });
  std::string out;
  const std::string* current_family = nullptr;
  for (const std::shared_ptr<Metric>& metric : snapshot) {
    if (current_family == nullptr || *current_family != metric->name()) {
      current_family = &metric->name();
      out.append("# HELP ");
      out.append(metric->name());
      out.push_back(' ');
      internal::AppendEscapedHelp(&out, metric->help());
      out.push_back('\n');
      out.append("# TYPE ");
      out.append(metric->name());
      out.push_back(' ');
      out.append(MetricTypeName(metric->type()));
      out.push_back('\n');
    }
    metric->AppendSeries(&out);
  }
  return out;
}

}  // namespace eunomia::metrics
