#include "src/cure/cure.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace eunomia::geo {

CureSystem::CureSystem(sim::Simulator* sim, GeoConfig config)
    : sim_(sim),
      config_(std::move(config)),
      network_(sim, config_.network),
      router_(config_.partitions_per_dc),
      tracker_(config_.timeline_window_us, config_.num_dcs) {
  dcs_.resize(config_.num_dcs);
  Rng clock_rng = sim_->rng().Fork(0xC10C);
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    Datacenter& dc = dcs_[m];
    dc.id = m;
    for (std::uint32_t s = 0; s < config_.servers_per_dc; ++s) {
      dc.servers.push_back(std::make_unique<sim::Server>(sim_));
    }
    dc.partitions.resize(config_.partitions_per_dc);
    dc.partition_reports.assign(config_.partitions_per_dc,
                                VectorTimestamp(config_.num_dcs));
    dc.aggregator_endpoint = network_.Register(m);
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      Partition& part = dc.partitions[p];
      part.id = p;
      part.dc = m;
      part.server =
          dc.servers[store::ServerOfPartition(p, config_.servers_per_dc)].get();
      part.endpoint = network_.Register(m);
      const std::int64_t off = clock_rng.NextInRange(-config_.clocks.max_offset_us,
                                                     config_.clocks.max_offset_us);
      const double drift = (2.0 * clock_rng.NextDouble() - 1.0) *
                           config_.clocks.max_drift_ppm;
      part.clock = PhysicalClock(off, drift);
      part.version_vector.assign(config_.num_dcs, 0);
      part.gss = VectorTimestamp(config_.num_dcs);
    }
  }
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      ScheduleHeartbeats(m, p);
    }
    ScheduleGssRound(m);
  }
}

bool CureSystem::VisibleUnder(const VectorTimestamp& gss,
                              const VectorTimestamp& vts, DatacenterId self) {
  for (DatacenterId d = 0; d < vts.size(); ++d) {
    if (d == self) {
      continue;  // dependencies on local updates are locally satisfied
    }
    if (gss[d] < vts[d]) {
      return false;
    }
  }
  return true;
}

void CureSystem::ScheduleHeartbeats(DatacenterId dc, PartitionId p) {
  sim_->ScheduleAfter(config_.remote_hb_interval_us, [this, dc, p] {
    Partition& part = dcs_[dc].partitions[p];
    const Timestamp now_ts =
        std::max(part.clock.Read(sim_->now()), part.max_ts);
    // Vector-carrying heartbeats: costlier than GentleRain's scalars.
    const std::uint64_t msg_cost =
        config_.costs.stab_msg_us + config_.costs.vclock_entry_us * config_.num_dcs;
    part.server->SubmitPriority(msg_cost * (config_.num_dcs - 1), [] {});
    for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
      if (k == dc) {
        continue;
      }
      network_.Send(part.endpoint, dcs_[k].partitions[p].endpoint,
                    [this, k, p, dc, now_ts, msg_cost] {
                      Partition& sibling = dcs_[k].partitions[p];
                      sibling.server->SubmitPriority(msg_cost, [this, k, p, dc, now_ts] {
                        Partition& s = dcs_[k].partitions[p];
                        s.version_vector[dc] =
                            std::max(s.version_vector[dc], now_ts);
                      });
                    });
    }
    ScheduleHeartbeats(dc, p);
  });
}

void CureSystem::ScheduleGssRound(DatacenterId dc) {
  sim_->ScheduleAfter(config_.gst_interval_us, [this, dc] {
    Datacenter& d = dcs_[dc];
    const std::uint64_t compute_cost =
        config_.costs.gst_compute_us +
        config_.costs.vclock_entry_us * config_.num_dcs;
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      Partition& part = d.partitions[p];
      part.server->SubmitPriority(compute_cost, [this, dc, p] {
        Datacenter& dd = dcs_[dc];
        Partition& pp = dd.partitions[p];
        VectorTimestamp report(config_.num_dcs);
        for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
          report[k] = pp.version_vector[k];
        }
        network_.Send(pp.endpoint, dd.aggregator_endpoint, [this, dc, p, report] {
          Datacenter& ddd = dcs_[dc];
          ddd.partition_reports[p] = report;
          // Once every partition reported for this round, compute and
          // broadcast exactly once, then arm the next (self-clocking) round.
          if (++ddd.reports_outstanding < config_.partitions_per_dc) {
            return;
          }
          ddd.reports_outstanding -= config_.partitions_per_dc;
          ScheduleGssRound(dc);
          // Per-entry minimum across partitions.
          VectorTimestamp gss = ddd.partition_reports[0];
          for (PartitionId q = 1; q < config_.partitions_per_dc; ++q) {
            for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
              gss[k] = std::min(gss[k], ddd.partition_reports[q][k]);
            }
          }
          const std::uint64_t msg_cost =
              config_.costs.stab_msg_us +
              config_.costs.vclock_entry_us * config_.num_dcs;
          for (PartitionId q = 0; q < config_.partitions_per_dc; ++q) {
            network_.Send(ddd.aggregator_endpoint, ddd.partitions[q].endpoint,
                          [this, dc, q, gss, msg_cost] {
                            Partition& target = dcs_[dc].partitions[q];
                            target.server->SubmitPriority(
                                msg_cost, [this, dc, q, gss] {
                                  AdvanceGss(dcs_[dc].partitions[q], gss);
                                });
                          });
          }
        });
      });
    }
  });
}

void CureSystem::AdvanceGss(Partition& part, const VectorTimestamp& gss) {
  bool advanced = false;
  for (DatacenterId k = 0; k < gss.size(); ++k) {
    if (gss[k] > part.gss[k]) {
      part.gss[k] = gss[k];
      advanced = true;
    }
  }
  if (!advanced) {
    return;
  }
  auto it = part.pending.begin();
  while (it != part.pending.end()) {
    if (VisibleUnder(part.gss, it->vts, part.dc)) {
      tracker_.OnRemoteVisible(it->uid, part.dc, sim_->now());
      it = part.pending.erase(it);
    } else {
      ++it;
    }
  }
}

void CureSystem::ClientRead(ClientId client, DatacenterId dc, Key key,
                            std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  Partition& part = dcs_[dc].partitions[router_.Responsible(key)];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  const std::uint64_t cost =
      config_.costs.read_us + config_.costs.multiversion_us +
      config_.costs.vclock_entry_us * config_.num_dcs;
  sim_->ScheduleAfter(hop, [this, &part, client, key, done = std::move(done),
                            issued_at, dc, hop, cost] {
    part.server->Submit(cost, [this, &part, client, key, done, issued_at, dc,
                               hop] {
      const VectorTimestamp& gss = part.gss;
      const DatacenterId self = part.dc;
      const auto* version = part.store.Get(
          key, [&gss, self](const VectorStamp& s) {
            return VisibleUnder(gss, s.vts, self);
          });
      VectorTimestamp vts = version != nullptr ? version->stamp.vts
                                               : VectorTimestamp(config_.num_dcs);
      sim_->ScheduleAfter(hop, [this, client, vts = std::move(vts), done,
                                issued_at, dc] {
        auto [it, inserted] =
            sessions_.try_emplace(client, VectorTimestamp(config_.num_dcs));
        it->second.MergeMax(vts);
        tracker_.OnOpComplete(dc, /*is_update=*/false, sim_->now(),
                              sim_->now() - issued_at);
        done();
      });
    });
  });
}

void CureSystem::ClientUpdate(ClientId client, DatacenterId dc, Key key,
                              Value value, std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  Partition& part = dcs_[dc].partitions[router_.Responsible(key)];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  const std::uint64_t cost =
      config_.costs.update_us + config_.costs.multiversion_us +
      config_.costs.vclock_entry_us * config_.num_dcs;
  sim_->ScheduleAfter(hop, [this, &part, client, key, value = std::move(value),
                            done = std::move(done), issued_at, dc, hop,
                            cost]() mutable {
    part.server->Submit(cost, [this, &part, client, key,
                               value = std::move(value), done, issued_at, dc,
                               hop]() mutable {
      auto [sit, inserted] =
          sessions_.try_emplace(client, VectorTimestamp(config_.num_dcs));
      const VectorTimestamp deps = sit->second;
      const Timestamp phys = part.clock.Read(sim_->now());
      // Like GentleRain, Cure waits out clock skew: the commit timestamp
      // must exceed the client's dependency on this datacenter.
      const Timestamp dep_local = deps[part.dc];
      const std::uint64_t wait_us = dep_local >= phys ? (dep_local - phys + 1) : 0;
      sim_->ScheduleAfter(wait_us, [this, &part, client, key,
                                    value = std::move(value), deps, done,
                                    issued_at, dc, hop]() mutable {
        const Timestamp phys_now = part.clock.Read(sim_->now());
        const Timestamp ts = std::max(phys_now, part.max_ts + 1);
        part.max_ts = ts;
        VectorTimestamp vts = deps;
        vts[part.dc] = ts;
        part.store.Put(key, value, VectorStamp{vts}, part.dc, /*local=*/true);
        const std::uint64_t uid = tracker_.OnInstalled(part.dc, sim_->now());
        for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
          if (k == part.dc) {
            continue;
          }
          network_.Send(part.endpoint, dcs_[k].partitions[part.id].endpoint,
                        [this, k, pid = part.id, uid, key, value, vts,
                         origin = part.dc] {
                          DeliverRemote(k, pid, uid, key, value, vts, origin);
                        });
        }
        auto it = sessions_.find(client);
        if (it != sessions_.end()) {
          it->second = vts;
        }
        sim_->ScheduleAfter(hop, [this, done, issued_at, dc] {
          tracker_.OnOpComplete(dc, /*is_update=*/true, sim_->now(),
                                sim_->now() - issued_at);
          done();
        });
      });
    });
  });
}

void CureSystem::DeliverRemote(DatacenterId dc, PartitionId p, std::uint64_t uid,
                               Key key, Value value, VectorTimestamp vts,
                               DatacenterId origin) {
  Partition& part = dcs_[dc].partitions[p];
  tracker_.OnRemoteArrival(uid, dc, sim_->now());
  const std::uint64_t cost = config_.costs.apply_remote_us +
                             config_.costs.vclock_entry_us * config_.num_dcs;
  part.server->SubmitPriority(cost, [this, &part, uid, key, value = std::move(value),
                             vts = std::move(vts), origin]() mutable {
    const Timestamp commit_ts = vts[origin];
    part.store.Put(key, std::move(value), VectorStamp{vts}, origin,
                   /*local=*/false);
    part.version_vector[origin] =
        std::max(part.version_vector[origin], commit_ts);
    if (VisibleUnder(part.gss, vts, part.dc)) {
      tracker_.OnRemoteVisible(uid, part.dc, sim_->now());
    } else {
      part.pending.push_back({uid, vts, origin});
    }
  });
}

}  // namespace eunomia::geo
