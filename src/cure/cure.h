// Cure baseline (Akkoorath et al., ICDCS '16) — global stabilization with a
// vector clock per datacenter (§2, §7.2).
//
// Cure tracks causality with a vector with one entry per datacenter, so an
// update's visibility at a remote site is gated only on the entries it
// actually depends on — the visibility lower bound becomes the latency from
// the *originator* (like EunomiaKV, unlike GentleRain). The price is the
// metadata enrichment: every operation and every stabilization message
// carries and merges M-entry vectors, and the Global Stable Snapshot (GSS)
// aggregation computes per-entry minima. That overhead is charged on the
// partition servers, which is why Cure trades throughput for visibility
// latency in Fig. 1 / Fig. 5.
//
// Machinery mirrors our GentleRain implementation (same intervals: 10 ms
// cross-DC heartbeats, 5 ms local aggregation) with scalars replaced by
// vectors.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/clock/physical_clock.h"
#include "src/common/types.h"
#include "src/georep/config.h"
#include "src/georep/geo_system.h"
#include "src/georep/vclock.h"
#include "src/georep/visibility.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/store/hash_ring.h"
#include "src/store/versioned_store.h"

namespace eunomia::geo {

// Vector stamp adapter for the multi-version store.
struct VectorStamp {
  VectorTimestamp vts;
  const std::vector<Timestamp>& TotalOrderKey() const { return vts.entries(); }
};

class CureSystem final : public GeoSystem {
 public:
  CureSystem(sim::Simulator* sim, GeoConfig config);

  std::string name() const override { return "Cure"; }

  void ClientRead(ClientId client, DatacenterId dc, Key key,
                  std::function<void()> done) override;
  void ClientUpdate(ClientId client, DatacenterId dc, Key key, Value value,
                    std::function<void()> done) override;

  VisibilityTracker& tracker() override { return tracker_; }
  const VisibilityTracker& tracker() const override { return tracker_; }

  const VectorTimestamp& GssAt(DatacenterId dc, PartitionId partition) const {
    return dcs_[dc].partitions[partition].gss;
  }

 private:
  struct PendingVisibility {
    std::uint64_t uid = 0;
    VectorTimestamp vts;
    DatacenterId origin = 0;
  };

  struct Partition {
    PartitionId id = 0;
    DatacenterId dc = 0;
    sim::Server* server = nullptr;
    sim::EndpointId endpoint = 0;
    PhysicalClock clock;
    Timestamp max_ts = 0;
    store::MultiVersionStore<VectorStamp> store;
    std::vector<Timestamp> version_vector;  // latest heard per DC
    VectorTimestamp gss;                    // Global Stable Snapshot
    std::vector<PendingVisibility> pending;
  };

  struct Datacenter {
    DatacenterId id = 0;
    std::vector<std::unique_ptr<sim::Server>> servers;
    std::vector<Partition> partitions;
    sim::EndpointId aggregator_endpoint = 0;
    std::vector<VectorTimestamp> partition_reports;
    std::uint32_t reports_outstanding = 0;  // once-per-round broadcast gate
  };

  // Visibility predicate: every remote entry of vts (other than the local
  // datacenter's own) must be covered by the GSS.
  static bool VisibleUnder(const VectorTimestamp& gss, const VectorTimestamp& vts,
                           DatacenterId self);

  void ScheduleHeartbeats(DatacenterId dc, PartitionId p);
  void ScheduleGssRound(DatacenterId dc);
  void AdvanceGss(Partition& part, const VectorTimestamp& gss);
  void DeliverRemote(DatacenterId dc, PartitionId p, std::uint64_t uid, Key key,
                     Value value, VectorTimestamp vts, DatacenterId origin);

  sim::Simulator* sim_;
  GeoConfig config_;
  sim::Network network_;
  store::ConsistentHashRing router_;
  std::vector<Datacenter> dcs_;
  std::unordered_map<ClientId, VectorTimestamp> sessions_;
  VisibilityTracker tracker_;
};

}  // namespace eunomia::geo
