// Model of a loosely NTP-synchronized physical clock (§3.1).
//
// Each partition server owns a physical clock that is *not* perfectly
// synchronized: it has a constant offset from true time plus a drift rate.
// The paper requires correctness to be independent of synchronization
// precision — the protocol tests exercise this model with offsets far larger
// than anything NTP would leave behind.
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace eunomia {

class PhysicalClock {
 public:
  PhysicalClock() = default;

  // offset_us: constant error relative to true time (may be negative, but
  //   readings are clamped at 0 so timestamps remain unsigned).
  // drift_ppm: parts-per-million rate error (positive runs fast).
  PhysicalClock(std::int64_t offset_us, double drift_ppm)
      : offset_us_(offset_us), drift_ppm_(drift_ppm) {}

  // Reads the local clock given the true (simulator) time in microseconds.
  Timestamp Read(std::uint64_t true_time_us) const {
    const double drifted = static_cast<double>(true_time_us) * (1.0 + drift_ppm_ * 1e-6);
    const std::int64_t local = static_cast<std::int64_t>(drifted) + offset_us_;
    return local > 0 ? static_cast<Timestamp>(local) : 0;
  }

  std::int64_t offset_us() const { return offset_us_; }
  double drift_ppm() const { return drift_ppm_; }

  // NTP-style step correction: rewrites the offset so that Read(true_now)
  // lands on true_now. Used by tests that model periodic re-synchronization.
  void Discipline(std::uint64_t true_time_us) {
    const double drifted =
        static_cast<double>(true_time_us) * (1.0 + drift_ppm_ * 1e-6);
    offset_us_ = static_cast<std::int64_t>(true_time_us) -
                 static_cast<std::int64_t>(drifted);
  }

 private:
  std::int64_t offset_us_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace eunomia
