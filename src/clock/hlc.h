// Classic Hybrid Logical Clock (Kulkarni et al., OPODIS '14) — reference
// implementation.
//
// The paper cites HLC [24] as the foundation of its hybrid timestamps. The
// production protocol uses the compact scalar form in hybrid_clock.h; this
// file keeps the canonical (l, c) pair formulation, used by tests to check
// that the scalar form preserves HLC's key guarantees (causality capture and
// bounded divergence from physical time when clocks are synchronized).
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>

namespace eunomia {

struct HlcTimestamp {
  std::uint64_t l = 0;  // physical component (max physical time seen)
  std::uint32_t c = 0;  // logical component

  friend bool operator==(const HlcTimestamp&, const HlcTimestamp&) = default;
  friend std::strong_ordering operator<=>(const HlcTimestamp& a, const HlcTimestamp& b) {
    if (auto cmp = a.l <=> b.l; cmp != 0) {
      return cmp;
    }
    return a.c <=> b.c;
  }
};

class Hlc {
 public:
  // Local or send event at physical time pt.
  HlcTimestamp Tick(std::uint64_t pt) {
    const std::uint64_t old_l = now_.l;
    now_.l = std::max(old_l, pt);
    now_.c = (now_.l == old_l) ? now_.c + 1 : 0;
    return now_;
  }

  // Receive event: merge a remote timestamp at physical time pt.
  HlcTimestamp Merge(std::uint64_t pt, const HlcTimestamp& remote) {
    const std::uint64_t old_l = now_.l;
    now_.l = std::max({old_l, remote.l, pt});
    if (now_.l == old_l && now_.l == remote.l) {
      now_.c = std::max(now_.c, remote.c) + 1;
    } else if (now_.l == old_l) {
      now_.c += 1;
    } else if (now_.l == remote.l) {
      now_.c = remote.c + 1;
    } else {
      now_.c = 0;
    }
    return now_;
  }

  const HlcTimestamp& now() const { return now_; }

 private:
  HlcTimestamp now_;
};

}  // namespace eunomia
