// Hybrid timestamp generation — Algorithm 2 of the paper.
//
// A partition p_n tags an update with
//     MaxTs_n <- max(Clock_n, Clock_c + 1, MaxTs_n + 1)
// which merges physical time with a logical catch-up component: if a client
// clock (or a previous local update) is ahead of the physical clock the
// logical part moves forward instead of blocking, which is what makes the
// protocol "resilient to clock skew by avoiding artificial delays due to
// clock synchronization uncertainties" (§3.2).
//
// The same class decides when a heartbeat is due (Algorithm 2 lines 10-12):
// a heartbeat may only be emitted when the physical clock has moved at least
// delta past the last issued timestamp, which guarantees that the heartbeat
// timestamp exceeds every update the partition has sent (Property 2).
#pragma once

#include <algorithm>

#include "src/common/types.h"

namespace eunomia {

class HybridClock {
 public:
  HybridClock() = default;

  // Computes the timestamp for a new update given the partition's current
  // physical clock reading and the dependency clock carried by the client.
  // Strictly monotonic across calls (Property 2) and strictly greater than
  // client_clock (Property 1).
  Timestamp TimestampUpdate(Timestamp physical_now, Timestamp client_clock) {
    max_ts_ = std::max({physical_now, client_clock + 1, max_ts_ + 1});
    return max_ts_;
  }

  // Largest timestamp this partition has issued so far (MaxTs_n).
  Timestamp max_ts() const { return max_ts_; }

  // Heartbeat gate: Algorithm 2 line 11. A heartbeat carrying physical_now
  // is safe iff physical_now >= MaxTs_n + delta; the slack guarantees that
  // any update issued "right after" the heartbeat (still at physical_now)
  // will be tagged with a larger timestamp than the heartbeat carried.
  bool HeartbeatDue(Timestamp physical_now, Timestamp delta) const {
    return physical_now >= max_ts_ + delta;
  }

  // Observes an externally applied timestamp (e.g. a remote update written
  // into the local store) so that later local updates dominate it.
  void Observe(Timestamp ts) { max_ts_ = std::max(max_ts_, ts); }

 private:
  Timestamp max_ts_ = 0;
};

// Tie-free hybrid clock: all timestamps issued by partition p are congruent
// to p modulo `stride`, so no two partitions of a datacenter can ever issue
// equal timestamps (classic Lamport process-id tie-breaking, applied in the
// timestamp's low bits).
//
// Why this matters: the paper's Algorithm 5 keys the receiver's SiteTime and
// the dependency checks on the scalar local entry u.vts[k]. Two *concurrent*
// updates from different partitions of the same origin may legitimately
// share that scalar (the paper allows processing them in any order), which
// makes "have I applied u yet?" ambiguous at a remote receiver — e.g. after
// an Eunomia-replica failover re-ship, a fresh update can be mistaken for a
// duplicate of a same-timestamp sibling. Working in a stride-scaled domain
// (local clock reading -> reading * stride + partition) removes the
// ambiguity while preserving Properties 1 and 2.
//
// The whole timestamp domain is scaled: client clocks, heartbeats and
// stability cutoffs all live in stride-multiplied units, which is invisible
// to the protocol (timestamps are only ever compared, never interpreted as
// wall-clock durations).
class PartitionedHybridClock {
 public:
  PartitionedHybridClock() = default;
  PartitionedHybridClock(std::uint32_t partition, std::uint32_t stride)
      : partition_(partition), stride_(stride) {}

  // Timestamp for a new update given the raw physical clock reading (in
  // microseconds) and the dependency clock carried by the client (already in
  // the scaled domain). Strictly greater than both, strictly monotone, and
  // congruent to the partition id.
  Timestamp TimestampUpdate(Timestamp physical_us, Timestamp client_clock) {
    const Timestamp floor =
        std::max({physical_us * stride_, client_clock, max_ts_});
    max_ts_ = AlignUpStrict(floor);
    return max_ts_;
  }

  // Heartbeat gate and value (Alg. 2 lines 10-12, scaled domain). The
  // heartbeat value is aligned to the partition's residue and recorded so
  // that any later update strictly exceeds it.
  bool HeartbeatDue(Timestamp physical_us, Timestamp delta_us) const {
    return physical_us * stride_ >= max_ts_ + delta_us * stride_;
  }
  Timestamp HeartbeatValue(Timestamp physical_us) {
    max_ts_ = AlignUpStrict(std::max(physical_us * stride_, max_ts_));
    return max_ts_;
  }

  // Observes a timestamp this partition issued in a previous incarnation
  // (crash-recovery replay of the local install log): later updates must
  // strictly exceed every restored one even if the fresh physical clock
  // reads behind the old incarnation's. `scaled_ts` is already in the
  // stride-scaled domain and congruent to this partition's residue, so the
  // max preserves the congruence invariant.
  void Observe(Timestamp scaled_ts) { max_ts_ = std::max(max_ts_, scaled_ts); }

  Timestamp max_ts() const { return max_ts_; }
  std::uint32_t stride() const { return stride_; }

 private:
  // Smallest value > v congruent to partition_ (mod stride_).
  Timestamp AlignUpStrict(Timestamp v) const {
    const Timestamp base = (v / stride_) * stride_ + partition_;
    return base > v ? base : base + stride_;
  }

  std::uint32_t partition_ = 0;
  std::uint32_t stride_ = 1;
  Timestamp max_ts_ = 0;
};

}  // namespace eunomia
