// Red-black tree — the ordered buffer at the core of the Eunomia service.
//
// The paper (§6) reports that Eunomia is implemented "using a red-black
// tree, a self-balancing binary search tree optimized for insertions and
// deletions, which guarantees logarithmic search, insert and delete cost,
// and linear in-order traversal cost, a critical operation for Eunomia",
// and that it outperformed AVL trees for this workload. We therefore
// implement the tree from scratch (CLRS-style, sentinel-based) rather than
// wrapping std::map, and expose the one bulk operation Eunomia needs:
// ExtractUpTo, which removes and returns, in order, every element whose key
// is <= a stability bound.
//
// Keys are unique. Not thread-safe; the Eunomia service serializes access.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace eunomia {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class RedBlackTree {
 private:
  enum class Color : unsigned char { kRed, kBlack };

  struct Node {
    Key key;
    Value value;
    Node* left;
    Node* right;
    Node* parent;
    Color color;
  };

 public:
  RedBlackTree() {
    nil_ = new Node{Key{}, Value{}, nullptr, nullptr, nullptr, Color::kBlack};
    nil_->left = nil_->right = nil_->parent = nil_;
    root_ = nil_;
  }

  RedBlackTree(const RedBlackTree&) = delete;
  RedBlackTree& operator=(const RedBlackTree&) = delete;

  RedBlackTree(RedBlackTree&& other) noexcept { MoveFrom(std::move(other)); }
  RedBlackTree& operator=(RedBlackTree&& other) noexcept {
    if (this != &other) {
      Clear();
      delete nil_;
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~RedBlackTree() {
    Clear();
    delete nil_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Opaque reference to a tree node, used as an insertion hint for run
  // inserts. Invalidated by any Erase / ExtractUpTo / Clear.
  using NodeRef = void*;

  // Inserts (key, value); returns false (and leaves the tree unchanged) if
  // the key is already present.
  bool Insert(const Key& key, Value value) {
    return InsertDescend(key, std::move(value)) != nullptr;
  }

  // Insert optimized for increasing runs — the shape of a Eunomia partition
  // batch. `hint` is the NodeRef returned by the previous insert of the run
  // (or nullptr to start one). When the hint is the new key's in-order
  // predecessor the attachment point is found without re-descending from the
  // root: O(1) for appends past the current maximum and for continuing a run
  // inside a gap. Any other case falls back to a normal root descent.
  // Returns the NodeRef of the inserted node, or nullptr if the key was a
  // duplicate.
  NodeRef InsertHinted(const Key& key, Value value, NodeRef hint) {
    Node* h = static_cast<Node*>(hint);
    if (h == nullptr || !cmp_(h->key, key)) {
      return InsertDescend(key, std::move(value));
    }
    if (h == rightmost_) {
      // Appending past the maximum: h->right is necessarily nil.
      return AttachChild(h, /*as_left=*/false, key, std::move(value));
    }
    if (h->right != nil_) {
      Node* succ = Minimum(h->right);
      if (cmp_(key, succ->key)) {
        return AttachChild(succ, /*as_left=*/true, key, std::move(value));
      }
      return InsertDescend(key, std::move(value));
    }
    // No right subtree: the successor is the lowest ancestor of which h lies
    // in the left subtree (O(1) when h is a left child, which is where run
    // inserts land).
    Node* a = h;
    Node* p = h->parent;
    while (p != nil_ && a == p->right) {
      a = p;
      p = p->parent;
    }
    if (p != nil_ && cmp_(key, p->key)) {
      return AttachChild(h, /*as_left=*/false, key, std::move(value));
    }
    return InsertDescend(key, std::move(value));
  }

  // Returns a pointer to the value for key, or nullptr.
  Value* Find(const Key& key) {
    Node* node = FindNode(key);
    return node == nil_ ? nullptr : &node->value;
  }
  const Value* Find(const Key& key) const {
    return const_cast<RedBlackTree*>(this)->Find(key);
  }

  bool Contains(const Key& key) const { return FindNode(key) != nil_; }

  // Removes key; returns false if absent.
  bool Erase(const Key& key) {
    Node* node = FindNode(key);
    if (node == nil_) {
      return false;
    }
    EraseNode(node);
    return true;
  }

  // Smallest key in the tree; requires !empty().
  const Key& MinKey() const {
    assert(!empty());
    return Minimum(root_)->key;
  }

  // The Eunomia stability operation: removes every element with key <= bound
  // and hands each to emit(const Key&, Value&&) in ascending key order.
  // Returns the number of elements extracted. O(k log n) for k extracted
  // elements. The callback form lets callers write extracted values straight
  // into their destination without staging (key, value) pairs.
  template <typename Emit>
  std::size_t ExtractUpToEmit(const Key& bound, Emit&& emit) {
    std::size_t extracted = 0;
    while (root_ != nil_) {
      Node* min = Minimum(root_);
      if (cmp_(bound, min->key)) {  // min > bound
        break;
      }
      emit(static_cast<const Key&>(min->key), std::move(min->value));
      EraseNode(min);
      ++extracted;
    }
    return extracted;
  }

  std::size_t ExtractUpTo(const Key& bound, std::vector<std::pair<Key, Value>>* out) {
    return ExtractUpToEmit(bound, [out](const Key& key, Value&& value) {
      out->emplace_back(key, std::move(value));
    });
  }

  // In-order visit of all elements (used by tests and the traversal bench).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachImpl(root_, fn);
  }

  void Clear() {
    ClearImpl(root_);
    root_ = nil_;
    size_ = 0;
    rightmost_ = nullptr;
  }

  // Verifies the red-black invariants; returns false on violation. Used by
  // the property tests after randomized insert/erase sequences.
  bool Validate() const {
    if (root_->color != Color::kBlack) {
      return false;
    }
    int black_height = -1;
    return ValidateImpl(root_, 0, &black_height);
  }

 private:
  void MoveFrom(RedBlackTree&& other) {
    nil_ = other.nil_;
    root_ = other.root_;
    size_ = other.size_;
    cmp_ = other.cmp_;
    rightmost_ = other.rightmost_;
    other.nil_ = new Node{Key{}, Value{}, nullptr, nullptr, nullptr, Color::kBlack};
    other.nil_->left = other.nil_->right = other.nil_->parent = other.nil_;
    other.root_ = other.nil_;
    other.size_ = 0;
    other.rightmost_ = nullptr;
  }

  // Classic top-down insert; returns the new node, or nullptr on duplicate.
  Node* InsertDescend(const Key& key, Value value) {
    Node* parent = nil_;
    Node* cur = root_;
    while (cur != nil_) {
      parent = cur;
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return nullptr;
      }
    }
    if (parent == nil_) {
      return AttachChild(parent, /*as_left=*/false, key, std::move(value));
    }
    return AttachChild(parent, cmp_(key, parent->key), key, std::move(value));
  }

  // Links a fresh red node below `parent` (which must have a nil slot on the
  // chosen side; parent == nil_ means "as root") and restores the invariants.
  Node* AttachChild(Node* parent, bool as_left, const Key& key, Value value) {
    Node* node = new Node{key, std::move(value), nil_, nil_, parent, Color::kRed};
    if (parent == nil_) {
      root_ = node;
    } else if (as_left) {
      assert(parent->left == nil_);
      parent->left = node;
    } else {
      assert(parent->right == nil_);
      parent->right = node;
    }
    if (rightmost_ == nullptr || cmp_(rightmost_->key, key)) {
      rightmost_ = node;
    }
    ++size_;
    InsertFixup(node);
    return node;
  }

  Node* FindNode(const Key& key) const {
    Node* cur = root_;
    while (cur != nil_) {
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return cur;
      }
    }
    return nil_;
  }

  Node* Minimum(Node* node) const {
    while (node->left != nil_) {
      node = node->left;
    }
    return node;
  }

  void LeftRotate(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nil_) {
      y->left->parent = x;
    }
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void RightRotate(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nil_) {
      y->right->parent = x;
    }
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void InsertFixup(Node* z) {
    while (z->parent->color == Color::kRed) {
      if (z->parent == z->parent->parent->left) {
        Node* uncle = z->parent->parent->right;
        if (uncle->color == Color::kRed) {
          z->parent->color = Color::kBlack;
          uncle->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          z = z->parent->parent;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            LeftRotate(z);
          }
          z->parent->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          RightRotate(z->parent->parent);
        }
      } else {
        Node* uncle = z->parent->parent->left;
        if (uncle->color == Color::kRed) {
          z->parent->color = Color::kBlack;
          uncle->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          z = z->parent->parent;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            RightRotate(z);
          }
          z->parent->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          LeftRotate(z->parent->parent);
        }
      }
    }
    root_->color = Color::kBlack;
  }

  void Transplant(Node* u, Node* v) {
    if (u->parent == nil_) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    v->parent = u->parent;
  }

  void EraseNode(Node* z) {
    const bool was_rightmost = (z == rightmost_);
    Node* y = z;
    Node* x;
    Color y_original = y->color;
    if (z->left == nil_) {
      x = z->right;
      Transplant(z, z->right);
    } else if (z->right == nil_) {
      x = z->left;
      Transplant(z, z->left);
    } else {
      y = Minimum(z->right);
      y_original = y->color;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // x may be nil_; its parent matters to the fixup
      } else {
        Transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      Transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->color = z->color;
    }
    delete z;
    --size_;
    if (y_original == Color::kBlack) {
      EraseFixup(x);
    }
    if (was_rightmost) {
      rightmost_ = root_ == nil_ ? nullptr : Maximum(root_);
    }
  }

  Node* Maximum(Node* node) const {
    while (node->right != nil_) {
      node = node->right;
    }
    return node;
  }

  void EraseFixup(Node* x) {
    while (x != root_ && x->color == Color::kBlack) {
      if (x == x->parent->left) {
        Node* w = x->parent->right;
        if (w->color == Color::kRed) {
          w->color = Color::kBlack;
          x->parent->color = Color::kRed;
          LeftRotate(x->parent);
          w = x->parent->right;
        }
        if (w->left->color == Color::kBlack && w->right->color == Color::kBlack) {
          w->color = Color::kRed;
          x = x->parent;
        } else {
          if (w->right->color == Color::kBlack) {
            w->left->color = Color::kBlack;
            w->color = Color::kRed;
            RightRotate(w);
            w = x->parent->right;
          }
          w->color = x->parent->color;
          x->parent->color = Color::kBlack;
          w->right->color = Color::kBlack;
          LeftRotate(x->parent);
          x = root_;
        }
      } else {
        Node* w = x->parent->left;
        if (w->color == Color::kRed) {
          w->color = Color::kBlack;
          x->parent->color = Color::kRed;
          RightRotate(x->parent);
          w = x->parent->left;
        }
        if (w->right->color == Color::kBlack && w->left->color == Color::kBlack) {
          w->color = Color::kRed;
          x = x->parent;
        } else {
          if (w->left->color == Color::kBlack) {
            w->right->color = Color::kBlack;
            w->color = Color::kRed;
            LeftRotate(w);
            w = x->parent->left;
          }
          w->color = x->parent->color;
          x->parent->color = Color::kBlack;
          w->left->color = Color::kBlack;
          RightRotate(x->parent);
          x = root_;
        }
      }
    }
    x->color = Color::kBlack;
  }

  template <typename Fn>
  void ForEachImpl(Node* node, Fn& fn) const {
    if (node == nil_) {
      return;
    }
    ForEachImpl(node->left, fn);
    fn(node->key, node->value);
    ForEachImpl(node->right, fn);
  }

  void ClearImpl(Node* node) {
    if (node == nil_) {
      return;
    }
    ClearImpl(node->left);
    ClearImpl(node->right);
    delete node;
  }

  bool ValidateImpl(Node* node, int blacks, int* expected_blacks) const {
    if (node == nil_) {
      if (*expected_blacks < 0) {
        *expected_blacks = blacks;
      }
      return blacks == *expected_blacks;
    }
    if (node->color == Color::kRed &&
        (node->left->color == Color::kRed || node->right->color == Color::kRed)) {
      return false;  // red node with red child
    }
    if (node->left != nil_ && !cmp_(node->left->key, node->key)) {
      return false;  // BST order violated
    }
    if (node->right != nil_ && !cmp_(node->key, node->right->key)) {
      return false;
    }
    const int next = blacks + (node->color == Color::kBlack ? 1 : 0);
    return ValidateImpl(node->left, next, expected_blacks) &&
           ValidateImpl(node->right, next, expected_blacks);
  }

  Node* nil_;
  Node* root_;
  // Cache of the maximum node, so hinted appends past the current maximum
  // skip the root descent entirely. nullptr when the tree is empty.
  Node* rightmost_ = nullptr;
  std::size_t size_ = 0;
  Compare cmp_;
};

}  // namespace eunomia
