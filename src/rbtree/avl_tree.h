// AVL tree with the same interface as RedBlackTree.
//
// The paper (§6) notes that "the red-black tree turned out to be more
// efficient than other self-balancing binary search trees such as AVL
// trees" for Eunomia's insert/extract-heavy workload. We keep a from-scratch
// AVL implementation so that `bench/ablation_ordered_buffer` can reproduce
// that design-choice comparison.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace eunomia {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class AvlTree {
 private:
  struct Node {
    Key key;
    Value value;
    Node* left = nullptr;
    Node* right = nullptr;
    int height = 1;
  };

 public:
  AvlTree() = default;
  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;
  AvlTree(AvlTree&& other) noexcept
      : root_(other.root_), size_(other.size_), cmp_(other.cmp_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  AvlTree& operator=(AvlTree&& other) noexcept {
    if (this != &other) {
      Clear();
      root_ = other.root_;
      size_ = other.size_;
      cmp_ = other.cmp_;
      other.root_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~AvlTree() { Clear(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Insert(const Key& key, Value value) {
    bool inserted = false;
    root_ = InsertImpl(root_, key, std::move(value), &inserted);
    if (inserted) {
      ++size_;
    }
    return inserted;
  }

  Value* Find(const Key& key) {
    Node* cur = root_;
    while (cur != nullptr) {
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return &cur->value;
      }
    }
    return nullptr;
  }
  const Value* Find(const Key& key) const {
    return const_cast<AvlTree*>(this)->Find(key);
  }
  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  bool Erase(const Key& key) {
    bool erased = false;
    root_ = EraseImpl(root_, key, &erased);
    if (erased) {
      --size_;
    }
    return erased;
  }

  const Key& MinKey() const {
    assert(!empty());
    const Node* cur = root_;
    while (cur->left != nullptr) {
      cur = cur->left;
    }
    return cur->key;
  }

  // Callback form mirroring RedBlackTree::ExtractUpToEmit: removes every
  // element with key <= bound, emitting each as emit(const Key&, Value&&) in
  // ascending key order.
  template <typename Emit>
  std::size_t ExtractUpToEmit(const Key& bound, Emit&& emit) {
    std::size_t extracted = 0;
    while (root_ != nullptr) {
      Node* min = root_;
      while (min->left != nullptr) {
        min = min->left;
      }
      if (cmp_(bound, min->key)) {
        break;
      }
      const Key key = min->key;  // EraseImpl below frees the node
      emit(static_cast<const Key&>(key), std::move(min->value));
      bool erased = false;
      root_ = EraseImpl(root_, key, &erased);
      assert(erased);
      --size_;
      ++extracted;
    }
    return extracted;
  }

  std::size_t ExtractUpTo(const Key& bound, std::vector<std::pair<Key, Value>>* out) {
    return ExtractUpToEmit(bound, [out](const Key& key, Value&& value) {
      out->emplace_back(key, std::move(value));
    });
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachImpl(root_, fn);
  }

  void Clear() {
    ClearImpl(root_);
    root_ = nullptr;
    size_ = 0;
  }

  // Checks the AVL balance and BST order invariants.
  bool Validate() const { return ValidateImpl(root_).ok; }

 private:
  static int HeightOf(const Node* n) { return n == nullptr ? 0 : n->height; }

  static void Update(Node* n) {
    n->height = 1 + std::max(HeightOf(n->left), HeightOf(n->right));
  }

  static int Balance(const Node* n) {
    return n == nullptr ? 0 : HeightOf(n->left) - HeightOf(n->right);
  }

  static Node* RotateRight(Node* y) {
    Node* x = y->left;
    y->left = x->right;
    x->right = y;
    Update(y);
    Update(x);
    return x;
  }

  static Node* RotateLeft(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    y->left = x;
    Update(x);
    Update(y);
    return y;
  }

  static Node* Rebalance(Node* node) {
    Update(node);
    const int balance = Balance(node);
    if (balance > 1) {
      if (Balance(node->left) < 0) {
        node->left = RotateLeft(node->left);
      }
      return RotateRight(node);
    }
    if (balance < -1) {
      if (Balance(node->right) > 0) {
        node->right = RotateRight(node->right);
      }
      return RotateLeft(node);
    }
    return node;
  }

  Node* InsertImpl(Node* node, const Key& key, Value&& value, bool* inserted) {
    if (node == nullptr) {
      *inserted = true;
      return new Node{key, std::move(value)};
    }
    if (cmp_(key, node->key)) {
      node->left = InsertImpl(node->left, key, std::move(value), inserted);
    } else if (cmp_(node->key, key)) {
      node->right = InsertImpl(node->right, key, std::move(value), inserted);
    } else {
      return node;  // duplicate
    }
    return Rebalance(node);
  }

  Node* EraseImpl(Node* node, const Key& key, bool* erased) {
    if (node == nullptr) {
      return nullptr;
    }
    if (cmp_(key, node->key)) {
      node->left = EraseImpl(node->left, key, erased);
    } else if (cmp_(node->key, key)) {
      node->right = EraseImpl(node->right, key, erased);
    } else {
      *erased = true;
      if (node->left == nullptr || node->right == nullptr) {
        Node* child = node->left != nullptr ? node->left : node->right;
        delete node;
        return child;  // child may be null
      }
      // Two children: replace with in-order successor, then erase it below.
      Node* succ = node->right;
      while (succ->left != nullptr) {
        succ = succ->left;
      }
      node->key = succ->key;
      node->value = std::move(succ->value);
      bool dummy = false;
      node->right = EraseImpl(node->right, succ->key, &dummy);
    }
    return Rebalance(node);
  }

  template <typename Fn>
  void ForEachImpl(const Node* node, Fn& fn) const {
    if (node == nullptr) {
      return;
    }
    ForEachImpl(node->left, fn);
    fn(node->key, node->value);
    ForEachImpl(node->right, fn);
  }

  void ClearImpl(Node* node) {
    if (node == nullptr) {
      return;
    }
    ClearImpl(node->left);
    ClearImpl(node->right);
    delete node;
  }

  struct ValidationResult {
    bool ok;
    int height;
    const Key* min;
    const Key* max;
  };

  ValidationResult ValidateImpl(const Node* node) const {
    if (node == nullptr) {
      return {true, 0, nullptr, nullptr};
    }
    const auto left = ValidateImpl(node->left);
    const auto right = ValidateImpl(node->right);
    if (!left.ok || !right.ok) {
      return {false, 0, nullptr, nullptr};
    }
    if (left.max != nullptr && !cmp_(*left.max, node->key)) {
      return {false, 0, nullptr, nullptr};
    }
    if (right.min != nullptr && !cmp_(node->key, *right.min)) {
      return {false, 0, nullptr, nullptr};
    }
    const int height = 1 + std::max(left.height, right.height);
    if (std::abs(left.height - right.height) > 1 || height != node->height) {
      return {false, 0, nullptr, nullptr};
    }
    return {true, height, left.min != nullptr ? left.min : &node->key,
            right.max != nullptr ? right.max : &node->key};
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Compare cmp_;
};

}  // namespace eunomia
