// Simulated sequencer-based geo-replicated systems — S-Seq and A-Seq (§2).
//
// S-Seq "relies on a sequencer per datacenter to compress metadata; it uses
// a vector with an entry per datacenter to track causality, as in
// [ChainReaction, SwiftCloud]". On every update the partition synchronously
// requests a monotonically increasing number from the local sequencer
// *before* returning to the client — two intra-DC hops plus sequencer
// queueing land squarely on the client's critical path.
//
// A-Seq is the paper's deliberately bogus variant: it "contacts the
// sequencer in parallel with applying the update. A-Seq does the same total
// amount of work as S-Seq and, although it fails to capture causality, it
// serves to reason about the potential benefits of removing sequencers from
// clients' critical operational path."
//
// Update propagation goes through the sequencer node, which ships updates to
// remote receivers in sequence order (buffering out-of-order completions).
// Client sessions and update stamps are vectors of per-DC sequence numbers;
// the standard Receiver (Alg. 5) applies them remotely.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/georep/config.h"
#include "src/georep/geo_store.h"
#include "src/georep/geo_system.h"
#include "src/georep/receiver.h"
#include "src/georep/remote_update.h"
#include "src/georep/visibility.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/store/hash_ring.h"

namespace eunomia::geo {

class SeqSystem final : public GeoSystem {
 public:
  enum class Mode {
    kSynchronous,   // S-Seq: sequencer round-trip in the critical path
    kAsynchronous,  // A-Seq: sequencer contacted in parallel (bogus)
  };

  SeqSystem(sim::Simulator* sim, GeoConfig config, Mode mode);

  std::string name() const override {
    return mode_ == Mode::kSynchronous ? "S-Seq" : "A-Seq";
  }

  void ClientRead(ClientId client, DatacenterId dc, Key key,
                  std::function<void()> done) override;
  void ClientUpdate(ClientId client, DatacenterId dc, Key key, Value value,
                    std::function<void()> done) override;

  VisibilityTracker& tracker() override { return tracker_; }
  const VisibilityTracker& tracker() const override { return tracker_; }

  // Straggler injection (§7.2.3): adds a constant extra delay on the
  // partition -> sequencer channel, modelling a partition whose
  // communication with the ordering service degrades. Pass 0 to heal.
  void SetPartitionSequencerDelay(DatacenterId dc, PartitionId partition,
                                  std::uint64_t extra_us);

  const GeoStore& StoreAt(DatacenterId dc, PartitionId partition) const {
    return dcs_[dc].partitions[partition].store;
  }
  const Receiver& ReceiverAt(DatacenterId dc) const { return *dcs_[dc].receiver; }
  const VectorTimestamp* SessionOf(ClientId client) const {
    const auto it = sessions_.find(client);
    return it == sessions_.end() ? nullptr : &it->second;
  }

 private:
  struct Partition {
    PartitionId id = 0;
    DatacenterId dc = 0;
    sim::Server* server = nullptr;
    sim::EndpointId endpoint = 0;
    GeoStore store;
  };

  struct PendingShip {
    RemoteUpdate meta;
    Value value;
  };

  struct Datacenter {
    DatacenterId id = 0;
    std::vector<std::unique_ptr<sim::Server>> servers;
    std::vector<Partition> partitions;
    // Sequencer node: assigns numbers and ships updates in sequence order.
    std::unique_ptr<sim::Server> seq_server;
    sim::EndpointId seq_endpoint = 0;
    std::uint64_t counter = 0;
    std::map<std::uint64_t, PendingShip> ship_buffer;  // seq -> update
    std::uint64_t next_to_ship = 1;
    // Receiver side.
    std::unique_ptr<Receiver> receiver;
    std::unique_ptr<sim::Server> receiver_server;
    sim::EndpointId receiver_endpoint = 0;
    std::unordered_map<std::uint64_t, Value> payloads;  // uid -> value
  };

  void RequestSequenceNumber(DatacenterId dc, PartitionId p,
                             std::function<void(std::uint64_t)> granted);
  void ShipReady(DatacenterId dc);
  void ApplyRemote(DatacenterId dc, const RemoteUpdate& meta,
                   std::function<void()> done);
  void ScheduleReceiverCheck(DatacenterId dc);
  void FinishUpdate(Partition& part, ClientId client, Key key, Value value,
                    std::uint64_t seq_number, std::uint64_t uid);

  sim::Simulator* sim_;
  GeoConfig config_;
  Mode mode_;
  sim::Network network_;
  store::ConsistentHashRing router_;
  std::vector<Datacenter> dcs_;
  std::unordered_map<ClientId, VectorTimestamp> sessions_;
  VisibilityTracker tracker_;
};

}  // namespace eunomia::geo
