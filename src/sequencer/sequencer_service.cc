#include "src/sequencer/sequencer_service.h"

#include <cassert>

namespace eunomia::seq {

// --- SequencerService --------------------------------------------------------

SequencerService::~SequencerService() { Stop(); }

void SequencerService::Start() {
  if (running_.exchange(true)) {
    return;
  }
  server_ = std::thread([this] { ServerLoop(); });
}

void SequencerService::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  queue_cv_.NotifyAll();
  if (server_.joinable()) {
    server_.join();
  }
  // Fail any stranded requests so callers unblock.
  sync::MutexLock lock(queue_mu_);
  for (Request* req : queue_) {
    sync::MutexLock rlock(req->mu);
    req->result = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    req->done = true;
    req->cv.NotifyOne();
  }
  queue_.clear();
}

std::uint64_t SequencerService::Next() {
  Request req;
  {
    sync::MutexLock lock(queue_mu_);
    queue_.push_back(&req);
  }
  queue_cv_.NotifyOne();
  sync::MutexLock rlock(req.mu);
  while (!req.done) {
    req.cv.Wait(req.mu);
  }
  return req.result;
}

void SequencerService::ServerLoop() {
  std::vector<Request*> batch;
  while (running_.load(std::memory_order_relaxed)) {
    {
      sync::MutexLock lock(queue_mu_);
      while (queue_.empty() && running_.load(std::memory_order_relaxed)) {
        queue_cv_.Wait(queue_mu_);
      }
      batch.swap(queue_);
    }
    // One request at a time: the sequencer cannot batch without blocking
    // clients (§7.1 "any attempt to batch requests at the sequencer blocks
    // clients").
    for (Request* req : batch) {
      const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
      sync::MutexLock rlock(req->mu);
      req->result = n;
      req->done = true;
      req->cv.NotifyOne();
    }
    batch.clear();
  }
}

// --- ChainSequencerService ---------------------------------------------------

ChainSequencerService::ChainSequencerService(std::uint32_t chain_length) {
  assert(chain_length >= 1);
  for (std::uint32_t i = 0; i < chain_length; ++i) {
    stages_.push_back(std::make_unique<Stage>());
  }
}

ChainSequencerService::~ChainSequencerService() { Stop(); }

void ChainSequencerService::Start() {
  if (running_.exchange(true)) {
    return;
  }
  for (std::uint32_t i = 0; i < stages_.size(); ++i) {
    stages_[i]->thread = std::thread([this, i] { StageLoop(i); });
  }
}

void ChainSequencerService::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  for (auto& stage : stages_) {
    stage->cv.NotifyAll();
  }
  for (auto& stage : stages_) {
    if (stage->thread.joinable()) {
      stage->thread.join();
    }
  }
  // Unblock stranded requests.
  for (auto& stage : stages_) {
    sync::MutexLock lock(stage->mu);
    for (auto& [req, value] : stage->queue) {
      sync::MutexLock rlock(req->mu);
      req->result = value;
      req->done = true;
      req->cv.NotifyOne();
    }
    stage->queue.clear();
  }
}

std::uint64_t ChainSequencerService::Next() {
  Request req;
  {
    // Head of the chain assigns the number.
    Stage& head = *stages_[0];
    sync::MutexLock lock(head.mu);
    head.queue.emplace_back(&req, 0);
  }
  stages_[0]->cv.NotifyOne();
  sync::MutexLock rlock(req.mu);
  while (!req.done) {
    req.cv.Wait(req.mu);
  }
  return req.result;
}

void ChainSequencerService::StageLoop(std::uint32_t index) {
  Stage& stage = *stages_[index];
  const bool is_head = index == 0;
  const bool is_tail = index + 1 == stages_.size();
  std::vector<std::pair<Request*, std::uint64_t>> batch;
  while (running_.load(std::memory_order_relaxed)) {
    {
      sync::MutexLock lock(stage.mu);
      while (stage.queue.empty() && running_.load(std::memory_order_relaxed)) {
        stage.cv.Wait(stage.mu);
      }
      batch.swap(stage.queue);
    }
    for (auto& [req, value] : batch) {
      if (is_head) {
        value = ++head_counter_;
      }
      stage.replicated_counter = value;  // every replica learns the number
      if (is_tail) {
        sync::MutexLock rlock(req->mu);
        req->result = value;
        req->done = true;
        req->cv.NotifyOne();
      } else {
        Stage& next = *stages_[index + 1];
        {
          sync::MutexLock lock(next.mu);
          next.queue.emplace_back(req, value);
        }
        next.cv.NotifyOne();
      }
    }
    batch.clear();
  }
}

}  // namespace eunomia::seq
