// Native sequencer services — the baseline of §7.1.
//
// "Our implementation of a sequencer mimics traditional implementations
// [SwiftCloud, ChainReaction]. In every update operation, datacenter
// partitions synchronously request a monotonically increasing number to the
// sequencer before returning to the client." The sequencer is a service
// running on its own node: every request is a blocking round-trip that the
// client (partition) must wait for — that synchrony, not the counter
// increment itself, is what throttles throughput.
//
// The fault-tolerant variant replicates the sequencer with chain replication
// (van Renesse & Schneider, OSDI '04): requests enter at the head, traverse
// the chain (each replica learning the assigned number), and the tail
// replies. Unlike Eunomia replicas, chain replicas must process requests in
// the same order — which is exactly why fault tolerance costs a sequencer
// ~33% while it costs Eunomia ~9% (Fig. 3).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/sync.h"

namespace eunomia::seq {

// Single blocking request/response channel used to mimic an RPC hop: the
// caller enqueues a request and blocks until the service thread fulfils it.
class SequencerService {
 public:
  SequencerService() = default;
  ~SequencerService();

  SequencerService(const SequencerService&) = delete;
  SequencerService& operator=(const SequencerService&) = delete;

  void Start();
  void Stop();

  // Blocking: returns the next monotonically increasing sequence number.
  std::uint64_t Next();

  std::uint64_t issued() const { return counter_.load(std::memory_order_relaxed); }

 private:
  struct Request {
    sync::Mutex mu{"SequencerService::Request::mu", sync::kRankSeqRequest};
    sync::CondVar cv;
    std::uint64_t result GUARDED_BY(mu) = 0;
    bool done GUARDED_BY(mu) = false;
  };

  void ServerLoop();

  sync::Mutex queue_mu_{"SequencerService::queue_mu_", sync::kRankSeqStage};
  sync::CondVar queue_cv_;
  std::vector<Request*> queue_ GUARDED_BY(queue_mu_);
  std::thread server_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> counter_{0};
};

class ChainSequencerService {
 public:
  explicit ChainSequencerService(std::uint32_t chain_length);
  ~ChainSequencerService();

  ChainSequencerService(const ChainSequencerService&) = delete;
  ChainSequencerService& operator=(const ChainSequencerService&) = delete;

  void Start();
  void Stop();

  // Blocking: the request traverses the whole chain before returning.
  std::uint64_t Next();

  std::uint32_t chain_length() const {
    return static_cast<std::uint32_t>(stages_.size());
  }

 private:
  struct Request {
    sync::Mutex mu{"ChainSequencerService::Request::mu",
                   sync::kRankSeqRequest};
    sync::CondVar cv;
    std::uint64_t result GUARDED_BY(mu) = 0;
    bool done GUARDED_BY(mu) = false;
  };

  struct Stage {
    sync::Mutex mu{"ChainSequencerService::Stage::mu", sync::kRankSeqStage};
    sync::CondVar cv;
    std::vector<std::pair<Request*, std::uint64_t>> queue GUARDED_BY(mu);
    std::thread thread;
    std::uint64_t replicated_counter = 0;  // owning stage thread only
  };

  void StageLoop(std::uint32_t index);

  std::vector<std::unique_ptr<Stage>> stages_;
  std::atomic<bool> running_{false};
  std::uint64_t head_counter_ = 0;
};

}  // namespace eunomia::seq
