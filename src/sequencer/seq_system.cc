#include "src/sequencer/seq_system.h"

#include <cassert>
#include <utility>

namespace eunomia::geo {

SeqSystem::SeqSystem(sim::Simulator* sim, GeoConfig config, Mode mode)
    : sim_(sim),
      config_(std::move(config)),
      mode_(mode),
      network_(sim, config_.network),
      router_(config_.partitions_per_dc),
      tracker_(config_.timeline_window_us, config_.num_dcs) {
  dcs_.resize(config_.num_dcs);
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    Datacenter& dc = dcs_[m];
    dc.id = m;
    for (std::uint32_t s = 0; s < config_.servers_per_dc; ++s) {
      dc.servers.push_back(std::make_unique<sim::Server>(sim_));
    }
    dc.partitions.resize(config_.partitions_per_dc);
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      Partition& part = dc.partitions[p];
      part.id = p;
      part.dc = m;
      part.server =
          dc.servers[store::ServerOfPartition(p, config_.servers_per_dc)].get();
      part.endpoint = network_.Register(m);
    }
    dc.seq_server = std::make_unique<sim::Server>(sim_);
    dc.seq_endpoint = network_.Register(m);
    dc.receiver_server = std::make_unique<sim::Server>(sim_);
    dc.receiver_endpoint = network_.Register(m);
    dc.receiver = std::make_unique<Receiver>(
        m, config_.num_dcs,
        [this, m](const RemoteUpdate& update, std::function<void()> done) {
          ApplyRemote(m, update, std::move(done));
        });
    ScheduleReceiverCheck(m);
  }
}

void SeqSystem::SetPartitionSequencerDelay(DatacenterId dc, PartitionId partition,
                                           std::uint64_t extra_us) {
  assert(dc < dcs_.size() && partition < config_.partitions_per_dc);
  Datacenter& d = dcs_[dc];
  network_.SetExtraDelay(d.partitions[partition].endpoint, d.seq_endpoint,
                         extra_us);
}

void SeqSystem::ScheduleReceiverCheck(DatacenterId dc) {
  sim_->ScheduleAfter(config_.rho_us, [this, dc] {
    dcs_[dc].receiver->CheckPending();
    ScheduleReceiverCheck(dc);
  });
}

void SeqSystem::ClientRead(ClientId client, DatacenterId dc, Key key,
                           std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  Partition& part = dcs_[dc].partitions[router_.Responsible(key)];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  sim_->ScheduleAfter(hop, [this, &part, client, key, done = std::move(done),
                            issued_at, dc, hop] {
    const std::uint64_t cost =
        config_.costs.read_us + config_.costs.eunomia_metadata_us;
    part.server->Submit(cost, [this, &part, client, key, done, issued_at, dc,
                               hop] {
      const GeoVersion* version = part.store.Get(key);
      VectorTimestamp vts = version != nullptr ? version->vts
                                               : VectorTimestamp(config_.num_dcs);
      sim_->ScheduleAfter(hop, [this, client, vts = std::move(vts), done,
                                issued_at, dc] {
        auto [it, inserted] =
            sessions_.try_emplace(client, VectorTimestamp(config_.num_dcs));
        it->second.MergeMax(vts);
        tracker_.OnOpComplete(dc, /*is_update=*/false, sim_->now(),
                              sim_->now() - issued_at);
        done();
      });
    });
  });
}

void SeqSystem::RequestSequenceNumber(DatacenterId dc, PartitionId p,
                                      std::function<void(std::uint64_t)> granted) {
  Datacenter& d = dcs_[dc];
  Partition& part = d.partitions[p];
  network_.Send(part.endpoint, d.seq_endpoint,
                [this, dc, p, granted = std::move(granted)] {
                  Datacenter& dd = dcs_[dc];
                  dd.seq_server->Submit(
                      config_.costs.seq_request_us, [this, dc, p, granted] {
                        Datacenter& ddd = dcs_[dc];
                        const std::uint64_t n = ++ddd.counter;
                        // RPC stack overhead (Erlang messaging/scheduling in
                        // the paper's testbed) — latency only, no capacity.
                        sim_->ScheduleAfter(
                            config_.costs.seq_rpc_overhead_us, [this, dc, p,
                                                                granted, n] {
                              Datacenter& d4 = dcs_[dc];
                              network_.Send(d4.seq_endpoint,
                                            d4.partitions[p].endpoint,
                                            [granted, n] { granted(n); });
                            });
                      });
                });
}

void SeqSystem::ClientUpdate(ClientId client, DatacenterId dc, Key key,
                             Value value, std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  const PartitionId p = router_.Responsible(key);
  Partition& part = dcs_[dc].partitions[p];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;

  sim_->ScheduleAfter(hop, [this, &part, client, key, value = std::move(value),
                            done = std::move(done), issued_at, dc, p,
                            hop]() mutable {
    const std::uint64_t cost =
        config_.costs.update_us + config_.costs.eunomia_metadata_us;
    part.server->Submit(cost, [this, &part, client, key,
                               value = std::move(value), done, issued_at, dc, p,
                               hop]() mutable {
      auto reply_client = [this, client, done, issued_at, dc, hop](
                              const VectorTimestamp* vts) {
        sim_->ScheduleAfter(hop, [this, client, done, issued_at, dc,
                                  vts_copy = vts != nullptr
                                                 ? *vts
                                                 : VectorTimestamp()] {
          if (vts_copy.size() > 0) {
            auto it = sessions_.find(client);
            if (it != sessions_.end()) {
              it->second = vts_copy;
            }
          }
          tracker_.OnOpComplete(dc, /*is_update=*/true, sim_->now(),
                                sim_->now() - issued_at);
          done();
        });
      };

      if (mode_ == Mode::kSynchronous) {
        // S-Seq: block until the sequencer grants the number (critical path).
        RequestSequenceNumber(dc, p, [this, &part, client, key,
                                      value = std::move(value), reply_client,
                                      dc](std::uint64_t n) mutable {
          const std::uint64_t uid = tracker_.OnInstalled(dc, sim_->now());
          FinishUpdate(part, client, key, std::move(value), n, uid);
          const auto it = sessions_.find(client);
          reply_client(it != sessions_.end() ? &it->second : nullptr);
        });
      } else {
        // A-Seq: reply immediately; the sequencer exchange happens in
        // parallel (same work, causality not captured).
        reply_client(nullptr);
        RequestSequenceNumber(dc, p, [this, &part, client, key,
                                      value = std::move(value),
                                      dc](std::uint64_t n) mutable {
          const std::uint64_t uid = tracker_.OnInstalled(dc, sim_->now());
          FinishUpdate(part, client, key, std::move(value), n, uid);
        });
      }
    });
  });
}

void SeqSystem::FinishUpdate(Partition& part, ClientId client, Key key,
                             Value value, std::uint64_t seq_number,
                             std::uint64_t uid) {
  const DatacenterId m = part.dc;
  auto [sit, inserted] =
      sessions_.try_emplace(client, VectorTimestamp(config_.num_dcs));
  VectorTimestamp vts = sit->second;
  vts[m] = seq_number;
  part.store.Put(key, value, vts, m);
  if (mode_ == Mode::kSynchronous) {
    sit->second = vts;
  }
  // Hand the update to the sequencer node for in-order shipping.
  RemoteUpdate meta{uid, key, vts, m, part.id};
  network_.Send(part.endpoint, dcs_[m].seq_endpoint,
                [this, m, meta, value = std::move(value), seq_number]() mutable {
                  Datacenter& d = dcs_[m];
                  d.ship_buffer.emplace(seq_number,
                                        PendingShip{meta, std::move(value)});
                  ShipReady(m);
                });
}

void SeqSystem::ShipReady(DatacenterId dc) {
  Datacenter& d = dcs_[dc];
  while (true) {
    const auto it = d.ship_buffer.find(d.next_to_ship);
    if (it == d.ship_buffer.end()) {
      return;
    }
    PendingShip ship = std::move(it->second);
    d.ship_buffer.erase(it);
    ++d.next_to_ship;
    d.seq_server->Submit(2, [] {});  // shipping bookkeeping at the sequencer
    for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
      if (k == dc) {
        continue;
      }
      network_.Send(d.seq_endpoint, dcs_[k].receiver_endpoint,
                    [this, k, meta = ship.meta, value = ship.value] {
                      Datacenter& rd = dcs_[k];
                      tracker_.OnRemoteArrival(meta.uid, k, sim_->now());
                      rd.payloads[meta.uid] = value;
                      rd.receiver_server->Submit(
                          config_.costs.receiver_op_us, [this, k, meta] {
                            dcs_[k].receiver->OnRemoteUpdate(meta);
                          });
                    });
    }
  }
}

void SeqSystem::ApplyRemote(DatacenterId dc, const RemoteUpdate& meta,
                            std::function<void()> done) {
  Datacenter& d = dcs_[dc];
  Partition& part = d.partitions[meta.partition];
  network_.Send(d.receiver_endpoint, part.endpoint,
                [this, dc, meta, done = std::move(done)] {
                  Datacenter& dd = dcs_[dc];
                  Partition& pp = dd.partitions[meta.partition];
                  pp.server->SubmitPriority(
                      config_.costs.apply_remote_us, [this, dc, meta, done] {
                        Datacenter& ddd = dcs_[dc];
                        Partition& ppp = ddd.partitions[meta.partition];
                        const auto pit = ddd.payloads.find(meta.uid);
                        Value value =
                            pit != ddd.payloads.end() ? std::move(pit->second)
                                                      : Value();
                        if (pit != ddd.payloads.end()) {
                          ddd.payloads.erase(pit);
                        }
                        ppp.store.Put(meta.key, std::move(value), meta.vts,
                                      meta.origin);
                        tracker_.OnRemoteVisible(meta.uid, dc, sim_->now());
                        done();
                      });
                });
}

}  // namespace eunomia::geo
