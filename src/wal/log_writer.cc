#include "src/wal/log_writer.h"

#include <chrono>
#include <utility>

#include "src/wal/wal_metrics.h"

namespace eunomia::wal {

namespace {

// Shared fsync hook: counts the sync and times it into the process-wide
// histogram. The LogWriter mutex is held here (kRankWalWriter); both
// metric writes are wait-free, and the lazy first registration nests under
// the higher-ranked registry mutex.
bool TimedSync(File* file) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const bool ok = file->Sync();
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);
  WalMetrics& wm = WalMetrics::Get();
  wm.fsyncs->Increment();
  wm.fsync_latency_us->Record(static_cast<std::uint64_t>(micros.count()));
  return ok;
}

}  // namespace

bool ParseFsyncPolicy(std::string_view text, FsyncPolicy* out) {
  if (text == "commit") {
    *out = FsyncPolicy::kPerCommit;
  } else if (text == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (text == "off") {
    *out = FsyncPolicy::kOff;
  } else {
    return false;
  }
  return true;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kPerCommit:
      return "commit";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

LogWriter::LogWriter(Disk* disk, std::string name, const Options& options)
    : disk_(disk), name_(std::move(name)), options_(options) {
  {
    sync::MutexLock lock(mu_);
    file_ = disk_->OpenAppend(name_);
    failed_ = file_ == nullptr;
  }
  if (options_.threaded) {
    writer_ = std::thread([this] { WriterLoop(); });
  }
}

LogWriter::~LogWriter() {
  {
    sync::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  if (writer_.joinable()) {
    writer_.join();
  }
}

bool LogWriter::SyncLocked() {
  if (file_ == nullptr || !TimedSync(file_.get())) {
    failed_ = true;
    return false;
  }
  durable_seq_ = written_seq_;
  unsynced_bytes_ = 0;
  return true;
}

bool LogWriter::Append(std::uint8_t type, std::string_view payload) {
  if (!options_.threaded) {
    // Inline mode: encode and write right here, deterministically.
    sync::MutexLock lock(mu_);
    if (failed_) {
      return false;
    }
    std::string frame;
    AppendRecord(&frame, type, payload);
    if (file_ == nullptr || !file_->Append(frame)) {
      failed_ = true;
      return false;
    }
    bytes_appended_.fetch_add(frame.size(), std::memory_order_relaxed);
    batches_written_.fetch_add(1, std::memory_order_relaxed);
    WalMetrics::Get().appended_bytes->Add(frame.size());
    written_seq_ = ++appended_seq_;
    switch (options_.policy) {
      case FsyncPolicy::kPerCommit:
        return SyncLocked();
      case FsyncPolicy::kInterval:
        unsynced_bytes_ += frame.size();
        if (unsynced_bytes_ >= options_.interval_bytes) {
          return SyncLocked();
        }
        return true;
      case FsyncPolicy::kOff:
        return true;
    }
    return true;
  }

  // Threaded mode: checksum and header outside the lock, so a large record
  // never stalls the writer thread or a concurrent committer behind the
  // CRC. The record is never materialized separately — header from the
  // stack plus the caller's payload go straight into the queue, which is
  // one 56KB-class copy (and one allocation) less per logged batch.
  char header[kRecordHeaderBytes];
  BuildRecordHeader(header, type, payload);
  std::uint64_t my_seq = 0;
  bool wake_writer = false;
  {
    sync::MutexLock lock(mu_);
    if (failed_) {
      return false;
    }
    // The writer only sleeps on an empty queue (or paused, and Compact does
    // its own wakeup): appending behind existing bytes means the writer is
    // awake and will drain ours in the same pass, so the futex syscall per
    // append collapses to one per wake-sleep cycle. On a single-core host
    // those wakeups were a measurable slice of the WAL's cost.
    wake_writer = pending_.empty();
    pending_.append(header, kRecordHeaderBytes);
    pending_.append(payload.data(), payload.size());
    my_seq = ++appended_seq_;
    pending_seq_ = my_seq;
  }
  if (wake_writer) {
    // Signal after unlocking: signaling with the mutex held wakes the writer
    // straight into a block on mu_ (no wait morphing), doubling the context
    // switches on the append fast path.
    work_cv_.NotifyOne();
  }
  if (options_.policy != FsyncPolicy::kPerCommit) {
    return true;
  }
  // Group commit: block until the writer thread has made this record's
  // batch durable. Committers queueing up here all ride the same fsync.
  sync::MutexLock lock(mu_);
  ++waiters_;
  while (durable_seq_ < my_seq && !failed_) {
    done_cv_.Wait(mu_);
  }
  --waiters_;
  return !failed_;
}

void LogWriter::WriterLoop() {
  using Clock = std::chrono::steady_clock;
  auto last_sync = Clock::now();
  const auto interval = std::chrono::microseconds(options_.interval_us);
  for (;;) {
    std::string batch;
    std::uint64_t batch_seq = 0;
    File* file = nullptr;
    {
      sync::MutexLock lock(mu_);
      bool sync_owed = false;
      for (;;) {
        if (stop_ && pending_.empty()) {
          // Drained. Deliberately no final sync: durability is defined by
          // the policy alone, so tests of "what survives kill -9" mean what
          // they say. Clean shutdowns call Flush() first.
          return;
        }
        if (paused_) {
          // Compact() owns the file while paused and folds pending_ into
          // its rewrite itself; just stay out of the way.
          work_cv_.Wait(mu_);
          continue;
        }
        if (!pending_.empty()) {
          break;
        }
        if (sync_target_ > durable_seq_ || sync_target_ > written_seq_) {
          sync_owed = true;  // a Flush() is waiting
          break;
        }
        if (options_.policy == FsyncPolicy::kInterval &&
            written_seq_ > durable_seq_) {
          // Idle with un-synced bytes: sync when the window expires.
          const auto deadline = last_sync + interval;
          if (Clock::now() >= deadline) {
            sync_owed = true;
            break;
          }
          work_cv_.WaitUntil(mu_, deadline);
          continue;
        }
        work_cv_.Wait(mu_);
      }
      if (sync_owed) {
        if (SyncLocked()) {
          last_sync = Clock::now();
        }
        if (waiters_ > 0) {
          done_cv_.NotifyAll();
        }
        continue;
      }
      batch = std::move(pending_);
      pending_.clear();
      batch_seq = pending_seq_;
      in_flight_ = true;
      file = file_.get();  // stays valid: Compact() waits for !in_flight_
    }
    // Write outside the lock so committers can keep queueing the next group
    // while this one is on its way to the platter.
    const bool ok = file != nullptr && file->Append(batch);
    bool notify_done;
    {
      sync::MutexLock lock(mu_);
      in_flight_ = false;
      if (!ok) {
        failed_ = true;
      } else {
        written_seq_ = batch_seq;
        bytes_appended_.fetch_add(batch.size(), std::memory_order_relaxed);
        batches_written_.fetch_add(1, std::memory_order_relaxed);
        WalMetrics::Get().appended_bytes->Add(batch.size());
        const bool want_sync =
            options_.policy == FsyncPolicy::kPerCommit ||
            sync_target_ > durable_seq_ ||
            (options_.policy == FsyncPolicy::kInterval &&
             Clock::now() - last_sync >= interval);
        if (want_sync && SyncLocked()) {
          last_sync = Clock::now();
        }
      }
      // Nobody to wake means no broadcast: under kInterval / kOff nothing
      // ever waits on done_cv_ outside Flush() and Compact(), so the
      // per-batch futex broadcast was pure syscall overhead. A committer or
      // flusher that registers after we drop the lock sees our state update
      // and either doesn't wait at all or waits for a later batch.
      notify_done = failed_ || waiters_ > 0;
    }
    if (notify_done) {
      done_cv_.NotifyAll();  // after unlocking, as above
    }
  }
}

bool LogWriter::Flush() {
  sync::MutexLock lock(mu_);
  if (failed_) {
    return false;
  }
  if (!options_.threaded) {
    if (options_.policy == FsyncPolicy::kOff ||
        durable_seq_ == written_seq_) {
      return true;
    }
    return SyncLocked();
  }
  const std::uint64_t target = appended_seq_;
  ++waiters_;
  if (options_.policy != FsyncPolicy::kOff) {
    if (target > sync_target_) {
      sync_target_ = target;
    }
    work_cv_.NotifyAll();
    while (durable_seq_ < target && !failed_) {
      done_cv_.Wait(mu_);
    }
  } else {
    work_cv_.NotifyAll();
    while (written_seq_ < target && !failed_) {
      done_cv_.Wait(mu_);
    }
  }
  --waiters_;
  return !failed_;
}

bool LogWriter::Compact(const std::function<bool(const RecordView&)>& keep) {
  sync::MutexLock lock(mu_);
  paused_ = true;
  work_cv_.NotifyAll();
  // Quiesce only the batch already on its way to disk. Records still queued
  // in pending_ are folded into the rewrite below instead of waiting for the
  // (paused) writer to drain them — waiting on pending_ here deadlocks,
  // because a committer can queue a record between our waits and the paused
  // writer will never clear it.
  ++waiters_;
  while (in_flight_) {
    done_cv_.Wait(mu_);
  }
  --waiters_;
  std::string bytes;
  disk_->ReadAll(name_, &bytes);
  if (!pending_.empty()) {
    // These frames were never handed to the file; the synced WriteAtomic
    // below lands them durably, so written_seq_ may advance to match.
    bytes += pending_;
    bytes_appended_.fetch_add(pending_.size(), std::memory_order_relaxed);
    WalMetrics::Get().appended_bytes->Add(pending_.size());
    pending_.clear();
    written_seq_ = pending_seq_;
  }
  // Scan in place and splice surviving frames verbatim: the frames are
  // already valid (the CRC vouched for them), so the rewrite costs one pass
  // plus the kept bytes — no payload copies, no re-framing, no re-CRC. A
  // torn tail is dropped by the rewrite.
  std::string kept;
  ScanLog(bytes, [&](const RecordView& record) {
    if (keep(record)) {
      kept.append(record.frame);
    }
  });
  bool ok = disk_->WriteAtomic(name_, kept);
  if (ok) {
    // Reopen: on a posix disk the old fd now points at the unlinked inode.
    file_ = disk_->OpenAppend(name_);
    ok = file_ != nullptr;
  }
  if (!ok) {
    failed_ = true;
  }
  // The rewrite is durable in full (WriteAtomic syncs), so everything
  // written so far is durable too.
  durable_seq_ = written_seq_;
  unsynced_bytes_ = 0;
  paused_ = false;
  work_cv_.NotifyAll();
  // Committers group-committing on done_cv_ may have had their records
  // folded into the rewrite; their durability target is now met.
  done_cv_.NotifyAll();
  if (ok) {
    WalMetrics::Get().compactions->Increment();
  }
  return ok;
}

LogState RecoverLog(Disk* disk, const std::string& name,
                    std::vector<Record>* records) {
  std::string bytes;
  if (!disk->ReadAll(name, &bytes)) {
    return LogState::kClean;  // missing file: an empty log
  }
  const std::size_t before = records->size();
  std::size_t valid = 0;
  const LogState state = ReadLog(bytes, records, &valid);
  WalMetrics& wm = WalMetrics::Get();
  wm.recovered_records->Add(records->size() - before);
  if (state == LogState::kTornTail) {
    wm.torn_tails->Increment();
    // Truncate the garbage so a reopened appender starts on a boundary.
    disk->WriteAtomic(name, std::string_view(bytes).substr(0, valid));
  }
  return state;
}

}  // namespace eunomia::wal
