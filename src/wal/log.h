// WAL record framing: length- and CRC-guarded records, tolerant of a torn
// tail.
//
// A log file is a flat concatenation of records, each framed the way the
// wire protocol frames messages (src/net/wire.h):
//
//   offset  size  field
//   0       4     magic       0x57414C31 ("1LAW" on disk: wire::io is LE)
//   4       1     type        record kind, owned by the layer above
//   5       3     reserved    must be zero
//   8       4     length      payload bytes, <= kMaxRecordBytes
//   12      4     crc         CRC-32 (IEEE) over type byte ++ payload
//   16      len   payload
//
// ReadLog scans records front to back and stops at the first frame that is
// incomplete or fails validation (bad magic, nonzero reserved bytes,
// oversized length, CRC mismatch) — everything from that point on is
// treated as a torn tail from a crash mid-append and discarded. The caller
// learns the length of the valid prefix so it can truncate/continue the log
// from a clean boundary. A record is only trusted in full or not at all;
// corrupt bytes never propagate into recovery.
//
// Encoding reuses the header-only codecs in src/net/wire_io.h so the byte
// discipline (little-endian, explicit widths) matches the rest of the tree.
// The CRC implementation is local to src/wal (the wire one lives in the
// net library, which links *after* wal); wal_test pins the two to be
// byte-for-byte identical so they cannot drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace eunomia::wal {

inline constexpr std::uint32_t kRecordMagic = 0x57414C31;  // "WAL1"
inline constexpr std::size_t kRecordHeaderBytes = 16;
// Same ceiling as a wire frame: nothing the WAL stores legitimately
// approaches this, so a larger length field is corruption, not data.
inline constexpr std::size_t kMaxRecordBytes = 16u << 20;

// CRC-32 (IEEE 802.3, reflected). Matches net::wire::Crc32 exactly.
std::uint32_t Crc32(const void* data, std::size_t size);

// Incremental form, for checksumming a logical region without materializing
// it: Crc32(concat(a, b)) == Crc32Final(Crc32Update(Crc32Update(Crc32Seed(),
// a...), b...)). The hot path is slice-by-8 (see log.cc).
inline constexpr std::uint32_t Crc32Seed() { return 0xFFFFFFFFu; }
std::uint32_t Crc32Update(std::uint32_t state, const void* data,
                          std::size_t size);
inline constexpr std::uint32_t Crc32Final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

struct Record {
  std::uint8_t type = 0;
  std::string payload;
};

// A validated record viewed in place — both views alias the scanned bytes.
// `frame` spans the full framed form (header + payload), so a consumer that
// keeps the record verbatim can copy it without re-framing or re-CRCing.
struct RecordView {
  std::uint8_t type = 0;
  std::string_view payload;
  std::string_view frame;
};

// Fills the 16-byte frame header (magic, type, length, CRC) for `payload`;
// appending the payload bytes right after it forms the framed record. The
// split form lets an append pipeline frame without materializing the record:
// header on the stack, payload straight from the caller's buffer.
void BuildRecordHeader(char (&out)[kRecordHeaderBytes], std::uint8_t type,
                       std::string_view payload);

// Appends one framed record to `out`.
void AppendRecord(std::string* out, std::uint8_t type,
                  std::string_view payload);

enum class LogState {
  kClean,     // every byte belongs to a valid record
  kTornTail,  // a trailing partial/corrupt region was discarded
};

// Parses `bytes` into records. On return *valid_prefix (optional) is the
// byte length of the parsed prefix; bytes beyond it are the discarded tail.
LogState ReadLog(std::string_view bytes, std::vector<Record>* records,
                 std::size_t* valid_prefix = nullptr);

// Zero-copy variant: visits each valid record in place, with the same
// validation and torn-tail semantics as ReadLog but no payload copies or
// per-record allocations — what compaction wants, since a multi-megabyte
// log rewrite would otherwise spend most of its time duplicating payloads
// it is about to drop.
LogState ScanLog(std::string_view bytes,
                 const std::function<void(const RecordView&)>& visit,
                 std::size_t* valid_prefix = nullptr);

}  // namespace eunomia::wal
