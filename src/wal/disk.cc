#include "src/wal/disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <dirent.h>

namespace eunomia::wal {

// --- PosixDisk ---------------------------------------------------------------

namespace {

class PosixFile final : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool Append(std::string_view data) override {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  bool Sync() override { return ::fsync(fd_) == 0; }

 private:
  int fd_;
};

bool WriteAllFd(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

PosixDisk::PosixDisk(std::string dir) : dir_(std::move(dir)) {
  // mkdir -p over the single level callers actually pass; nested paths work
  // too because we walk every '/' boundary.
  std::string prefix;
  prefix.reserve(dir_.size());
  for (std::size_t i = 0; i <= dir_.size(); ++i) {
    if (i == dir_.size() || dir_[i] == '/') {
      if (!prefix.empty() && prefix != "/") {
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
          return;
        }
      }
    }
    if (i < dir_.size()) {
      prefix.push_back(dir_[i]);
    }
  }
  struct stat st;
  ok_ = ::stat(dir_.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::unique_ptr<File> PosixDisk::OpenAppend(const std::string& name) {
  const int fd =
      ::open(Path(name).c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
             0644);
  if (fd < 0) {
    return nullptr;
  }
  return std::make_unique<PosixFile>(fd);
}

bool PosixDisk::ReadAll(const std::string& name, std::string* out) {
  out->clear();
  const int fd = ::open(Path(name).c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool PosixDisk::WriteAtomic(const std::string& name, std::string_view data) {
  const std::string tmp = Path(name) + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  const bool written = WriteAllFd(fd, data) && ::fsync(fd) == 0;
  ::close(fd);
  if (!written || ::rename(tmp.c_str(), Path(name).c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Durably record the rename itself (the directory entry).
  const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool PosixDisk::Remove(const std::string& name) {
  return ::unlink(Path(name).c_str()) == 0;
}

std::vector<std::string> PosixDisk::List() {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return names;
  }
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == ".." ||
        (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0)) {
      continue;
    }
    names.push_back(name);
  }
  ::closedir(d);
  return names;
}

// --- MemDisk -----------------------------------------------------------------

// Appends land directly in the shared FileState; the handle keeps only the
// disk pointer and the name so it stays valid across WriteAtomic/Compact
// replacing the contents under the same name. (Named — not anonymous — so
// MemDisk's friend declaration reaches it.)
class MemFile final : public File {
 public:
  MemFile(MemDisk* disk, std::string name)
      : disk_(disk), name_(std::move(name)) {}

  bool Append(std::string_view data) override;
  bool Sync() override;

 private:
  MemDisk* const disk_;
  const std::string name_;
};

bool MemFile::Append(std::string_view data) {
  sync::MutexLock lock(disk_->mu_);
  auto& file = disk_->files_[name_];
  file.data.append(data.data(), data.size());
  disk_->bytes_written_ += data.size();
  return true;
}

bool MemFile::Sync() {
  sync::MutexLock lock(disk_->mu_);
  auto& file = disk_->files_[name_];
  file.durable = file.data.size();
  ++disk_->syncs_;
  return true;
}

std::unique_ptr<File> MemDisk::OpenAppend(const std::string& name) {
  {
    sync::MutexLock lock(mu_);
    files_[name];  // create-if-missing, like O_CREAT
  }
  return std::make_unique<MemFile>(this, name);
}

bool MemDisk::ReadAll(const std::string& name, std::string* out) {
  out->clear();
  sync::MutexLock lock(mu_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    return false;
  }
  *out = it->second.data;
  return true;
}

bool MemDisk::WriteAtomic(const std::string& name, std::string_view data) {
  sync::MutexLock lock(mu_);
  auto& file = files_[name];
  file.data.assign(data.data(), data.size());
  file.durable = file.data.size();
  bytes_written_ += data.size();
  ++syncs_;
  return true;
}

bool MemDisk::Remove(const std::string& name) {
  sync::MutexLock lock(mu_);
  return files_.erase(name) > 0;
}

std::vector<std::string> MemDisk::List() {
  sync::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) {
    names.push_back(name);
  }
  return names;
}

void MemDisk::Crash() {
  sync::MutexLock lock(mu_);
  for (auto& [name, file] : files_) {
    ApplyCrash(&file);
  }
}

void MemDisk::ApplyCrash(FileState* file) {
  file->data.resize(file->durable);
}

std::uint64_t MemDisk::syncs() const {
  sync::MutexLock lock(mu_);
  return syncs_;
}

std::uint64_t MemDisk::bytes_written() const {
  sync::MutexLock lock(mu_);
  return bytes_written_;
}

// --- FaultyDisk --------------------------------------------------------------

void FaultyDisk::ApplyCrash(FileState* file) {
  const std::size_t unsynced = file->data.size() - file->durable;
  if (unsynced > 0 && rng_.NextBool(faults_.torn_tail)) {
    // A torn write: a random strict-partial prefix of the un-synced suffix
    // reached the platter, very possibly ending mid-record.
    const std::size_t kept =
        static_cast<std::size_t>(rng_.NextBounded(unsynced));
    file->data.resize(file->durable + kept);
    ++torn_tails_;
    if (kept > 0 && rng_.NextBool(faults_.bit_flip)) {
      const std::size_t at =
          file->durable + static_cast<std::size_t>(rng_.NextBounded(kept));
      file->data[at] = static_cast<char>(
          file->data[at] ^ static_cast<char>(1u << rng_.NextBounded(8)));
      ++bit_flips_;
    }
  } else {
    file->data.resize(file->durable);
  }
}

std::uint64_t FaultyDisk::torn_tails() const {
  sync::MutexLock lock(mu_);
  return torn_tails_;
}

std::uint64_t FaultyDisk::bit_flips() const {
  sync::MutexLock lock(mu_);
  return bit_flips_;
}

}  // namespace eunomia::wal
