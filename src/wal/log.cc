#include "src/wal/log.h"

#include <array>

#include "src/net/wire_io.h"

namespace eunomia::wal {

namespace {

// Slice-by-8 CRC-32: eight derived tables let the hot loop fold eight bytes
// per iteration instead of one. Table 0 alone is the classic byte-at-a-time
// table (used for the sub-8-byte tail), and the derived tables are defined
// so the result is bit-identical to the byte-at-a-time computation — the
// on-disk format does not change, only the cost of producing it. This
// matters because every logged batch is checksummed on the commit path: on
// small hosts the checksum was the single largest WAL overhead.
struct CrcTables {
  std::uint32_t t[8][256];
};

const CrcTables& Tables() {
  static const CrcTables tables = [] {
    CrcTables tb{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      tb.t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xFFu];
      }
    }
    return tb;
  }();
  return tables;
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t state, const void* data,
                          std::size_t size) {
  const CrcTables& tb = Tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state;
  while (size >= 8) {
    // Byte-assembled little-endian loads; compilers fold each into one
    // 32-bit load on LE targets, and the result is endian-independent.
    const std::uint32_t lo =
        static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi =
        static_cast<std::uint32_t>(p[4]) | (static_cast<std::uint32_t>(p[5]) << 8) |
        (static_cast<std::uint32_t>(p[6]) << 16) |
        (static_cast<std::uint32_t>(p[7]) << 24);
    crc ^= lo;
    crc = tb.t[7][crc & 0xFFu] ^ tb.t[6][(crc >> 8) & 0xFFu] ^
          tb.t[5][(crc >> 16) & 0xFFu] ^ tb.t[4][crc >> 24] ^
          tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
          tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  return Crc32Final(Crc32Update(Crc32Seed(), data, size));
}

void BuildRecordHeader(char (&out)[kRecordHeaderBytes], std::uint8_t type,
                       std::string_view payload) {
  // CRC covers the type byte followed by the payload, so a record whose
  // payload survived but whose type byte was mangled still fails closed.
  // Computed incrementally: the covered region is never materialized.
  std::uint32_t crc = Crc32Update(Crc32Seed(), &type, 1);
  crc = Crc32Final(Crc32Update(crc, payload.data(), payload.size()));
  net::wire::io::StoreU32(out, kRecordMagic);
  out[4] = static_cast<char>(type);
  out[5] = out[6] = out[7] = '\0';
  net::wire::io::StoreU32(out + 8, static_cast<std::uint32_t>(payload.size()));
  net::wire::io::StoreU32(out + 12, crc);
}

void AppendRecord(std::string* out, std::uint8_t type,
                  std::string_view payload) {
  char header[kRecordHeaderBytes];
  BuildRecordHeader(header, type, payload);
  out->reserve(out->size() + kRecordHeaderBytes + payload.size());
  out->append(header, kRecordHeaderBytes);
  out->append(payload.data(), payload.size());
}

LogState ScanLog(std::string_view bytes,
                 const std::function<void(const RecordView&)>& visit,
                 std::size_t* valid_prefix) {
  std::size_t offset = 0;
  const auto torn = [&](std::size_t at) {
    if (valid_prefix != nullptr) {
      *valid_prefix = at;
    }
    return at == bytes.size() ? LogState::kClean : LogState::kTornTail;
  };
  while (bytes.size() - offset >= kRecordHeaderBytes) {
    const char* header = bytes.data() + offset;
    if (net::wire::io::GetU32(header) != kRecordMagic ||
        header[5] != 0 || header[6] != 0 || header[7] != 0) {
      return torn(offset);
    }
    const std::uint8_t type = static_cast<std::uint8_t>(header[4]);
    const std::size_t length = net::wire::io::GetU32(header + 8);
    const std::uint32_t crc = net::wire::io::GetU32(header + 12);
    if (length > kMaxRecordBytes ||
        bytes.size() - offset - kRecordHeaderBytes < length) {
      return torn(offset);
    }
    const char* payload = header + kRecordHeaderBytes;
    std::uint32_t computed = Crc32Update(Crc32Seed(), &type, 1);
    computed = Crc32Final(Crc32Update(computed, payload, length));
    if (computed != crc) {
      return torn(offset);
    }
    visit(RecordView{type, std::string_view(payload, length),
                     bytes.substr(offset, kRecordHeaderBytes + length)});
    offset += kRecordHeaderBytes + length;
  }
  return torn(offset);
}

LogState ReadLog(std::string_view bytes, std::vector<Record>* records,
                 std::size_t* valid_prefix) {
  return ScanLog(
      bytes,
      [records](const RecordView& view) {
        records->push_back(Record{view.type, std::string(view.payload)});
      },
      valid_prefix);
}

}  // namespace eunomia::wal
