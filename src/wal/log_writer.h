// Group-commit append pipeline for one log file.
//
// A LogWriter owns the append handle for a single log and serializes all
// record appends through it. Two operating modes:
//
//   - threaded=true (the daemons): Append() encodes the record, enqueues it,
//     and wakes a dedicated log-writer thread. The thread drains *everything*
//     queued — records that arrived while the previous batch was being
//     written coalesce into one write(2) and at most one fsync(2): classic
//     group commit. Under FsyncPolicy::kPerCommit, Append() blocks until the
//     record's batch is durable, so "acked implies on disk" holds while
//     concurrent committers still share fsyncs.
//   - threaded=false (simulator / deterministic chaos): Append() writes
//     inline. No extra thread, no nondeterminism; durability is whatever the
//     fsync policy says it is, byte-for-byte reproducible under MemDisk.
//
// Fsync policy:
//   kPerCommit — every batch is synced before its committers unblock.
//   kInterval  — sync at most once per interval (time-based when threaded,
//                bytes-based when inline); a crash loses at most the window.
//   kOff       — never sync; a crash loses everything since the last
//                explicit Flush(). For benchmarks and tests.
//
// Compact(keep) rewrites the log atomically, dropping records the filter
// rejects — the truncation half of the snapshot protocol. It quiesces the
// in-flight write, folds anything still queued into the rewrite, swaps the
// file via Disk::WriteAtomic, and resumes; kept records are copied frame-
// verbatim (no re-encode, no re-CRC), so a rewrite costs one scan plus the
// surviving bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "src/common/sync.h"
#include "src/wal/disk.h"
#include "src/wal/log.h"

namespace eunomia::wal {

enum class FsyncPolicy {
  kPerCommit,
  kInterval,
  kOff,
};

// Parses "commit" / "interval" / "off". False (out untouched) otherwise.
bool ParseFsyncPolicy(std::string_view text, FsyncPolicy* out);
const char* FsyncPolicyName(FsyncPolicy policy);

class LogWriter {
 public:
  struct Options {
    FsyncPolicy policy = FsyncPolicy::kPerCommit;
    // kInterval, threaded: maximum time a written byte stays un-synced.
    std::uint64_t interval_us = 5000;
    // kInterval, inline: sync once this many bytes accumulate un-synced.
    std::size_t interval_bytes = 64u << 10;
    bool threaded = false;
  };

  // Reads-and-repairs is the caller's job (RecoverLog) *before* constructing
  // the writer; the writer only ever appends.
  LogWriter(Disk* disk, std::string name, const Options& options);

  // Drains queued appends (without a final sync — kill -9 semantics are
  // defined purely by what Sync already covered; call Flush() first for a
  // clean shutdown).
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Appends one framed record. Blocks for durability only under
  // kPerCommit; otherwise returns as soon as the record is queued (threaded)
  // or written (inline). False if the underlying write failed.
  bool Append(std::uint8_t type, std::string_view payload);

  // Blocks until everything appended so far is written, and synced unless
  // the policy is kOff.
  bool Flush();

  // Atomically rewrites the log keeping only records `keep` accepts. The
  // views passed to `keep` are valid only for the duration of the call.
  bool Compact(const std::function<bool(const RecordView&)>& keep);

  // Lock-free: read on hot paths (snapshot gating) by other threads.
  std::uint64_t bytes_appended() const {
    return bytes_appended_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_written() const {
    return batches_written_.load(std::memory_order_relaxed);
  }

 private:
  void WriterLoop();
  bool SyncLocked() REQUIRES(mu_);

  Disk* const disk_;
  const std::string name_;
  const Options options_;

  mutable sync::Mutex mu_{"LogWriter::mu_", sync::kRankWalWriter};
  sync::CondVar work_cv_;  // writer thread: work available / unpause
  sync::CondVar done_cv_;  // committers: batch written/durable
  std::unique_ptr<File> file_ GUARDED_BY(mu_);
  std::string pending_ GUARDED_BY(mu_);       // encoded, not yet written
  std::uint64_t appended_seq_ GUARDED_BY(mu_) = 0;
  std::uint64_t pending_seq_ GUARDED_BY(mu_) = 0;   // seq of last in pending_
  std::uint64_t written_seq_ GUARDED_BY(mu_) = 0;
  std::uint64_t durable_seq_ GUARDED_BY(mu_) = 0;
  std::uint64_t sync_target_ GUARDED_BY(mu_) = 0;   // Flush() wants >= this
  std::size_t unsynced_bytes_ GUARDED_BY(mu_) = 0;  // inline kInterval only
  std::uint32_t waiters_ GUARDED_BY(mu_) = 0;       // blocked on done_cv_
  // Written under mu_, read without it (see accessors above).
  std::atomic<std::uint64_t> bytes_appended_{0};
  std::atomic<std::uint64_t> batches_written_{0};
  bool in_flight_ GUARDED_BY(mu_) = false;  // writer is mid-batch
  bool paused_ GUARDED_BY(mu_) = false;     // Compact() quiesce
  bool failed_ GUARDED_BY(mu_) = false;     // a disk write failed
  bool stop_ GUARDED_BY(mu_) = false;

  std::thread writer_;  // joined in the destructor when threaded
};

// Reads and parses log `name`. A missing file is an empty, clean log. If a
// torn tail is found, the file is truncated to the valid prefix on disk so
// a subsequently opened LogWriter appends from a clean record boundary.
LogState RecoverLog(Disk* disk, const std::string& name,
                    std::vector<Record>* records);

}  // namespace eunomia::wal
