// The durability seam: a minimal flat-namespace "disk" the WAL writes
// through.
//
// Three implementations share one contract so the same recovery code runs
// everywhere:
//   - PosixDisk: real files under a data directory (the daemons). Append is
//     O_APPEND write(2); Sync is fsync(2); WriteAtomic is the classic
//     write-temp + fsync + rename(2) sequence, so a snapshot is either the
//     old blob or the new blob, never a torn mix.
//   - MemDisk: an in-memory map with explicit durability tracking — every
//     file remembers how much of it has been fsync'd. Crash() models
//     kill -9: the un-synced suffix of every file vanishes. Deterministic
//     chaos runs on this.
//   - FaultyDisk: MemDisk plus seed-derived storage faults applied at crash
//     time — torn writes (a partial tail of the un-synced suffix survives,
//     possibly mid-record) and bit flips inside that torn tail. Recovery
//     must detect both by CRC/length and never propagate them.
//
// The contract is deliberately tiny (append, sync, read-all, atomic
// replace, remove): a WAL needs nothing more, and every operation has an
// obvious crash-consistency story.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"
#include "src/common/sync.h"

namespace eunomia::wal {

// An open append-only file handle. Handles stay valid across
// Disk::WriteAtomic on the same name (they follow the name, not the inode).
class File {
 public:
  virtual ~File() = default;
  virtual bool Append(std::string_view data) = 0;
  // Makes everything appended so far crash-durable.
  virtual bool Sync() = 0;
};

class Disk {
 public:
  virtual ~Disk() = default;

  Disk() = default;
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Opens `name` for appending, creating it empty if missing.
  virtual std::unique_ptr<File> OpenAppend(const std::string& name) = 0;
  // Reads the whole file. False if it does not exist (out is cleared).
  virtual bool ReadAll(const std::string& name, std::string* out) = 0;
  // Atomically replaces `name` with `data` (write temp + sync + rename).
  // After a crash the file holds either the old or the new contents.
  virtual bool WriteAtomic(const std::string& name, std::string_view data) = 0;
  virtual bool Remove(const std::string& name) = 0;
  virtual std::vector<std::string> List() = 0;
};

// Real files under `dir` (created if missing). Returns nullptr/false on any
// OS error; callers treat that as the storage being gone.
class PosixDisk final : public Disk {
 public:
  explicit PosixDisk(std::string dir);

  bool ok() const { return ok_; }  // the directory exists / was created

  std::unique_ptr<File> OpenAppend(const std::string& name) override;
  bool ReadAll(const std::string& name, std::string* out) override;
  bool WriteAtomic(const std::string& name, std::string_view data) override;
  bool Remove(const std::string& name) override;
  std::vector<std::string> List() override;

 private:
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
  bool ok_ = false;
};

// In-memory disk with explicit durability tracking. Thread-safe (the
// threaded LogWriter appends from its writer thread while tests inspect),
// and survives the components writing to it — the chaos harness owns one
// per datacenter across crash/restart cycles, exactly like a real disk
// survives a process.
class MemDisk : public Disk {
 public:
  MemDisk() = default;

  std::unique_ptr<File> OpenAppend(const std::string& name) override;
  bool ReadAll(const std::string& name, std::string* out) override;
  bool WriteAtomic(const std::string& name, std::string_view data) override;
  bool Remove(const std::string& name) override;
  std::vector<std::string> List() override;

  // kill -9: every file loses its un-synced suffix (subclasses may leave a
  // mangled partial tail instead — see FaultyDisk).
  void Crash();

  std::uint64_t syncs() const;
  std::uint64_t bytes_written() const;

 protected:
  struct FileState {
    std::string data;
    std::size_t durable = 0;  // prefix made durable by Sync / WriteAtomic
  };

  // Invoked under mu_ for each file at Crash(); default truncates to the
  // durable prefix.
  virtual void ApplyCrash(FileState* file) REQUIRES(mu_);

  mutable sync::Mutex mu_{"MemDisk::mu_", sync::kRankWalDisk};
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
  std::uint64_t syncs_ GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_written_ GUARDED_BY(mu_) = 0;

 private:
  friend class MemFile;
};

// MemDisk that injects storage faults when the process "dies": with
// probability torn_tail, a random partial prefix of the un-synced suffix
// survives the crash (a torn / short write), and with probability bit_flip
// one bit inside that surviving tail is flipped (a corrupt sector). Faults
// never touch the synced prefix — fsync's contract is exactly what the
// recovery invariants are allowed to rely on.
class FaultyDisk final : public MemDisk {
 public:
  struct Faults {
    double torn_tail = 0.0;
    double bit_flip = 0.0;
  };

  FaultyDisk(const Faults& faults, std::uint64_t seed)
      : faults_(faults), rng_(seed) {}

  std::uint64_t torn_tails() const;
  std::uint64_t bit_flips() const;

 protected:
  void ApplyCrash(FileState* file) override REQUIRES(mu_);

 private:
  const Faults faults_;
  Rng rng_ GUARDED_BY(mu_);
  std::uint64_t torn_tails_ GUARDED_BY(mu_) = 0;
  std::uint64_t bit_flips_ GUARDED_BY(mu_) = 0;
};

}  // namespace eunomia::wal
