// Process-wide WAL instrumentation (docs/METRICS.md §wal). Always on: the
// hooks are relaxed atomic adds, and the series are registered lazily into
// metrics::Registry::Default() the first time any LogWriter touches them.
// Lazy registration may happen under kRankWalWriter (930); the registry
// mutex ranks above it (kRankMetricsRegistry, 950), so this nests cleanly.
#pragma once

#include <memory>

#include "src/metrics/counter.h"
#include "src/metrics/histogram.h"

namespace eunomia::wal {

struct WalMetrics {
  std::shared_ptr<metrics::Counter> fsyncs;
  std::shared_ptr<metrics::Histogram> fsync_latency_us;
  std::shared_ptr<metrics::Counter> appended_bytes;
  std::shared_ptr<metrics::Counter> compactions;
  std::shared_ptr<metrics::Counter> recovered_records;
  std::shared_ptr<metrics::Counter> torn_tails;

  static WalMetrics& Get();
};

}  // namespace eunomia::wal
