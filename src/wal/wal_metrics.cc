#include "src/wal/wal_metrics.h"

#include "src/metrics/registry.h"

namespace eunomia::wal {

WalMetrics& WalMetrics::Get() {
  // Leaked: recorded into from writer threads that may outlive main().
  static WalMetrics* instance = [] {
    metrics::Registry& registry = metrics::Registry::Default();
    auto* m = new WalMetrics();
    m->fsyncs = registry.AddCounter(
        "eunomia_wal_fsync_total", "WAL fsync calls issued");
    m->fsync_latency_us = registry.AddHistogram(
        "eunomia_wal_fsync_latency_microseconds",
        "Latency of each WAL fsync, in microseconds");
    m->appended_bytes = registry.AddCounter(
        "eunomia_wal_appended_bytes_total",
        "Bytes appended to WAL files (record frames incl. headers)");
    m->compactions = registry.AddCounter(
        "eunomia_wal_compactions_total", "WAL compaction passes completed");
    m->recovered_records = registry.AddCounter(
        "eunomia_wal_recovered_records_total",
        "Valid records replayed from WAL files at recovery");
    m->torn_tails = registry.AddCounter(
        "eunomia_wal_torn_tails_total",
        "Recoveries that found (and truncated) a torn tail");
    return m;
  }();
  return *instance;
}

}  // namespace eunomia::wal
