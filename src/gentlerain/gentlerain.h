// GentleRain baseline (Du et al., SoCC '14) — global stabilization with a
// single scalar (§2, §7.2).
//
// GentleRain timestamps updates with loosely synchronized physical clocks
// and over-compresses causal metadata into one scalar: a remote update with
// timestamp ts becomes visible at a datacenter only once the Global Stable
// Time there has passed ts — i.e., once *every* partition has heard, from
// *every* datacenter, a timestamp >= ts. That makes the visibility lower
// bound the travel time to the farthest datacenter regardless of origin
// (the reason GentleRain "is not capable of making updates visible without
// adding 40 ms of extra delay" in Fig. 6 left).
//
// Stabilization machinery, per the paper's §7.2 setup: sibling partitions
// across datacenters exchange heartbeats every remote_hb_interval (10 ms);
// within a datacenter, partitions report min(VV) to a local aggregator
// every gst_interval (5 ms), which broadcasts the new GST. Both activities
// consume partition capacity — the throughput cost of global stabilization.
//
// Unlike Eunomia's hybrid clocks, GentleRain must *wait out* clock skew: an
// update whose client dependency timestamp is at or ahead of the partition's
// physical clock blocks until the clock catches up.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/clock/physical_clock.h"
#include "src/common/types.h"
#include "src/georep/config.h"
#include "src/georep/geo_system.h"
#include "src/georep/visibility.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/store/hash_ring.h"
#include "src/store/versioned_store.h"

namespace eunomia::geo {

// Scalar stamp adapter for the multi-version store.
struct ScalarStamp {
  Timestamp ts = 0;
  Timestamp TotalOrderKey() const { return ts; }
};

class GentleRainSystem final : public GeoSystem {
 public:
  GentleRainSystem(sim::Simulator* sim, GeoConfig config);

  std::string name() const override { return "GentleRain"; }

  void ClientRead(ClientId client, DatacenterId dc, Key key,
                  std::function<void()> done) override;
  void ClientUpdate(ClientId client, DatacenterId dc, Key key, Value value,
                    std::function<void()> done) override;

  VisibilityTracker& tracker() override { return tracker_; }
  const VisibilityTracker& tracker() const override { return tracker_; }

  Timestamp GstAt(DatacenterId dc, PartitionId partition) const {
    return dcs_[dc].partitions[partition].gst;
  }

 private:
  struct PendingVisibility {
    std::uint64_t uid = 0;
    Timestamp ts = 0;
  };

  struct Partition {
    PartitionId id = 0;
    DatacenterId dc = 0;
    sim::Server* server = nullptr;
    sim::EndpointId endpoint = 0;
    PhysicalClock clock;
    Timestamp max_ts = 0;  // local monotonicity guard
    store::MultiVersionStore<ScalarStamp> store;
    std::vector<Timestamp> version_vector;  // latest heard per DC
    Timestamp gst = 0;
    std::vector<PendingVisibility> pending;  // remote updates awaiting GST
  };

  struct Datacenter {
    DatacenterId id = 0;
    std::vector<std::unique_ptr<sim::Server>> servers;
    std::vector<Partition> partitions;
    sim::EndpointId aggregator_endpoint = 0;
    std::vector<Timestamp> partition_reports;
    std::uint32_t reports_outstanding = 0;  // once-per-round broadcast gate
  };

  void ScheduleHeartbeats(DatacenterId dc, PartitionId p);
  void ScheduleGstRound(DatacenterId dc);
  void AdvanceGst(Partition& part, Timestamp gst);
  void DeliverRemote(DatacenterId dc, PartitionId p, std::uint64_t uid, Key key,
                     Value value, Timestamp ts, DatacenterId origin);

  sim::Simulator* sim_;
  GeoConfig config_;
  sim::Network network_;
  store::ConsistentHashRing router_;
  std::vector<Datacenter> dcs_;
  std::unordered_map<ClientId, Timestamp> sessions_;  // scalar dependency clock
  VisibilityTracker tracker_;
};

}  // namespace eunomia::geo
