#include "src/gentlerain/gentlerain.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace eunomia::geo {

GentleRainSystem::GentleRainSystem(sim::Simulator* sim, GeoConfig config)
    : sim_(sim),
      config_(std::move(config)),
      network_(sim, config_.network),
      router_(config_.partitions_per_dc),
      tracker_(config_.timeline_window_us, config_.num_dcs) {
  dcs_.resize(config_.num_dcs);
  Rng clock_rng = sim_->rng().Fork(0xC10C);
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    Datacenter& dc = dcs_[m];
    dc.id = m;
    for (std::uint32_t s = 0; s < config_.servers_per_dc; ++s) {
      dc.servers.push_back(std::make_unique<sim::Server>(sim_));
    }
    dc.partitions.resize(config_.partitions_per_dc);
    dc.partition_reports.assign(config_.partitions_per_dc, 0);
    dc.aggregator_endpoint = network_.Register(m);
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      Partition& part = dc.partitions[p];
      part.id = p;
      part.dc = m;
      part.server =
          dc.servers[store::ServerOfPartition(p, config_.servers_per_dc)].get();
      part.endpoint = network_.Register(m);
      const std::int64_t off = clock_rng.NextInRange(-config_.clocks.max_offset_us,
                                                     config_.clocks.max_offset_us);
      const double drift = (2.0 * clock_rng.NextDouble() - 1.0) *
                           config_.clocks.max_drift_ppm;
      part.clock = PhysicalClock(off, drift);
      part.version_vector.assign(config_.num_dcs, 0);
    }
  }
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      ScheduleHeartbeats(m, p);
    }
    ScheduleGstRound(m);
  }
}

void GentleRainSystem::ScheduleHeartbeats(DatacenterId dc, PartitionId p) {
  sim_->ScheduleAfter(config_.remote_hb_interval_us, [this, dc, p] {
    Partition& part = dcs_[dc].partitions[p];
    const Timestamp now_ts =
        std::max(part.clock.Read(sim_->now()), part.max_ts);
    // One heartbeat to each remote sibling; sending consumes capacity.
    part.server->SubmitPriority(
        config_.costs.stab_msg_us * (config_.num_dcs - 1), [] {});
    for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
      if (k == dc) {
        continue;
      }
      network_.Send(part.endpoint, dcs_[k].partitions[p].endpoint,
                    [this, k, p, dc, now_ts] {
                      Partition& sibling = dcs_[k].partitions[p];
                      sibling.server->SubmitPriority(
                          config_.costs.stab_msg_us, [this, k, p, dc, now_ts] {
                            Partition& s = dcs_[k].partitions[p];
                            s.version_vector[dc] =
                                std::max(s.version_vector[dc], now_ts);
                          });
                    });
    }
    ScheduleHeartbeats(dc, p);
  });
}

void GentleRainSystem::ScheduleGstRound(DatacenterId dc) {
  // Rounds are self-clocking: the next tick is armed when the previous
  // round's aggregation completes, so a too-small interval degenerates to
  // back-to-back rounds (a timer-driven process coalesces ticks) instead of
  // an unbounded backlog of overlapping rounds.
  sim_->ScheduleAfter(config_.gst_interval_us, [this, dc] {
    Datacenter& d = dcs_[dc];
    // Phase 1: each partition computes min over remote VV entries and
    // reports to the local aggregator (cost charged at the partition).
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      Partition& part = d.partitions[p];
      part.server->SubmitPriority(config_.costs.gst_compute_us, [this, dc, p] {
        Datacenter& dd = dcs_[dc];
        Partition& pp = dd.partitions[p];
        Timestamp report = kTimestampMax;
        for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
          if (k == dd.id) {
            continue;
          }
          report = std::min(report, pp.version_vector[k]);
        }
        network_.Send(pp.endpoint, dd.aggregator_endpoint, [this, dc, p, report] {
          Datacenter& ddd = dcs_[dc];
          ddd.partition_reports[p] = report;
          // Phase 2: once every partition reported for this round, the
          // aggregator computes the DC-wide minimum, broadcasts once, and
          // arms the next round.
          if (++ddd.reports_outstanding < config_.partitions_per_dc) {
            return;
          }
          ddd.reports_outstanding -= config_.partitions_per_dc;
          ScheduleGstRound(dc);
          Timestamp gst = kTimestampMax;
          for (const Timestamp r : ddd.partition_reports) {
            gst = std::min(gst, r);
          }
          if (gst == kTimestampMax || gst == 0) {
            return;
          }
          for (PartitionId q = 0; q < config_.partitions_per_dc; ++q) {
            network_.Send(ddd.aggregator_endpoint, ddd.partitions[q].endpoint,
                          [this, dc, q, gst] {
                            Partition& target = dcs_[dc].partitions[q];
                            target.server->SubmitPriority(
                                config_.costs.stab_msg_us, [this, dc, q, gst] {
                                  AdvanceGst(dcs_[dc].partitions[q], gst);
                                });
                          });
          }
        });
      });
    }
  });
}

void GentleRainSystem::AdvanceGst(Partition& part, Timestamp gst) {
  if (gst <= part.gst) {
    return;
  }
  part.gst = gst;
  // Release remote updates now allowed by the stabilization procedure.
  auto it = part.pending.begin();
  while (it != part.pending.end()) {
    if (it->ts <= part.gst) {
      tracker_.OnRemoteVisible(it->uid, part.dc, sim_->now());
      it = part.pending.erase(it);
    } else {
      ++it;
    }
  }
}

void GentleRainSystem::ClientRead(ClientId client, DatacenterId dc, Key key,
                                  std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  Partition& part = dcs_[dc].partitions[router_.Responsible(key)];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  sim_->ScheduleAfter(hop, [this, &part, client, key, done = std::move(done),
                            issued_at, dc, hop] {
    part.server->Submit(config_.costs.read_us + config_.costs.multiversion_us,
                        [this, &part, client, key, done, issued_at, dc, hop] {
      const Timestamp gst = part.gst;
      const auto* version =
          part.store.Get(key, [gst](const ScalarStamp& s) { return s.ts <= gst; });
      const Timestamp ts = version != nullptr ? version->stamp.ts : 0;
      sim_->ScheduleAfter(hop, [this, client, ts, done, issued_at, dc] {
        Timestamp& session = sessions_[client];
        session = std::max(session, ts);
        tracker_.OnOpComplete(dc, /*is_update=*/false, sim_->now(),
                              sim_->now() - issued_at);
        done();
      });
    });
  });
}

void GentleRainSystem::ClientUpdate(ClientId client, DatacenterId dc, Key key,
                                    Value value, std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  Partition& part = dcs_[dc].partitions[router_.Responsible(key)];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  sim_->ScheduleAfter(hop, [this, &part, client, key, value = std::move(value),
                            done = std::move(done), issued_at, dc,
                            hop]() mutable {
    part.server->Submit(config_.costs.update_us + config_.costs.multiversion_us,
                        [this, &part, client, key, value = std::move(value), done,
                         issued_at, dc, hop]() mutable {
      const Timestamp dep = sessions_[client];
      const Timestamp phys = part.clock.Read(sim_->now());
      // GentleRain's clock-skew wait: the update timestamp must exceed the
      // client's dependency time, and only the *physical* clock may provide
      // it (no logical catch-up).
      const std::uint64_t wait_us = dep >= phys ? (dep - phys + 1) : 0;
      sim_->ScheduleAfter(wait_us, [this, &part, client, key,
                                    value = std::move(value), done, issued_at,
                                    dc, hop]() mutable {
        const Timestamp phys_now = part.clock.Read(sim_->now());
        const Timestamp ts = std::max(phys_now, part.max_ts + 1);
        part.max_ts = ts;
        part.store.Put(key, value, ScalarStamp{ts}, part.dc, /*local=*/true);
        const std::uint64_t uid = tracker_.OnInstalled(part.dc, sim_->now());
        // Updates double as heartbeats: siblings learn our timestamp.
        for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
          if (k == part.dc) {
            continue;
          }
          network_.Send(part.endpoint, dcs_[k].partitions[part.id].endpoint,
                        [this, k, pid = part.id, uid, key, value, ts,
                         origin = part.dc] {
                          DeliverRemote(k, pid, uid, key, value, ts, origin);
                        });
        }
        Timestamp& session = sessions_[client];
        session = std::max(session, ts);
        sim_->ScheduleAfter(hop, [this, done, issued_at, dc] {
          tracker_.OnOpComplete(dc, /*is_update=*/true, sim_->now(),
                                sim_->now() - issued_at);
          done();
        });
      });
    });
  });
}

void GentleRainSystem::DeliverRemote(DatacenterId dc, PartitionId p,
                                     std::uint64_t uid, Key key, Value value,
                                     Timestamp ts, DatacenterId origin) {
  Partition& part = dcs_[dc].partitions[p];
  tracker_.OnRemoteArrival(uid, dc, sim_->now());
  part.server->SubmitPriority(config_.costs.apply_remote_us,
                      [this, &part, uid, key, value = std::move(value), ts,
                       origin]() mutable {
                        part.store.Put(key, std::move(value), ScalarStamp{ts},
                                       origin, /*local=*/false);
                        part.version_vector[origin] =
                            std::max(part.version_vector[origin], ts);
                        if (ts <= part.gst) {
                          tracker_.OnRemoteVisible(uid, part.dc, sim_->now());
                        } else {
                          part.pending.push_back({uid, ts});
                        }
                      });
}

}  // namespace eunomia::geo
