#include "src/georep/eunomiakv.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace eunomia::geo {

EunomiaKvSystem::EunomiaKvSystem(sim::Simulator* sim, GeoConfig config)
    : sim_(sim),
      config_(std::move(config)),
      network_(sim, config_.network),
      router_(config_.partitions_per_dc),
      tracker_(config_.timeline_window_us, config_.num_dcs) {
  dcs_.resize(config_.num_dcs);
  Rng clock_rng = sim_->rng().Fork(0xC10C);
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    Datacenter& dc = dcs_[m];
    dc.id = m;
    for (std::uint32_t s = 0; s < config_.servers_per_dc; ++s) {
      dc.servers.push_back(std::make_unique<sim::Server>(sim_));
    }
    dc.partitions.resize(config_.partitions_per_dc);
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      Partition& part = dc.partitions[p];
      part.id = p;
      part.dc = m;
      part.server =
          dc.servers[store::ServerOfPartition(p, config_.servers_per_dc)].get();
      part.endpoint = network_.Register(m);
      const std::int64_t off = clock_rng.NextInRange(-config_.clocks.max_offset_us,
                                                     config_.clocks.max_offset_us);
      const double drift = (2.0 * clock_rng.NextDouble() - 1.0) *
                           config_.clocks.max_drift_ppm;
      part.clock = PhysicalClock(off, drift);
      part.hybrid = PartitionedHybridClock(p, config_.partitions_per_dc);
      part.comm_interval_us = config_.batch_interval_us;
    }
    dc.eunomia = std::make_unique<EunomiaCore>(config_.partitions_per_dc,
                                               /*first_partition=*/0,
                                               config_.eunomia_buffer);
    dc.eunomia_server = std::make_unique<sim::Server>(sim_);
    dc.eunomia_endpoint = network_.Register(m);
    dc.receiver_server = std::make_unique<sim::Server>(sim_);
    dc.receiver_endpoint = network_.Register(m);
    dc.receiver = std::make_unique<Receiver>(
        m, config_.num_dcs,
        [this, m](const RemoteUpdate& update, std::function<void()> done) {
          ApplyRemote(m, update.partition, update, std::move(done));
        },
        config_.scalar_metadata);
  }
  StartTimers();
}

void EunomiaKvSystem::StartTimers() {
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      SchedulePartitionFlush(m, p);
    }
    ScheduleStabilizer(m);
    ScheduleReceiverCheck(m);
  }
}

void EunomiaKvSystem::SetPartitionCommInterval(DatacenterId dc, PartitionId partition,
                                               std::uint64_t interval_us) {
  assert(dc < dcs_.size() && partition < config_.partitions_per_dc);
  dcs_[dc].partitions[partition].comm_interval_us =
      interval_us == 0 ? 1 : interval_us;
}

void EunomiaKvSystem::SchedulePartitionFlush(DatacenterId dc, PartitionId p) {
  const std::uint64_t interval = dcs_[dc].partitions[p].comm_interval_us;
  sim_->ScheduleAfter(interval, [this, dc, p] {
    FlushPartition(dc, p);
    SchedulePartitionFlush(dc, p);
  });
}

void EunomiaKvSystem::FlushPartition(DatacenterId dc, PartitionId p) {
  Datacenter& d = dcs_[dc];
  Partition& part = d.partitions[p];
  if (!part.batcher.empty()) {
    auto batch = part.batcher.TakeBatch();
    // FIFO link partition -> Eunomia (§3.1 assumption).
    network_.Send(part.endpoint, d.eunomia_endpoint,
                  [this, dc, batch = std::move(batch)] {
                    Datacenter& dd = dcs_[dc];
                    const std::uint64_t cost =
                        config_.costs.eunomia_op_us * batch.size() + 1;
                    dd.eunomia_server->Submit(cost, [this, dc, batch] {
                      // Per-partition batches are timestamp-ordered: bulk
                      // insert through the hinted run path.
                      dcs_[dc].eunomia->AddBatch(batch);
                    });
                  });
    return;
  }
  // Idle partition: heartbeat if due (Alg. 2 lines 10-12). HeartbeatValue
  // records the emitted timestamp so later updates strictly exceed it,
  // preserving Property 2 even if an update lands in the same microsecond.
  const Timestamp now_phys = part.clock.Read(sim_->now());
  if (part.hybrid.HeartbeatDue(now_phys, config_.delta_us)) {
    const Timestamp hb_ts = part.hybrid.HeartbeatValue(now_phys);
    network_.Send(part.endpoint, d.eunomia_endpoint, [this, dc, p, hb_ts] {
      Datacenter& dd = dcs_[dc];
      dd.eunomia_server->Submit(1, [this, dc, p, hb_ts] {
        dcs_[dc].eunomia->Heartbeat(p, hb_ts);
      });
    });
  }
}

void EunomiaKvSystem::ScheduleStabilizer(DatacenterId dc) {
  sim_->ScheduleAfter(config_.theta_us, [this, dc] {
    RunStabilizer(dc);
    ScheduleStabilizer(dc);
  });
}

void EunomiaKvSystem::RunStabilizer(DatacenterId dc) {
  Datacenter& d = dcs_[dc];
  stable_scratch_.clear();
  const std::size_t emitted = d.eunomia->ProcessStable(&stable_scratch_);
  // Scalar variant: the receivers gate on each origin's stable frontier
  // (GST-style), so the stabilizer broadcasts its StableTime as a beacon
  // even when there is nothing to ship. The beacon goes out AFTER the
  // batch below on the same FIFO link, so a receiver that sees frontier F
  // is guaranteed to already hold every op with ts <= F in its queue.
  auto send_frontier_beacons = [this, &d, dc] {
    const Timestamp frontier = d.eunomia->StableTime();
    if (frontier == 0) {
      return;
    }
    for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
      if (k == dc) {
        continue;
      }
      // Through the receiver node's FCFS queue, so the beacon takes effect
      // only after the batch preceding it on the FIFO link is enqueued.
      network_.Send(d.eunomia_endpoint, dcs_[k].receiver_endpoint,
                    [this, k, dc, frontier] {
                      dcs_[k].receiver_server->Submit(1, [this, k, dc, frontier] {
                        dcs_[k].receiver->OnFrontier(dc, frontier);
                      });
                    });
    }
  };
  if (emitted == 0) {
    if (config_.scalar_metadata) {
      send_frontier_beacons();
    }
    return;
  }
  // Charge the Eunomia node for the extraction work.
  d.eunomia_server->Submit(config_.costs.eunomia_op_us * emitted + 1, [] {});
  // Ship ordered metadata to every remote receiver; the FIFO WAN link
  // preserves the stabilization order.
  std::vector<RemoteUpdate> batch;
  batch.reserve(emitted);
  for (const OpRecord& op : stable_scratch_) {
    const auto it = registry_.find(op.tag);
    assert(it != registry_.end());
    batch.push_back(it->second);
    registry_.erase(it);
  }
  for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
    if (k == dc) {
      continue;
    }
    network_.Send(d.eunomia_endpoint, dcs_[k].receiver_endpoint,
                  [this, k, batch] {
                    Datacenter& rd = dcs_[k];
                    rd.receiver_server->Submit(
                        config_.costs.receiver_op_us * batch.size() + 1,
                        [this, k, batch] {
                          for (const RemoteUpdate& u : batch) {
                            dcs_[k].receiver->OnRemoteUpdate(u);
                          }
                        });
                  });
  }
  if (config_.scalar_metadata) {
    send_frontier_beacons();
  }
}

void EunomiaKvSystem::ScheduleReceiverCheck(DatacenterId dc) {
  sim_->ScheduleAfter(config_.rho_us, [this, dc] {
    dcs_[dc].receiver->CheckPending();
    ScheduleReceiverCheck(dc);
  });
}

void EunomiaKvSystem::ClientRead(ClientId client, DatacenterId dc, Key key,
                                 std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  const PartitionId p = router_.Responsible(key);
  Partition& part = dcs_[dc].partitions[p];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  sim_->ScheduleAfter(hop, [this, &part, client, key, done = std::move(done),
                            issued_at, dc, hop] {
    const std::uint64_t cost =
        config_.costs.read_us + config_.costs.eunomia_metadata_us;
    part.server->Submit(cost, [this, &part, client, key, done, issued_at, dc,
                               hop] {
      const GeoVersion* version = part.store.Get(key);
      VectorTimestamp vts = version != nullptr ? version->vts
                                               : VectorTimestamp(config_.num_dcs);
      sim_->ScheduleAfter(hop, [this, client, vts = std::move(vts), done,
                                issued_at, dc] {
        auto [it, inserted] =
            sessions_.try_emplace(client, VectorTimestamp(config_.num_dcs));
        it->second.MergeMax(vts);  // Alg. 1 line 4, vector form
        tracker_.OnOpComplete(dc, /*is_update=*/false, sim_->now(),
                              sim_->now() - issued_at);
        done();
      });
    });
  });
}

void EunomiaKvSystem::ClientUpdate(ClientId client, DatacenterId dc, Key key,
                                   Value value, std::function<void()> done) {
  assert(dc < dcs_.size());
  const std::uint64_t issued_at = sim_->now();
  const PartitionId p = router_.Responsible(key);
  Partition& part = dcs_[dc].partitions[p];
  const sim::SimTime hop = config_.network.intra_dc_one_way_us;
  sim_->ScheduleAfter(hop, [this, &part, client, key, value = std::move(value),
                            done = std::move(done), issued_at]() mutable {
    ExecuteUpdate(part, client, key, std::move(value), std::move(done), issued_at);
  });
}

void EunomiaKvSystem::ExecuteUpdate(Partition& part, ClientId client, Key key,
                                    Value value, std::function<void()> done,
                                    std::uint64_t issued_at) {
  const std::uint64_t cost = config_.costs.update_us +
                             config_.costs.eunomia_metadata_us +
                             config_.costs.eunomia_update_metadata_us;
  part.server->Submit(cost, [this, &part, client, key, value = std::move(value),
                             done = std::move(done), issued_at]() mutable {
    const DatacenterId m = part.dc;
    auto [sit, inserted] =
        sessions_.try_emplace(client, VectorTimestamp(config_.num_dcs));
    VectorTimestamp& session = sit->second;

    // u.vts: local entry from the hybrid clock (Alg. 2 line 5, vector form);
    // remote entries copied from VClock_c (§4 "Update").
    const Timestamp now_phys = part.clock.Read(sim_->now());
    const Timestamp local_ts = part.hybrid.TimestampUpdate(now_phys, session[m]);
    VectorTimestamp vts = session;
    vts[m] = local_ts;
    if (config_.scalar_metadata) {
      // Scalar compression (§4, "we could easily adapt our protocols to use
      // a single scalar, as in [GentleRain]"): the update carries one scalar
      // — its own timestamp — as both its id and its dependency summary, so
      // a remote datacenter may apply it only once it has applied *every*
      // datacenter's updates up to that value (GentleRain's GST >= u.ts
      // condition). This creates false dependencies on every datacenter:
      // the visibility lower bound becomes the farthest inter-DC latency,
      // and a quiescent datacenter stalls everyone (which is why GentleRain
      // needs heartbeats).
      for (DatacenterId d = 0; d < config_.num_dcs; ++d) {
        vts[d] = local_ts;
      }
    }

    part.store.Put(key, value, vts, m);
    ++updates_installed_;
    const std::uint64_t uid = tracker_.OnInstalled(m, sim_->now());

    // Metadata to Eunomia (batched, §5): only (ts, partition, key, uid).
    part.batcher.Add(OpRecord{local_ts, part.id, key, uid});
    registry_[uid] = RemoteUpdate{uid, key, vts, m, part.id};

    // Data/metadata separation (§5): ship the payload directly to the
    // sibling partitions, no ordering constraints.
    RemotePayload payload{uid, key, value, vts, m};
    for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
      if (k == m) {
        continue;
      }
      network_.Send(part.endpoint, dcs_[k].partitions[part.id].endpoint,
                    [this, k, pid = part.id, payload] {
                      DeliverPayload(k, pid, payload);
                    });
    }

    // Reply to the client: VClock_c <- u.vts (strictly greater, §4).
    const sim::SimTime hop = config_.network.intra_dc_one_way_us;
    sim_->ScheduleAfter(hop, [this, client, vts = std::move(vts), done, issued_at,
                              m] {
      auto it = sessions_.find(client);
      if (it != sessions_.end()) {
        it->second = vts;
      }
      tracker_.OnOpComplete(m, /*is_update=*/true, sim_->now(),
                            sim_->now() - issued_at);
      done();
    });
  });
}

void EunomiaKvSystem::DeliverPayload(DatacenterId dc, PartitionId p,
                                     RemotePayload payload) {
  Partition& part = dcs_[dc].partitions[p];
  tracker_.OnRemoteArrival(payload.uid, dc, sim_->now());
  const std::uint64_t uid = payload.uid;
  part.payloads.emplace(uid, std::move(payload));
  // If the receiver's go-ahead beat the payload, finish the apply now.
  const auto pending = part.pending_applies.find(uid);
  if (pending != part.pending_applies.end()) {
    auto done = std::move(pending->second);
    part.pending_applies.erase(pending);
    ExecuteRemote(part, uid, std::move(done));
  }
}

void EunomiaKvSystem::ApplyRemote(DatacenterId dc, PartitionId p,
                                  const RemoteUpdate& meta,
                                  std::function<void()> done) {
  // Receiver -> partition APPLY message (Alg. 5 line 14).
  Datacenter& d = dcs_[dc];
  Partition& part = d.partitions[p];
  network_.Send(d.receiver_endpoint, part.endpoint,
                [this, dc, p, uid = meta.uid, done = std::move(done)] {
                  Partition& pp = dcs_[dc].partitions[p];
                  if (pp.payloads.count(uid) > 0) {
                    ExecuteRemote(pp, uid, done);
                  } else {
                    // Metadata arrived before the payload: park the go-ahead.
                    pp.pending_applies.emplace(uid, done);
                  }
                });
}

void EunomiaKvSystem::ExecuteRemote(Partition& part, std::uint64_t uid,
                                    std::function<void()> done) {
  part.server->SubmitPriority(config_.costs.apply_remote_us, [this, &part, uid,
                                                              done = std::move(done)] {
    const auto it = part.payloads.find(uid);
    assert(it != part.payloads.end());
    RemotePayload payload = std::move(it->second);
    part.payloads.erase(it);
    part.store.Put(payload.key, std::move(payload.value), payload.vts,
                   payload.origin);
    tracker_.OnRemoteVisible(uid, part.dc, sim_->now());
    done();  // receiver advances SiteTime and keeps flushing
  });
}

const GeoStore& EunomiaKvSystem::StoreAt(DatacenterId dc, PartitionId partition) const {
  return dcs_[dc].partitions[partition].store;
}
const Receiver& EunomiaKvSystem::ReceiverAt(DatacenterId dc) const {
  return *dcs_[dc].receiver;
}
const EunomiaCore& EunomiaKvSystem::EunomiaAt(DatacenterId dc) const {
  return *dcs_[dc].eunomia;
}
const VectorTimestamp* EunomiaKvSystem::SessionOf(ClientId client) const {
  const auto it = sessions_.find(client);
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace eunomia::geo
