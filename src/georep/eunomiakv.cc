#include "src/georep/eunomiakv.h"

#include <cassert>
#include <utility>

#include "src/clock/physical_clock.h"
#include "src/common/random.h"

namespace eunomia::geo {

EunomiaKvSystem::EunomiaKvSystem(sim::Simulator* sim, GeoConfig config)
    : sim_(sim),
      config_(std::move(config)),
      tracker_(config_.timeline_window_us, config_.num_dcs),
      uids_(/*first=*/0, /*stride=*/1),  // dense, in global install order
      env_(sim, config_) {
  // The clock RNG fork and the per-partition draw order (offset, then
  // drift, datacenter-major) replicate the pre-runtime constructor so a
  // fixed seed yields the same skew assignment.
  Rng clock_rng = sim_->rng().Fork(0xC10C);
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    std::vector<PhysicalClock> clocks;
    clocks.reserve(config_.partitions_per_dc);
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      const std::int64_t off = clock_rng.NextInRange(
          -config_.clocks.max_offset_us, config_.clocks.max_offset_us);
      const double drift =
          (2.0 * clock_rng.NextDouble() - 1.0) * config_.clocks.max_drift_ppm;
      clocks.emplace_back(off, drift);
    }
    dcs_.push_back(std::make_unique<rt::DatacenterRuntime>(
        m, config_, &env_, &tracker_, &uids_, &sessions_, std::move(clocks)));
    env_.RegisterRuntime(m, dcs_.back().get());
  }
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    dcs_[m]->StartTimers();
  }
}

void EunomiaKvSystem::ClientRead(ClientId client, DatacenterId dc, Key key,
                                 std::function<void()> done) {
  assert(dc < dcs_.size());
  dcs_[dc]->ClientRead(client, key, std::move(done));
}

void EunomiaKvSystem::ClientUpdate(ClientId client, DatacenterId dc, Key key,
                                   Value value, std::function<void()> done) {
  assert(dc < dcs_.size());
  dcs_[dc]->ClientUpdate(client, key, std::move(value), std::move(done));
}

void EunomiaKvSystem::SetPartitionCommInterval(DatacenterId dc,
                                               PartitionId partition,
                                               std::uint64_t interval_us) {
  assert(dc < dcs_.size() && partition < config_.partitions_per_dc);
  dcs_[dc]->SetPartitionCommInterval(partition, interval_us);
}

const GeoStore& EunomiaKvSystem::StoreAt(DatacenterId dc,
                                         PartitionId partition) const {
  return dcs_[dc]->StoreAt(partition);
}
const Receiver& EunomiaKvSystem::ReceiverAt(DatacenterId dc) const {
  return dcs_[dc]->receiver();
}
const EunomiaCore& EunomiaKvSystem::EunomiaAt(DatacenterId dc) const {
  return dcs_[dc]->eunomia();
}
const VectorTimestamp* EunomiaKvSystem::SessionOf(ClientId client) const {
  const auto it = sessions_.find(client);
  return it == sessions_.end() ? nullptr : &it->second;
}
std::uint64_t EunomiaKvSystem::updates_installed() const {
  std::uint64_t total = 0;
  for (const auto& dc : dcs_) {
    total += dc->updates_installed();
  }
  return total;
}

}  // namespace eunomia::geo
