// Common interface of every simulated geo-replicated storage system.
//
// The workload driver (src/workload) talks to this interface only, so the
// same closed-loop clients exercise EunomiaKV, the sequencer variants,
// GentleRain, Cure and the eventually consistent baseline — mirroring how
// the paper implements all competitors "using the codebase of EunomiaKV"
// so differences come from the protocols alone (§7.2).
#pragma once

#include <functional>
#include <string>

#include "src/common/types.h"
#include "src/georep/visibility.h"

namespace eunomia::geo {

class GeoSystem {
 public:
  virtual ~GeoSystem() = default;

  virtual std::string name() const = 0;

  // Issues a read for `key` by client `client` attached to datacenter `dc`;
  // `done` runs when the client receives the reply.
  virtual void ClientRead(ClientId client, DatacenterId dc, Key key,
                          std::function<void()> done) = 0;

  // Issues an update; same completion contract.
  virtual void ClientUpdate(ClientId client, DatacenterId dc, Key key,
                            Value value, std::function<void()> done) = 0;

  // Mutable access for the lifecycle hooks the systems drive; const access
  // for read-only reporting (results extraction, benchmarks). Both are
  // implemented by every system — no const_cast laundering.
  virtual VisibilityTracker& tracker() = 0;
  virtual const VisibilityTracker& tracker() const = 0;
};

}  // namespace eunomia::geo
