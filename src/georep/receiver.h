// Receiver — Algorithm 5 of the paper.
//
// One receiver per datacenter coordinates the execution of remote updates.
// It keeps a FIFO queue of pending updates per remote datacenter (Queue_m[k])
// and SiteTime_m, a vector recording the latest update applied from each
// origin. An update u from origin k may be forwarded to its responsible
// partition when
//   (i)  all previously received updates from k have been applied (enforced
//        by processing Queue_m[k] in order, one in flight at a time), and
//   (ii) u's causal dependencies are visible locally:
//        SiteTime_m[d] >= u.vts[d] for every d != {m, k}.
// Dependencies on m's own updates need no check — they were created locally —
// and the k entry is covered by the FIFO discipline, exactly as in the paper.
//
// The apply step is asynchronous in the simulator (the partition's server
// queue executes it), so FLUSH is re-driven both periodically (CHECK_PENDING,
// every rho) and whenever an apply completes, which preserves the tail-
// recursive "restart from queue 1" behaviour of Algorithm 5.
//
// Duplicate suppression: after an Eunomia leader failover (§3.3) a suffix of
// updates may be shipped twice. Any head with u.vts[k] <= SiteTime_m[k] has
// already been applied and is dropped.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/types.h"
#include "src/georep/remote_update.h"
#include "src/georep/vclock.h"

namespace eunomia::geo {

class Receiver {
 public:
  // apply(update, done): forward `update` to the responsible local partition;
  // invoke `done` once it has been executed there.
  using ApplyFn =
      std::function<void(const RemoteUpdate&, std::function<void()> done)>;

  // scalar_mode: dependency checking for the single-scalar metadata variant
  // (§4): an update's entries all equal its own timestamp, and the check
  // requires every other datacenter's *stable frontier* (beacon, see
  // OnFrontier) to have passed it with the corresponding queue drained —
  // the GentleRain "GST >= u.ts" condition.
  Receiver(DatacenterId self, std::uint32_t num_dcs, ApplyFn apply,
           bool scalar_mode = false)
      : self_(self),
        num_dcs_(num_dcs),
        scalar_mode_(scalar_mode),
        site_time_(num_dcs),
        frontier_(num_dcs, 0),
        queues_(num_dcs),
        in_flight_(num_dcs, false),
        in_flight_ts_(num_dcs, 0),
        apply_(std::move(apply)) {}

  // Stable-frontier beacon from datacenter d's Eunomia: every update from d
  // with timestamp <= `frontier` has already been shipped (FIFO) to us.
  // Only meaningful (and only consulted) in scalar mode.
  void OnFrontier(DatacenterId d, Timestamp frontier) {
    if (d < num_dcs_ && frontier > frontier_[d]) {
      frontier_[d] = frontier;
      Flush();
    }
  }

  // NEW_UPDATE (Alg. 5 lines 1-2).
  void OnRemoteUpdate(RemoteUpdate update) {
    assert(update.origin < num_dcs_ && update.origin != self_);
    queues_[update.origin].push_back(std::move(update));
    Flush();
  }

  // CHECK_PENDING (Alg. 5 lines 3-4) — re-drive the flush; also safe to call
  // at any time.
  void CheckPending() { Flush(); }

  // Crash-recovery bootstrap: restores the applied frontier recorded by a
  // durability snapshot, so the replay of already-applied inbound updates
  // is shed by the head duplicate check instead of re-applied. Only valid
  // on a fresh receiver, before any update has been queued or applied.
  void RestoreSiteTime(const VectorTimestamp& site_time) {
    assert(site_time.size() == num_dcs_);
    assert(applied_ == 0 && PendingCount() == 0);
    site_time_ = site_time;
  }

  const VectorTimestamp& site_time() const { return site_time_; }
  std::size_t PendingCount() const {
    std::size_t n = 0;
    for (const auto& q : queues_) {
      n += q.size();
    }
    return n;
  }
  std::uint64_t applied_count() const { return applied_; }
  std::uint64_t duplicate_count() const { return duplicates_; }
  // Last stable-frontier beacon accepted from datacenter d (scalar mode).
  // Monotone by construction: OnFrontier ignores regressions, which is what
  // makes a restarted origin's low re-announced frontier harmless.
  Timestamp frontier_of(DatacenterId d) const {
    return d < num_dcs_ ? frontier_[d] : 0;
  }

 private:
  bool DepsSatisfied(const RemoteUpdate& u) const {
    for (DatacenterId d = 0; d < num_dcs_; ++d) {
      if (d == self_ || d == u.origin) {
        continue;  // own updates are local; origin order is FIFO-enforced
      }
      if (scalar_mode_) {
        // All of d's updates with ts <= u.vts[d] must be applied: the beacon
        // says they were shipped; the queue/in-flight state says whether we
        // finished applying them. Equal timestamps across origins are
        // causally concurrent (a real dependency's timestamp was observed
        // strictly before the dependent update was stamped), so ties are
        // serialized by datacenter id — without the tie-break, two queue
        // heads carrying the same timestamp block each other forever.
        if (frontier_[d] < u.vts[d]) {
          return false;
        }
        if (in_flight_[d] &&
            (in_flight_ts_[d] < u.vts[d] ||
             (in_flight_ts_[d] == u.vts[d] && d < u.origin))) {
          return false;
        }
        if (!queues_[d].empty()) {
          const Timestamp head_ts = queues_[d].front().vts[d];
          if (head_ts < u.vts[d] ||
              (head_ts == u.vts[d] && d < u.origin)) {
            return false;
          }
        }
      } else if (site_time_[d] < u.vts[d]) {
        return false;
      }
    }
    return true;
  }

  // FLUSH (Alg. 5 lines 5-20), iterative form with at most one apply in
  // flight per origin queue.
  void Flush() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (DatacenterId k = 0; k < num_dcs_; ++k) {
        if (k == self_ || in_flight_[k] || queues_[k].empty()) {
          continue;
        }
        RemoteUpdate& head = queues_[k].front();
        if (head.vts[k] <= site_time_[k]) {
          // Duplicate from a leader failover re-ship: already applied.
          ++duplicates_;
          queues_[k].pop_front();
          progress = true;
          continue;
        }
        if (!DepsSatisfied(head)) {
          continue;
        }
        in_flight_[k] = true;
        in_flight_ts_[k] = head.vts[k];
        const RemoteUpdate update = head;  // copy: queue may reallocate
        apply_(update, [this, k, ts = update.vts[k]] {
          assert(in_flight_[k]);
          in_flight_[k] = false;
          assert(!queues_[k].empty());
          site_time_[k] = ts;  // Alg. 5 line 16
          queues_[k].pop_front();
          ++applied_;
          Flush();  // Alg. 5 line 18: restart — applying may unblock others
        });
        progress = true;  // keep scanning the other queues
      }
    }
  }

  DatacenterId self_;
  std::uint32_t num_dcs_;
  bool scalar_mode_;
  VectorTimestamp site_time_;
  std::vector<Timestamp> frontier_;
  std::vector<std::deque<RemoteUpdate>> queues_;
  std::vector<bool> in_flight_;
  std::vector<Timestamp> in_flight_ts_;
  ApplyFn apply_;
  std::uint64_t applied_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace eunomia::geo
