// EunomiaKV — the paper's causally consistent geo-replicated store (§4, §6),
// assembled over the discrete-event simulator.
//
// The protocol itself lives in src/georep/runtime/ (one DatacenterRuntime
// per datacenter, written against the Environment seam); this class is the
// simulator binding plus the GeoSystem facade the workload driver and the
// figure benchmarks talk to. Per datacenter m it provides, through
// rt::SimGeoEnvironment:
//   - partitions_per_dc logical partitions spread round-robin over
//     servers_per_dc FCFS servers (the Riak cluster substrate), each with a
//     loosely synchronized physical clock drawn from the seeded RNG;
//   - one Eunomia service node (its own machine) and one Algorithm 5
//     receiver, all connected by FIFO (WAN) links with the paper topology's
//     latencies.
//
// Data/metadata separation (§5): partitions ship payloads directly to their
// sibling partitions as soon as an update commits; Eunomia ships only
// lightweight (uid, vts) records. A remote partition executes an update when
// it holds both the payload and the receiver's go-ahead.
//
// Client sessions hold VClock_c (Table 2): reads merge the returned vector
// entry-wise; updates substitute the returned u.vts, which dominates it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/georep/config.h"
#include "src/georep/geo_system.h"
#include "src/georep/runtime/datacenter_runtime.h"
#include "src/georep/runtime/sim_env.h"
#include "src/georep/visibility.h"
#include "src/sim/simulator.h"

namespace eunomia::geo {

class EunomiaKvSystem final : public GeoSystem {
 public:
  EunomiaKvSystem(sim::Simulator* sim, GeoConfig config);

  std::string name() const override { return "EunomiaKV"; }

  void ClientRead(ClientId client, DatacenterId dc, Key key,
                  std::function<void()> done) override;
  void ClientUpdate(ClientId client, DatacenterId dc, Key key, Value value,
                    std::function<void()> done) override;

  VisibilityTracker& tracker() override { return tracker_; }
  const VisibilityTracker& tracker() const override { return tracker_; }

  // Straggler injection (§7.2.3): overrides the partition -> Eunomia
  // communication interval for one partition. Pass config.batch_interval_us
  // to heal it.
  void SetPartitionCommInterval(DatacenterId dc, PartitionId partition,
                                std::uint64_t interval_us);

  // --- introspection for tests -----------------------------------------------
  const GeoStore& StoreAt(DatacenterId dc, PartitionId partition) const;
  const Receiver& ReceiverAt(DatacenterId dc) const;
  const EunomiaCore& EunomiaAt(DatacenterId dc) const;
  const VectorTimestamp* SessionOf(ClientId client) const;
  std::uint64_t updates_installed() const;
  const GeoConfig& config() const { return config_; }

 private:
  sim::Simulator* sim_;
  GeoConfig config_;
  VisibilityTracker tracker_;
  rt::UidAllocator uids_;
  rt::SessionMap sessions_;
  rt::SimGeoEnvironment env_;
  std::vector<std::unique_ptr<rt::DatacenterRuntime>> dcs_;
};

}  // namespace eunomia::geo
