// EunomiaKV — the paper's causally consistent geo-replicated store (§4, §6),
// assembled over the discrete-event simulator.
//
// Per datacenter m:
//   - partitions_per_dc logical partitions spread round-robin over
//     servers_per_dc FCFS servers (the Riak cluster substrate). Each
//     partition owns a loosely synchronized physical clock, the hybrid
//     MaxTs logic of Algorithm 2, a single-version store with vector-
//     timestamp LWW, and a metadata batcher toward the local Eunomia
//     service (§5);
//   - one Eunomia service node (its own machine): EunomiaCore ordering +
//     periodic PROCESS_STABLE, shipping ordered metadata to every remote
//     receiver over FIFO WAN links;
//   - one receiver implementing Algorithm 5.
//
// Data/metadata separation (§5): partitions ship payloads directly to their
// sibling partitions as soon as an update commits; Eunomia ships only
// lightweight (uid, vts) records. A remote partition executes an update when
// it holds both the payload and the receiver's go-ahead.
//
// Client sessions hold VClock_c (Table 2): reads merge the returned vector
// entry-wise; updates substitute the returned u.vts, which dominates it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/clock/physical_clock.h"
#include "src/common/types.h"
#include "src/eunomia/core.h"
#include "src/eunomia/sender.h"
#include "src/georep/config.h"
#include "src/georep/geo_store.h"
#include "src/georep/geo_system.h"
#include "src/georep/receiver.h"
#include "src/georep/remote_update.h"
#include "src/georep/visibility.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"
#include "src/store/hash_ring.h"

namespace eunomia::geo {

class EunomiaKvSystem final : public GeoSystem {
 public:
  EunomiaKvSystem(sim::Simulator* sim, GeoConfig config);

  std::string name() const override { return "EunomiaKV"; }

  void ClientRead(ClientId client, DatacenterId dc, Key key,
                  std::function<void()> done) override;
  void ClientUpdate(ClientId client, DatacenterId dc, Key key, Value value,
                    std::function<void()> done) override;

  VisibilityTracker& tracker() override { return tracker_; }

  // Straggler injection (§7.2.3): overrides the partition -> Eunomia
  // communication interval for one partition. Pass config.batch_interval_us
  // to heal it.
  void SetPartitionCommInterval(DatacenterId dc, PartitionId partition,
                                std::uint64_t interval_us);

  // --- introspection for tests -----------------------------------------------
  const GeoStore& StoreAt(DatacenterId dc, PartitionId partition) const;
  const Receiver& ReceiverAt(DatacenterId dc) const;
  const EunomiaCore& EunomiaAt(DatacenterId dc) const;
  const VectorTimestamp* SessionOf(ClientId client) const;
  std::uint64_t updates_installed() const { return updates_installed_; }
  const GeoConfig& config() const { return config_; }

 private:
  struct Partition {
    PartitionId id = 0;
    DatacenterId dc = 0;
    sim::Server* server = nullptr;
    sim::EndpointId endpoint = 0;
    PhysicalClock clock;
    // Tie-free hybrid clock: timestamps are partition-tagged in their low
    // bits so no two partitions of this DC ever issue equal values (see
    // clock/hybrid_clock.h for why Algorithm 5 wants this).
    PartitionedHybridClock hybrid;
    GeoStore store;
    PartitionBatcher batcher;
    std::uint64_t comm_interval_us = 1000;
    // Data/metadata separation state: payloads received ahead of metadata,
    // and metadata go-aheads waiting for payloads.
    std::unordered_map<std::uint64_t, RemotePayload> payloads;
    std::unordered_map<std::uint64_t, std::function<void()>> pending_applies;
  };

  struct Datacenter {
    DatacenterId id = 0;
    std::vector<std::unique_ptr<sim::Server>> servers;
    std::vector<Partition> partitions;
    std::unique_ptr<EunomiaCore> eunomia;
    std::unique_ptr<sim::Server> eunomia_server;
    sim::EndpointId eunomia_endpoint = 0;
    std::unique_ptr<Receiver> receiver;
    std::unique_ptr<sim::Server> receiver_server;
    sim::EndpointId receiver_endpoint = 0;
  };

  void StartTimers();
  void SchedulePartitionFlush(DatacenterId dc, PartitionId p);
  void FlushPartition(DatacenterId dc, PartitionId p);
  void ScheduleStabilizer(DatacenterId dc);
  void RunStabilizer(DatacenterId dc);
  void ScheduleReceiverCheck(DatacenterId dc);

  void ExecuteUpdate(Partition& part, ClientId client, Key key, Value value,
                     std::function<void()> done, std::uint64_t issued_at);
  void DeliverPayload(DatacenterId dc, PartitionId p, RemotePayload payload);
  void ApplyRemote(DatacenterId dc, PartitionId p, const RemoteUpdate& meta,
                   std::function<void()> done);
  void ExecuteRemote(Partition& part, std::uint64_t uid,
                     std::function<void()> done);

  sim::Simulator* sim_;
  GeoConfig config_;
  sim::Network network_;
  store::ConsistentHashRing router_;
  std::vector<Datacenter> dcs_;
  std::unordered_map<ClientId, VectorTimestamp> sessions_;
  // Metadata registry: uid -> shipping metadata, kept at the origin until
  // Eunomia stabilizes and ships it.
  std::unordered_map<std::uint64_t, RemoteUpdate> registry_;
  VisibilityTracker tracker_;
  std::uint64_t updates_installed_ = 0;
  std::vector<OpRecord> stable_scratch_;
};

}  // namespace eunomia::geo
