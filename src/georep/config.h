// Deployment configuration and service-time cost model shared by every
// simulated geo-replicated system.
//
// Throughput differences between the protocols in the paper's evaluation are
// *capacity* effects: each protocol puts a different amount of work on the
// storage servers (per-op processing, metadata enrichment, stabilization
// traffic) and, for sequencer systems, adds a synchronous round-trip to the
// client's critical path. The cost model makes those per-task service times
// explicit so that the simulated throughput is an emergent property of
// closed-loop clients saturating FCFS servers — the same mechanism that
// shapes the real numbers. Defaults are calibrated so that one simulated
// server sustains roughly 3 kops/s, the per-machine Riak KV capacity the
// paper reports (§7.1).
#pragma once

#include <cstdint>

#include "src/ordbuf/ordered_buffer.h"
#include "src/sim/network.h"

namespace eunomia::geo {

struct CostModel {
  // Base service times at a storage server (microseconds). Calibrated so
  // the simulated cluster's absolute throughput lands in the paper's range
  // (one Riak server sustains roughly 3 kops/s of simple KV traffic, §7.1;
  // the full 3-DC deployment peaks around 13 kops/s at 99:1 in Fig. 5).
  std::uint64_t read_us = 550;
  std::uint64_t update_us = 750;
  std::uint64_t apply_remote_us = 500;

  // Per-vector-entry metadata enrichment cost. Charged per entry on Cure's
  // operations and stabilization messages — Cure's snapshot/dependency
  // machinery does real per-entry work. EunomiaKV also carries vectors but
  // its dependency checking is trivial (§4: the overhead "is negligible in
  // our protocol as Eunomia allows for trivial dependency checking
  // procedures"), so it pays only the flat eunomia_metadata_us below.
  std::uint64_t vclock_entry_us = 8;

  // Flat per-op metadata cost for EunomiaKV / sequencer systems (vector
  // copy + entrywise max — near-free).
  std::uint64_t eunomia_metadata_us = 6;

  // Extra cost on EunomiaKV's update path: unique-id generation, metadata
  // batching toward Eunomia, and the direct payload fan-out to sibling
  // partitions (§5). This is why the paper's EunomiaKV overhead vs eventual
  // consistency grows with the update ratio (4.7% average, ~1% read-heavy).
  std::uint64_t eunomia_update_metadata_us = 55;

  // Per-op multi-version store maintenance (version chains + GC), paid by
  // the global-stabilization protocols that must retain invisible versions
  // (GentleRain and Cure).
  std::uint64_t multiversion_us = 25;

  // Handling one stabilization / heartbeat message at a partition server
  // (GentleRain & Cure global stabilization, §7.2).
  std::uint64_t stab_msg_us = 120;
  // Per-round local-stable-time computation at a partition.
  std::uint64_t gst_compute_us = 80;

  // Sequencer service time per request (S-Seq / A-Seq). ~20 us/request
  // matches the native sequencer's measured ~48 kops/s ceiling (§7.1).
  std::uint64_t seq_request_us = 18;

  // Extra round-trip latency of the partition <-> sequencer RPC beyond the
  // raw network hops: Erlang messaging, scheduling and serialization in the
  // paper's Riak testbed. Pure latency (no capacity consumed); calibrated
  // so a sequencer round-trip costs ~2 ms, which reproduces the paper's
  // ~14.8% S-Seq throughput penalty at 90:10 (§2, Fig. 1).
  std::uint64_t seq_rpc_overhead_us = 1700;

  // Eunomia service node: per-op ingestion and per-op emission cost. The
  // service runs on its own machine, off the storage servers.
  std::uint64_t eunomia_op_us = 2;

  // Receiver processing per remote update (metadata bookkeeping).
  std::uint64_t receiver_op_us = 5;
};

struct ClockConfig {
  // Per-node clock offsets drawn uniformly from [-max_offset, +max_offset].
  std::int64_t max_offset_us = 500;  // well within NTP discipline on a LAN
  double max_drift_ppm = 50.0;
};

struct GeoConfig {
  std::uint32_t num_dcs = 3;
  std::uint32_t partitions_per_dc = 8;
  std::uint32_t servers_per_dc = 3;

  // Eunomia timers (§3, §5).
  std::uint64_t batch_interval_us = 1000;  // partition -> Eunomia batching
  std::uint64_t theta_us = 1000;           // PROCESS_STABLE period
  std::uint64_t delta_us = 1000;           // partition heartbeat interval
  std::uint64_t rho_us = 1000;             // receiver CHECK_PENDING period

  // GentleRain / Cure global stabilization timers: the paper sets the
  // cross-DC heartbeat interval to 10 ms and the local stable-time
  // computation to 5 ms (§7.2).
  std::uint64_t gst_interval_us = 5000;
  std::uint64_t remote_hb_interval_us = 10000;

  // EunomiaKV metadata mode (§4): vectors track inter-DC dependencies
  // exactly; setting this compresses them into a single scalar "as in
  // GentleRain", introducing false dependencies across datacenters — the
  // visibility lower bound becomes the latency to the farthest datacenter
  // regardless of the update's origin. Used by bench/ablation_metadata.
  bool scalar_metadata = false;

  // Ordered-buffer policy behind each datacenter's Eunomia node (§6 /
  // src/ordbuf/): the per-partition run-queue layout by default, the tree
  // backends for reproducing the paper's design-choice comparison.
  ordbuf::Backend eunomia_buffer = ordbuf::Backend::kPartitionRun;

  CostModel costs;
  ClockConfig clocks;
  sim::NetworkConfig network = sim::PaperTopology();

  std::uint64_t timeline_window_us = 1'000'000;
};

}  // namespace eunomia::geo
