#include "src/georep/runtime/geo_wire.h"

#include <cassert>

#include "src/net/wire_io.h"

namespace eunomia::geo::rt::wire {

namespace {

using net::wire::io::PayloadReader;
using net::wire::io::PutU32;
using net::wire::io::PutU64;

// Sanity bound on vector-timestamp width: a deployment of more than 256
// datacenters is outside every shape this runtime accepts, so a larger
// width on the wire is treated as a malformed payload before any
// allocation happens.
constexpr std::uint32_t kMaxVectorEntries = 256;

void PutVts(std::string* out, const VectorTimestamp& vts) {
  PutU32(out, vts.size());
  for (std::uint32_t d = 0; d < vts.size(); ++d) {
    PutU64(out, vts[d]);
  }
}

bool ReadVts(PayloadReader* reader, VectorTimestamp* vts) {
  std::uint32_t len = 0;
  if (!reader->U32(&len) || len == 0 || len > kMaxVectorEntries ||
      reader->remaining() < static_cast<std::size_t>(len) * 8) {
    return false;
  }
  *vts = VectorTimestamp(len);
  for (std::uint32_t d = 0; d < len; ++d) {
    std::uint64_t v = 0;
    if (!reader->U64(&v)) return false;
    (*vts)[d] = v;
  }
  return true;
}

}  // namespace

std::string EncodeGeoHello(const GeoHelloMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.protocol_version);
  PutU32(&payload, msg.dc);
  PutU32(&payload, msg.num_dcs);
  PutU32(&payload, msg.partitions);
  PutU32(&payload, msg.link_kind);
  PutU64(&payload, msg.resume_from);
  return payload;
}

bool DecodeGeoHello(std::string_view payload, GeoHelloMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->protocol_version) && reader.U32(&msg->dc) &&
         reader.U32(&msg->num_dcs) && reader.U32(&msg->partitions) &&
         reader.U32(&msg->link_kind) && reader.U64(&msg->resume_from) &&
         reader.done();
}

std::string EncodeGeoMetaBatch(DatacenterId origin, const RemoteUpdate* updates,
                               std::size_t count) {
  std::string payload;
  payload.reserve(8 + (count == 0 ? 0
                                  : count * RemoteUpdateWireBytes(
                                                updates[0].vts.size())));
  PutU32(&payload, origin);
  PutU32(&payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const RemoteUpdate& u = updates[i];
    PutU64(&payload, u.uid);
    PutU64(&payload, u.key);
    PutU32(&payload, u.origin);
    PutU32(&payload, u.partition);
    PutVts(&payload, u.vts);
  }
  assert(payload.size() <= net::wire::kMaxPayloadBytes);
  return payload;
}

bool DecodeGeoMetaBatch(std::string_view payload, GeoMetaBatchMsg* msg) {
  PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.U32(&msg->origin) || !reader.U32(&count)) {
    return false;
  }
  // Each update is at least 28 bytes: a count the payload cannot hold is
  // rejected before any reservation.
  if (static_cast<std::size_t>(count) * 28 > reader.remaining()) {
    return false;
  }
  msg->updates.clear();
  msg->updates.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RemoteUpdate u;
    if (!reader.U64(&u.uid) || !reader.U64(&u.key) || !reader.U32(&u.origin) ||
        !reader.U32(&u.partition) || !ReadVts(&reader, &u.vts)) {
      return false;
    }
    msg->updates.push_back(std::move(u));
  }
  return reader.done();
}

std::string EncodeGeoFrontier(const GeoFrontierMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.origin);
  PutU64(&payload, msg.frontier);
  return payload;
}

bool DecodeGeoFrontier(std::string_view payload, GeoFrontierMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->origin) && reader.U64(&msg->frontier) &&
         reader.done();
}

std::string EncodeGeoPayload(const GeoPayloadMsg& msg) {
  std::string payload;
  payload.reserve(32 + 8 * msg.payload.vts.size() + msg.payload.value.size());
  PutU32(&payload, msg.partition);
  PutU64(&payload, msg.payload.uid);
  PutU64(&payload, msg.payload.key);
  PutU32(&payload, msg.payload.origin);
  PutVts(&payload, msg.payload.vts);
  PutU32(&payload, static_cast<std::uint32_t>(msg.payload.value.size()));
  payload.append(msg.payload.value);
  assert(payload.size() <= net::wire::kMaxPayloadBytes);
  return payload;
}

bool DecodeGeoPayload(std::string_view payload, GeoPayloadMsg* msg) {
  PayloadReader reader(payload);
  std::uint32_t value_len = 0;
  return reader.U32(&msg->partition) && reader.U64(&msg->payload.uid) &&
         reader.U64(&msg->payload.key) && reader.U32(&msg->payload.origin) &&
         ReadVts(&reader, &msg->payload.vts) && reader.U32(&value_len) &&
         reader.Bytes(value_len, &msg->payload.value) && reader.done();
}

std::string EncodeGeoAck(const GeoAckMsg& msg) {
  std::string payload;
  PutU32(&payload, msg.dc);
  PutU64(&payload, msg.applied);
  return payload;
}

bool DecodeGeoAck(std::string_view payload, GeoAckMsg* msg) {
  PayloadReader reader(payload);
  return reader.U32(&msg->dc) && reader.U64(&msg->applied) && reader.done();
}

}  // namespace eunomia::geo::rt::wire
