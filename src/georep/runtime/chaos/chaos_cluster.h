// A simulated EunomiaKV deployment wired to the fault-injecting environment,
// with crash/restart lifecycle management.
//
// The cluster owns everything that must SURVIVE a datacenter crash — the
// per-DC uid allocators (a restarted datacenter must not re-issue uids of
// its previous incarnation; the strided stream is the durable-allocation
// stand-in), the client session maps (VClock_c is client-side state in the
// paper, so a server crash does not reset it), the shared visibility
// tracker (the observer, not part of the system under test), and, in
// durable mode, one fault-injecting in-memory disk per datacenter — while
// the DatacenterRuntime objects themselves are disposable: Crash() destroys
// one outright, Restart() builds a fresh one with newly drawn clock skew.
//
// Two recovery modes:
//   - durable=false: the environment replays its full channel histories
//     into the fresh runtime (the WAL-less stand-in).
//   - durable=true: each runtime writes a real WAL + snapshots through
//     GeoDurability onto a wal::FaultyDisk that survives the crash (losing
//     its unsynced suffix, possibly torn or bit-flipped). Restart recovers
//     from the disk, then the environment provides only the *incremental*
//     catch-up — peer traffic above the recovered applied frontier — plus
//     the re-fan-out of retained install payloads, exactly the catch-up a
//     real peer link replay would provide.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/georep/config.h"
#include "src/georep/runtime/chaos/faulty_env.h"
#include "src/georep/runtime/datacenter_runtime.h"
#include "src/georep/runtime/durability.h"
#include "src/georep/visibility.h"
#include "src/sim/simulator.h"
#include "src/wal/disk.h"
#include "src/wal/log_writer.h"

namespace eunomia::geo::rt::chaos {

struct ChaosOptions {
  GeoConfig config;
  FaultProfile profile;
  std::uint64_t seed = 1;
  // Durable mode (see file comment). The RYW-across-crash invariant is only
  // sound under kPerCommit: with a lazier policy an acknowledged write may
  // legitimately die with the unsynced log tail.
  bool durable = false;
  wal::FaultyDisk::Faults disk_faults;
  wal::FsyncPolicy fsync = wal::FsyncPolicy::kPerCommit;
  std::uint64_t snapshot_period_us = 250'000;
  std::uint64_t snapshot_interval_bytes = 16u << 10;
};

class ChaosCluster {
 public:
  ChaosCluster(sim::Simulator* sim, const ChaosOptions& options);

  // Creates every datacenter runtime and starts its timers. Call once.
  void Start();

  // Kills a datacenter: the environment drops everything in flight to or
  // scheduled by it, then the runtime object is destroyed. All volatile
  // state (stores, Eunomia buffers, receiver queues, parked payloads,
  // un-fsynced log bytes) is lost; in durable mode the disk keeps its
  // synced prefix plus a possibly-torn fragment of the unsynced suffix.
  void Crash(DatacenterId dc);

  // Boots a fresh runtime for a crashed datacenter — new clock skew drawn,
  // state recovered from its disk (durable mode) or rebuilt by the
  // environment's replay — and starts its timers.
  void Restart(DatacenterId dc);

  bool alive(DatacenterId dc) const { return env_.alive(dc); }
  DatacenterRuntime* runtime(DatacenterId dc) { return runtimes_[dc].get(); }
  const DatacenterRuntime* runtime(DatacenterId dc) const {
    return runtimes_[dc].get();
  }
  FaultyGeoEnvironment& env() { return env_; }
  const FaultyGeoEnvironment& env() const { return env_; }
  VisibilityTracker& tracker() { return tracker_; }
  const VisibilityTracker& tracker() const { return tracker_; }
  const GeoConfig& config() const { return options_.config; }
  bool durable() const { return options_.durable; }
  wal::FaultyDisk* disk(DatacenterId dc) { return disks_[dc].get(); }
  GeoDurability* durability(DatacenterId dc) { return durability_[dc].get(); }

  // Largest absolute clock error any partition clock has carried so far
  // (drawn skews plus injected steps) — feeds the staleness bound.
  std::int64_t max_clock_error_us() const { return max_clock_error_us_; }
  void NoteClockError(std::int64_t abs_error_us) {
    if (abs_error_us > max_clock_error_us_) {
      max_clock_error_us_ = abs_error_us;
    }
  }

 private:
  std::vector<PhysicalClock> DrawClocks();
  std::unique_ptr<DatacenterRuntime> MakeRuntime(DatacenterId dc);
  std::unique_ptr<GeoDurability> MakeDurability(DatacenterId dc);
  // Recurring per-DC snapshot event (durable mode): snapshot when enough
  // log bytes accumulated, truncating installs up to the frontier every
  // peer has durably applied.
  void ScheduleSnapshot(DatacenterId dc);
  Timestamp InstallTruncateMark(DatacenterId dc) const;

  sim::Simulator* const sim_;
  const ChaosOptions options_;
  VisibilityTracker tracker_;
  FaultyGeoEnvironment env_;
  Rng clock_rng_;
  std::vector<UidAllocator> uids_;
  std::vector<SessionMap> sessions_;
  std::vector<std::unique_ptr<wal::FaultyDisk>> disks_;  // survive crashes
  std::vector<std::unique_ptr<GeoDurability>> durability_;
  std::vector<std::unique_ptr<DatacenterRuntime>> runtimes_;
  std::int64_t max_clock_error_us_ = 0;
};

}  // namespace eunomia::geo::rt::chaos
