// A simulated EunomiaKV deployment wired to the fault-injecting environment,
// with crash/restart lifecycle management.
//
// The cluster owns everything that must SURVIVE a datacenter crash — the
// per-DC uid allocators (a restarted datacenter must not re-issue uids of
// its previous incarnation; the strided stream is the WAL-less stand-in for
// durable allocation state until ROADMAP item 2), the client session maps
// (VClock_c is client-side state in the paper, so a server crash does not
// reset it), and the shared visibility tracker (the observer, not part of
// the system under test) — while the DatacenterRuntime objects themselves
// are disposable: Crash() destroys one outright, Restart() builds a fresh
// one with newly drawn clock skew and lets the environment replay its world.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/georep/config.h"
#include "src/georep/runtime/chaos/faulty_env.h"
#include "src/georep/runtime/datacenter_runtime.h"
#include "src/georep/visibility.h"
#include "src/sim/simulator.h"

namespace eunomia::geo::rt::chaos {

struct ChaosOptions {
  GeoConfig config;
  FaultProfile profile;
  std::uint64_t seed = 1;
};

class ChaosCluster {
 public:
  ChaosCluster(sim::Simulator* sim, const ChaosOptions& options);

  // Creates every datacenter runtime and starts its timers. Call once.
  void Start();

  // Kills a datacenter: the environment drops everything in flight to or
  // scheduled by it, then the runtime object is destroyed. All volatile
  // state (stores, Eunomia buffers, receiver queues, parked payloads) is
  // lost.
  void Crash(DatacenterId dc);

  // Boots a fresh runtime for a crashed datacenter — new clock skew drawn,
  // state rebuilt by the environment's replay — and starts its timers.
  void Restart(DatacenterId dc);

  bool alive(DatacenterId dc) const { return env_.alive(dc); }
  DatacenterRuntime* runtime(DatacenterId dc) { return runtimes_[dc].get(); }
  const DatacenterRuntime* runtime(DatacenterId dc) const {
    return runtimes_[dc].get();
  }
  FaultyGeoEnvironment& env() { return env_; }
  const FaultyGeoEnvironment& env() const { return env_; }
  VisibilityTracker& tracker() { return tracker_; }
  const VisibilityTracker& tracker() const { return tracker_; }
  const GeoConfig& config() const { return options_.config; }

  // Largest absolute clock error any partition clock has carried so far
  // (drawn skews plus injected steps) — feeds the staleness bound.
  std::int64_t max_clock_error_us() const { return max_clock_error_us_; }
  void NoteClockError(std::int64_t abs_error_us) {
    if (abs_error_us > max_clock_error_us_) {
      max_clock_error_us_ = abs_error_us;
    }
  }

 private:
  std::vector<PhysicalClock> DrawClocks();
  std::unique_ptr<DatacenterRuntime> MakeRuntime(DatacenterId dc);

  sim::Simulator* const sim_;
  const ChaosOptions options_;
  VisibilityTracker tracker_;
  FaultyGeoEnvironment env_;
  Rng clock_rng_;
  std::vector<UidAllocator> uids_;
  std::vector<SessionMap> sessions_;
  std::vector<std::unique_ptr<DatacenterRuntime>> runtimes_;
  std::int64_t max_clock_error_us_ = 0;
};

}  // namespace eunomia::geo::rt::chaos
