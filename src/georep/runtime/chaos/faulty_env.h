// Fault-injecting simulator binding of the geo-runtime Environment.
//
// FoundationDB-style deterministic chaos: the real EunomiaKV protocol runs
// unmodified on top of this environment while every hazard the deployment
// assumptions permit is injected from a single PRNG seed — payload loss
// (with at-least-once re-ship), payload duplication and delay, metadata
// duplication, WAN link degradation that heals (hold-and-flush, so the FIFO
// contract of §3.1/§4 is never silently violated), whole-datacenter crash
// with total state loss and replay-driven restart, per-partition clock
// steps, and stragglers. Faults that the protocol is NOT expected to
// survive (true payload loss, metadata loss, metadata reordering) are
// available as deliberate "plants": intentionally introduced bugs the
// invariant checker must catch, proving the harness has teeth.
//
// Fault taxonomy vs the Environment contract:
//   - SendPayload is unordered (§5), so the payload channel may drop (then
//     re-ship), duplicate and delay freely — the protocol's payload/metadata
//     separation must absorb all of it.
//   - SendMetadataBatch / SendHeartbeat / SendRemoteMetadata / SendFrontier
//     are FIFO per directed channel; the only benign faults injected there
//     are adjacent duplication (FIFO-preserving; receivers must dedup) and
//     extra channel delay (sim::Network clamps delivery order). Loss and
//     reordering on these channels are plants, never benign faults.
//   - Crash: every in-flight message toward the datacenter and every timer,
//     hop or server task it had scheduled dies with it (per-DC epoch
//     gating); its entire runtime state is discarded.
//   - Restart: the environment replays, in order, (1) the datacenter's own
//     install log (the durable-WAL stand-in until ROADMAP item 2 lands),
//     (2) inbound payload history per origin, (3) inbound metadata history
//     per origin (FIFO). Remote receivers dedup the suffix the restarted
//     Eunomia re-stabilizes and re-ships.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/georep/runtime/sim_env.h"

namespace eunomia::geo::rt::chaos {

// A deliberately introduced protocol-breaking bug. The nemesis sweep's
// --plant / --expect-violation mode asserts that at least one seed catches
// it and that the printed seed reproduces the violation by itself.
enum class Plant {
  kNone,
  kDropPayload,      // payload silently never shipped (no re-ship)
  kReorderMetadata,  // ordered-metadata batch bypasses the FIFO channel
  kDropMetadata,     // ordered-metadata batch silently discarded
};

struct FaultProfile {
  // Benign payload-channel faults (the protocol must absorb these).
  double payload_drop = 0.0;  // dropped, then re-shipped (at-least-once)
  double payload_dup = 0.0;
  double payload_delay = 0.0;  // probability of extra jitter on a payload
  std::uint64_t payload_delay_max_us = 15'000;
  std::uint64_t reship_delay_us = 20'000;
  // Benign FIFO-channel fault: adjacent duplication of an ordered batch.
  double metadata_dup = 0.0;
  // Deliberate bug injection.
  Plant plant = Plant::kNone;
  double plant_probability = 0.25;
};

struct FaultStats {
  std::uint64_t payloads_dropped = 0;  // benign: re-shipped later
  std::uint64_t payloads_duplicated = 0;
  std::uint64_t payloads_delayed = 0;
  std::uint64_t metadata_duplicated = 0;
  std::uint64_t plants_fired = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
};

class FaultyGeoEnvironment : public SimGeoEnvironment {
 public:
  // One update as the origin datacenter durably installed it; the per-DC
  // sequence of these is the crash-recovery oracle and replay source.
  struct InstallRecord {
    PartitionId partition = 0;
    RemotePayload payload;
  };

  FaultyGeoEnvironment(sim::Simulator* sim, const GeoConfig& config,
                       const FaultProfile& profile, std::uint64_t seed);

  // --- fault controls --------------------------------------------------------
  // Detaches the runtime and advances the datacenter's epoch: every closure
  // it had in flight (timers, hops, server tasks, intra-DC deliveries) is
  // dropped when it fires, and inbound messages are lost until restart. The
  // old runtime object may be destroyed immediately afterwards — nothing
  // gated can touch it again.
  void CrashDatacenter(DatacenterId dc);
  // Attaches a fresh runtime and replays its world: own install log (call
  // order = timestamp order per partition, as required by
  // DatacenterRuntime::RestoreLocalUpdate), then inbound payloads, then
  // inbound ordered metadata per origin. The caller starts timers after.
  void RestartDatacenter(DatacenterId dc, DatacenterRuntime* runtime);
  // Durable-mode restart: attaches the runtime WITHOUT any environment
  // replay — the runtime recovered its own state from a (simulated) disk
  // (GeoDurability::Recover). The environment's channel histories stay the
  // convergence oracle but are no longer the recovery mechanism.
  void AttachDatacenter(DatacenterId dc, DatacenterRuntime* runtime);
  // Durable-mode catch-up: delivers only the peer traffic ABOVE the
  // runtime's recovered applied frontier (its receiver SiteTime) — inbound
  // payloads first, then ordered metadata, per origin in channel FIFO
  // order. This models sender-side retransmission from the last
  // acknowledged point, which is exactly what the TCP transport's
  // reconnect replay provides; full-history replay would work too (the
  // receiver dedups) but would defeat the purpose of recovering from disk.
  void CatchUpDatacenter(DatacenterId dc, DatacenterRuntime* runtime);
  // Degrades (extra_us > 0) or heals (extra_us = 0) every WAN channel from
  // `from` to `to` — ordered metadata/frontier and all payload channels.
  // Extra delay holds messages back but preserves FIFO (hold-and-flush), so
  // a healed partition flushes its backlog in order instead of losing it.
  void SetWanDelay(DatacenterId from, DatacenterId to, std::uint64_t extra_us);

  bool alive(DatacenterId dc) const { return runtimes_[dc] != nullptr; }
  std::uint64_t epoch(DatacenterId dc) const { return epoch_[dc]; }
  const FaultStats& stats() const { return stats_; }
  // Every update ever installed at `origin`, in install order — the
  // convergence oracle.
  const std::vector<InstallRecord>& install_log(DatacenterId origin) const {
    return install_log_[origin];
  }

  // --- Environment overrides -------------------------------------------------
  void ScheduleAfter(DatacenterId dc, std::uint64_t delay_us,
                     std::function<void()> fn) override;
  void ClientHop(DatacenterId dc, std::function<void()> fn) override;
  void RunOnPartition(DatacenterId dc, PartitionId partition,
                      std::uint64_t cost_us, bool priority,
                      std::function<void()> fn) override;
  void SendMetadataBatch(DatacenterId dc, PartitionId partition,
                         std::vector<OpRecord> batch) override;
  void SendHeartbeat(DatacenterId dc, PartitionId partition,
                     Timestamp ts) override;
  void SendRemoteMetadata(DatacenterId from, DatacenterId to,
                          std::vector<RemoteUpdate> batch) override;
  void SendPayload(DatacenterId from, DatacenterId to, PartitionId partition,
                   RemotePayload payload) override;
  void SendApply(DatacenterId dc, PartitionId partition,
                 std::function<void()> fn) override;
  // SendFrontier and ChargeEunomia are inherited unchanged: the frontier
  // beacon rides the same FIFO channel as ordered metadata (base class) and
  // the receiver ignores regressions, so no extra machinery is needed.

 private:
  // Wraps a closure so it runs only if datacenter `dc` has not crashed
  // since the wrap (epoch snapshot) and a runtime is attached. This is what
  // makes destroying a crashed runtime safe: every closure that captured it
  // is fenced here.
  std::function<void()> Gate(DatacenterId dc, std::function<void()> fn);

  std::size_t Idx(DatacenterId from, DatacenterId to) const {
    return static_cast<std::size_t>(from) * config_.num_dcs + to;
  }

  FaultProfile profile_;
  Rng rng_;
  FaultStats stats_;
  std::vector<std::uint64_t> epoch_;
  std::vector<std::vector<InstallRecord>> install_log_;
  std::unordered_set<std::uint64_t> logged_uids_;
  // Channel histories for restart replay, indexed [from * num_dcs + to].
  std::vector<std::vector<InstallRecord>> payload_history_;
  std::vector<std::vector<std::vector<RemoteUpdate>>> meta_history_;
};

}  // namespace eunomia::geo::rt::chaos
