#include "src/georep/runtime/chaos/nemesis.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace eunomia::geo::rt::chaos {
namespace {

// Private read-your-writes probe keys live far above the shared-key range.
constexpr Key kPrivateKeyBase = 1'000'000;
constexpr Key kSharedKeys = 200;

// One closed-loop client pinned to a datacenter. Ticks are driven straight
// off the simulator (never through the gated environment), so a loop
// survives its datacenter crashing: an op in flight when the epoch advanced
// is treated as aborted and the loop resumes once the datacenter is back.
struct ClientState {
  ClientId id = 0;
  DatacenterId dc = 0;
  Key private_key = 0;
  std::uint64_t seq = 0;    // last issued private-key sequence number
  std::uint64_t acked = 0;  // last acknowledged sequence number
  bool in_flight = false;
  std::uint64_t issue_epoch = 0;
  Rng rng;
};

std::uint64_t ParseSeq(const Value& value) {
  if (value.size() < 2 || value[0] != 's') {
    return 0;
  }
  return std::strtoull(value.c_str() + 1, nullptr, 10);
}

GeoConfig DrawConfig(Rng* rng, bool smoke) {
  GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 2 + static_cast<std::uint32_t>(rng->NextBounded(2));
  config.servers_per_dc = 1;
  config.scalar_metadata = rng->NextBool(0.35);
  // Clock skews far beyond NTP: the protocol claims correctness independent
  // of synchronization precision, so the schedules hold it to that.
  config.clocks.max_offset_us = 20'000;
  config.clocks.max_drift_ppm = 50.0;
  // Compressed WAN (vs the paper's 40-80 ms) so hundreds of protocol rounds
  // and several fault windows fit in a few simulated seconds.
  config.network.jitter = 0.05 + 0.15 * rng->NextDouble();
  config.network.wan_one_way_us.assign(config.num_dcs,
                                       std::vector<sim::SimTime>(config.num_dcs, 0));
  for (DatacenterId i = 0; i < config.num_dcs; ++i) {
    for (DatacenterId j = i + 1; j < config.num_dcs; ++j) {
      const sim::SimTime one_way = 2'000 + rng->NextBounded(18'000);
      config.network.wan_one_way_us[i][j] = one_way;
      config.network.wan_one_way_us[j][i] = one_way;
    }
  }
  (void)smoke;
  return config;
}

FaultProfile DrawProfile(Rng* rng, Plant plant) {
  FaultProfile profile;
  profile.payload_drop = 0.05 + 0.25 * rng->NextDouble();
  profile.payload_dup = 0.3 * rng->NextDouble();
  profile.payload_delay = 0.3 * rng->NextDouble();
  profile.payload_delay_max_us = 1'000 + rng->NextBounded(14'000);
  profile.reship_delay_us = 10'000 + rng->NextBounded(30'000);
  profile.metadata_dup = 0.2 * rng->NextDouble();
  profile.plant = plant;
  return profile;
}

}  // namespace

std::string NemesisReport::Digest() const {
  std::ostringstream os;
  os << "seed=" << seed << " events=" << executed_events
     << " updates=" << updates_acked << " reads=" << reads_done
     << " windows=" << fault_windows << (scalar_metadata ? " scalar" : " vector")
     << (durable ? " durable" : "") << " crashes=" << faults.crashes
     << " drops=" << faults.payloads_dropped
     << " plants=" << faults.plants_fired
     << " violations=" << violations.size();
  if (durable) {
    os << " torn=" << wal_torn_tails << " flips=" << wal_bit_flips
       << " snaps=" << snapshots_taken;
  }
  if (!violations.empty()) {
    os << " first=[" << violations[0].invariant << ": "
       << violations[0].detail << "]";
  }
  return os.str();
}

NemesisReport RunNemesisSchedule(const NemesisOptions& options) {
  Rng root(options.seed ^ 0x6e656d6573697321ULL);
  const std::uint64_t horizon_us = options.smoke ? 2'000'000 : 3'000'000;
  const std::uint64_t quiesce_us = options.smoke ? 1'500'000 : 2'000'000;

  const GeoConfig config = DrawConfig(&root, options.smoke);
  const FaultProfile profile = DrawProfile(&root, options.plant);

  // Always consume the draw so a given seed produces the same schedule no
  // matter how `durability` overrides it.
  const bool durable_draw = root.NextBool(0.4);
  const bool durable =
      options.durability == 1 || (options.durability < 0 && durable_draw);

  sim::Simulator sim(options.seed);
  ChaosOptions chaos_options;
  chaos_options.config = config;
  chaos_options.profile = profile;
  chaos_options.seed = root.Next();
  chaos_options.durable = durable;
  if (durable) {
    chaos_options.fsync = wal::FsyncPolicy::kPerCommit;
    // Per-commit fsync leaves little unsynced tail for these to bite on;
    // they mostly exercise the torn-fragment tolerance of WriteAtomic
    // snapshots and the final interval of each log. Deterministic torn-tail
    // coverage lives in the dedicated durability tests.
    chaos_options.disk_faults.torn_tail = 0.5;
    chaos_options.disk_faults.bit_flip = 0.25;
  }
  ChaosCluster cluster(&sim, chaos_options);
  cluster.Start();

  // --- fault windows ---------------------------------------------------------
  // All windows end at least 400 ms before the horizon; the heal-all event
  // at the horizon restores anything a guard skipped.
  const bool debug = std::getenv("NEMESIS_DEBUG") != nullptr;
  const std::uint32_t num_windows = 3 + static_cast<std::uint32_t>(root.NextBounded(5));
  std::int64_t max_step_us = 0;
  for (std::uint32_t w = 0; w < num_windows; ++w) {
    const std::uint64_t start = 200'000 + root.NextBounded(horizon_us - 1'200'000);
    const std::uint64_t duration = 100'000 + root.NextBounded(400'000);
    const std::uint64_t kind = root.NextBounded(4);
    if (debug) {
      std::printf("DEBUG window %u: kind=%llu start=%llu duration=%llu\n", w,
                  static_cast<unsigned long long>(kind),
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(duration));
    }
    switch (kind) {
      case 0: {  // WAN degradation, hold-and-flush (FIFO preserved)
        const DatacenterId from = static_cast<DatacenterId>(root.NextBounded(config.num_dcs));
        const DatacenterId to = static_cast<DatacenterId>(
            (from + 1 + root.NextBounded(config.num_dcs - 1)) % config.num_dcs);
        const std::uint64_t extra = 50'000 + root.NextBounded(150'000);
        const bool both_ways = root.NextBool(0.5);
        sim.ScheduleAt(start, [&cluster, from, to, extra, both_ways] {
          cluster.env().SetWanDelay(from, to, extra);
          if (both_ways) {
            cluster.env().SetWanDelay(to, from, extra);
          }
        });
        sim.ScheduleAt(start + duration, [&cluster, from, to] {
          cluster.env().SetWanDelay(from, to, 0);
          cluster.env().SetWanDelay(to, from, 0);
        });
        break;
      }
      case 1: {  // whole-DC crash with state loss, then restart + catch-up
        const DatacenterId dc = static_cast<DatacenterId>(root.NextBounded(config.num_dcs));
        sim.ScheduleAt(start, [&cluster, dc] {
          if (cluster.alive(dc)) {
            cluster.Crash(dc);
          }
        });
        sim.ScheduleAt(start + duration, [&cluster, dc] {
          if (!cluster.alive(dc)) {
            cluster.Restart(dc);
          }
        });
        break;
      }
      case 2: {  // straggler partition (§7.2.3)
        const DatacenterId dc = static_cast<DatacenterId>(root.NextBounded(config.num_dcs));
        const PartitionId p = static_cast<PartitionId>(root.NextBounded(config.partitions_per_dc));
        const std::uint64_t interval = 20'000 + root.NextBounded(80'000);
        sim.ScheduleAt(start, [&cluster, dc, p, interval] {
          if (cluster.alive(dc)) {
            cluster.runtime(dc)->SetPartitionCommInterval(p, interval);
          }
        });
        const std::uint64_t normal = config.batch_interval_us;
        sim.ScheduleAt(start + duration, [&cluster, dc, p, normal] {
          if (cluster.alive(dc)) {
            cluster.runtime(dc)->SetPartitionCommInterval(p, normal);
          }
        });
        break;
      }
      default: {  // clock step: one partition's clock jumps mid-run
        const DatacenterId dc = static_cast<DatacenterId>(root.NextBounded(config.num_dcs));
        const PartitionId p = static_cast<PartitionId>(root.NextBounded(config.partitions_per_dc));
        const std::int64_t offset = root.NextInRange(-50'000, 50'000);
        const double drift = (root.NextDouble() * 2.0 - 1.0) * config.clocks.max_drift_ppm;
        max_step_us = std::max(max_step_us, std::abs(offset));
        sim.ScheduleAt(start, [&cluster, dc, p, offset, drift] {
          if (cluster.alive(dc)) {
            cluster.runtime(dc)->SetPartitionClock(p, PhysicalClock(offset, drift));
          }
        });
        break;
      }
    }
  }
  cluster.NoteClockError(max_step_us);

  // Heal-all: every link restored, every crashed datacenter restarted,
  // every straggler back to the configured interval.
  sim.ScheduleAt(horizon_us, [&cluster, &config] {
    for (DatacenterId from = 0; from < config.num_dcs; ++from) {
      for (DatacenterId to = 0; to < config.num_dcs; ++to) {
        if (from != to) {
          cluster.env().SetWanDelay(from, to, 0);
        }
      }
    }
    for (DatacenterId dc = 0; dc < config.num_dcs; ++dc) {
      if (!cluster.alive(dc)) {
        cluster.Restart(dc);
      }
      for (PartitionId p = 0; p < config.partitions_per_dc; ++p) {
        cluster.runtime(dc)->SetPartitionCommInterval(p, config.batch_interval_us);
      }
    }
  });

  // --- closed-loop clients with read-your-writes probes ----------------------
  const std::uint32_t total_clients = options.clients_per_dc * config.num_dcs;
  std::vector<ClientState> clients(total_clients);
  std::vector<Violation> ryw_violations;
  std::uint64_t updates_acked = 0;
  std::uint64_t reads_done = 0;
  for (std::uint32_t c = 0; c < total_clients; ++c) {
    clients[c].id = c;
    clients[c].dc = static_cast<DatacenterId>(c % config.num_dcs);
    clients[c].private_key = kPrivateKeyBase + c;
    clients[c].rng = root.Fork(100 + c);
  }

  auto tick = std::make_shared<std::function<void(std::size_t)>>();
  *tick = [&sim, &cluster, &clients, &ryw_violations, &updates_acked,
           &reads_done, horizon_us, tick](std::size_t ci) {
    ClientState& c = clients[ci];
    if (sim.now() >= horizon_us) {
      return;  // workload stops; in-flight tails drain during quiesce
    }
    if (c.in_flight && cluster.env().epoch(c.dc) != c.issue_epoch) {
      c.in_flight = false;  // the datacenter crashed under the op: aborted
    }
    if (!c.in_flight && cluster.alive(c.dc)) {
      c.in_flight = true;
      c.issue_epoch = cluster.env().epoch(c.dc);
      const double roll = c.rng.NextDouble();
      if (roll < 0.40) {
        // Private-key write: the next read-your-writes obligation.
        const std::uint64_t seq = ++c.seq;
        cluster.runtime(c.dc)->ClientUpdate(
            c.id, c.private_key, "s" + std::to_string(seq),
            [&clients, &updates_acked, ci, seq] {
              ClientState& cc = clients[ci];
              cc.in_flight = false;
              cc.acked = std::max(cc.acked, seq);
              ++updates_acked;
            });
      } else if (roll < 0.70) {
        // Shared-key write: cross-DC conflicts for the convergence oracle.
        const Key key = c.rng.NextBounded(kSharedKeys);
        cluster.runtime(c.dc)->ClientUpdate(
            c.id, key, "v" + std::to_string(c.rng.NextBounded(1000)),
            [&clients, &updates_acked, ci] {
              clients[ci].in_flight = false;
              ++updates_acked;
            });
      } else {
        // Read-your-writes probe: the read must observe at least the last
        // sequence number acknowledged before it was issued — across
        // crashes too, since acknowledged writes are in the install log.
        const std::uint64_t floor = c.acked;
        cluster.runtime(c.dc)->ClientReadValue(
            c.id, c.private_key,
            [&clients, &ryw_violations, &reads_done, ci,
             floor](const GeoVersion& v) {
              ClientState& cc = clients[ci];
              cc.in_flight = false;
              ++reads_done;
              const std::uint64_t observed = ParseSeq(v.value);
              if (observed < floor) {
                std::ostringstream os;
                os << "client=" << cc.id << " dc=" << cc.dc << " read seq="
                   << observed << " after having acked seq=" << floor;
                ryw_violations.push_back({"read-your-writes", os.str()});
              }
            });
      }
    }
    sim.ScheduleAfter(4'000 + c.rng.NextBounded(4'000),
                      [tick, ci] { (*tick)(ci); });
  };
  for (std::uint32_t c = 0; c < total_clients; ++c) {
    sim.ScheduleAfter(1'000 + root.NextBounded(3'000),
                      [tick, c] { (*tick)(c); });
  }

  sim.RunUntil(horizon_us + quiesce_us);
  // The driver lambda captures `tick` (a shared_ptr to itself) to stay
  // alive across reschedules; with the horizon reached nothing will call
  // it again, so break the self-reference or the cycle leaks.
  *tick = nullptr;

  if (std::getenv("NEMESIS_DEBUG") != nullptr) {
    std::printf("DEBUG seed=%llu scalar=%d\n",
                static_cast<unsigned long long>(options.seed),
                config.scalar_metadata ? 1 : 0);
    for (DatacenterId dc = 0; dc < config.num_dcs; ++dc) {
      if (!cluster.alive(dc)) {
        std::printf("  dc%u: CRASHED\n", dc);
        continue;
      }
      const auto* rt = cluster.runtime(dc);
      std::printf(
          "  dc%u: pending=%zu buffered=%llu parked=%llu stable=%llu\n", dc,
          rt->receiver().PendingCount(),
          static_cast<unsigned long long>(rt->BufferedPayloads()),
          static_cast<unsigned long long>(rt->PendingApplyCount()),
          static_cast<unsigned long long>(rt->eunomia().StableTime()));
      for (DatacenterId o = 0; o < config.num_dcs; ++o) {
        if (o == dc) continue;
        std::printf("    from dc%u: frontier=%llu site_time=%llu\n", o,
                    static_cast<unsigned long long>(
                        rt->receiver().frontier_of(o)),
                    static_cast<unsigned long long>(
                        rt->receiver().site_time()[o]));
      }
    }
  }

  // --- invariants ------------------------------------------------------------
  InvariantOptions iopts;
  iopts.staleness_bound_us =
      static_cast<std::uint64_t>(cluster.max_clock_error_us()) +
      config.delta_us + config.batch_interval_us + config.theta_us +
      config.rho_us + 60'000;  // delivery + server-queue slack
  NemesisReport report;
  report.seed = options.seed;
  report.executed_events = sim.executed_events();
  report.updates_acked = updates_acked;
  report.reads_done = reads_done;
  report.fault_windows = num_windows;
  report.scalar_metadata = config.scalar_metadata;
  report.durable = durable;
  if (durable) {
    for (DatacenterId dc = 0; dc < config.num_dcs; ++dc) {
      report.wal_torn_tails += cluster.disk(dc)->torn_tails();
      report.wal_bit_flips += cluster.disk(dc)->bit_flips();
      report.snapshots_taken += cluster.durability(dc)->snapshots_taken();
    }
  }
  report.faults = cluster.env().stats();
  report.violations = std::move(ryw_violations);
  std::vector<Violation> post = CheckInvariants(cluster, iopts);
  report.violations.insert(report.violations.end(), post.begin(), post.end());
  return report;
}

}  // namespace eunomia::geo::rt::chaos
