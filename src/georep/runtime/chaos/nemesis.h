// Randomized nemesis schedules: one PRNG seed -> a full chaos experiment.
//
// A schedule derives everything from the seed — deployment shape (partition
// count, scalar vs vector metadata, WAN latencies, jitter), fault profile
// (payload loss/dup/delay rates, metadata duplication), clock skews, a
// closed-loop client workload with per-client read-your-writes probes, and
// 3-8 timed fault windows (WAN degradation that heals, whole-DC
// crash/restart, straggler partitions, clock steps). Every fault heals
// before the horizon, the world quiesces, and the invariant checker runs.
// The same seed replays the identical schedule bit-for-bit, so a violation
// reprinted with its seed is a one-command repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/georep/runtime/chaos/faulty_env.h"
#include "src/georep/runtime/chaos/invariants.h"

namespace eunomia::geo::rt::chaos {

struct NemesisOptions {
  std::uint64_t seed = 1;
  // Shrinks horizon and quiesce for CI smoke runs.
  bool smoke = false;
  // Deliberate bug to inject (--plant): the sweep asserts it is caught.
  Plant plant = Plant::kNone;
  std::uint32_t clients_per_dc = 2;
  // Durable mode: <0 draws per seed (~40% of schedules recover crashed
  // datacenters from a WAL+snapshot disk instead of environment replay),
  // 0 never, 1 always. Durable schedules run fsync-per-commit — the
  // read-your-writes-across-crash probe is only sound when acknowledged
  // writes are on stable storage — and add torn-write/bit-flip disk faults.
  int durability = -1;
};

struct NemesisReport {
  std::uint64_t seed = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t updates_acked = 0;
  std::uint64_t reads_done = 0;
  std::uint32_t fault_windows = 0;
  bool scalar_metadata = false;
  bool durable = false;
  std::uint64_t wal_torn_tails = 0;
  std::uint64_t wal_bit_flips = 0;
  std::uint64_t snapshots_taken = 0;
  FaultStats faults;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  // Deterministic one-line fingerprint: two runs of the same seed must
  // produce identical digests (pinned by the determinism test).
  std::string Digest() const;
};

NemesisReport RunNemesisSchedule(const NemesisOptions& options);

}  // namespace eunomia::geo::rt::chaos
