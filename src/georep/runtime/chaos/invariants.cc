#include "src/georep/runtime/chaos/invariants.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

namespace eunomia::geo::rt::chaos {
namespace {

// Caps the detail spam of a mass violation (a planted bug can break every
// update) while keeping the full count visible.
class ViolationSink {
 public:
  ViolationSink(std::vector<Violation>* out, std::string invariant,
                std::size_t max_details)
      : out_(out), invariant_(std::move(invariant)), max_details_(max_details) {}

  ~ViolationSink() {
    if (total_ > emitted_) {
      out_->push_back({invariant_, "... and " +
                                       std::to_string(total_ - emitted_) +
                                       " more " + invariant_ + " violations"});
    }
  }

  void Add(const std::string& detail) {
    ++total_;
    if (emitted_ < max_details_) {
      ++emitted_;
      out_->push_back({invariant_, detail});
    }
  }

 private:
  std::vector<Violation>* out_;
  std::string invariant_;
  std::size_t max_details_;
  std::size_t total_ = 0;
  std::size_t emitted_ = 0;
};

struct LoggedUpdate {
  std::uint64_t uid = 0;
  Key key = 0;
  Value value;
  VectorTimestamp vts;
  DatacenterId origin = 0;
};

std::vector<LoggedUpdate> CollectInstallLogs(const ChaosCluster& cluster) {
  std::vector<LoggedUpdate> all;
  for (DatacenterId o = 0; o < cluster.config().num_dcs; ++o) {
    for (const auto& rec : cluster.env().install_log(o)) {
      all.push_back({rec.payload.uid, rec.payload.key, rec.payload.value,
                     rec.payload.vts, rec.payload.origin});
    }
  }
  return all;
}

void CheckConvergence(const ChaosCluster& cluster,
                      const std::vector<LoggedUpdate>& all,
                      const InvariantOptions& options,
                      std::vector<Violation>* out) {
  ViolationSink sink(out, "convergence", options.max_details_per_invariant);
  // Oracle: fold every installed update under the store's own arbitration.
  // Supersedes is a strict total order, so the fold is order-independent.
  std::map<Key, GeoVersion> oracle;
  for (const LoggedUpdate& u : all) {
    auto [it, inserted] = oracle.try_emplace(u.key);
    if (inserted || GeoStore::Supersedes(u.vts, u.origin, it->second)) {
      it->second = GeoVersion{u.value, u.vts, u.origin};
    }
  }
  for (DatacenterId dc = 0; dc < cluster.config().num_dcs; ++dc) {
    const DatacenterRuntime* rt = cluster.runtime(dc);
    std::map<Key, GeoVersion> merged;
    for (PartitionId p = 0; p < cluster.config().partitions_per_dc; ++p) {
      rt->StoreAt(p).ForEach([&merged](Key key, const GeoVersion& v) {
        merged[key] = v;
      });
    }
    for (const auto& [key, expected] : oracle) {
      const auto it = merged.find(key);
      std::ostringstream os;
      if (it == merged.end()) {
        os << "dc=" << dc << " key=" << key << " missing (expected value='"
           << expected.value << "' vts=" << expected.vts.ToString() << ")";
        sink.Add(os.str());
        continue;
      }
      const GeoVersion& got = it->second;
      if (got.value != expected.value || !(got.vts == expected.vts) ||
          got.origin != expected.origin) {
        os << "dc=" << dc << " key=" << key << " diverged: got value='"
           << got.value << "' vts=" << got.vts.ToString() << " origin="
           << got.origin << ", expected value='" << expected.value
           << "' vts=" << expected.vts.ToString() << " origin="
           << expected.origin;
        sink.Add(os.str());
      }
    }
    for (const auto& [key, got] : merged) {
      if (oracle.find(key) == oracle.end()) {
        std::ostringstream os;
        os << "dc=" << dc << " key=" << key
           << " present but never logged as installed (value='" << got.value
           << "')";
        sink.Add(os.str());
      }
    }
  }
}

void CheckCausalOrder(const ChaosCluster& cluster,
                      const std::vector<LoggedUpdate>& all,
                      const InvariantOptions& options,
                      std::vector<Violation>* out) {
  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  ViolationSink never_sink(out, "never-visible",
                           options.max_details_per_invariant);
  ViolationSink causal_sink(out, "causal-order",
                            options.max_details_per_invariant);
  const std::uint32_t num_dcs = cluster.config().num_dcs;
  // Per-origin update indices sorted by the origin's own (unique, scaled)
  // timestamp — the FIFO shipping order.
  std::vector<std::vector<std::size_t>> by_origin(num_dcs);
  for (std::size_t i = 0; i < all.size(); ++i) {
    by_origin[all[i].origin].push_back(i);
  }
  for (auto& idxs : by_origin) {
    std::sort(idxs.begin(), idxs.end(), [&all](std::size_t a, std::size_t b) {
      return all[a].vts[all[a].origin] < all[b].vts[all[b].origin];
    });
  }
  for (DatacenterId dest = 0; dest < num_dcs; ++dest) {
    // Visible time of each update at dest; kNever if it never became
    // visible (itself a violation — every fault heals before the check).
    std::vector<std::uint64_t> vis(all.size(), kNever);
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i].origin == dest) {
        continue;  // local installs are visible at creation
      }
      const auto t = cluster.tracker().VisibleAt(all[i].uid, dest);
      if (t.has_value()) {
        vis[i] = *t;
      } else {
        std::ostringstream os;
        os << "uid=" << all[i].uid << " origin=" << all[i].origin
           << " never became visible at dc=" << dest;
        never_sink.Add(os.str());
      }
    }
    // prefix_max[o][k] = latest visible time among origin o's first k+1
    // updates (in timestamp order). An update u may only be visible once
    // every w from o with w.vts[o] <= u.vts[o] is — so the prefix max up to
    // u's dependency bound must not exceed u's own visible time. With
    // o == u.origin this doubles as the per-origin FIFO check.
    std::vector<std::vector<std::uint64_t>> prefix_max(num_dcs);
    for (DatacenterId o = 0; o < num_dcs; ++o) {
      if (o == dest) {
        continue;
      }
      std::uint64_t running = 0;
      prefix_max[o].reserve(by_origin[o].size());
      for (const std::size_t i : by_origin[o]) {
        running = std::max(running, vis[i]);
        prefix_max[o].push_back(running);
      }
    }
    for (std::size_t i = 0; i < all.size(); ++i) {
      const LoggedUpdate& u = all[i];
      if (u.origin == dest || vis[i] == kNever) {
        continue;
      }
      for (DatacenterId o = 0; o < num_dcs; ++o) {
        if (o == dest) {
          continue;  // dependencies on dest's own updates are local
        }
        const auto& idxs = by_origin[o];
        // Count of o's updates that are dependencies of u. In vector mode
        // u.vts[o] is the exact timestamp of a real dependency, so the
        // bound is inclusive. In scalar mode u.vts[o] is u's *own*
        // timestamp; the hybrid clock stamps strictly above everything the
        // session observed, so an o-update with the same timestamp is
        // causally concurrent, not a dependency — the bound is strict.
        const auto bound =
            cluster.config().scalar_metadata
                ? std::lower_bound(idxs.begin(), idxs.end(), u.vts[o],
                                   [&all, o](std::size_t j, Timestamp ts) {
                                     return all[j].vts[o] < ts;
                                   })
                : std::upper_bound(idxs.begin(), idxs.end(), u.vts[o],
                                   [&all, o](Timestamp ts, std::size_t j) {
                                     return ts < all[j].vts[o];
                                   });
        const std::size_t count =
            static_cast<std::size_t>(bound - idxs.begin());
        if (count == 0) {
          continue;
        }
        const std::uint64_t dep_vis = prefix_max[o][count - 1];
        if (dep_vis > vis[i]) {
          std::ostringstream os;
          os << "dc=" << dest << ": uid=" << u.uid << " (origin=" << u.origin
             << ", vts=" << u.vts.ToString() << ") visible at t=" << vis[i]
             << " before its dependency from origin=" << o << " (dep visible"
             << (dep_vis == kNever ? " never"
                                   : " at t=" + std::to_string(dep_vis))
             << ")";
          causal_sink.Add(os.str());
        }
      }
    }
  }
}

void CheckQuiescenceAndStaleness(const ChaosCluster& cluster,
                                 const std::vector<LoggedUpdate>& all,
                                 const InvariantOptions& options,
                                 std::vector<Violation>* out) {
  ViolationSink sink(out, "quiescence", options.max_details_per_invariant);
  ViolationSink stale_sink(out, "staleness",
                           options.max_details_per_invariant);
  const std::uint32_t num_dcs = cluster.config().num_dcs;
  // Max installed timestamp per origin — what every receiver's SiteTime
  // entry must have reached once the world drains.
  std::vector<Timestamp> max_ts(num_dcs, 0);
  for (const LoggedUpdate& u : all) {
    max_ts[u.origin] = std::max(max_ts[u.origin], u.vts[u.origin]);
  }
  const std::uint64_t stride = cluster.config().partitions_per_dc;
  const std::uint64_t now_scaled = cluster.env().Now() * stride;
  for (DatacenterId dc = 0; dc < num_dcs; ++dc) {
    const DatacenterRuntime* rt = cluster.runtime(dc);
    if (rt == nullptr) {
      sink.Add("dc=" + std::to_string(dc) + " still crashed at check time");
      continue;
    }
    std::ostringstream os;
    if (rt->receiver().PendingCount() != 0) {
      os << "dc=" << dc << " receiver still holds "
         << rt->receiver().PendingCount() << " queued remote updates";
      sink.Add(os.str());
    }
    if (rt->BufferedPayloads() != 0) {
      os.str("");
      os << "dc=" << dc << " still buffers " << rt->BufferedPayloads()
         << " payloads awaiting metadata go-ahead";
      sink.Add(os.str());
    }
    if (rt->PendingApplyCount() != 0) {
      os.str("");
      os << "dc=" << dc << " has " << rt->PendingApplyCount()
         << " go-aheads parked waiting for payloads that never arrived";
      sink.Add(os.str());
    }
    for (DatacenterId k = 0; k < num_dcs; ++k) {
      if (k == dc) {
        continue;
      }
      if (rt->receiver().site_time()[k] != max_ts[k]) {
        os.str("");
        os << "dc=" << dc << " SiteTime[" << k << "]="
           << rt->receiver().site_time()[k] << " but origin " << k
           << " installed up to ts=" << max_ts[k];
        sink.Add(os.str());
      }
    }
    const Timestamp stable = rt->eunomia().StableTime();
    const std::uint64_t staleness_us =
        now_scaled > stable ? (now_scaled - stable) / stride : 0;
    if (staleness_us > options.staleness_bound_us) {
      os.str("");
      os << "dc=" << dc << " stable frontier is " << staleness_us
         << "us behind now (bound " << options.staleness_bound_us << "us)";
      stale_sink.Add(os.str());
    }
  }
}

}  // namespace

std::vector<Violation> CheckInvariants(const ChaosCluster& cluster,
                                       const InvariantOptions& options) {
  std::vector<Violation> out;
  const std::vector<LoggedUpdate> all = CollectInstallLogs(cluster);
  CheckConvergence(cluster, all, options, &out);
  CheckCausalOrder(cluster, all, options, &out);
  CheckQuiescenceAndStaleness(cluster, all, options, &out);
  return out;
}

}  // namespace eunomia::geo::rt::chaos
