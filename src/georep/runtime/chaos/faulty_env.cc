#include "src/georep/runtime/chaos/faulty_env.h"

#include <utility>

namespace eunomia::geo::rt::chaos {

FaultyGeoEnvironment::FaultyGeoEnvironment(sim::Simulator* sim,
                                           const GeoConfig& config,
                                           const FaultProfile& profile,
                                           std::uint64_t seed)
    : SimGeoEnvironment(sim, config),
      profile_(profile),
      rng_(seed),
      epoch_(config.num_dcs, 0),
      install_log_(config.num_dcs),
      payload_history_(static_cast<std::size_t>(config.num_dcs) *
                       config.num_dcs),
      meta_history_(static_cast<std::size_t>(config.num_dcs) *
                    config.num_dcs) {}

std::function<void()> FaultyGeoEnvironment::Gate(DatacenterId dc,
                                                 std::function<void()> fn) {
  return [this, dc, snapshot = epoch_[dc], fn = std::move(fn)] {
    if (epoch_[dc] == snapshot && runtimes_[dc] != nullptr) {
      fn();
    }
  };
}

void FaultyGeoEnvironment::CrashDatacenter(DatacenterId dc) {
  ++epoch_[dc];
  RegisterRuntime(dc, nullptr);
  ++stats_.crashes;
}

void FaultyGeoEnvironment::RestartDatacenter(DatacenterId dc,
                                             DatacenterRuntime* runtime) {
  RegisterRuntime(dc, runtime);
  // (1) Own installs, in original (per-partition timestamp) order: restores
  // the store, re-primes hybrid clocks, and re-enqueues every op for
  // stabilization + re-shipping (peers dedup the already-applied suffix).
  for (const InstallRecord& rec : install_log_[dc]) {
    runtime->RestoreLocalUpdate(rec.partition, rec.payload);
  }
  // (2) Inbound payloads, then (3) inbound ordered metadata, per origin in
  // channel FIFO order — the receiver re-applies everything from scratch.
  // Messages still in flight toward this datacenter are deliberately NOT
  // cancelled: the replay already covers them, so their late arrival is a
  // duplicate suffix exercising the dedup paths.
  for (DatacenterId origin = 0; origin < config_.num_dcs; ++origin) {
    if (origin == dc) {
      continue;
    }
    for (const InstallRecord& rec : payload_history_[Idx(origin, dc)]) {
      runtime->OnPayload(rec.partition, rec.payload);
    }
  }
  for (DatacenterId origin = 0; origin < config_.num_dcs; ++origin) {
    if (origin == dc) {
      continue;
    }
    for (const std::vector<RemoteUpdate>& batch :
         meta_history_[Idx(origin, dc)]) {
      runtime->OnRemoteMetadata(batch);
    }
  }
  ++stats_.restarts;
}

void FaultyGeoEnvironment::AttachDatacenter(DatacenterId dc,
                                            DatacenterRuntime* runtime) {
  RegisterRuntime(dc, runtime);
  ++stats_.restarts;
}

void FaultyGeoEnvironment::CatchUpDatacenter(DatacenterId dc,
                                             DatacenterRuntime* runtime) {
  // Snapshot the recovered frontier before replay: applying metadata below
  // advances SiteTime, and the filter must stay anchored to what the disk
  // restored. An update is already covered by the disk iff its origin
  // component is <= the recovered SiteTime for that origin (metadata is
  // logged before processing, so SiteTime never runs ahead of the log).
  const VectorTimestamp frontier = runtime->receiver().site_time();
  for (DatacenterId origin = 0; origin < config_.num_dcs; ++origin) {
    if (origin == dc) {
      continue;
    }
    for (const InstallRecord& rec : payload_history_[Idx(origin, dc)]) {
      if (rec.payload.vts[origin] > frontier[origin]) {
        runtime->OnPayload(rec.partition, rec.payload);
      }
    }
  }
  for (DatacenterId origin = 0; origin < config_.num_dcs; ++origin) {
    if (origin == dc) {
      continue;
    }
    for (const std::vector<RemoteUpdate>& batch :
         meta_history_[Idx(origin, dc)]) {
      bool fresh = false;
      for (const RemoteUpdate& u : batch) {
        if (u.vts[u.origin] > frontier[u.origin]) {
          fresh = true;
          break;
        }
      }
      // Skipping an all-stale batch is safe (nothing in it can apply), and
      // delivering a batch with a stale prefix is safe too: the receiver's
      // per-update dedup absorbs the overlap.
      if (fresh) {
        runtime->OnRemoteMetadata(batch);
      }
    }
  }
}

void FaultyGeoEnvironment::SetWanDelay(DatacenterId from, DatacenterId to,
                                       std::uint64_t extra_us) {
  network_.SetExtraDelay(dcs_[from].eunomia_endpoint,
                         dcs_[to].receiver_endpoint, extra_us);
  for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
    network_.SetExtraDelay(dcs_[from].partition_endpoints[p],
                           dcs_[to].partition_endpoints[p], extra_us);
  }
}

void FaultyGeoEnvironment::ScheduleAfter(DatacenterId dc,
                                         std::uint64_t delay_us,
                                         std::function<void()> fn) {
  SimGeoEnvironment::ScheduleAfter(dc, delay_us, Gate(dc, std::move(fn)));
}

void FaultyGeoEnvironment::ClientHop(DatacenterId dc,
                                     std::function<void()> fn) {
  SimGeoEnvironment::ClientHop(dc, Gate(dc, std::move(fn)));
}

void FaultyGeoEnvironment::RunOnPartition(DatacenterId dc,
                                          PartitionId partition,
                                          std::uint64_t cost_us, bool priority,
                                          std::function<void()> fn) {
  SimGeoEnvironment::RunOnPartition(dc, partition, cost_us, priority,
                                    Gate(dc, std::move(fn)));
}

void FaultyGeoEnvironment::SendApply(DatacenterId dc, PartitionId partition,
                                     std::function<void()> fn) {
  SimGeoEnvironment::SendApply(dc, partition, Gate(dc, std::move(fn)));
}

// Intra-DC FIFO links, re-implemented from the base class with epoch gating
// at both the network-delivery and server-completion hops. The gating is
// what kills the restart race: a heartbeat or batch from the pre-crash
// incarnation carries timestamps AHEAD of the restored batcher's replayed
// ops, and if it reached the fresh EunomiaCore first the replayed ops would
// be discarded as non-monotone — silently losing acknowledged updates. A
// rebooting node's intra-process queues do not survive reboot; neither do
// these.
void FaultyGeoEnvironment::SendMetadataBatch(DatacenterId dc,
                                             PartitionId partition,
                                             std::vector<OpRecord> batch) {
  network_.Send(dcs_[dc].partition_endpoints[partition],
                dcs_[dc].eunomia_endpoint,
                Gate(dc, [this, dc, batch = std::move(batch)] {
                  const std::uint64_t cost =
                      config_.costs.eunomia_op_us * batch.size() + 1;
                  dcs_[dc].eunomia_server->Submit(
                      cost, Gate(dc, [this, dc, batch] {
                        runtimes_[dc]->OnMetadataBatch(batch);
                      }));
                }));
}

void FaultyGeoEnvironment::SendHeartbeat(DatacenterId dc, PartitionId partition,
                                         Timestamp ts) {
  network_.Send(dcs_[dc].partition_endpoints[partition],
                dcs_[dc].eunomia_endpoint,
                Gate(dc, [this, dc, partition, ts] {
                  dcs_[dc].eunomia_server->Submit(
                      1, Gate(dc, [this, dc, partition, ts] {
                        runtimes_[dc]->OnHeartbeat(partition, ts);
                      }));
                }));
}

void FaultyGeoEnvironment::SendRemoteMetadata(DatacenterId from,
                                              DatacenterId to,
                                              std::vector<RemoteUpdate> batch) {
  if (profile_.plant == Plant::kDropMetadata &&
      rng_.NextBool(profile_.plant_probability)) {
    // Bug: the batch vanishes. Not recorded in the history either — a lost
    // send is lost from every future replay too.
    ++stats_.plants_fired;
    return;
  }
  if (profile_.plant == Plant::kReorderMetadata &&
      rng_.NextBool(profile_.plant_probability)) {
    // Bug: bypass the FIFO channel with a direct low-latency delivery, so
    // this batch can overtake earlier ones still in flight.
    ++stats_.plants_fired;
    meta_history_[Idx(from, to)].push_back(batch);
    const std::uint64_t delay = 1 + rng_.NextBounded(5'000);
    sim_->ScheduleAfter(delay, [this, to, batch = std::move(batch)] {
      if (runtimes_[to] != nullptr) {
        runtimes_[to]->OnRemoteMetadata(batch);
      }
    });
    return;
  }
  meta_history_[Idx(from, to)].push_back(batch);
  const bool duplicate = rng_.NextBool(profile_.metadata_dup);
  SimGeoEnvironment::SendRemoteMetadata(from, to, batch);
  if (duplicate) {
    // Adjacent duplicate on the same FIFO channel: order preserved, the
    // receiver's SiteTime dedup must absorb the repeat.
    ++stats_.metadata_duplicated;
    SimGeoEnvironment::SendRemoteMetadata(from, to, std::move(batch));
  }
}

void FaultyGeoEnvironment::SendPayload(DatacenterId from, DatacenterId to,
                                       PartitionId partition,
                                       RemotePayload payload) {
  // First sight of a uid = the origin's durable install record (the fan-out
  // in ExecuteUpdate is synchronous with the store write, so this log is
  // complete and in per-partition timestamp order).
  if (logged_uids_.insert(payload.uid).second) {
    install_log_[from].push_back({partition, payload});
  }
  if (profile_.plant == Plant::kDropPayload &&
      rng_.NextBool(profile_.plant_probability)) {
    // Bug: payload never shipped and never re-shipped (kept out of the
    // channel history so a restart replay cannot resurrect it).
    ++stats_.plants_fired;
    return;
  }
  payload_history_[Idx(from, to)].push_back({partition, payload});
  if (rng_.NextBool(profile_.payload_drop)) {
    // Benign loss on the unordered channel: at-least-once re-ship later.
    ++stats_.payloads_dropped;
    const std::uint64_t delay =
        profile_.reship_delay_us + rng_.NextBounded(profile_.reship_delay_us + 1);
    sim_->ScheduleAfter(delay, [this, from, to, partition, payload] {
      SimGeoEnvironment::SendPayload(from, to, partition, payload);
    });
    return;
  }
  if (rng_.NextBool(profile_.payload_delay)) {
    ++stats_.payloads_delayed;
    const std::uint64_t delay = 1 + rng_.NextBounded(profile_.payload_delay_max_us);
    sim_->ScheduleAfter(delay, [this, from, to, partition, payload] {
      SimGeoEnvironment::SendPayload(from, to, partition, payload);
    });
  } else {
    SimGeoEnvironment::SendPayload(from, to, partition, payload);
  }
  if (rng_.NextBool(profile_.payload_dup)) {
    ++stats_.payloads_duplicated;
    const std::uint64_t delay = 1 + rng_.NextBounded(profile_.payload_delay_max_us);
    sim_->ScheduleAfter(delay, [this, from, to, partition, payload] {
      SimGeoEnvironment::SendPayload(from, to, partition, payload);
    });
  }
}

}  // namespace eunomia::geo::rt::chaos
