#include "src/georep/runtime/chaos/chaos_cluster.h"

#include <algorithm>
#include <cstdlib>

namespace eunomia::geo::rt::chaos {

ChaosCluster::ChaosCluster(sim::Simulator* sim, const ChaosOptions& options)
    : sim_(sim),
      options_(options),
      tracker_(options.config.timeline_window_us, /*num_datacenters=*/0),
      env_(sim, options.config, options.profile, options.seed),
      clock_rng_(options.seed ^ 0xc10cc10cc10cc10cULL),
      sessions_(options.config.num_dcs) {
  // Detailed per-(uid, dc) visible times feed the causal-order checker;
  // num_datacenters=0 above keeps origin records for the whole run so a
  // replay-driven re-apply can never double-reclaim them.
  tracker_.EnableDetailedLog();
  uids_.reserve(options_.config.num_dcs);
  for (DatacenterId dc = 0; dc < options_.config.num_dcs; ++dc) {
    uids_.emplace_back(/*first=*/dc, /*stride=*/options_.config.num_dcs);
  }
  disks_.resize(options_.config.num_dcs);
  durability_.resize(options_.config.num_dcs);
  if (options_.durable) {
    for (DatacenterId dc = 0; dc < options_.config.num_dcs; ++dc) {
      disks_[dc] = std::make_unique<wal::FaultyDisk>(
          options_.disk_faults, options_.seed ^ (0xd15cull << 16) ^ dc);
    }
  }
  runtimes_.resize(options_.config.num_dcs);
}

std::vector<PhysicalClock> ChaosCluster::DrawClocks() {
  const ClockConfig& cc = options_.config.clocks;
  std::vector<PhysicalClock> clocks;
  clocks.reserve(options_.config.partitions_per_dc);
  for (PartitionId p = 0; p < options_.config.partitions_per_dc; ++p) {
    const std::int64_t offset =
        clock_rng_.NextInRange(-cc.max_offset_us, cc.max_offset_us);
    const double drift =
        (clock_rng_.NextDouble() * 2.0 - 1.0) * cc.max_drift_ppm;
    NoteClockError(std::abs(offset));
    clocks.emplace_back(offset, drift);
  }
  return clocks;
}

std::unique_ptr<DatacenterRuntime> ChaosCluster::MakeRuntime(DatacenterId dc) {
  return std::make_unique<DatacenterRuntime>(dc, options_.config, &env_,
                                             &tracker_, &uids_[dc],
                                             &sessions_[dc], DrawClocks(),
                                             durability_[dc].get());
}

std::unique_ptr<GeoDurability> ChaosCluster::MakeDurability(DatacenterId dc) {
  GeoDurabilityOptions opts;
  opts.disk = disks_[dc].get();
  opts.dc = dc;
  opts.num_dcs = options_.config.num_dcs;
  opts.partitions = options_.config.partitions_per_dc;
  opts.fsync = options_.fsync;
  opts.snapshot_interval_bytes = options_.snapshot_interval_bytes;
  opts.threaded = false;  // inline appends keep the schedule deterministic
  return std::make_unique<GeoDurability>(std::move(opts));
}

void ChaosCluster::Start() {
  for (DatacenterId dc = 0; dc < options_.config.num_dcs; ++dc) {
    if (options_.durable) {
      durability_[dc] = MakeDurability(dc);
    }
    runtimes_[dc] = MakeRuntime(dc);
    env_.RegisterRuntime(dc, runtimes_[dc].get());
    if (options_.durable) {
      // A fresh disk recovers to an empty world; the call also opens the
      // log writers the hooks append to.
      durability_[dc]->Recover(runtimes_[dc].get(), /*sessions=*/nullptr);
    }
  }
  for (DatacenterId dc = 0; dc < options_.config.num_dcs; ++dc) {
    runtimes_[dc]->StartTimers();
    if (options_.durable) {
      ScheduleSnapshot(dc);
    }
  }
}

void ChaosCluster::Crash(DatacenterId dc) {
  // Epoch-bump first: every closure capturing the old runtime is fenced
  // before the object dies.
  env_.CrashDatacenter(dc);
  runtimes_[dc].reset();
  if (options_.durable) {
    // Destroy the writers (their destructors drain queued bytes but never
    // issue a final sync — kill -9 semantics), then crash the disk: the
    // un-fsynced suffix dies, possibly leaving a torn or bit-flipped tail.
    durability_[dc].reset();
    disks_[dc]->Crash();
  }
}

void ChaosCluster::Restart(DatacenterId dc) {
  if (!options_.durable) {
    runtimes_[dc] = MakeRuntime(dc);
    env_.RestartDatacenter(dc, runtimes_[dc].get());
    runtimes_[dc]->StartTimers();
    return;
  }
  durability_[dc] = MakeDurability(dc);
  runtimes_[dc] = MakeRuntime(dc);
  env_.AttachDatacenter(dc, runtimes_[dc].get());
  const GeoDurability::Recovered recovered =
      durability_[dc]->Recover(runtimes_[dc].get(), /*sessions=*/nullptr);
  // Incremental catch-up: peer traffic above the recovered applied
  // frontier (the disk already replayed everything that had arrived).
  env_.CatchUpDatacenter(dc, runtimes_[dc].get());
  // Re-fan-out every retained install: the pre-crash fan-out may not have
  // reached every peer, and peers dedup whatever it did.
  for (const auto& [partition, payload] : recovered.retained_installs) {
    for (DatacenterId k = 0; k < options_.config.num_dcs; ++k) {
      if (k != dc) {
        env_.SendPayload(dc, k, partition, payload);
      }
    }
  }
  runtimes_[dc]->StartTimers();
}

void ChaosCluster::ScheduleSnapshot(DatacenterId dc) {
  sim_->ScheduleAfter(options_.snapshot_period_us, [this, dc] {
    if (alive(dc) && durability_[dc] != nullptr &&
        durability_[dc]->SnapshotDue()) {
      durability_[dc]->Snapshot(*runtimes_[dc], /*sessions=*/nullptr,
                                InstallTruncateMark(dc));
    }
    ScheduleSnapshot(dc);
  });
}

Timestamp ChaosCluster::InstallTruncateMark(DatacenterId dc) const {
  // An install entry may be dropped only once (a) it has stabilized locally
  // (nothing left to re-enqueue) and (b) every peer has durably applied it
  // — under kPerCommit a peer's recovered SiteTime never regresses, so its
  // live SiteTime is a durable lower bound. With any peer down (its applied
  // frontier unobservable) or a lazier fsync policy, keep everything.
  if (options_.fsync != wal::FsyncPolicy::kPerCommit) {
    return 0;
  }
  Timestamp mark = runtimes_[dc]->eunomia().StableTime();
  for (DatacenterId k = 0; k < options_.config.num_dcs; ++k) {
    if (k == dc) {
      continue;
    }
    if (!alive(k)) {
      return 0;
    }
    mark = std::min(mark, runtimes_[k]->receiver().site_time()[dc]);
  }
  return mark;
}

}  // namespace eunomia::geo::rt::chaos
