#include "src/georep/runtime/chaos/chaos_cluster.h"

#include <cstdlib>

namespace eunomia::geo::rt::chaos {

ChaosCluster::ChaosCluster(sim::Simulator* sim, const ChaosOptions& options)
    : sim_(sim),
      options_(options),
      tracker_(options.config.timeline_window_us, /*num_datacenters=*/0),
      env_(sim, options.config, options.profile, options.seed),
      clock_rng_(options.seed ^ 0xc10cc10cc10cc10cULL),
      sessions_(options.config.num_dcs) {
  // Detailed per-(uid, dc) visible times feed the causal-order checker;
  // num_datacenters=0 above keeps origin records for the whole run so a
  // replay-driven re-apply can never double-reclaim them.
  tracker_.EnableDetailedLog();
  uids_.reserve(options_.config.num_dcs);
  for (DatacenterId dc = 0; dc < options_.config.num_dcs; ++dc) {
    uids_.emplace_back(/*first=*/dc, /*stride=*/options_.config.num_dcs);
  }
  runtimes_.resize(options_.config.num_dcs);
}

std::vector<PhysicalClock> ChaosCluster::DrawClocks() {
  const ClockConfig& cc = options_.config.clocks;
  std::vector<PhysicalClock> clocks;
  clocks.reserve(options_.config.partitions_per_dc);
  for (PartitionId p = 0; p < options_.config.partitions_per_dc; ++p) {
    const std::int64_t offset =
        clock_rng_.NextInRange(-cc.max_offset_us, cc.max_offset_us);
    const double drift =
        (clock_rng_.NextDouble() * 2.0 - 1.0) * cc.max_drift_ppm;
    NoteClockError(std::abs(offset));
    clocks.emplace_back(offset, drift);
  }
  return clocks;
}

std::unique_ptr<DatacenterRuntime> ChaosCluster::MakeRuntime(DatacenterId dc) {
  return std::make_unique<DatacenterRuntime>(dc, options_.config, &env_,
                                             &tracker_, &uids_[dc],
                                             &sessions_[dc], DrawClocks());
}

void ChaosCluster::Start() {
  for (DatacenterId dc = 0; dc < options_.config.num_dcs; ++dc) {
    runtimes_[dc] = MakeRuntime(dc);
    env_.RegisterRuntime(dc, runtimes_[dc].get());
  }
  for (DatacenterId dc = 0; dc < options_.config.num_dcs; ++dc) {
    runtimes_[dc]->StartTimers();
  }
}

void ChaosCluster::Crash(DatacenterId dc) {
  // Epoch-bump first: every closure capturing the old runtime is fenced
  // before the object dies.
  env_.CrashDatacenter(dc);
  runtimes_[dc].reset();
}

void ChaosCluster::Restart(DatacenterId dc) {
  runtimes_[dc] = MakeRuntime(dc);
  env_.RestartDatacenter(dc, runtimes_[dc].get());
  runtimes_[dc]->StartTimers();
}

}  // namespace eunomia::geo::rt::chaos
