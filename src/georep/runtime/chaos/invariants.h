// Post-schedule invariant checking for the chaos harness.
//
// After a nemesis schedule heals every fault and the world quiesces, four
// properties must hold (read-your-writes is the exception — it is checked
// online by the client harness while the schedule runs, because it is a
// statement about individual reads, not final state):
//
//   1. Convergence — every datacenter's merged store equals the oracle:
//      the per-key fold of ALL updates ever installed anywhere (the
//      environment's install logs) under GeoStore::Supersedes, whose total
//      order makes the expected winner schedule-independent.
//   2. Causal delivery — at every datacenter, an update became visible only
//      after every update it causally depends on (any w from origin o with
//      w.vts[o] <= u.vts[o]), and same-origin updates became visible in
//      timestamp (FIFO) order. Checked against the visibility tracker's
//      detailed log.
//   3. Quiescence / no loss — receiver queues, buffered payloads and parked
//      go-aheads are empty, and each receiver's SiteTime matches the
//      maximum installed timestamp per origin (nothing silently dropped).
//   4. Bounded staleness — each Eunomia's stable frontier tracks real time
//      to within clock error + batching/heartbeat/stabilization periods +
//      scheduling slack; a wedged stabilizer or starved heartbeat path
//      shows up as a frontier stuck seconds in the past.
#pragma once

#include <string>
#include <vector>

#include "src/georep/runtime/chaos/chaos_cluster.h"

namespace eunomia::geo::rt::chaos {

struct Violation {
  std::string invariant;  // "convergence", "causal-order", ...
  std::string detail;
};

struct InvariantOptions {
  // Allowed gap between simulated now and each Eunomia's stable frontier
  // (in unscaled microseconds) at quiescence.
  std::uint64_t staleness_bound_us = 200'000;
  // Detail strings emitted per invariant before summarizing the rest.
  std::size_t max_details_per_invariant = 20;
};

// Requires every datacenter alive (the nemesis heals before checking).
std::vector<Violation> CheckInvariants(const ChaosCluster& cluster,
                                       const InvariantOptions& options);

}  // namespace eunomia::geo::rt::chaos
