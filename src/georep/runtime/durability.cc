#include "src/georep/runtime/durability.h"

#include <cassert>
#include <string_view>
#include <utility>

#include "src/net/wire_io.h"

namespace eunomia::geo::rt {

namespace io = ::eunomia::net::wire::io;

namespace {

constexpr const char* kInboundLogName = "inbound";
constexpr const char* kSnapName = "snap";

void PutVts(std::string* out, const VectorTimestamp& vts) {
  for (DatacenterId d = 0; d < vts.size(); ++d) {
    io::PutU64(out, vts[d]);
  }
}

bool GetVts(io::PayloadReader* reader, std::uint32_t num_dcs,
            VectorTimestamp* vts) {
  *vts = VectorTimestamp(num_dcs);
  for (DatacenterId d = 0; d < num_dcs; ++d) {
    std::uint64_t v = 0;
    if (!reader->U64(&v)) {
      return false;
    }
    (*vts)[d] = v;
  }
  return true;
}

// Shared by kInstallRecord and kInboundPayloadRecord.
std::string EncodePayloadRecord(PartitionId partition,
                                const RemotePayload& payload) {
  std::string out;
  io::PutU32(&out, partition);
  io::PutU64(&out, payload.uid);
  io::PutU64(&out, payload.key);
  io::PutU32(&out, payload.origin);
  PutVts(&out, payload.vts);
  io::PutU32(&out, static_cast<std::uint32_t>(payload.value.size()));
  out += payload.value;
  return out;
}

bool DecodePayloadRecord(std::string_view bytes, std::uint32_t num_dcs,
                         PartitionId* partition, RemotePayload* payload) {
  io::PayloadReader reader(bytes);
  std::uint32_t value_len = 0;
  if (!reader.U32(partition) || !reader.U64(&payload->uid) ||
      !reader.U64(&payload->key) || !reader.U32(&payload->origin) ||
      !GetVts(&reader, num_dcs, &payload->vts) || !reader.U32(&value_len) ||
      !reader.Bytes(value_len, &payload->value)) {
    return false;
  }
  return reader.done();
}

std::string EncodeMetaRecord(const std::vector<RemoteUpdate>& batch) {
  std::string out;
  io::PutU32(&out, static_cast<std::uint32_t>(batch.size()));
  for (const RemoteUpdate& u : batch) {
    io::PutU64(&out, u.uid);
    io::PutU64(&out, u.key);
    io::PutU32(&out, u.origin);
    io::PutU32(&out, u.partition);
    PutVts(&out, u.vts);
  }
  return out;
}

bool DecodeMetaRecord(std::string_view bytes, std::uint32_t num_dcs,
                      std::vector<RemoteUpdate>* batch) {
  io::PayloadReader reader(bytes);
  std::uint32_t count = 0;
  if (!reader.U32(&count)) {
    return false;
  }
  batch->clear();
  batch->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RemoteUpdate u;
    if (!reader.U64(&u.uid) || !reader.U64(&u.key) || !reader.U32(&u.origin) ||
        !reader.U32(&u.partition) || !GetVts(&reader, num_dcs, &u.vts)) {
      return false;
    }
    batch->push_back(std::move(u));
  }
  return reader.done();
}

struct SnapshotState {
  VectorTimestamp site_time;
  std::vector<Timestamp> clock_marks;                       // per partition
  std::vector<std::pair<ClientId, VectorTimestamp>> sessions;
  // Per partition: the full store contents.
  std::vector<std::vector<std::pair<Key, GeoVersion>>> stores;
};

std::string EncodeSnapshot(const SnapshotState& snap, std::uint32_t num_dcs,
                           std::uint32_t partitions) {
  std::string out;
  io::PutU32(&out, num_dcs);
  PutVts(&out, snap.site_time);
  io::PutU32(&out, partitions);
  for (const Timestamp mark : snap.clock_marks) {
    io::PutU64(&out, mark);
  }
  io::PutU32(&out, static_cast<std::uint32_t>(snap.sessions.size()));
  for (const auto& [client, vts] : snap.sessions) {
    io::PutU64(&out, client);
    PutVts(&out, vts);
  }
  for (const auto& store : snap.stores) {
    io::PutU32(&out, static_cast<std::uint32_t>(store.size()));
    for (const auto& [key, version] : store) {
      io::PutU64(&out, key);
      io::PutU32(&out, version.origin);
      PutVts(&out, version.vts);
      io::PutU32(&out, static_cast<std::uint32_t>(version.value.size()));
      out += version.value;
    }
  }
  return out;
}

bool DecodeSnapshot(const std::string& bytes, std::uint32_t num_dcs,
                    std::uint32_t partitions, SnapshotState* snap) {
  io::PayloadReader reader(bytes);
  std::uint32_t got_dcs = 0;
  std::uint32_t got_partitions = 0;
  if (!reader.U32(&got_dcs) || got_dcs != num_dcs ||
      !GetVts(&reader, num_dcs, &snap->site_time) ||
      !reader.U32(&got_partitions) || got_partitions != partitions) {
    return false;
  }
  snap->clock_marks.assign(partitions, 0);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    if (!reader.U64(&snap->clock_marks[p])) {
      return false;
    }
  }
  std::uint32_t num_sessions = 0;
  if (!reader.U32(&num_sessions)) {
    return false;
  }
  snap->sessions.clear();
  for (std::uint32_t i = 0; i < num_sessions; ++i) {
    ClientId client = 0;
    VectorTimestamp vts;
    if (!reader.U64(&client) || !GetVts(&reader, num_dcs, &vts)) {
      return false;
    }
    snap->sessions.emplace_back(client, std::move(vts));
  }
  snap->stores.assign(partitions, {});
  for (std::uint32_t p = 0; p < partitions; ++p) {
    std::uint32_t count = 0;
    if (!reader.U32(&count)) {
      return false;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      Key key = 0;
      GeoVersion version;
      std::uint32_t value_len = 0;
      if (!reader.U64(&key) || !reader.U32(&version.origin) ||
          !GetVts(&reader, num_dcs, &version.vts) || !reader.U32(&value_len) ||
          !reader.Bytes(value_len, &version.value)) {
        return false;
      }
      snap->stores[p].emplace_back(key, std::move(version));
    }
  }
  return reader.done();
}

}  // namespace

GeoDurability::GeoDurability(GeoDurabilityOptions options)
    : options_(options),
      writer_options_{options.fsync, options.fsync_interval_us,
                      /*interval_bytes=*/64u << 10, options.threaded},
      install_logs_(options.partitions),
      local_ts_mark_(options.partitions, 0) {
  assert(options_.disk != nullptr);
  assert(options_.num_dcs > 0 && options_.partitions > 0);
}

GeoDurability::~GeoDurability() = default;

std::string GeoDurability::InstallLogName(PartitionId p) {
  return "install-p" + std::to_string(p);
}

void GeoDurability::Append(wal::LogWriter* writer, std::uint8_t type,
                           const std::string& payload) {
  // A dying disk degrades durability, not availability: the failure is
  // counted (and surfaced through append_failures()) but the protocol keeps
  // running on its in-memory state.
  if (!writer->Append(type, payload)) {
    ++append_failures_;
  }
}

void GeoDurability::OnLocalInstall(PartitionId partition,
                                   const RemotePayload& payload) {
  if (recovering_) {
    return;
  }
  assert(partition < install_logs_.size());
  assert(install_logs_[partition] != nullptr &&
         "GeoDurability::Recover must run before the runtime starts");
  const Timestamp ts = payload.vts[options_.dc];
  if (ts > local_ts_mark_[partition]) {
    local_ts_mark_[partition] = ts;
  }
  Append(install_logs_[partition].get(), kInstallRecord,
         EncodePayloadRecord(partition, payload));
}

void GeoDurability::OnInboundMetadata(const std::vector<RemoteUpdate>& batch) {
  if (recovering_ || batch.empty()) {
    return;
  }
  assert(inbound_log_ != nullptr);
  Append(inbound_log_.get(), kInboundMetaRecord, EncodeMetaRecord(batch));
}

void GeoDurability::OnInboundPayload(PartitionId partition,
                                     const RemotePayload& payload) {
  if (recovering_) {
    return;
  }
  assert(inbound_log_ != nullptr);
  Append(inbound_log_.get(), kInboundPayloadRecord,
         EncodePayloadRecord(partition, payload));
}

GeoDurability::Recovered GeoDurability::Recover(DatacenterRuntime* runtime,
                                                SessionMap* sessions) {
  Recovered out;
  recovering_ = true;

  // --- snapshot --------------------------------------------------------------
  std::string snap_bytes;
  if (options_.disk->ReadAll(kSnapName, &snap_bytes)) {
    std::vector<wal::Record> records;
    if (wal::ReadLog(snap_bytes, &records) == wal::LogState::kTornTail) {
      out.any_torn_tail = true;
    }
    // Take the newest valid snapshot record (WriteAtomic keeps exactly one,
    // but a corrupt file degrades to "no snapshot", never to garbage).
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      SnapshotState snap;
      if (it->type == kGeoSnapshotRecord &&
          DecodeSnapshot(it->payload, options_.num_dcs, options_.partitions,
                         &snap)) {
        runtime->RestoreSiteTime(snap.site_time);
        for (PartitionId p = 0; p < options_.partitions; ++p) {
          runtime->PrimePartitionClock(p, snap.clock_marks[p]);
          local_ts_mark_[p] = snap.clock_marks[p];
          for (const auto& [key, version] : snap.stores[p]) {
            runtime->RestoreStoreVersion(p, key, version);
            ++out.store_versions;
          }
        }
        if (sessions != nullptr) {
          for (const auto& [client, vts] : snap.sessions) {
            (*sessions)[client] = vts;
          }
        }
        out.had_snapshot = true;
        break;
      }
    }
  }

  // --- install logs (replay re-enqueues for stabilization + shipping) --------
  for (PartitionId p = 0; p < options_.partitions; ++p) {
    std::vector<wal::Record> records;
    if (wal::RecoverLog(options_.disk, InstallLogName(p), &records) ==
        wal::LogState::kTornTail) {
      out.any_torn_tail = true;
    }
    for (const wal::Record& record : records) {
      PartitionId logged_partition = 0;
      RemotePayload payload;
      if (record.type != kInstallRecord ||
          !DecodePayloadRecord(record.payload, options_.num_dcs,
                               &logged_partition, &payload) ||
          logged_partition != p || payload.origin != options_.dc) {
        continue;  // unknown/foreign record: skip, never propagate
      }
      const Timestamp ts = payload.vts[options_.dc];
      if (ts > local_ts_mark_[p]) {
        local_ts_mark_[p] = ts;
      }
      runtime->RestoreLocalUpdate(p, payload);
      out.retained_installs.emplace_back(p, payload);
      ++out.installs_replayed;
    }
    install_logs_[p] = std::make_unique<wal::LogWriter>(
        options_.disk, InstallLogName(p), writer_options_);
  }

  // --- inbound log (arrival order preserves the per-origin FIFO) -------------
  {
    std::vector<wal::Record> records;
    if (wal::RecoverLog(options_.disk, kInboundLogName, &records) ==
        wal::LogState::kTornTail) {
      out.any_torn_tail = true;
    }
    for (const wal::Record& record : records) {
      if (record.type == kInboundMetaRecord) {
        std::vector<RemoteUpdate> batch;
        if (DecodeMetaRecord(record.payload, options_.num_dcs, &batch)) {
          runtime->OnRemoteMetadata(batch);
          out.inbound_meta_replayed += batch.size();
        }
      } else if (record.type == kInboundPayloadRecord) {
        PartitionId partition = 0;
        RemotePayload payload;
        if (DecodePayloadRecord(record.payload, options_.num_dcs, &partition,
                                &payload) &&
            partition < options_.partitions) {
          runtime->OnPayload(partition, std::move(payload));
          ++out.inbound_payloads_replayed;
        }
      }
    }
    inbound_log_ = std::make_unique<wal::LogWriter>(
        options_.disk, kInboundLogName, writer_options_);
  }

  recovering_ = false;
  bytes_at_last_snapshot_ = 0;
  return out;
}

bool GeoDurability::SnapshotDue() const {
  if (inbound_log_ == nullptr) {
    return false;
  }
  std::uint64_t bytes = inbound_log_->bytes_appended();
  for (const auto& log : install_logs_) {
    bytes += log->bytes_appended();
  }
  return bytes - bytes_at_last_snapshot_ >= options_.snapshot_interval_bytes;
}

void GeoDurability::Snapshot(const DatacenterRuntime& runtime,
                             const SessionMap* sessions,
                             Timestamp install_truncate_mark) {
  assert(inbound_log_ != nullptr);
  SnapshotState snap;
  snap.site_time = runtime.receiver().site_time();
  snap.clock_marks = local_ts_mark_;
  if (sessions != nullptr) {
    snap.sessions.reserve(sessions->size());
    for (const auto& [client, vts] : *sessions) {
      snap.sessions.emplace_back(client, vts);
    }
  }
  snap.stores.resize(options_.partitions);
  for (PartitionId p = 0; p < options_.partitions; ++p) {
    auto& store = snap.stores[p];
    runtime.StoreAt(p).ForEach([&store](Key key, const GeoVersion& version) {
      store.emplace_back(key, version);
    });
  }

  std::string framed;
  wal::AppendRecord(&framed, kGeoSnapshotRecord,
                    EncodeSnapshot(snap, options_.num_dcs, options_.partitions));
  // Snapshot FIRST, truncate after: if the crash lands between the two, the
  // logs still hold everything the snapshot also covers (replay dedups). The
  // reverse order could truncate entries the snapshot never captured.
  if (!options_.disk->WriteAtomic(kSnapName, framed)) {
    ++append_failures_;
    return;  // keep the logs intact — they are the only copy
  }
  ++snapshots_taken_;

  const VectorTimestamp& site_time = snap.site_time;
  inbound_log_->Compact([this, &site_time](const wal::RecordView& record) {
    if (record.type == kInboundMetaRecord) {
      std::vector<RemoteUpdate> batch;
      if (!DecodeMetaRecord(record.payload, options_.num_dcs, &batch)) {
        return false;  // undecodable: drop
      }
      for (const RemoteUpdate& u : batch) {
        if (u.origin < site_time.size() && u.vts[u.origin] > site_time[u.origin]) {
          return true;  // at least one update not yet applied
        }
      }
      return false;
    }
    if (record.type == kInboundPayloadRecord) {
      PartitionId partition = 0;
      RemotePayload payload;
      if (!DecodePayloadRecord(record.payload, options_.num_dcs, &partition,
                               &payload)) {
        return false;
      }
      return payload.origin < site_time.size() &&
             payload.vts[payload.origin] > site_time[payload.origin];
    }
    return true;  // unknown record types are preserved verbatim
  });
  if (install_truncate_mark > 0) {
    const DatacenterId self = options_.dc;
    for (auto& log : install_logs_) {
      log->Compact([this, self, install_truncate_mark](
                       const wal::RecordView& record) {
        PartitionId partition = 0;
        RemotePayload payload;
        if (record.type != kInstallRecord ||
            !DecodePayloadRecord(record.payload, options_.num_dcs, &partition,
                                 &payload)) {
          return false;
        }
        return payload.vts[self] > install_truncate_mark;
      });
    }
  }

  std::uint64_t bytes = inbound_log_->bytes_appended();
  for (const auto& log : install_logs_) {
    bytes += log->bytes_appended();
  }
  bytes_at_last_snapshot_ = bytes;
}

void GeoDurability::Flush() {
  if (inbound_log_ == nullptr) {
    return;
  }
  for (auto& log : install_logs_) {
    log->Flush();
  }
  inbound_log_->Flush();
}

}  // namespace eunomia::geo::rt
