// GeoDurability — per-datacenter write-ahead logging, snapshots and crash
// recovery for the geo-replication runtime (ROADMAP item 2: replace the
// chaos environment's in-memory replay stand-in with a real durable log).
//
// What survives a kill -9 (given the fsync policy honored it):
//   - every locally installed update, logged via DurabilityHooks::
//     OnLocalInstall *before* its payload fans out to any peer;
//   - every accepted inbound metadata batch and payload, logged before the
//     receiver/partition processes it — so the applied frontier (SiteTime)
//     a replay reconstructs is always >= the pre-crash one under
//     FsyncPolicy::kPerCommit;
//   - the latest snapshot: store contents, receiver SiteTime, client
//     session vclocks, and per-partition local-timestamp high-water marks.
//
// File layout on the Disk (all paths relative to the disk root):
//   install-p<P>   one log per partition: kInstallRecord entries in local
//                  timestamp order (the order RestoreLocalUpdate requires)
//   inbound        one log for all remote traffic: kInboundMetaRecord /
//                  kInboundPayloadRecord entries in arrival order, which
//                  preserves the per-origin FIFO the receiver relies on
//   snap           one framed kGeoSnapshotRecord, replaced atomically
//
// Recovery = restore the snapshot (store versions, SiteTime, sessions,
// clock marks), then replay the install logs through RestoreLocalUpdate
// (re-priming clocks and re-enqueueing for stabilization + re-shipping),
// then replay the inbound log through OnRemoteMetadata/OnPayload. Replay is
// at-least-once above the snapshot: the receiver's SiteTime head check and
// the runtime's payload duplicate check shed everything already covered.
// The hooks are suppressed while recovering, so replay never re-logs.
//
// After Recover the caller MUST re-fan-out every retained install payload
// to every peer (Recovered::retained_installs): the pre-crash fan-out may
// not have reached them, and peers dedup whatever it did. Metadata re-ships
// itself through re-stabilization.
//
// Truncation: Snapshot() rewrites the inbound log keeping only entries not
// yet covered by the snapshotted SiteTime, and the install logs keeping
// only entries above `install_truncate_mark` — the caller passes
// min(local stable frontier, every peer's applied-from-us frontier), or 0
// to keep everything when peer progress is unknown. Truncated installs stay
// recoverable through the snapshot store plus the clock marks.
//
// Torn tails: each log is repaired by wal::RecoverLog before use — a
// partial or bit-flipped final record (detected by the CRC/length framing)
// is discarded on disk and never reaches the runtime.
//
// Threading: single-caller contract, like the runtime it serves. The
// underlying LogWriters do their own locking, so Options::threaded=true is
// safe for the real binding; the simulator keeps inline appends for
// determinism.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/georep/runtime/datacenter_runtime.h"
#include "src/wal/disk.h"
#include "src/wal/log_writer.h"

namespace eunomia::geo::rt {

struct GeoDurabilityOptions {
  wal::Disk* disk = nullptr;  // borrowed; must outlive the GeoDurability
  DatacenterId dc = 0;
  std::uint32_t num_dcs = 0;
  std::uint32_t partitions = 0;
  wal::FsyncPolicy fsync = wal::FsyncPolicy::kPerCommit;
  std::uint64_t fsync_interval_us = 5'000;
  // Snapshot() is cheap to skip: SnapshotDue() gates on this many log bytes
  // appended since the last snapshot.
  std::uint64_t snapshot_interval_bytes = 1u << 20;
  bool threaded = false;
};

class GeoDurability final : public DurabilityHooks {
 public:
  static constexpr std::uint8_t kInstallRecord = 1;
  static constexpr std::uint8_t kInboundMetaRecord = 2;
  static constexpr std::uint8_t kInboundPayloadRecord = 3;
  static constexpr std::uint8_t kGeoSnapshotRecord = 4;

  struct Recovered {
    bool had_snapshot = false;
    bool any_torn_tail = false;  // at least one log lost a torn/corrupt tail
    std::uint64_t store_versions = 0;
    std::uint64_t installs_replayed = 0;
    std::uint64_t inbound_meta_replayed = 0;
    std::uint64_t inbound_payloads_replayed = 0;
    // Install-log survivors in replay order; see the re-fan-out contract in
    // the file comment.
    std::vector<std::pair<PartitionId, RemotePayload>> retained_installs;
  };

  explicit GeoDurability(GeoDurabilityOptions options);
  ~GeoDurability() override;

  GeoDurability(const GeoDurability&) = delete;
  GeoDurability& operator=(const GeoDurability&) = delete;

  // Repairs the logs, restores the snapshot and replays everything into
  // `runtime`. Call once, on a fresh runtime constructed with this object
  // as its hooks, before StartTimers. `sessions` may be null when session
  // state lives outside the crashed process (the sim harness's client-side
  // vclocks).
  Recovered Recover(DatacenterRuntime* runtime, SessionMap* sessions);

  // DurabilityHooks (no-ops while Recover is replaying).
  void OnLocalInstall(PartitionId partition,
                      const RemotePayload& payload) override;
  void OnInboundMetadata(const std::vector<RemoteUpdate>& batch) override;
  void OnInboundPayload(PartitionId partition,
                        const RemotePayload& payload) override;

  bool SnapshotDue() const;
  // Snapshots `runtime` (+ `sessions` if non-null) and truncates the logs;
  // see the file comment for the install_truncate_mark contract.
  void Snapshot(const DatacenterRuntime& runtime, const SessionMap* sessions,
                Timestamp install_truncate_mark);

  // Blocks until everything logged so far is written (and synced, unless
  // the policy is kOff). A kill -9 never reaches this; clean shutdowns do.
  void Flush();

  std::uint64_t snapshots_taken() const { return snapshots_taken_; }
  std::uint64_t append_failures() const { return append_failures_; }

 private:
  static std::string InstallLogName(PartitionId p);

  void Append(wal::LogWriter* writer, std::uint8_t type,
              const std::string& payload);

  const GeoDurabilityOptions options_;
  const wal::LogWriter::Options writer_options_;
  std::vector<std::unique_ptr<wal::LogWriter>> install_logs_;  // per partition
  std::unique_ptr<wal::LogWriter> inbound_log_;
  // Per-partition max local timestamp ever logged: snapshotted so truncated
  // installs still prime the restored hybrid clocks.
  std::vector<Timestamp> local_ts_mark_;
  bool recovering_ = false;
  std::uint64_t bytes_at_last_snapshot_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  std::uint64_t append_failures_ = 0;
};

}  // namespace eunomia::geo::rt
