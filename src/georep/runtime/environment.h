// The environment seam of the geo-replication runtime.
//
// The EunomiaKV protocol (partition update path, Algorithm 5 receiver,
// stabilizer shipping, session vector clocks) is pure logic: everything it
// needs from the outside world is a monotonic clock, timers, and a handful
// of typed, asynchronous message sends. This interface captures exactly
// that surface, so one protocol implementation runs unchanged under
//
//   - the deterministic discrete-event simulator (sim::Simulator /
//     sim::Network / sim::Server behind every call — reproducible figures,
//     adversarial schedules), and
//   - real threads and sockets (an event loop per datacenter, cross-DC
//     links over net::Transport) — the FoundationDB split: one protocol,
//     a simulated and a real world behind a narrow seam.
//
// Contract every binding must honour (the protocol depends on it):
//   - All calls into a DatacenterRuntime are serialized (the runtime is
//     single-threaded by construction; the binding provides the illusion).
//   - Callbacks/deliveries are asynchronous: they run after the caller
//     returns, never reentrantly from inside the Send*/Schedule* call.
//   - SendMetadataBatch/SendHeartbeat (partition -> local Eunomia) and
//     SendRemoteMetadata/SendFrontier (Eunomia -> one remote receiver) are
//     FIFO per directed channel (§3.1 / §4). SendPayload has no ordering
//     guarantee at all (§5: payloads ship "with no ordering constraints").
//   - Now() is monotonic and in microseconds; bindings may anchor it
//     anywhere (sim time, steady_clock since start).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/types.h"
#include "src/eunomia/op.h"
#include "src/georep/remote_update.h"

namespace eunomia::geo::rt {

class Environment {
 public:
  virtual ~Environment() = default;

  // Monotonic microseconds.
  virtual std::uint64_t Now() const = 0;

  // Timer in datacenter `dc`'s execution context.
  virtual void ScheduleAfter(DatacenterId dc, std::uint64_t delay_us,
                             std::function<void()> fn) = 0;

  // One-way client <-> partition hop inside `dc` (a pure latency; the sim
  // binding charges the intra-DC hop, the real binding runs fn promptly).
  virtual void ClientHop(DatacenterId dc, std::function<void()> fn) = 0;

  // Executes fn in partition (dc, partition)'s compute context, charging
  // cost_us of server capacity. priority selects the background lane
  // (remote-update application; see sim::Server::SubmitPriority).
  virtual void RunOnPartition(DatacenterId dc, PartitionId partition,
                              std::uint64_t cost_us, bool priority,
                              std::function<void()> fn) = 0;

  // FIFO link partition (dc, partition) -> dc's Eunomia node. Delivered to
  // DatacenterRuntime::OnMetadataBatch / OnHeartbeat.
  virtual void SendMetadataBatch(DatacenterId dc, PartitionId partition,
                                 std::vector<OpRecord> batch) = 0;
  virtual void SendHeartbeat(DatacenterId dc, PartitionId partition,
                             Timestamp ts) = 0;

  // Charges the Eunomia node for stabilization/extraction work (sim cost
  // model; a no-op for the real binding, where the work simply runs).
  virtual void ChargeEunomia(DatacenterId dc, std::uint64_t cost_us) = 0;

  // FIFO WAN link Eunomia@from -> receiver@to: ordered metadata and the
  // scalar-mode stable-frontier beacon. Delivered to OnRemoteMetadata /
  // OnFrontier at `to`.
  virtual void SendRemoteMetadata(DatacenterId from, DatacenterId to,
                                  std::vector<RemoteUpdate> batch) = 0;
  virtual void SendFrontier(DatacenterId from, DatacenterId to,
                            Timestamp frontier) = 0;

  // Unordered payload fan-out: partition (from, partition) -> its sibling
  // (to, partition). Delivered to OnPayload at `to`.
  virtual void SendPayload(DatacenterId from, DatacenterId to,
                           PartitionId partition, RemotePayload payload) = 0;

  // Local message receiver@dc -> partition (dc, partition): the APPLY
  // go-ahead of Algorithm 5 line 14. Both bindings keep a datacenter's
  // receiver and partitions in one process, so the message may carry a
  // closure.
  virtual void SendApply(DatacenterId dc, PartitionId partition,
                         std::function<void()> fn) = 0;
};

// Globally unique update-id allocation (u.id of §5). The sim binding shares
// one dense allocator across all datacenters (uids 0, 1, 2, ... in install
// order, exactly the pre-runtime behaviour the tests rely on); a real
// deployment gives each datacenter the strided stream uid ≡ dc (mod
// num_dcs), unique without coordination.
class UidAllocator {
 public:
  UidAllocator(std::uint64_t first, std::uint64_t stride)
      : next_(first), stride_(stride == 0 ? 1 : stride) {}

  std::uint64_t Next() {
    const std::uint64_t uid = next_;
    next_ += stride_;
    return uid;
  }

 private:
  std::uint64_t next_;
  std::uint64_t stride_;
};

}  // namespace eunomia::geo::rt
