#include "src/georep/runtime/geo_node.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "src/clock/physical_clock.h"
#include "src/georep/runtime/geo_wire.h"
#include "src/metrics/registry.h"

namespace eunomia::geo::rt {

namespace gw = ::eunomia::geo::rt::wire;
namespace nw = ::eunomia::net::wire;

GeoNode::GeoNode(net::Transport* transport, Options options)
    : transport_(transport),
      options_(std::move(options)),
      // num_datacenters=2: a per-node tracker sees exactly one visibility
      // report per remote update (its own), so the destination-side stub
      // records reclaim after that single report.
      tracker_(options_.config.timeline_window_us, /*num_datacenters=*/2),
      // Coordination-free uid streams: uid ≡ dc (mod num_dcs).
      uids_(options_.dc, options_.config.num_dcs),
      peer_applied_(options_.config.num_dcs, 0),
      peers_(options_.config.num_dcs) {
  if (options_.detailed_visibility) {
    tracker_.EnableDetailedLog();
  }
  // Remote nodes report visibility of this node's updates to their own
  // trackers, never to ours: retaining origin records here would leak one
  // entry per local update for the daemon's lifetime.
  tracker_.DisableInstallRetention();
  if (options_.metrics != nullptr) {
    tracker_.AttachMetrics(options_.metrics);
    metrics::Registry& reg = *options_.metrics;
    const metrics::Labels dc_label = {{"dc", std::to_string(options_.dc)}};
    telemetry_ = std::make_unique<Telemetry>();
    telemetry_->buffered_payloads = reg.AddGauge(
        "eunomia_georep_buffered_payloads",
        "Remote payloads parked in the receiver awaiting their metadata "
        "go-ahead (Algorithm 5 queue depth)",
        dc_label);
    telemetry_->pending_applies = reg.AddGauge(
        "eunomia_georep_pending_applies",
        "Remote updates whose metadata cleared stabilization but whose "
        "apply has not yet run",
        dc_label);
    telemetry_->updates_installed = reg.AddCounter(
        "eunomia_georep_updates_installed_total",
        "Updates installed locally (origin-side client writes)", dc_label);
    telemetry_->payload_duplicates = reg.AddCounter(
        "eunomia_georep_payload_duplicates_total",
        "Inbound payloads dropped by uid/timestamp dedup (reconnect replays "
        "and recovery re-fan-outs land here)",
        dc_label);
    telemetry_->reconnects = reg.AddCounter(
        "eunomia_georep_reconnects_total",
        "Peer links re-established after a mid-run drop", dc_label);
    telemetry_->replayed_frames = reg.AddCounter(
        "eunomia_georep_replayed_frames_total",
        "Retained frames re-shipped to a reconnected peer", dc_label);
    telemetry_->wire_errors = reg.AddCounter(
        "eunomia_georep_wire_errors_total",
        "Inbound frames rejected as protocol violations", dc_label);
    telemetry_->send_failures = reg.AddCounter(
        "eunomia_georep_send_failures_total",
        "Outbound sends that failed (peer missing or connection down)",
        dc_label);
  }
  if (options_.durability_disk != nullptr) {
    GeoDurabilityOptions dopts;
    dopts.disk = options_.durability_disk;
    dopts.dc = options_.dc;
    dopts.num_dcs = options_.config.num_dcs;
    dopts.partitions = options_.config.partitions_per_dc;
    dopts.fsync = options_.fsync;
    dopts.fsync_interval_us = options_.fsync_interval_us;
    dopts.snapshot_interval_bytes = options_.snapshot_interval_bytes;
    // The event loop already serializes every append; a writer thread
    // would only reorder fsyncs against the acks that assume them.
    dopts.threaded = false;
    durability_ = std::make_unique<GeoDurability>(std::move(dopts));
  }
  // Real nodes read one shared monotonic clock through Environment::Now();
  // inter-process skew (and the hybrid clock's resilience to it) comes from
  // the deployment, not from an injected model.
  std::vector<PhysicalClock> clocks(options_.config.partitions_per_dc);
  runtime_ = std::make_unique<DatacenterRuntime>(
      options_.dc, options_.config, static_cast<Environment*>(this), &tracker_,
      &uids_, &sessions_, std::move(clocks), durability_.get());
  if (durability_ != nullptr) {
    // Recovery runs pre-Start with nothing else touching the runtime; the
    // environment calls it triggers (SendApply hops, metadata batches)
    // queue on the not-yet-started loop and drain once Start runs them.
    GeoDurability::Recovered recovered =
        durability_->Recover(runtime_.get(), &sessions_);
    recovered_installs_ = std::move(recovered.retained_installs);
  }
}

GeoNode::~GeoNode() { Stop(); }

std::string GeoNode::Listen(const std::string& address) {
  return transport_->Listen(
      address, [this](const std::shared_ptr<net::Connection>&) {
        return MakeInboundHandler();
      });
}

bool GeoNode::ConnectPeer(DatacenterId peer, const std::string& address) {
  if (peer >= peers_.size() || peer == options_.dc || started_.load()) {
    return false;
  }
  peers_[peer].address = address;
  const std::uint32_t attempts = std::max<std::uint32_t>(
      1, options_.connect_attempts);
  std::uint32_t backoff_ms = options_.connect_backoff_ms;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.reconnect_backoff_max_ms);
    }
    if (DialLinks(peer)) {
      return true;
    }
  }
  return false;
}

bool GeoNode::DialLinks(DatacenterId peer) {
  Peer& entry = peers_[peer];
  auto dial = [&](std::uint32_t link_kind) -> std::shared_ptr<net::Connection> {
    auto connection = transport_->Dial(
        entry.address,
        net::ConnectionHandler{
            // Peer links are one-directional: nothing flows back.
            [this](net::Connection& c, nw::Frame&&) {
              wire_errors_.fetch_add(1, std::memory_order_relaxed);
              c.Close();
            },
            // Either link dropping (peer death, partition) fails both over
            // to the re-dial loop; MarkLinkDown dedups the two posts.
            [this, peer](net::Connection&, nw::WireError) {
              loop_.Post([this, peer] { MarkLinkDown(peer); });
            }});
    if (connection == nullptr) {
      return nullptr;
    }
    gw::GeoHelloMsg hello;
    hello.dc = options_.dc;
    hello.num_dcs = options_.config.num_dcs;
    hello.partitions = options_.config.partitions_per_dc;
    hello.link_kind = link_kind;
    if (link_kind == gw::kMetadataLink && durability_ != nullptr &&
        options_.fsync == wal::FsyncPolicy::kPerCommit) {
      // What this node durably holds of the peer's updates: under
      // fsync-per-commit every applied inbound record hit stable storage
      // before processing, so SiteTime is a durable frontier and the peer
      // may skip its replay below it. A WAL-less node (or a lazier fsync
      // policy, which can lose a synced-looking tail) keeps the default 0.
      hello.resume_from = runtime_->receiver().site_time()[peer];
    }
    if (!connection->SendFrame(nw::MsgType::kGeoHello,
                               gw::EncodeGeoHello(hello))) {
      connection->Close();
      return nullptr;
    }
    return connection;
  };
  auto metadata = dial(gw::kMetadataLink);
  if (metadata == nullptr) {
    return false;
  }
  auto payloads = dial(gw::kPayloadLink);
  if (payloads == nullptr) {
    metadata->Close();
    return false;
  }
  entry.metadata = std::move(metadata);
  entry.payloads = std::move(payloads);
  return true;
}

void GeoNode::MarkLinkDown(DatacenterId peer) {
  // Before Start, ConnectPeer owns retries; after Stop, nothing may redial.
  if (!started_.load() || stopped_.load()) {
    return;
  }
  Peer& entry = peers_[peer];
  if (entry.down || entry.address.empty()) {
    return;
  }
  entry.down = true;
  if (entry.metadata != nullptr) {
    entry.metadata->Close();
  }
  if (entry.payloads != nullptr) {
    entry.payloads->Close();
  }
  entry.metadata.reset();
  entry.payloads.reset();
  entry.backoff_ms = std::max<std::uint32_t>(1, options_.reconnect_backoff_ms);
  loop_.ScheduleAfter(static_cast<std::uint64_t>(entry.backoff_ms) * 1000,
                      [this, peer] { TryReconnect(peer); });
}

void GeoNode::TryReconnect(DatacenterId peer) {
  if (stopped_.load()) {
    return;
  }
  Peer& entry = peers_[peer];
  if (!entry.down) {
    return;
  }
  // The dial runs on the loop thread: to a local/refusing endpoint it
  // resolves in microseconds, and serializing it here keeps all link state
  // single-threaded.
  if (!DialLinks(peer)) {
    entry.backoff_ms =
        std::min(entry.backoff_ms * 2, options_.reconnect_backoff_max_ms);
    loop_.ScheduleAfter(static_cast<std::uint64_t>(entry.backoff_ms) * 1000,
                        [this, peer] { TryReconnect(peer); });
    return;
  }
  entry.down = false;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  if (options_.retain_peer_history) {
    // Catch-up: replay retained frames in order, skipping what the peer
    // durably acked (its hello on the reverse link may have raised
    // peer_applied_ past frames retained before the drop). Whatever the
    // peer kept beyond its acks arrives as duplicates and its
    // uid/timestamp dedup absorbs them.
    const Timestamp applied = peer_applied_[peer];
    std::uint64_t replayed = 0;
    for (const Peer::Sent& sent : entry.history) {
      if (sent.ts != 0 && sent.ts <= applied) {
        continue;
      }
      SendOnLink(sent.type == nw::MsgType::kGeoPayload ? entry.payloads
                                                       : entry.metadata,
                 sent.type, sent.frame);
      ++replayed;
    }
    if (telemetry_ != nullptr && replayed > 0) {
      telemetry_->replayed_frames->Add(replayed);
    }
  }
}

void GeoNode::NotePeerApplied(DatacenterId peer, Timestamp applied) {
  if (applied <= peer_applied_[peer]) {
    return;
  }
  peer_applied_[peer] = applied;
  if (options_.retain_peer_history) {
    // Truncation is what keeps the history bounded against durable peers:
    // a frame the peer holds on stable storage never needs replaying.
    std::vector<Peer::Sent>& history = peers_[peer].history;
    history.erase(std::remove_if(history.begin(), history.end(),
                                 [applied](const Peer::Sent& sent) {
                                   return sent.ts != 0 && sent.ts <= applied;
                                 }),
                  history.end());
  }
}

void GeoNode::Start() {
  if (started_.exchange(true)) {
    return;
  }
  loop_.Start();
  loop_.Post([this] {
    runtime_->StartTimers();
    // Re-fan-out every install the WAL retained: the pre-crash fan-out may
    // not have reached every peer, and peers dedup whatever it did. The
    // metadata re-ships itself — recovery re-enqueued the ops for
    // stabilization.
    for (const auto& [partition, payload] : recovered_installs_) {
      for (DatacenterId k = 0; k < options_.config.num_dcs; ++k) {
        if (k != options_.dc) {
          SendPayload(options_.dc, k, partition, payload);
        }
      }
    }
    recovered_installs_.clear();
    if (durability_ != nullptr) {
      if (options_.fsync == wal::FsyncPolicy::kPerCommit) {
        AckTick();
      }
      SnapshotTick();
    }
    if (telemetry_ != nullptr) {
      MetricsTick();
    }
  });
}

void GeoNode::Stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  // Transport first: joins every delivery thread (no more inbound posts,
  // and blocked outbound sends fail fast), then the loop.
  transport_->Shutdown();
  loop_.Stop();
  if (durability_ != nullptr) {
    // Graceful shutdown syncs the tail; only kill -9 loses unsynced bytes.
    durability_->Flush();
  }
}

void GeoNode::AckTick() {
  if (stopped_.load()) {
    return;
  }
  // Acks carry the durable applied frontier per origin — sound to promise
  // only under fsync-per-commit (Start gates on that), and only useful to
  // peers retaining history, but sent to all: the peer decides what to
  // truncate.
  const VectorTimestamp& site_time = runtime_->receiver().site_time();
  for (DatacenterId peer = 0; peer < options_.config.num_dcs; ++peer) {
    if (peer == options_.dc || peers_[peer].address.empty() ||
        peers_[peer].down) {
      continue;
    }
    SendToPeer(peer, nw::MsgType::kGeoAck,
               gw::EncodeGeoAck({options_.dc, site_time[peer]}));
  }
  loop_.ScheduleAfter(options_.ack_interval_us, [this] { AckTick(); });
}

void GeoNode::SnapshotTick() {
  if (stopped_.load()) {
    return;
  }
  if (durability_->SnapshotDue()) {
    durability_->Snapshot(*runtime_, &sessions_, InstallTruncateMark());
  }
  loop_.ScheduleAfter(options_.snapshot_check_interval_us,
                      [this] { SnapshotTick(); });
}

void GeoNode::MetricsTick() {
  if (stopped_.load()) {
    return;
  }
  Telemetry& t = *telemetry_;
  t.buffered_payloads->Set(
      static_cast<std::int64_t>(runtime_->BufferedPayloads()));
  t.pending_applies->Set(
      static_cast<std::int64_t>(runtime_->PendingApplyCount()));
  // Cumulative runtime/node counters mirror as deltas so the registry
  // series stay monotone across this node's lifetime.
  const auto mirror = [](metrics::Counter& counter, std::uint64_t now,
                         std::uint64_t* mark) {
    if (now > *mark) {
      counter.Add(now - *mark);
      *mark = now;
    }
  };
  mirror(*t.updates_installed, runtime_->updates_installed(),
         &t.mirrored_installed);
  mirror(*t.payload_duplicates, runtime_->payload_duplicates(),
         &t.mirrored_duplicates);
  mirror(*t.reconnects, reconnects_.load(std::memory_order_relaxed),
         &t.mirrored_reconnects);
  mirror(*t.wire_errors, wire_errors_.load(std::memory_order_relaxed),
         &t.mirrored_wire_errors);
  mirror(*t.send_failures, send_failures_.load(std::memory_order_relaxed),
         &t.mirrored_send_failures);
  loop_.ScheduleAfter(options_.metrics_interval_us, [this] { MetricsTick(); });
}

Timestamp GeoNode::InstallTruncateMark() const {
  // Every peer must durably hold an install before its WAL record may go.
  // peer_applied_ starts at 0 and WAL-less peers ack 0, so either pins the
  // log — truncation only proceeds in an all-durable deployment.
  Timestamp mark = runtime_->eunomia().StableTime();
  for (DatacenterId peer = 0; peer < options_.config.num_dcs; ++peer) {
    if (peer != options_.dc) {
      mark = std::min(mark, peer_applied_[peer]);
    }
  }
  return mark;
}

void GeoNode::ClientRead(ClientId client, Key key,
                         std::function<void()> done) {
  loop_.Post([this, client, key, done = std::move(done)]() mutable {
    runtime_->ClientRead(client, key, std::move(done));
  });
}

void GeoNode::ClientUpdate(ClientId client, Key key, Value value,
                           std::function<void()> done) {
  loop_.Post([this, client, key, value = std::move(value),
              done = std::move(done)]() mutable {
    runtime_->ClientUpdate(client, key, std::move(value), std::move(done));
  });
}

void GeoNode::PausePayloadsTo(DatacenterId peer, bool paused) {
  loop_.RunBlocking([this, peer, paused] {
    Peer& entry = peers_[peer];
    entry.paused = paused;
    if (!paused) {
      for (const std::string& frame : entry.parked) {
        SendOnLink(entry.payloads, nw::MsgType::kGeoPayload, frame);
      }
      entry.parked.clear();
    }
  });
}

// --- Environment -------------------------------------------------------------

void GeoNode::ScheduleAfter(DatacenterId, std::uint64_t delay_us,
                            std::function<void()> fn) {
  loop_.ScheduleAfter(delay_us, std::move(fn));
}

void GeoNode::ClientHop(DatacenterId, std::function<void()> fn) {
  // No artificial latency: the real network already charged it.
  loop_.Post(std::move(fn));
}

void GeoNode::RunOnPartition(DatacenterId, PartitionId, std::uint64_t, bool,
                             std::function<void()> fn) {
  // No cost model: real work takes real time on the loop.
  loop_.Post(std::move(fn));
}

void GeoNode::SendMetadataBatch(DatacenterId, PartitionId,
                                std::vector<OpRecord> batch) {
  // Partition and Eunomia node live in this process: a local hop.
  loop_.Post([this, batch = std::move(batch)] {
    runtime_->OnMetadataBatch(batch);
  });
}

void GeoNode::SendHeartbeat(DatacenterId, PartitionId partition,
                            Timestamp ts) {
  loop_.Post([this, partition, ts] { runtime_->OnHeartbeat(partition, ts); });
}

void GeoNode::ChargeEunomia(DatacenterId, std::uint64_t) {}

void GeoNode::SendOnLink(const std::shared_ptr<net::Connection>& link,
                         nw::MsgType type, const std::string& payload) {
  if (link == nullptr || !link->SendFrame(type, payload)) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void GeoNode::SendToPeer(DatacenterId to, nw::MsgType type, std::string frame,
                         Timestamp ts) {
  Peer& entry = peers_[to];
  if (options_.retain_peer_history && type != nw::MsgType::kGeoAck) {
    // Acks are ephemeral link control — replaying a stale one could only
    // mislead the peer about what this node currently holds.
    entry.history.push_back({type, frame, ts});
  }
  if (type == nw::MsgType::kGeoPayload && entry.paused) {
    entry.parked.push_back(std::move(frame));
    return;
  }
  if (entry.down) {
    // Lost for now: with history retention the reconnect replay re-ships
    // it; without, this is the same loss a dead TCP send would be.
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::shared_ptr<net::Connection>& link =
      type == nw::MsgType::kGeoPayload ? entry.payloads : entry.metadata;
  if (link == nullptr || !link->SendFrame(type, frame)) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    // A local send failure is as authoritative as a reader-side close (the
    // usual death signal): fail the pair over to the re-dial loop.
    MarkLinkDown(to);
  }
}

void GeoNode::SendRemoteMetadata(DatacenterId, DatacenterId to,
                                 std::vector<RemoteUpdate> batch) {
  // Chunked onto one FIFO connection: the shipping order — which the
  // remote receiver's Algorithm 5 queues rely on — is preserved.
  const std::size_t max_per_frame =
      gw::MaxGeoUpdatesPerFrame(options_.config.num_dcs);
  for (std::size_t i = 0; i < batch.size(); i += max_per_frame) {
    const std::size_t n = std::min(max_per_frame, batch.size() - i);
    // Batches ship in stabilization order, so the chunk's last update
    // carries its highest own-component timestamp — the frontier a peer
    // must have durably passed for this frame to be dead.
    const RemoteUpdate& last = batch[i + n - 1];
    SendToPeer(to, nw::MsgType::kGeoMetaBatch,
               gw::EncodeGeoMetaBatch(options_.dc, batch.data() + i, n),
               last.vts[last.origin]);
  }
}

void GeoNode::SendFrontier(DatacenterId, DatacenterId to, Timestamp frontier) {
  // A beacon is covered by the frontier it announces: once the peer
  // durably applied up to it, the announcement carries no information.
  SendToPeer(to, nw::MsgType::kGeoFrontier,
             gw::EncodeGeoFrontier({options_.dc, frontier}), frontier);
}

void GeoNode::SendPayload(DatacenterId, DatacenterId to, PartitionId partition,
                          RemotePayload payload) {
  gw::GeoPayloadMsg msg;
  msg.partition = partition;
  msg.payload = std::move(payload);
  const Timestamp ts = msg.payload.vts[msg.payload.origin];
  SendToPeer(to, nw::MsgType::kGeoPayload, gw::EncodeGeoPayload(msg), ts);
}

void GeoNode::SendApply(DatacenterId, PartitionId, std::function<void()> fn) {
  loop_.Post(std::move(fn));
}

// --- inbound peer links ------------------------------------------------------

net::ConnectionHandler GeoNode::MakeInboundHandler() {
  // Per-connection state lives in the handler closure; transports invoke a
  // connection's callbacks from a single thread, so no lock is needed.
  struct Inbound {
    bool hello_done = false;
    DatacenterId peer_dc = 0;
    std::uint32_t link_kind = gw::kMetadataLink;
  };
  auto state = std::make_shared<Inbound>();
  net::ConnectionHandler handler;
  handler.on_frame = [this, state](net::Connection& connection,
                                   nw::Frame&& frame) {
    auto reject = [this, &connection] {
      wire_errors_.fetch_add(1, std::memory_order_relaxed);
      connection.Close();
    };
    if (!state->hello_done) {
      gw::GeoHelloMsg hello;
      if (frame.type != nw::MsgType::kGeoHello ||
          !gw::DecodeGeoHello(frame.payload, &hello) ||
          hello.protocol_version != nw::kProtocolVersion ||
          hello.num_dcs != options_.config.num_dcs ||
          hello.partitions != options_.config.partitions_per_dc ||
          hello.dc >= options_.config.num_dcs || hello.dc == options_.dc ||
          (hello.link_kind != gw::kMetadataLink &&
           hello.link_kind != gw::kPayloadLink)) {
        reject();
        return;
      }
      state->hello_done = true;
      state->peer_dc = hello.dc;
      state->link_kind = hello.link_kind;
      if (hello.link_kind == gw::kMetadataLink && hello.resume_from > 0) {
        // The dialer names what it durably holds of OUR updates; raise the
        // mark so our reconnect replay to it skips the covered prefix.
        loop_.Post([this, peer = hello.dc, applied = hello.resume_from] {
          NotePeerApplied(peer, applied);
        });
      }
      return;
    }
    switch (frame.type) {
      case nw::MsgType::kGeoMetaBatch: {
        gw::GeoMetaBatchMsg msg;
        if (state->link_kind != gw::kMetadataLink ||
            !gw::DecodeGeoMetaBatch(frame.payload, &msg) ||
            msg.origin != state->peer_dc) {
          reject();
          return;
        }
        for (const RemoteUpdate& u : msg.updates) {
          if (u.origin != msg.origin ||
              u.partition >= options_.config.partitions_per_dc ||
              u.vts.size() != options_.config.num_dcs) {
            reject();
            return;
          }
        }
        loop_.Post([this, updates = std::move(msg.updates)] {
          runtime_->OnRemoteMetadata(updates);
        });
        return;
      }
      case nw::MsgType::kGeoFrontier: {
        gw::GeoFrontierMsg msg;
        if (state->link_kind != gw::kMetadataLink ||
            !gw::DecodeGeoFrontier(frame.payload, &msg) ||
            msg.origin != state->peer_dc) {
          reject();
          return;
        }
        loop_.Post([this, msg] { runtime_->OnFrontier(msg.origin, msg.frontier); });
        return;
      }
      case nw::MsgType::kGeoPayload: {
        gw::GeoPayloadMsg msg;
        if (state->link_kind != gw::kPayloadLink ||
            !gw::DecodeGeoPayload(frame.payload, &msg) ||
            msg.payload.origin != state->peer_dc ||
            msg.partition >= options_.config.partitions_per_dc ||
            msg.payload.vts.size() != options_.config.num_dcs) {
          reject();
          return;
        }
        loop_.Post([this, partition = msg.partition,
                    payload = std::move(msg.payload)]() mutable {
          runtime_->OnPayload(partition, std::move(payload));
        });
        return;
      }
      case nw::MsgType::kGeoAck: {
        gw::GeoAckMsg msg;
        if (state->link_kind != gw::kMetadataLink ||
            !gw::DecodeGeoAck(frame.payload, &msg) ||
            msg.dc != state->peer_dc) {
          reject();
          return;
        }
        loop_.Post([this, peer = msg.dc, applied = msg.applied] {
          NotePeerApplied(peer, applied);
        });
        return;
      }
      default:
        reject();
        return;
    }
  };
  handler.on_close = [](net::Connection&, nw::WireError) {};
  return handler;
}

}  // namespace eunomia::geo::rt
