// GeoNode — the real-world binding of the geo-replication runtime: one
// datacenter of the EunomiaKV deployment on real threads, behind a
// net::Transport (TCP or in-process loopback).
//
// A node hosts the full DatacenterRuntime (partitions, the Eunomia
// stabilizer, the Algorithm 5 receiver) on a single event loop, which
// provides the serialization the runtime's Environment contract requires.
// Cross-datacenter traffic travels transport connections this node dials
// to every peer — per directed pair, a FIFO *metadata link* (ordered
// kGeoMetaBatch shipping + scalar-mode kGeoFrontier beacons) and a
// separate *payload link* (unordered kGeoPayload fan-out), the §5
// data/metadata separation made literal. Inbound links are validated by a
// kGeoHello naming the dialer and the deployment shape; any malformed or
// out-of-place frame closes the connection.
//
// Lifecycle: Listen -> ConnectPeer (for every peer) -> Start -> client
// traffic -> Stop. Stop shuts the transport down (the transport becomes
// dedicated to this node, as with net::EunomiaServer) and joins the event
// loop; afterwards every accessor is safe from any thread. While the node
// is live, inspect runtime state only through RunBlocking.
//
// The client API mirrors the protocol contract: done callbacks run on the
// node's event loop once the operation completed locally — closed-loop
// drivers chain the next operation from there.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/georep/config.h"
#include "src/georep/runtime/datacenter_runtime.h"
#include "src/georep/runtime/environment.h"
#include "src/georep/runtime/event_loop.h"
#include "src/georep/runtime/durability.h"
#include "src/georep/visibility.h"
#include "src/metrics/counter.h"
#include "src/metrics/gauge.h"
#include "src/net/transport.h"
#include "src/wal/disk.h"
#include "src/wal/log_writer.h"

namespace eunomia::geo::rt {

class GeoNode final : private Environment {
 public:
  struct Options {
    DatacenterId dc = 0;
    // Deployment shape + protocol timers. The simulator-only knobs
    // (CostModel, clock skew, NetworkConfig latencies) are ignored: real
    // time and the real network provide them.
    GeoConfig config;
    // Forwarded to the node's VisibilityTracker.
    bool detailed_visibility = false;
    // ConnectPeer dials up to this many times, doubling the pause between
    // attempts from connect_backoff_ms — a peer that boots slightly later
    // (or is restarting) is not a permanent failure.
    std::uint32_t connect_attempts = 5;
    std::uint32_t connect_backoff_ms = 50;
    // After a live link drops, re-dials start at reconnect_backoff_ms and
    // double up to reconnect_backoff_max_ms, forever (a dead peer may come
    // back at any time; Stop cancels the retry loop).
    std::uint32_t reconnect_backoff_ms = 50;
    std::uint32_t reconnect_backoff_max_ms = 1000;
    // Retain every frame sent to each peer and replay it when the link is
    // re-established — durable retransmission that lets a restarted peer
    // catch up. Whatever the peer did keep arrives as duplicates and is
    // absorbed by uid/timestamp dedup on its receive path. Frames a peer
    // has durably acked (kGeoAck / hello resume_from) are truncated from
    // the history and skipped on replay, so against durable peers the
    // buffer stays bounded by the ack interval; against WAL-less peers
    // (which ack 0) it grows without bound, as before.
    bool retain_peer_history = false;
    // Durability: when durability_disk is set the node write-ahead-logs
    // every local install and every inbound metadata batch / payload before
    // processing it, snapshots periodically, and recovers from the disk in
    // the constructor — a kill -9'd node rejoins from its own WAL and needs
    // only incremental catch-up from peers (resume_from in its hellos names
    // the recovered frontier). The disk must outlive the node.
    wal::Disk* durability_disk = nullptr;
    wal::FsyncPolicy fsync = wal::FsyncPolicy::kPerCommit;
    std::uint64_t fsync_interval_us = 5'000;  // kInterval policy only
    // Snapshot when at least snapshot_interval_bytes of log accumulated,
    // checked every snapshot_check_interval_us.
    std::uint64_t snapshot_check_interval_us = 250'000;
    std::uint64_t snapshot_interval_bytes = 1u << 20;
    // Durable nodes ack their applied frontier to every peer at this
    // period (the acks drive peers' history truncation and this node's
    // install-log truncation).
    std::uint64_t ack_interval_us = 100'000;
    // Observability. When set, the node registers its per-dc series there
    // (visibility latency histograms, receiver queue-depth gauges, replay/
    // reconnect counters) and a loop timer mirrors runtime state into them
    // every metrics_interval_us. Null: off, zero overhead.
    metrics::Registry* metrics = nullptr;
    std::uint64_t metrics_interval_us = 250'000;
  };

  // The transport becomes dedicated to this node; Stop() shuts it down.
  GeoNode(net::Transport* transport, Options options);
  ~GeoNode() override;

  GeoNode(const GeoNode&) = delete;
  GeoNode& operator=(const GeoNode&) = delete;

  // Starts listening for peer links. Returns the bound address ("" on
  // failure).
  std::string Listen(const std::string& address);

  // Dials the metadata + payload links to `peer`, retrying up to
  // Options::connect_attempts times with doubling backoff. False once every
  // attempt failed. The address is remembered: if a live link later drops,
  // the node re-dials it in the background with capped backoff.
  bool ConnectPeer(DatacenterId peer, const std::string& address);

  // Starts the event loop and the protocol timers. Call after every peer
  // is connected.
  void Start();

  // Idempotent. Afterwards no callback is running or will run.
  void Stop();

  // --- client API ------------------------------------------------------------
  void ClientRead(ClientId client, Key key, std::function<void()> done);
  void ClientUpdate(ClientId client, Key key, Value value,
                    std::function<void()> done);

  // --- introspection ---------------------------------------------------------
  DatacenterId dc() const { return options_.dc; }
  // Runs fn on the event loop and blocks until done — the safe way to read
  // runtime/tracker state while the node is live.
  void RunBlocking(std::function<void()> fn) { loop_.RunBlocking(fn); }
  const DatacenterRuntime& runtime() const { return *runtime_; }
  VisibilityTracker& tracker() { return tracker_; }
  const VisibilityTracker& tracker() const { return tracker_; }

  // Frames rejected on inbound links (protocol violations) and outbound
  // sends that failed (peer missing / connection down).
  std::uint64_t wire_errors() const {
    return wire_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t send_failures() const {
    return send_failures_.load(std::memory_order_relaxed);
  }
  // Peer links successfully re-established after a mid-run drop.
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  // Null when Options::durability_disk was not set. Loop thread (or
  // stopped node) only, like runtime().
  const GeoDurability* durability() const { return durability_.get(); }
  // Highest durably-applied frontier `peer` has acked for this node's
  // updates, and the frames currently retained for it. Loop thread (or
  // stopped node) only — use RunBlocking on a live node.
  Timestamp peer_applied(DatacenterId peer) const {
    return peer_applied_[peer];
  }
  std::size_t retained_history_size(DatacenterId peer) const {
    return peers_[peer].history.size();
  }

  // Test hook for the causality e2e: while paused, outbound payloads to
  // `peer` are parked (metadata keeps flowing, so the remote receiver
  // issues go-aheads that must wait for the payload); resume releases them
  // in the original order.
  void PausePayloadsTo(DatacenterId peer, bool paused);

 private:
  struct Peer {
    std::string address;  // as dialed; background reconnects re-dial it
    std::shared_ptr<net::Connection> metadata;
    std::shared_ptr<net::Connection> payloads;
    bool down = false;  // links lost; a backoff re-dial is scheduled
    std::uint32_t backoff_ms = 0;
    bool paused = false;
    // Encoded kGeoPayload frames parked while paused.
    std::vector<std::string> parked;
    struct Sent {
      net::wire::MsgType type;
      std::string frame;
      // Self-origin frontier that covers this frame (last contained
      // update's own-component timestamp; the beacon value for frontier
      // frames). A peer that durably acked `applied` needs no frame with
      // ts <= applied. 0 = not coverable, always replay.
      Timestamp ts = 0;
    };
    // Options::retain_peer_history: frames sent and not yet acked
    // durable by this peer, in send order.
    std::vector<Sent> history;
  };

  // Environment implementation (all invoked from the loop thread).
  std::uint64_t Now() const override { return loop_.Now(); }
  void ScheduleAfter(DatacenterId dc, std::uint64_t delay_us,
                     std::function<void()> fn) override;
  void ClientHop(DatacenterId dc, std::function<void()> fn) override;
  void RunOnPartition(DatacenterId dc, PartitionId partition,
                      std::uint64_t cost_us, bool priority,
                      std::function<void()> fn) override;
  void SendMetadataBatch(DatacenterId dc, PartitionId partition,
                         std::vector<OpRecord> batch) override;
  void SendHeartbeat(DatacenterId dc, PartitionId partition,
                     Timestamp ts) override;
  void ChargeEunomia(DatacenterId dc, std::uint64_t cost_us) override;
  void SendRemoteMetadata(DatacenterId from, DatacenterId to,
                          std::vector<RemoteUpdate> batch) override;
  void SendFrontier(DatacenterId from, DatacenterId to,
                    Timestamp frontier) override;
  void SendPayload(DatacenterId from, DatacenterId to, PartitionId partition,
                   RemotePayload payload) override;
  void SendApply(DatacenterId dc, PartitionId partition,
                 std::function<void()> fn) override;

  net::ConnectionHandler MakeInboundHandler();
  void SendOnLink(const std::shared_ptr<net::Connection>& link,
                  net::wire::MsgType type, const std::string& payload);
  // Live-path send: records history (when retained), parks paused payloads,
  // and on a send failure marks the peer down. Loop thread only. `ts` is
  // the covering frontier recorded with the history entry (see Peer::Sent).
  void SendToPeer(DatacenterId to, net::wire::MsgType type, std::string frame,
                  Timestamp ts = 0);
  // Dials both links to peers_[peer].address. Synchronous; false if either
  // dial or hello failed (nothing is kept half-connected).
  bool DialLinks(DatacenterId peer);
  // Drops both links and schedules the backoff re-dial loop. Loop thread.
  void MarkLinkDown(DatacenterId peer);
  void TryReconnect(DatacenterId peer);
  // Raises peer_applied_[peer] and truncates its retained history below
  // the new mark. Loop thread only.
  void NotePeerApplied(DatacenterId peer, Timestamp applied);
  // Periodic durable-node duties (self-rescheduling loop timers).
  void AckTick();
  void SnapshotTick();
  // Self-rescheduling loop timer (Options::metrics only): samples the
  // receiver queue gauges and delta-mirrors the runtime's cumulative
  // counters into the registry. Runs on the loop thread, so it reads
  // runtime state with the same serialization RunBlocking provides.
  void MetricsTick();
  // Frontier up to which this node's install WAL may be truncated: its own
  // stable frontier, floored by what every peer has durably acked (0 until
  // all peers ack — a peer that never acks pins the log, by design).
  Timestamp InstallTruncateMark() const;

  // Per-dc registry series plus the mirror marks MetricsTick deltas
  // against. Built in the constructor when Options::metrics is set.
  struct Telemetry {
    std::shared_ptr<metrics::Gauge> buffered_payloads;
    std::shared_ptr<metrics::Gauge> pending_applies;
    std::shared_ptr<metrics::Counter> updates_installed;
    std::shared_ptr<metrics::Counter> payload_duplicates;
    std::shared_ptr<metrics::Counter> reconnects;
    std::shared_ptr<metrics::Counter> replayed_frames;
    std::shared_ptr<metrics::Counter> wire_errors;
    std::shared_ptr<metrics::Counter> send_failures;
    std::uint64_t mirrored_installed = 0;
    std::uint64_t mirrored_duplicates = 0;
    std::uint64_t mirrored_reconnects = 0;
    std::uint64_t mirrored_wire_errors = 0;
    std::uint64_t mirrored_send_failures = 0;
  };

  net::Transport* const transport_;
  const Options options_;
  EventLoop loop_;
  std::unique_ptr<Telemetry> telemetry_;
  VisibilityTracker tracker_;
  UidAllocator uids_;
  SessionMap sessions_;
  std::unique_ptr<GeoDurability> durability_;  // before runtime_: its hooks
  std::unique_ptr<DatacenterRuntime> runtime_;
  // Installs recovered from the WAL, re-fanned-out to every peer at Start
  // (the pre-crash fan-out may not have completed; peers dedup).
  std::vector<std::pair<PartitionId, RemotePayload>> recovered_installs_;
  std::vector<Timestamp> peer_applied_;  // loop thread; indexed by peer
  std::vector<Peer> peers_;  // indexed by DatacenterId; [dc()] unused
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> wire_errors_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace eunomia::geo::rt
