// Wire codecs for the geo-replication peer links (message types kGeoHello /
// kGeoMetaBatch / kGeoFrontier / kGeoPayload of src/net/wire.h).
//
// A real deployment connects every ordered pair of datacenters (m, k) with
// two transport connections dialed by m:
//
//   - the *metadata link* (kMetadataLink): kGeoMetaBatch frames carrying
//     stabilization-ordered RemoteUpdate records, interleaved with
//     kGeoFrontier beacons in scalar mode. The transport session's FIFO
//     guarantee IS the §4 "FIFO links between datacenters" assumption, and
//     the beacon-after-batch invariant the scalar receiver relies on holds
//     because both travel the same connection.
//   - the *payload link* (kPayloadLink): kGeoPayload frames fanned out by
//     partitions as soon as an update commits (§5 — no ordering
//     constraints, so keeping them off the metadata link means a large
//     value can never head-of-line-block stabilization metadata).
//
// Every link opens with one kGeoHello naming the dialer's datacenter, the
// deployment shape (which must match the acceptor's) and the link kind.
// All decoders return false on any structural violation; callers treat that
// as WireError::kMalformedPayload and drop the session.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/georep/remote_update.h"
#include "src/net/wire.h"

namespace eunomia::geo::rt::wire {

inline constexpr std::uint32_t kMetadataLink = 0;
inline constexpr std::uint32_t kPayloadLink = 1;

// Serialized RemoteUpdate size for a given vector-timestamp width, and the
// largest update count senders may put into one kGeoMetaBatch frame
// (senders chunk bigger stabilizer emissions into consecutive frames on the
// same FIFO link, which preserves the shipping order).
inline constexpr std::size_t RemoteUpdateWireBytes(std::uint32_t num_dcs) {
  return 8 + 8 + 4 + 4 + 4 + 8 * static_cast<std::size_t>(num_dcs);
}
inline constexpr std::size_t MaxGeoUpdatesPerFrame(std::uint32_t num_dcs) {
  return (net::wire::kMaxPayloadBytes - 8) / RemoteUpdateWireBytes(num_dcs);
}

struct GeoHelloMsg {
  std::uint32_t protocol_version = net::wire::kProtocolVersion;
  DatacenterId dc = 0;         // the dialing datacenter
  std::uint32_t num_dcs = 0;   // deployment shape — must match the acceptor
  std::uint32_t partitions = 0;
  std::uint32_t link_kind = kMetadataLink;
  // Metadata link only: the dialer's DURABLY applied frontier of the
  // acceptor's updates (its recovered SiteTime component for the acceptor).
  // The acceptor may skip its reconnect replay below this mark. A node
  // without stable storage must send 0 — its applied frontier does not
  // survive a restart, so nothing may be skipped on its behalf.
  std::uint64_t resume_from = 0;
};

struct GeoMetaBatchMsg {
  DatacenterId origin = 0;
  std::vector<RemoteUpdate> updates;
};

struct GeoFrontierMsg {
  DatacenterId origin = 0;
  Timestamp frontier = 0;
};

struct GeoPayloadMsg {
  PartitionId partition = 0;  // the sibling partition responsible for the key
  RemotePayload payload;
};

// Periodic durably-applied ack, sent by datacenter `dc` on its outbound
// metadata link: "of YOUR updates I have durably applied up to `applied`".
// The receiving peer raises its record of what `dc` holds and truncates the
// retained replay history below it (and, with durability enabled, may
// truncate its install WAL once every peer's mark passed). Nodes without
// stable storage send applied=0: an ack must never cause a peer to discard
// frames the acker could still lose.
struct GeoAckMsg {
  DatacenterId dc = 0;          // the acking (sending) datacenter
  std::uint64_t applied = 0;    // durable SiteTime component for the peer
};

std::string EncodeGeoHello(const GeoHelloMsg& msg);
bool DecodeGeoHello(std::string_view payload, GeoHelloMsg* msg);

// Pointer/count form so the stabilizer can chunk without copying sub-vectors.
std::string EncodeGeoMetaBatch(DatacenterId origin, const RemoteUpdate* updates,
                               std::size_t count);
bool DecodeGeoMetaBatch(std::string_view payload, GeoMetaBatchMsg* msg);

std::string EncodeGeoFrontier(const GeoFrontierMsg& msg);
bool DecodeGeoFrontier(std::string_view payload, GeoFrontierMsg* msg);

std::string EncodeGeoPayload(const GeoPayloadMsg& msg);
bool DecodeGeoPayload(std::string_view payload, GeoPayloadMsg* msg);

std::string EncodeGeoAck(const GeoAckMsg& msg);
bool DecodeGeoAck(std::string_view payload, GeoAckMsg* msg);

}  // namespace eunomia::geo::rt::wire
