#include "src/georep/runtime/sim_env.h"

#include <utility>

namespace eunomia::geo::rt {

SimGeoEnvironment::SimGeoEnvironment(sim::Simulator* sim,
                                     const GeoConfig& config)
    : sim_(sim),
      config_(config),
      network_(sim, config.network),
      runtimes_(config.num_dcs, nullptr) {
  dcs_.resize(config_.num_dcs);
  // Endpoint registration order is load-bearing: channel identities (and so
  // the FIFO clamping and jitter draws of sim::Network) must match the
  // pre-extraction layout — partitions first, then the Eunomia node, then
  // the receiver, datacenter-major.
  for (DatacenterId m = 0; m < config_.num_dcs; ++m) {
    DcSubstrate& dc = dcs_[m];
    for (std::uint32_t s = 0; s < config_.servers_per_dc; ++s) {
      dc.servers.push_back(std::make_unique<sim::Server>(sim_));
    }
    dc.partition_endpoints.reserve(config_.partitions_per_dc);
    for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
      dc.partition_endpoints.push_back(network_.Register(m));
    }
    dc.eunomia_server = std::make_unique<sim::Server>(sim_);
    dc.eunomia_endpoint = network_.Register(m);
    dc.receiver_server = std::make_unique<sim::Server>(sim_);
    dc.receiver_endpoint = network_.Register(m);
  }
}

void SimGeoEnvironment::ScheduleAfter(DatacenterId dc, std::uint64_t delay_us,
                                      std::function<void()> fn) {
  (void)dc;
  sim_->ScheduleAfter(delay_us, std::move(fn));
}

void SimGeoEnvironment::ClientHop(DatacenterId dc, std::function<void()> fn) {
  (void)dc;
  sim_->ScheduleAfter(config_.network.intra_dc_one_way_us, std::move(fn));
}

void SimGeoEnvironment::RunOnPartition(DatacenterId dc, PartitionId partition,
                                       std::uint64_t cost_us, bool priority,
                                       std::function<void()> fn) {
  sim::Server* server = PartitionServer(dc, partition);
  if (priority) {
    server->SubmitPriority(cost_us, std::move(fn));
  } else {
    server->Submit(cost_us, std::move(fn));
  }
}

void SimGeoEnvironment::SendMetadataBatch(DatacenterId dc,
                                          PartitionId partition,
                                          std::vector<OpRecord> batch) {
  network_.Send(dcs_[dc].partition_endpoints[partition],
                dcs_[dc].eunomia_endpoint,
                [this, dc, batch = std::move(batch)] {
                  const std::uint64_t cost =
                      config_.costs.eunomia_op_us * batch.size() + 1;
                  dcs_[dc].eunomia_server->Submit(cost, [this, dc, batch] {
                    // Looked up at delivery: a detached (crashed) runtime
                    // simply loses the message.
                    if (runtimes_[dc] != nullptr) {
                      runtimes_[dc]->OnMetadataBatch(batch);
                    }
                  });
                });
}

void SimGeoEnvironment::SendHeartbeat(DatacenterId dc, PartitionId partition,
                                      Timestamp ts) {
  network_.Send(dcs_[dc].partition_endpoints[partition],
                dcs_[dc].eunomia_endpoint, [this, dc, partition, ts] {
                  dcs_[dc].eunomia_server->Submit(1, [this, dc, partition, ts] {
                    if (runtimes_[dc] != nullptr) {
                      runtimes_[dc]->OnHeartbeat(partition, ts);
                    }
                  });
                });
}

void SimGeoEnvironment::ChargeEunomia(DatacenterId dc, std::uint64_t cost_us) {
  dcs_[dc].eunomia_server->Submit(cost_us, [] {});
}

void SimGeoEnvironment::SendRemoteMetadata(DatacenterId from, DatacenterId to,
                                           std::vector<RemoteUpdate> batch) {
  network_.Send(dcs_[from].eunomia_endpoint, dcs_[to].receiver_endpoint,
                [this, to, batch = std::move(batch)] {
                  dcs_[to].receiver_server->Submit(
                      config_.costs.receiver_op_us * batch.size() + 1,
                      [this, to, batch] {
                        if (runtimes_[to] != nullptr) {
                          runtimes_[to]->OnRemoteMetadata(batch);
                        }
                      });
                });
}

void SimGeoEnvironment::SendFrontier(DatacenterId from, DatacenterId to,
                                     Timestamp frontier) {
  network_.Send(dcs_[from].eunomia_endpoint, dcs_[to].receiver_endpoint,
                [this, from, to, frontier] {
                  // Through the receiver node's FCFS queue, so the beacon
                  // takes effect only after the batch preceding it on the
                  // FIFO link is enqueued.
                  dcs_[to].receiver_server->Submit(1, [this, from, to,
                                                       frontier] {
                    if (runtimes_[to] != nullptr) {
                      runtimes_[to]->OnFrontier(from, frontier);
                    }
                  });
                });
}

void SimGeoEnvironment::SendPayload(DatacenterId from, DatacenterId to,
                                    PartitionId partition,
                                    RemotePayload payload) {
  network_.Send(dcs_[from].partition_endpoints[partition],
                dcs_[to].partition_endpoints[partition],
                [this, to, partition, payload = std::move(payload)]() mutable {
                  if (runtimes_[to] != nullptr) {
                    runtimes_[to]->OnPayload(partition, std::move(payload));
                  }
                });
}

void SimGeoEnvironment::SendApply(DatacenterId dc, PartitionId partition,
                                  std::function<void()> fn) {
  network_.Send(dcs_[dc].receiver_endpoint,
                dcs_[dc].partition_endpoints[partition], std::move(fn));
}

}  // namespace eunomia::geo::rt
