#include "src/georep/runtime/event_loop.h"

#include <future>

namespace eunomia::geo::rt {

namespace {

// One epoch for the whole process: every EventLoop reads the same monotonic
// timeline, so timestamps survive an owner's crash/restart (see Now()).
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

EventLoop::EventLoop() : epoch_(ProcessEpoch()) {}

EventLoop::~EventLoop() { Stop(); }

std::uint64_t EventLoop::Now() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void EventLoop::Start() {
  sync::MutexLock lock(mu_);
  if (running_ || stopped_) {
    return;
  }
  running_ = true;
  thread_ = std::thread([this] { RunLoop(); });
  loop_thread_id_.store(thread_.get_id(), std::memory_order_release);
}

void EventLoop::Stop() {
  {
    sync::MutexLock lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
    cv_.NotifyAll();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  sync::MutexLock lock(mu_);
  running_ = false;
  tasks_.clear();
}

void EventLoop::ScheduleAfter(std::uint64_t delay_us,
                              std::function<void()> fn) {
  sync::MutexLock lock(mu_);
  if (stopped_) {
    return;
  }
  tasks_.emplace(std::make_pair(Now() + delay_us, next_seq_++), std::move(fn));
  cv_.NotifyAll();
}

void EventLoop::RunBlocking(std::function<void()> fn) {
  {
    sync::MutexLock lock(mu_);
    if (!running_ || stopped_) {
      fn();  // loop not live: the caller is the only executor
      return;
    }
  }
  if (InLoopThread()) {
    fn();
    return;
  }
  auto done = std::make_shared<std::promise<void>>();
  auto future = done->get_future();
  Post([&fn, done] {
    fn();
    done->set_value();
  });
  // Wait, but survive a concurrent Stop(): Stop discards queued tasks, so
  // once the loop is down and our task did not run, execute inline — the
  // joined loop thread can no longer touch runtime state.
  while (future.wait_for(std::chrono::milliseconds(20)) !=
         std::future_status::ready) {
    sync::MutexLock lock(mu_);
    if (stopped_ && !running_) {
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        fn();
      }
      return;
    }
  }
}

void EventLoop::RunLoop() {
  // Manual Lock/Unlock instead of a scoped guard: the lock is dropped
  // around each task body and re-taken at the loop head — a shape the
  // static analysis still verifies because every path rebalances.
  mu_.Lock();
  while (!stopped_) {
    if (tasks_.empty()) {
      cv_.Wait(mu_);
      continue;
    }
    const std::uint64_t due = tasks_.begin()->first.first;
    if (due > Now()) {
      cv_.WaitUntil(mu_, epoch_ + std::chrono::microseconds(due));
      continue;
    }
    auto it = tasks_.begin();
    std::function<void()> fn = std::move(it->second);
    tasks_.erase(it);
    mu_.Unlock();
    fn();
    mu_.Lock();
  }
  mu_.Unlock();
}

}  // namespace eunomia::geo::rt
