// One datacenter's EunomiaKV protocol runtime (§4–§5, Algorithm 5),
// transport-agnostic.
//
// This is the protocol extracted from the original simulator-welded
// EunomiaKvSystem: the partition update path (hybrid clocks of Algorithm 2,
// metadata batching toward the local Eunomia, direct payload fan-out to
// sibling partitions), the Eunomia stabilizer shipping ordered metadata to
// every remote receiver, the Algorithm 5 receiver, session vector clocks
// and visibility bookkeeping. All interaction with the world goes through
// the Environment seam (environment.h): the simulator binding reproduces
// the pre-extraction discrete-event behaviour bit-for-bit; the real
// binding (geo_node.h) runs the same code over threads and sockets.
//
// Threading: the runtime is single-threaded by contract. The binding must
// serialize every call (client entry points, message ingress, timer
// callbacks) — the simulator is naturally serial, the real binding routes
// everything through one event loop per datacenter.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/clock/physical_clock.h"
#include "src/common/types.h"
#include "src/eunomia/core.h"
#include "src/eunomia/sender.h"
#include "src/georep/config.h"
#include "src/georep/geo_store.h"
#include "src/georep/receiver.h"
#include "src/georep/remote_update.h"
#include "src/georep/runtime/environment.h"
#include "src/georep/visibility.h"
#include "src/store/hash_ring.h"

namespace eunomia::geo::rt {

// Client-session map: ClientId -> VClock_c (Table 2). The sim binding
// shares one map across its datacenters (clients are objects of the whole
// simulated world); a real datacenter node owns the sessions of the
// clients attached to it.
using SessionMap = std::unordered_map<ClientId, VectorTimestamp>;

// Write-ahead seam: the runtime announces, synchronously and before any
// side effect leaves the process, every event a crash-recovery log must
// capture. OnLocalInstall fires after a local update is installed but
// before its payload fan-out; the inbound pair fires when remote metadata /
// payloads are accepted (after duplicate suppression, so replaying a log
// never double-logs). Implementations append to a durable log
// (georep/runtime/durability.h); a null hooks pointer keeps the runtime
// purely in-memory.
class DurabilityHooks {
 public:
  virtual ~DurabilityHooks() = default;
  virtual void OnLocalInstall(PartitionId partition,
                              const RemotePayload& payload) = 0;
  virtual void OnInboundMetadata(const std::vector<RemoteUpdate>& batch) = 0;
  virtual void OnInboundPayload(PartitionId partition,
                                const RemotePayload& payload) = 0;
};

class DatacenterRuntime {
 public:
  // `clocks` holds one loosely synchronized physical clock per partition
  // (the binding decides the skew model). `tracker`, `uids`, `sessions` and
  // `hooks` (optional) are borrowed and must outlive the runtime.
  DatacenterRuntime(DatacenterId id, const GeoConfig& config, Environment* env,
                    VisibilityTracker* tracker, UidAllocator* uids,
                    SessionMap* sessions, std::vector<PhysicalClock> clocks,
                    DurabilityHooks* hooks = nullptr);

  DatacenterRuntime(const DatacenterRuntime&) = delete;
  DatacenterRuntime& operator=(const DatacenterRuntime&) = delete;

  DatacenterId id() const { return id_; }

  // Schedules the recurring partition-flush, stabilizer and receiver-check
  // timers. Call exactly once, after every peer datacenter is reachable.
  void StartTimers();

  // --- client entry points ---------------------------------------------------
  void ClientRead(ClientId client, Key key, std::function<void()> done);
  // Read that hands the observed version (a copy taken at the partition, so
  // the caller may inspect it after the fact) to the completion callback.
  // A missing key yields an empty value with an all-zero vector timestamp.
  // ClientRead forwards here; the chaos harness uses the value to check
  // session read-your-writes.
  void ClientReadValue(ClientId client, Key key,
                       std::function<void(const GeoVersion&)> done);
  void ClientUpdate(ClientId client, Key key, Value value,
                    std::function<void()> done);

  // --- crash-recovery bootstrap ----------------------------------------------
  // Re-installs an update this datacenter originated in a previous
  // incarnation (replayed from a durable log — in the chaos harness, the
  // environment's observed payload fan-out stands in for the WAL). Restores
  // the store version, re-primes the partition's hybrid clock so future
  // timestamps stay strictly ahead of the old incarnation's, and re-enqueues
  // the op for Eunomia stabilization + remote shipping (remote receivers
  // dedup any suffix they already applied). Must be called in timestamp
  // order per partition, before StartTimers, and does NOT re-fan-out the
  // payload — the restarting harness replays inbound/outbound channels
  // itself.
  void RestoreLocalUpdate(PartitionId partition, const RemotePayload& update);
  // Restores one store version from a durability snapshot: the raw Put plus
  // a hybrid-clock observation of the version's local component, with no
  // re-enqueue for stabilization or shipping (the snapshot covers state
  // whose metadata already stabilized). Same call-window contract as
  // RestoreLocalUpdate.
  void RestoreStoreVersion(PartitionId partition, Key key,
                           const GeoVersion& version);
  // Restores the receiver's applied frontier (SiteTime) from a snapshot, so
  // replayed inbound arrivals the old incarnation already applied are
  // dropped as duplicates instead of re-applied against fresh state. Call
  // before replaying any inbound metadata or payloads.
  void RestoreSiteTime(const VectorTimestamp& site_time);
  // Re-primes one partition's hybrid clock to at least `ts` — covers local
  // timestamps whose install-log entries were truncated away (their stable,
  // everywhere-applied ops no longer replay, but future timestamps must
  // still strictly exceed them or Property 2 breaks).
  void PrimePartitionClock(PartitionId partition, Timestamp ts);

  // --- message ingress (invoked by the binding on delivery) ------------------
  // At the Eunomia node: one partition's timestamp-ordered metadata batch /
  // heartbeat (FIFO per partition).
  void OnMetadataBatch(const std::vector<OpRecord>& batch);
  void OnHeartbeat(PartitionId partition, Timestamp ts);
  // At the receiver: ordered metadata from a remote Eunomia (FIFO per
  // origin), and the scalar-mode stable-frontier beacon.
  void OnRemoteMetadata(const std::vector<RemoteUpdate>& batch);
  void OnFrontier(DatacenterId origin, Timestamp frontier);
  // At a partition: a sibling's payload (unordered).
  void OnPayload(PartitionId partition, RemotePayload payload);

  // Straggler injection (§7.2.3): overrides the partition -> Eunomia
  // communication interval for one partition.
  void SetPartitionCommInterval(PartitionId partition,
                                std::uint64_t interval_us);
  // Clock-skew injection: replaces one partition's physical clock (offset /
  // drift) mid-run. The hybrid clock's monotonicity absorbs any backward
  // step — that resilience is exactly what the chaos schedules probe.
  void SetPartitionClock(PartitionId partition, const PhysicalClock& clock);

  // --- introspection ---------------------------------------------------------
  const GeoStore& StoreAt(PartitionId partition) const;
  const Receiver& receiver() const { return *receiver_; }
  const EunomiaCore& eunomia() const { return eunomia_; }
  const VectorTimestamp* SessionOf(ClientId client) const;
  std::uint64_t updates_installed() const { return updates_installed_; }
  const GeoConfig& config() const { return config_; }
  // Payloads buffered ahead of their metadata go-ahead, and go-aheads parked
  // waiting for a payload — both must drain to zero once the world quiesces.
  std::size_t BufferedPayloads() const;
  std::size_t PendingApplyCount() const;
  // Payload copies dropped because the update was already applied (an
  // at-least-once payload channel redelivered, or a crash-recovery re-ship
  // overlapped the original).
  std::uint64_t payload_duplicates() const { return payload_duplicates_; }

 private:
  struct Partition {
    PartitionId id = 0;
    PhysicalClock clock;
    // Tie-free hybrid clock: timestamps are partition-tagged in their low
    // bits so no two partitions of this DC ever issue equal values (see
    // clock/hybrid_clock.h for why Algorithm 5 wants this).
    PartitionedHybridClock hybrid;
    GeoStore store;
    PartitionBatcher batcher;
    std::uint64_t comm_interval_us = 1000;
    // Data/metadata separation state: payloads received ahead of metadata,
    // and metadata go-aheads waiting for payloads.
    std::unordered_map<std::uint64_t, RemotePayload> payloads;
    std::unordered_map<std::uint64_t, std::function<void()>> pending_applies;
  };

  void SchedulePartitionFlush(PartitionId p);
  void FlushPartition(PartitionId p);
  void ScheduleStabilizer();
  void RunStabilizer();
  void ScheduleReceiverCheck();

  void ExecuteUpdate(Partition& part, ClientId client, Key key, Value value,
                     std::function<void()> done, std::uint64_t issued_at);
  void ApplyRemote(PartitionId p, const RemoteUpdate& meta,
                   std::function<void()> done);
  void ExecuteRemote(Partition& part, std::uint64_t uid,
                     std::function<void()> done);

  const DatacenterId id_;
  const GeoConfig config_;
  Environment* const env_;
  DurabilityHooks* const hooks_;
  VisibilityTracker* const tracker_;
  UidAllocator* const uids_;
  SessionMap* const sessions_;
  store::ConsistentHashRing router_;
  std::vector<Partition> partitions_;
  EunomiaCore eunomia_;
  std::unique_ptr<Receiver> receiver_;
  // Metadata registry: uid -> shipping metadata, kept at the origin until
  // Eunomia stabilizes and ships it.
  std::unordered_map<std::uint64_t, RemoteUpdate> registry_;
  std::uint64_t updates_installed_ = 0;
  std::uint64_t payload_duplicates_ = 0;
  std::vector<OpRecord> stable_scratch_;
};

}  // namespace eunomia::geo::rt
