// One datacenter's EunomiaKV protocol runtime (§4–§5, Algorithm 5),
// transport-agnostic.
//
// This is the protocol extracted from the original simulator-welded
// EunomiaKvSystem: the partition update path (hybrid clocks of Algorithm 2,
// metadata batching toward the local Eunomia, direct payload fan-out to
// sibling partitions), the Eunomia stabilizer shipping ordered metadata to
// every remote receiver, the Algorithm 5 receiver, session vector clocks
// and visibility bookkeeping. All interaction with the world goes through
// the Environment seam (environment.h): the simulator binding reproduces
// the pre-extraction discrete-event behaviour bit-for-bit; the real
// binding (geo_node.h) runs the same code over threads and sockets.
//
// Threading: the runtime is single-threaded by contract. The binding must
// serialize every call (client entry points, message ingress, timer
// callbacks) — the simulator is naturally serial, the real binding routes
// everything through one event loop per datacenter.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/clock/hybrid_clock.h"
#include "src/clock/physical_clock.h"
#include "src/common/types.h"
#include "src/eunomia/core.h"
#include "src/eunomia/sender.h"
#include "src/georep/config.h"
#include "src/georep/geo_store.h"
#include "src/georep/receiver.h"
#include "src/georep/remote_update.h"
#include "src/georep/runtime/environment.h"
#include "src/georep/visibility.h"
#include "src/store/hash_ring.h"

namespace eunomia::geo::rt {

// Client-session map: ClientId -> VClock_c (Table 2). The sim binding
// shares one map across its datacenters (clients are objects of the whole
// simulated world); a real datacenter node owns the sessions of the
// clients attached to it.
using SessionMap = std::unordered_map<ClientId, VectorTimestamp>;

class DatacenterRuntime {
 public:
  // `clocks` holds one loosely synchronized physical clock per partition
  // (the binding decides the skew model). `tracker`, `uids` and `sessions`
  // are borrowed and must outlive the runtime.
  DatacenterRuntime(DatacenterId id, const GeoConfig& config, Environment* env,
                    VisibilityTracker* tracker, UidAllocator* uids,
                    SessionMap* sessions, std::vector<PhysicalClock> clocks);

  DatacenterRuntime(const DatacenterRuntime&) = delete;
  DatacenterRuntime& operator=(const DatacenterRuntime&) = delete;

  DatacenterId id() const { return id_; }

  // Schedules the recurring partition-flush, stabilizer and receiver-check
  // timers. Call exactly once, after every peer datacenter is reachable.
  void StartTimers();

  // --- client entry points ---------------------------------------------------
  void ClientRead(ClientId client, Key key, std::function<void()> done);
  void ClientUpdate(ClientId client, Key key, Value value,
                    std::function<void()> done);

  // --- message ingress (invoked by the binding on delivery) ------------------
  // At the Eunomia node: one partition's timestamp-ordered metadata batch /
  // heartbeat (FIFO per partition).
  void OnMetadataBatch(const std::vector<OpRecord>& batch);
  void OnHeartbeat(PartitionId partition, Timestamp ts);
  // At the receiver: ordered metadata from a remote Eunomia (FIFO per
  // origin), and the scalar-mode stable-frontier beacon.
  void OnRemoteMetadata(const std::vector<RemoteUpdate>& batch);
  void OnFrontier(DatacenterId origin, Timestamp frontier);
  // At a partition: a sibling's payload (unordered).
  void OnPayload(PartitionId partition, RemotePayload payload);

  // Straggler injection (§7.2.3): overrides the partition -> Eunomia
  // communication interval for one partition.
  void SetPartitionCommInterval(PartitionId partition,
                                std::uint64_t interval_us);

  // --- introspection ---------------------------------------------------------
  const GeoStore& StoreAt(PartitionId partition) const;
  const Receiver& receiver() const { return *receiver_; }
  const EunomiaCore& eunomia() const { return eunomia_; }
  const VectorTimestamp* SessionOf(ClientId client) const;
  std::uint64_t updates_installed() const { return updates_installed_; }
  const GeoConfig& config() const { return config_; }

 private:
  struct Partition {
    PartitionId id = 0;
    PhysicalClock clock;
    // Tie-free hybrid clock: timestamps are partition-tagged in their low
    // bits so no two partitions of this DC ever issue equal values (see
    // clock/hybrid_clock.h for why Algorithm 5 wants this).
    PartitionedHybridClock hybrid;
    GeoStore store;
    PartitionBatcher batcher;
    std::uint64_t comm_interval_us = 1000;
    // Data/metadata separation state: payloads received ahead of metadata,
    // and metadata go-aheads waiting for payloads.
    std::unordered_map<std::uint64_t, RemotePayload> payloads;
    std::unordered_map<std::uint64_t, std::function<void()>> pending_applies;
  };

  void SchedulePartitionFlush(PartitionId p);
  void FlushPartition(PartitionId p);
  void ScheduleStabilizer();
  void RunStabilizer();
  void ScheduleReceiverCheck();

  void ExecuteUpdate(Partition& part, ClientId client, Key key, Value value,
                     std::function<void()> done, std::uint64_t issued_at);
  void ApplyRemote(PartitionId p, const RemoteUpdate& meta,
                   std::function<void()> done);
  void ExecuteRemote(Partition& part, std::uint64_t uid,
                     std::function<void()> done);

  const DatacenterId id_;
  const GeoConfig config_;
  Environment* const env_;
  VisibilityTracker* const tracker_;
  UidAllocator* const uids_;
  SessionMap* const sessions_;
  store::ConsistentHashRing router_;
  std::vector<Partition> partitions_;
  EunomiaCore eunomia_;
  std::unique_ptr<Receiver> receiver_;
  // Metadata registry: uid -> shipping metadata, kept at the origin until
  // Eunomia stabilizes and ships it.
  std::unordered_map<std::uint64_t, RemoteUpdate> registry_;
  std::uint64_t updates_installed_ = 0;
  std::vector<OpRecord> stable_scratch_;
};

}  // namespace eunomia::geo::rt
