#include "src/georep/runtime/datacenter_runtime.h"

#include <cassert>
#include <utility>

namespace eunomia::geo::rt {

DatacenterRuntime::DatacenterRuntime(DatacenterId id, const GeoConfig& config,
                                     Environment* env,
                                     VisibilityTracker* tracker,
                                     UidAllocator* uids, SessionMap* sessions,
                                     std::vector<PhysicalClock> clocks,
                                     DurabilityHooks* hooks)
    : id_(id),
      config_(config),
      env_(env),
      hooks_(hooks),
      tracker_(tracker),
      uids_(uids),
      sessions_(sessions),
      router_(config_.partitions_per_dc),
      partitions_(config_.partitions_per_dc),
      eunomia_(config_.partitions_per_dc, /*first_partition=*/0,
               config_.eunomia_buffer) {
  assert(clocks.size() == partitions_.size());
  for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
    Partition& part = partitions_[p];
    part.id = p;
    part.clock = clocks[p];
    part.hybrid = PartitionedHybridClock(p, config_.partitions_per_dc);
    part.comm_interval_us = config_.batch_interval_us;
  }
  receiver_ = std::make_unique<Receiver>(
      id_, config_.num_dcs,
      [this](const RemoteUpdate& update, std::function<void()> done) {
        ApplyRemote(update.partition, update, std::move(done));
      },
      config_.scalar_metadata);
}

void DatacenterRuntime::StartTimers() {
  for (PartitionId p = 0; p < config_.partitions_per_dc; ++p) {
    SchedulePartitionFlush(p);
  }
  ScheduleStabilizer();
  ScheduleReceiverCheck();
}

void DatacenterRuntime::SetPartitionCommInterval(PartitionId partition,
                                                 std::uint64_t interval_us) {
  assert(partition < partitions_.size());
  partitions_[partition].comm_interval_us = interval_us == 0 ? 1 : interval_us;
}

void DatacenterRuntime::SetPartitionClock(PartitionId partition,
                                          const PhysicalClock& clock) {
  assert(partition < partitions_.size());
  partitions_[partition].clock = clock;
}

void DatacenterRuntime::RestoreLocalUpdate(PartitionId partition,
                                           const RemotePayload& update) {
  assert(partition < partitions_.size());
  assert(update.origin == id_);
  Partition& part = partitions_[partition];
  part.store.Put(update.key, update.value, update.vts, update.origin);
  // Future timestamps must strictly exceed every restored one, or the
  // batcher's monotonicity (Property 2) — and remote dedup — would break.
  part.hybrid.Observe(update.vts[id_]);
  part.batcher.Add(OpRecord{update.vts[id_], partition, update.key, update.uid});
  registry_[update.uid] = RemoteUpdate{update.uid, update.key, update.vts, id_,
                                       partition};
  ++updates_installed_;
}

void DatacenterRuntime::RestoreStoreVersion(PartitionId partition, Key key,
                                            const GeoVersion& version) {
  assert(partition < partitions_.size());
  Partition& part = partitions_[partition];
  part.store.Put(key, version.value, version.vts, version.origin);
  if (version.origin == id_) {
    part.hybrid.Observe(version.vts[id_]);
  }
}

void DatacenterRuntime::RestoreSiteTime(const VectorTimestamp& site_time) {
  receiver_->RestoreSiteTime(site_time);
}

void DatacenterRuntime::PrimePartitionClock(PartitionId partition,
                                            Timestamp ts) {
  assert(partition < partitions_.size());
  partitions_[partition].hybrid.Observe(ts);
}

void DatacenterRuntime::SchedulePartitionFlush(PartitionId p) {
  const std::uint64_t interval = partitions_[p].comm_interval_us;
  env_->ScheduleAfter(id_, interval, [this, p] {
    FlushPartition(p);
    SchedulePartitionFlush(p);
  });
}

void DatacenterRuntime::FlushPartition(PartitionId p) {
  Partition& part = partitions_[p];
  if (!part.batcher.empty()) {
    // FIFO link partition -> Eunomia (§3.1 assumption).
    env_->SendMetadataBatch(id_, p, part.batcher.TakeBatch());
    return;
  }
  // Idle partition: heartbeat if due (Alg. 2 lines 10-12). HeartbeatValue
  // records the emitted timestamp so later updates strictly exceed it,
  // preserving Property 2 even if an update lands in the same microsecond.
  const Timestamp now_phys = part.clock.Read(env_->Now());
  if (part.hybrid.HeartbeatDue(now_phys, config_.delta_us)) {
    env_->SendHeartbeat(id_, p, part.hybrid.HeartbeatValue(now_phys));
  }
}

void DatacenterRuntime::OnMetadataBatch(const std::vector<OpRecord>& batch) {
  // Per-partition batches are timestamp-ordered: bulk insert through the
  // hinted run path.
  eunomia_.AddBatch(batch);
}

void DatacenterRuntime::OnHeartbeat(PartitionId partition, Timestamp ts) {
  eunomia_.Heartbeat(partition, ts);
}

void DatacenterRuntime::ScheduleStabilizer() {
  env_->ScheduleAfter(id_, config_.theta_us, [this] {
    RunStabilizer();
    ScheduleStabilizer();
  });
}

void DatacenterRuntime::RunStabilizer() {
  stable_scratch_.clear();
  const std::size_t emitted = eunomia_.ProcessStable(&stable_scratch_);
  // Scalar variant: the receivers gate on each origin's stable frontier
  // (GST-style), so the stabilizer broadcasts its StableTime as a beacon
  // even when there is nothing to ship. The beacon goes out AFTER the
  // batch below on the same FIFO link, so a receiver that sees frontier F
  // is guaranteed to already hold every op with ts <= F in its queue.
  auto send_frontier_beacons = [this] {
    const Timestamp frontier = eunomia_.StableTime();
    if (frontier == 0) {
      return;
    }
    for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
      if (k == id_) {
        continue;
      }
      env_->SendFrontier(id_, k, frontier);
    }
  };
  if (emitted == 0) {
    if (config_.scalar_metadata) {
      send_frontier_beacons();
    }
    return;
  }
  // Charge the Eunomia node for the extraction work.
  env_->ChargeEunomia(id_, config_.costs.eunomia_op_us * emitted + 1);
  // Ship ordered metadata to every remote receiver; the FIFO WAN link
  // preserves the stabilization order.
  std::vector<RemoteUpdate> batch;
  batch.reserve(emitted);
  for (const OpRecord& op : stable_scratch_) {
    const auto it = registry_.find(op.tag);
    assert(it != registry_.end());
    batch.push_back(it->second);
    registry_.erase(it);
  }
  for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
    if (k == id_) {
      continue;
    }
    env_->SendRemoteMetadata(id_, k, batch);
  }
  if (config_.scalar_metadata) {
    send_frontier_beacons();
  }
}

void DatacenterRuntime::OnRemoteMetadata(const std::vector<RemoteUpdate>& batch) {
  if (hooks_ != nullptr) {
    // Logged before the receiver sees it: anything that influenced SiteTime
    // must be reconstructible, or a post-crash replay would under-run the
    // pre-crash applied frontier.
    hooks_->OnInboundMetadata(batch);
  }
  for (const RemoteUpdate& u : batch) {
    receiver_->OnRemoteUpdate(u);
  }
}

void DatacenterRuntime::OnFrontier(DatacenterId origin, Timestamp frontier) {
  receiver_->OnFrontier(origin, frontier);
}

void DatacenterRuntime::ScheduleReceiverCheck() {
  env_->ScheduleAfter(id_, config_.rho_us, [this] {
    receiver_->CheckPending();
    ScheduleReceiverCheck();
  });
}

void DatacenterRuntime::ClientRead(ClientId client, Key key,
                                   std::function<void()> done) {
  ClientReadValue(client, key,
                  [done = std::move(done)](const GeoVersion&) { done(); });
}

void DatacenterRuntime::ClientReadValue(
    ClientId client, Key key, std::function<void(const GeoVersion&)> done) {
  const std::uint64_t issued_at = env_->Now();
  const PartitionId p = router_.Responsible(key);
  Partition& part = partitions_[p];
  env_->ClientHop(id_, [this, &part, client, key, done = std::move(done),
                        issued_at] {
    const std::uint64_t cost =
        config_.costs.read_us + config_.costs.eunomia_metadata_us;
    env_->RunOnPartition(id_, part.id, cost, /*priority=*/false,
                         [this, &part, client, key, done, issued_at] {
      const GeoVersion* version = part.store.Get(key);
      GeoVersion observed = version != nullptr
                                ? *version
                                : GeoVersion{Value{},
                                             VectorTimestamp(config_.num_dcs),
                                             0};
      env_->ClientHop(id_, [this, client, observed = std::move(observed), done,
                            issued_at] {
        auto [it, inserted] =
            sessions_->try_emplace(client, VectorTimestamp(config_.num_dcs));
        it->second.MergeMax(observed.vts);  // Alg. 1 line 4, vector form
        tracker_->OnOpComplete(id_, /*is_update=*/false, env_->Now(),
                               env_->Now() - issued_at);
        done(observed);
      });
    });
  });
}

void DatacenterRuntime::ClientUpdate(ClientId client, Key key, Value value,
                                     std::function<void()> done) {
  const std::uint64_t issued_at = env_->Now();
  const PartitionId p = router_.Responsible(key);
  Partition& part = partitions_[p];
  env_->ClientHop(id_, [this, &part, client, key, value = std::move(value),
                        done = std::move(done), issued_at]() mutable {
    ExecuteUpdate(part, client, key, std::move(value), std::move(done),
                  issued_at);
  });
}

void DatacenterRuntime::ExecuteUpdate(Partition& part, ClientId client,
                                      Key key, Value value,
                                      std::function<void()> done,
                                      std::uint64_t issued_at) {
  const std::uint64_t cost = config_.costs.update_us +
                             config_.costs.eunomia_metadata_us +
                             config_.costs.eunomia_update_metadata_us;
  env_->RunOnPartition(id_, part.id, cost, /*priority=*/false,
                       [this, &part, client, key, value = std::move(value),
                        done = std::move(done), issued_at]() mutable {
    auto [sit, inserted] =
        sessions_->try_emplace(client, VectorTimestamp(config_.num_dcs));
    VectorTimestamp& session = sit->second;

    // u.vts: local entry from the hybrid clock (Alg. 2 line 5, vector form);
    // remote entries copied from VClock_c (§4 "Update").
    const Timestamp now_phys = part.clock.Read(env_->Now());
    const Timestamp local_ts =
        part.hybrid.TimestampUpdate(now_phys, session[id_]);
    VectorTimestamp vts = session;
    vts[id_] = local_ts;
    if (config_.scalar_metadata) {
      // Scalar compression (§4, "we could easily adapt our protocols to use
      // a single scalar, as in [GentleRain]"): the update carries one scalar
      // — its own timestamp — as both its id and its dependency summary, so
      // a remote datacenter may apply it only once it has applied *every*
      // datacenter's updates up to that value (GentleRain's GST >= u.ts
      // condition). This creates false dependencies on every datacenter:
      // the visibility lower bound becomes the farthest inter-DC latency,
      // and a quiescent datacenter stalls everyone (which is why GentleRain
      // needs heartbeats).
      for (DatacenterId d = 0; d < config_.num_dcs; ++d) {
        vts[d] = local_ts;
      }
    }

    part.store.Put(key, value, vts, id_);
    ++updates_installed_;
    const std::uint64_t uid = uids_->Next();
    tracker_->RecordInstalled(uid, id_, env_->Now());

    // Metadata to Eunomia (batched, §5): only (ts, partition, key, uid).
    part.batcher.Add(OpRecord{local_ts, part.id, key, uid});
    registry_[uid] = RemoteUpdate{uid, key, vts, id_, part.id};

    // Data/metadata separation (§5): ship the payload directly to the
    // sibling partitions, no ordering constraints.
    RemotePayload payload{uid, key, value, vts, id_};
    if (hooks_ != nullptr) {
      // Log-before-ship: once any byte of this update leaves the process
      // (payload fan-out below, metadata at the next flush), a crash must
      // be able to resurrect it, or peers end up holding orphaned payloads
      // whose metadata go-ahead can never arrive.
      hooks_->OnLocalInstall(part.id, payload);
    }
    for (DatacenterId k = 0; k < config_.num_dcs; ++k) {
      if (k == id_) {
        continue;
      }
      env_->SendPayload(id_, k, part.id, payload);
    }

    // Reply to the client: VClock_c <- u.vts (strictly greater, §4).
    env_->ClientHop(id_, [this, client, vts = std::move(vts), done,
                          issued_at] {
      auto it = sessions_->find(client);
      if (it != sessions_->end()) {
        it->second = vts;
      }
      tracker_->OnOpComplete(id_, /*is_update=*/true, env_->Now(),
                             env_->Now() - issued_at);
      done();
    });
  });
}

void DatacenterRuntime::OnPayload(PartitionId p, RemotePayload payload) {
  // At-least-once payload channels (a faulty network redelivering, or a
  // crash-recovery re-ship racing the original) can present an update whose
  // apply already completed. SiteTime only passes u.vts[origin] once u has
  // been applied here (the receiver advances it strictly in apply order and
  // per-DC timestamps are unique across partitions), so this copy is
  // provably stale — drop it before any visibility bookkeeping. On exactly-
  // once channels the payload precedes its own apply and the test never
  // fires.
  if (payload.origin != id_ &&
      payload.vts[payload.origin] <= receiver_->site_time()[payload.origin]) {
    ++payload_duplicates_;
    return;
  }
  if (hooks_ != nullptr) {
    // After the duplicate check (redeliveries are not re-logged), before the
    // payload can be buffered or applied.
    hooks_->OnInboundPayload(p, payload);
  }
  Partition& part = partitions_[p];
  // Per-datacenter trackers (real binding) never saw the origin's install:
  // materialize the origin attribution here. A no-op on the sim binding's
  // shared tracker.
  tracker_->EnsureInstalled(payload.uid, payload.origin, env_->Now());
  tracker_->OnRemoteArrival(payload.uid, id_, env_->Now());
  const std::uint64_t uid = payload.uid;
  part.payloads.emplace(uid, std::move(payload));
  // If the receiver's go-ahead beat the payload, finish the apply now.
  const auto pending = part.pending_applies.find(uid);
  if (pending != part.pending_applies.end()) {
    auto done = std::move(pending->second);
    part.pending_applies.erase(pending);
    ExecuteRemote(part, uid, std::move(done));
  }
}

void DatacenterRuntime::ApplyRemote(PartitionId p, const RemoteUpdate& meta,
                                    std::function<void()> done) {
  // Receiver -> partition APPLY message (Alg. 5 line 14).
  env_->SendApply(id_, p, [this, p, uid = meta.uid, done = std::move(done)] {
    Partition& part = partitions_[p];
    if (part.payloads.count(uid) > 0) {
      ExecuteRemote(part, uid, done);
    } else {
      // Metadata arrived before the payload: park the go-ahead.
      part.pending_applies.emplace(uid, done);
    }
  });
}

void DatacenterRuntime::ExecuteRemote(Partition& part, std::uint64_t uid,
                                      std::function<void()> done) {
  env_->RunOnPartition(id_, part.id, config_.costs.apply_remote_us,
                       /*priority=*/true,
                       [this, &part, uid, done = std::move(done)] {
    const auto it = part.payloads.find(uid);
    assert(it != part.payloads.end());
    RemotePayload payload = std::move(it->second);
    part.payloads.erase(it);
    part.store.Put(payload.key, std::move(payload.value), payload.vts,
                   payload.origin);
    tracker_->OnRemoteVisible(uid, id_, env_->Now());
    done();  // receiver advances SiteTime and keeps flushing
  });
}

const GeoStore& DatacenterRuntime::StoreAt(PartitionId partition) const {
  assert(partition < partitions_.size());
  return partitions_[partition].store;
}

std::size_t DatacenterRuntime::BufferedPayloads() const {
  std::size_t n = 0;
  for (const Partition& part : partitions_) {
    n += part.payloads.size();
  }
  return n;
}

std::size_t DatacenterRuntime::PendingApplyCount() const {
  std::size_t n = 0;
  for (const Partition& part : partitions_) {
    n += part.pending_applies.size();
  }
  return n;
}

const VectorTimestamp* DatacenterRuntime::SessionOf(ClientId client) const {
  const auto it = sessions_->find(client);
  return it == sessions_->end() ? nullptr : &it->second;
}

}  // namespace eunomia::geo::rt
