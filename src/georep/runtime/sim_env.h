// Simulator binding of the geo-runtime Environment.
//
// Reproduces the pre-extraction EunomiaKvSystem event structure exactly:
// the same endpoints are registered in the same order on one sim::Network
// (partitions, then the Eunomia node, then the receiver, per datacenter),
// message sends compose the same network hop + FCFS server submission with
// the same cost-model charges, and timers map 1:1 onto the simulator's
// event queue — so a fixed seed produces bit-for-bit the behaviour of the
// monolithic implementation (pinned by GeoRuntimeTest.SimBindingMatches-
// PreRefactorGolden).
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "src/georep/config.h"
#include "src/georep/runtime/datacenter_runtime.h"
#include "src/georep/runtime/environment.h"
#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace eunomia::geo::rt {

// Subclassable (not final) so the chaos binding can wrap the send paths
// with fault injection while reusing the substrate; see runtime/chaos/.
class SimGeoEnvironment : public Environment {
 public:
  // Builds the simulated deployment substrate (FCFS servers + endpoints for
  // every datacenter in `config`). Runtimes are attached afterwards with
  // RegisterRuntime — the environment and the runtimes reference each other,
  // so construction is two-phase.
  SimGeoEnvironment(sim::Simulator* sim, const GeoConfig& config);
  ~SimGeoEnvironment() override = default;

  // Attaches (or, with nullptr, detaches) a datacenter's runtime. Delivery
  // closures look the runtime up at delivery time and drop the message when
  // it is detached — which is exactly a crashed datacenter losing whatever
  // was in flight to it.
  void RegisterRuntime(DatacenterId dc, DatacenterRuntime* runtime) {
    assert(dc < runtimes_.size());
    runtimes_[dc] = runtime;
  }

  std::uint64_t Now() const override { return sim_->now(); }
  void ScheduleAfter(DatacenterId dc, std::uint64_t delay_us,
                     std::function<void()> fn) override;
  void ClientHop(DatacenterId dc, std::function<void()> fn) override;
  void RunOnPartition(DatacenterId dc, PartitionId partition,
                      std::uint64_t cost_us, bool priority,
                      std::function<void()> fn) override;
  void SendMetadataBatch(DatacenterId dc, PartitionId partition,
                         std::vector<OpRecord> batch) override;
  void SendHeartbeat(DatacenterId dc, PartitionId partition,
                     Timestamp ts) override;
  void ChargeEunomia(DatacenterId dc, std::uint64_t cost_us) override;
  void SendRemoteMetadata(DatacenterId from, DatacenterId to,
                          std::vector<RemoteUpdate> batch) override;
  void SendFrontier(DatacenterId from, DatacenterId to,
                    Timestamp frontier) override;
  void SendPayload(DatacenterId from, DatacenterId to, PartitionId partition,
                   RemotePayload payload) override;
  void SendApply(DatacenterId dc, PartitionId partition,
                 std::function<void()> fn) override;

 protected:
  struct DcSubstrate {
    std::vector<std::unique_ptr<sim::Server>> servers;
    std::vector<sim::EndpointId> partition_endpoints;
    std::unique_ptr<sim::Server> eunomia_server;
    sim::EndpointId eunomia_endpoint = 0;
    std::unique_ptr<sim::Server> receiver_server;
    sim::EndpointId receiver_endpoint = 0;
  };

  sim::Server* PartitionServer(DatacenterId dc, PartitionId p) {
    return dcs_[dc]
        .servers[store::ServerOfPartition(p, config_.servers_per_dc)]
        .get();
  }

  sim::Simulator* const sim_;
  const GeoConfig config_;
  sim::Network network_;
  std::vector<DcSubstrate> dcs_;
  std::vector<DatacenterRuntime*> runtimes_;
};

}  // namespace eunomia::geo::rt
