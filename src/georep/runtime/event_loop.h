// A single-threaded timer/task loop: the real-world stand-in for the
// discrete-event simulator's one-at-a-time event execution.
//
// Each real datacenter node (geo_node.h) owns one EventLoop and routes
// every runtime interaction through it — timers, client operations,
// messages arriving from transport threads — which is how the real binding
// honours the Environment contract that all DatacenterRuntime calls are
// serialized and never reentrant.
//
// Tasks run in (due time, submission order) priority; Post(fn) is
// ScheduleAfter(0). Stop() discards pending tasks and joins the thread, so
// after Stop returns no task is running or will run — state owned by loop
// tasks may then be inspected from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <utility>

#include "src/common/sync.h"

namespace eunomia::geo::rt {

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void Start();
  void Stop();

  // Monotonic microseconds since a process-wide epoch shared by every
  // EventLoop. Sharing matters for crash/restart: a node restarted on a
  // fresh loop must keep issuing hybrid-clock timestamps strictly ahead of
  // its previous incarnation's, or peers' duplicate suppression would drop
  // its post-restart updates.
  std::uint64_t Now() const;

  // Runs fn on the loop thread no earlier than delay_us from now. Safe from
  // any thread, including loop tasks themselves. A no-op after Stop.
  void ScheduleAfter(std::uint64_t delay_us, std::function<void()> fn);
  void Post(std::function<void()> fn) { ScheduleAfter(0, std::move(fn)); }

  // Runs fn on the loop thread and blocks until it completed — the safe way
  // to inspect runtime state while the loop is live. Executes fn inline
  // when the loop is not running (then the caller is the only thread).
  void RunBlocking(std::function<void()> fn);

  bool InLoopThread() const {
    return std::this_thread::get_id() ==
           loop_thread_id_.load(std::memory_order_acquire);
  }

 private:
  void RunLoop();

  const std::chrono::steady_clock::time_point epoch_;
  mutable sync::Mutex mu_{"rt::EventLoop::mu_", sync::kRankEventLoop};
  sync::CondVar cv_;
  // (due time us, submission seq) -> task; multimap iteration order is the
  // execution order.
  std::multimap<std::pair<std::uint64_t, std::uint64_t>,
                std::function<void()>>
      tasks_ GUARDED_BY(mu_);
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  bool running_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;
  std::thread thread_;
  // Atomic rather than mu_-guarded: InLoopThread is called from loop tasks
  // that would deadlock taking mu_ while RunLoop holds it.
  std::atomic<std::thread::id> loop_thread_id_{};
};

}  // namespace eunomia::geo::rt
