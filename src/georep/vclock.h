// Vector timestamps for inter-datacenter dependency tracking (§4, Table 2).
//
// Updates are tagged with a vector with one entry per datacenter (u.vts);
// clients maintain VClock_c with the same shape. The paper chooses vectors
// over a single scalar because they introduce no false dependencies across
// datacenters: the lower-bound visibility latency becomes the latency from
// the *originator*, not from the farthest datacenter (§4). The overhead is
// "negligible in our protocol as Eunomia allows for trivial dependency
// checking procedures".
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace eunomia::geo {

class VectorTimestamp {
 public:
  VectorTimestamp() = default;
  explicit VectorTimestamp(std::uint32_t num_dcs) : entries_(num_dcs, 0) {}
  VectorTimestamp(std::initializer_list<Timestamp> init) : entries_(init) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(entries_.size()); }

  Timestamp operator[](DatacenterId dc) const {
    assert(dc < entries_.size());
    return entries_[dc];
  }
  Timestamp& operator[](DatacenterId dc) {
    assert(dc < entries_.size());
    return entries_[dc];
  }

  // Per-entry max merge (client read path, Alg. 1 generalized to vectors).
  void MergeMax(const VectorTimestamp& other) {
    assert(entries_.size() == other.entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      entries_[i] = std::max(entries_[i], other.entries_[i]);
    }
  }

  // True iff every entry of *this >= the matching entry of other.
  bool Dominates(const VectorTimestamp& other) const {
    assert(entries_.size() == other.entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i] < other.entries_[i]) {
        return false;
      }
    }
    return true;
  }

  // Happens-before: this < other in the causal partial order.
  bool StrictlyBefore(const VectorTimestamp& other) const {
    return other.Dominates(*this) && entries_ != other.entries_;
  }

  bool Concurrent(const VectorTimestamp& other) const {
    return !Dominates(other) && !other.Dominates(*this);
  }

  // Arbitrary total order extending the partial order, used for last-writer-
  // wins arbitration in the multi-version store: compare component sums,
  // then lexicographically. (If a dominates b, sum(a) > sum(b), so the total
  // order is compatible with causality.)
  const std::vector<Timestamp>& TotalOrderKey() const { return entries_; }
  Timestamp Sum() const {
    Timestamp s = 0;
    for (const Timestamp e : entries_) {
      s += e;
    }
    return s;
  }

  friend bool operator==(const VectorTimestamp&, const VectorTimestamp&) = default;

  std::string ToString() const {
    std::string out = "[";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += std::to_string(entries_[i]);
    }
    out += "]";
    return out;
  }

  const std::vector<Timestamp>& entries() const { return entries_; }

 private:
  std::vector<Timestamp> entries_;
};

}  // namespace eunomia::geo
