// Wire representation of a replicated update.
//
// With the data/metadata separation of §5, the payload (key + value) and the
// ordering metadata (uid + vector timestamp) may travel on different paths:
// partitions ship payloads directly to their siblings with no ordering
// constraints, while Eunomia ships metadata in stabilization order. The
// receiver matches the two by uid.
#pragma once

#include <cstdint>

#include "src/common/types.h"
#include "src/georep/vclock.h"

namespace eunomia::geo {

struct RemoteUpdate {
  std::uint64_t uid = 0;       // unique update id (u.id in §5)
  Key key = 0;
  VectorTimestamp vts;         // u.vts — entry per datacenter
  DatacenterId origin = 0;     // k, the originating datacenter
  PartitionId partition = 0;   // sibling partition responsible for key
};

struct RemotePayload {
  std::uint64_t uid = 0;
  Key key = 0;
  Value value;
  VectorTimestamp vts;
  DatacenterId origin = 0;
};

}  // namespace eunomia::geo
