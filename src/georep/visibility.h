// Instrumentation shared by every simulated geo-replicated system.
//
// The paper's quality-of-service metric is the *remote update visibility
// latency*: for EunomiaKV, "the time interval between the data arrival and
// the instant in which the update is executed at the responsible partition";
// for GentleRain/Cure, between the arrival of the remote operation at the
// partition and the moment the global stabilization procedure allows its
// visibility. Both definitions factor out the (identical) network latency,
// so the numbers capture only the artificial delay added by each metadata
// management strategy (§7.2.2). This tracker implements exactly that
// bookkeeping, plus op-completion counters for throughput.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/metrics/histogram.h"
#include "src/metrics/registry.h"

namespace eunomia::geo {

class VisibilityTracker {
 public:
  // window_us controls the throughput / latency timeline resolution.
  // num_datacenters (when > 0) lets the tracker reclaim per-update origin
  // state once all num_datacenters - 1 destinations reported the update
  // visible; with 0 the installed records are kept for the whole run.
  explicit VisibilityTracker(std::uint64_t window_us = 1'000'000,
                             std::uint32_t num_datacenters = 0)
      : window_us_(window_us),
        num_datacenters_(num_datacenters),
        throughput_(window_us) {}

  // --- update lifecycle ------------------------------------------------------

  // Called at the origin when the update is installed locally. Returns the
  // globally unique update id used on the wire.
  std::uint64_t OnInstalled(DatacenterId origin, std::uint64_t t_us) {
    const std::uint64_t uid = next_uid_++;
    RecordInstalled(uid, origin, t_us);
    return uid;
  }

  // Same bookkeeping with an externally allocated uid (the geo runtime owns
  // uid allocation so a real multi-process deployment can use coordination-
  // free strided streams; see rt::UidAllocator).
  void RecordInstalled(std::uint64_t uid, DatacenterId origin,
                       std::uint64_t t_us) {
    if (!retain_installs_) {
      return;
    }
    const std::uint32_t remaining =
        num_datacenters_ >= 2 ? num_datacenters_ - 1 : 0;
    installed_[uid] = {origin, t_us, remaining};
  }

  // A per-datacenter tracker in a real deployment never receives remote
  // visibility reports for locally installed updates — those land on the
  // destination nodes' trackers — so retaining origin records would grow
  // one map entry per local update forever. Disabling retention makes
  // RecordInstalled a no-op; destination-side EnsureInstalled stubs (which
  // ARE consulted and reclaimed here) are unaffected.
  void DisableInstallRetention() { retain_installs_ = false; }

  // Destination-side stub: ensures an origin record exists for `uid` so a
  // tracker that never saw the install (a per-datacenter tracker in a real
  // deployment — the install happened in another process) still attributes
  // visibility samples to the right origin. A no-op when the record exists,
  // so the sim binding's shared tracker is unaffected.
  void EnsureInstalled(std::uint64_t uid, DatacenterId origin,
                       std::uint64_t t_us) {
    if (installed_.find(uid) == installed_.end()) {
      installed_[uid] = {origin, t_us,
                         num_datacenters_ >= 2 ? num_datacenters_ - 1 : 0};
    }
  }

  // Remote data (the update payload) arrived at datacenter dc.
  void OnRemoteArrival(std::uint64_t uid, DatacenterId dc, std::uint64_t t_us) {
    arrivals_[PackKey(uid, dc)] = t_us;
  }

  // Enables per-update bookkeeping of visible times (used by tests that
  // assert causal visibility ordering). Off by default to keep long
  // benchmark runs lean.
  void EnableDetailedLog() { detailed_ = true; }

  // Visible time of `uid` at `dc`, if recorded (requires EnableDetailedLog).
  std::optional<std::uint64_t> VisibleAt(std::uint64_t uid, DatacenterId dc) const {
    const auto it = visible_times_.find(PackKey(uid, dc));
    return it == visible_times_.end() ? std::nullopt
                                      : std::optional<std::uint64_t>(it->second);
  }

  // The update became visible (was executed / allowed by stabilization) at
  // datacenter dc.
  void OnRemoteVisible(std::uint64_t uid, DatacenterId dc, std::uint64_t t_us) {
    if (detailed_) {
      visible_times_[PackKey(uid, dc)] = t_us;
    }
    const auto inst = installed_.find(uid);
    if (inst == installed_.end()) {
      return;
    }
    const DatacenterId origin = inst->second.origin;
    const auto arr = arrivals_.find(PackKey(uid, dc));
    const std::uint64_t arrival =
        arr != arrivals_.end() ? arr->second : inst->second.installed_us;
    const std::uint64_t artificial = t_us >= arrival ? t_us - arrival : 0;
    auto& cdf = visibility_[{origin, dc}];
    cdf.Add(static_cast<double>(artificial));
    auto& hist = visibility_hist_[{origin, dc}];
    if (hist == nullptr) {
      hist = MakeVisibilityHistogram(origin, dc);
    }
    hist->Record(artificial);
    auto& timeline = visibility_timeline_[{origin, dc}];
    if (!timeline) {
      timeline = std::make_unique<TimeSeries>(window_us_);
    }
    timeline->RecordValue(t_us, static_cast<double>(artificial));
    if (arr != arrivals_.end()) {
      arrivals_.erase(arr);
    }
    // Reclaim the origin record once every destination reported visible —
    // long runs must not accumulate one entry per update ever installed.
    if (dc != origin && inst->second.remaining_destinations > 0 &&
        --inst->second.remaining_destinations == 0) {
      installed_.erase(inst);
    }
  }

  // --- client-op accounting --------------------------------------------------

  void OnOpComplete(DatacenterId dc, bool is_update, std::uint64_t t_us,
                    std::uint64_t latency_us) {
    (void)dc;
    if (is_update) {
      ++updates_completed_;
      update_latency_.Record(latency_us);
    } else {
      ++reads_completed_;
      read_latency_.Record(latency_us);
    }
    throughput_.Record(t_us);
  }

  // --- results ----------------------------------------------------------------

  std::uint64_t reads_completed() const { return reads_completed_; }
  std::uint64_t updates_completed() const { return updates_completed_; }
  std::uint64_t ops_completed() const { return reads_completed_ + updates_completed_; }

  // Completed ops per second over [from_us, to_us) — the steady-state window
  // (the paper drops the first and last minute of each run).
  double Throughput(std::uint64_t from_us, std::uint64_t to_us) const {
    if (to_us <= from_us) {
      return 0.0;
    }
    const auto rates = throughput_.Rates();
    const std::size_t first = static_cast<std::size_t>(from_us / window_us_);
    const std::size_t last = static_cast<std::size_t>(to_us / window_us_);
    double total = 0.0;
    std::size_t windows = 0;
    for (std::size_t i = first; i < last && i < rates.size(); ++i) {
      total += rates[i];
      ++windows;
    }
    return windows == 0 ? 0.0 : total / static_cast<double>(windows);
  }

  const LatencyHistogram& read_latency() const { return read_latency_; }
  const LatencyHistogram& update_latency() const { return update_latency_; }

  // Artificial visibility delay CDF for updates originating at `origin`
  // observed at `dest`; nullptr if no samples.
  const Cdf* Visibility(DatacenterId origin, DatacenterId dest) const {
    const auto it = visibility_.find({origin, dest});
    return it == visibility_.end() ? nullptr : &it->second;
  }

  // The same stream as Visibility() in log-linear histogram form — what the
  // scrape endpoint exports and fig6 reads its CDF from. nullptr before the
  // first sample for the pair.
  const metrics::Histogram* VisibilityHistogram(DatacenterId origin,
                                                DatacenterId dest) const {
    const auto it = visibility_hist_.find({origin, dest});
    return it == visibility_hist_.end() ? nullptr : it->second.get();
  }

  // Registers every (origin, dest) visibility histogram — existing and
  // future — into `registry` as eunomia_georep_visibility_latency_
  // microseconds{origin=...,dest=...}. Call before traffic starts; series
  // registration is lazy on the first sample per pair, which runs on the
  // caller's event loop with no annotated lock held (registry rank 950
  // admits it from anywhere below leaf rank).
  void AttachMetrics(metrics::Registry* registry) { registry_ = registry; }

  // Mean artificial delay per time window (Fig. 7 timelines).
  const TimeSeries* VisibilityTimeline(DatacenterId origin, DatacenterId dest) const {
    const auto it = visibility_timeline_.find({origin, dest});
    return it == visibility_timeline_.end() ? nullptr : it->second.get();
  }

  const TimeSeries& throughput_timeline() const { return throughput_; }

  // Updates installed but never observed as visible at `dest` (sanity check:
  // should be only the tail in flight at the end of a run).
  std::size_t PendingArrivals() const { return arrivals_.size(); }

  // Origin records still held (the in-flight tail when num_datacenters was
  // given at construction; every update ever installed otherwise).
  std::size_t TrackedInstalls() const { return installed_.size(); }

 private:
  struct InstalledRecord {
    DatacenterId origin = 0;
    std::uint64_t installed_us = 0;
    // Destinations yet to report visible; 0 means "unknown, keep forever".
    std::uint32_t remaining_destinations = 0;
  };

  std::shared_ptr<metrics::Histogram> MakeVisibilityHistogram(
      DatacenterId origin, DatacenterId dest) {
    static constexpr char kName[] =
        "eunomia_georep_visibility_latency_microseconds";
    static constexpr char kHelp[] =
        "Artificial remote-visibility delay (network latency factored out): "
        "update arrival at the destination to the instant stabilization "
        "allows it to become visible, in microseconds";
    const metrics::Labels labels = {{"origin", std::to_string(origin)},
                                    {"dest", std::to_string(dest)}};
    if (registry_ != nullptr) {
      return registry_->AddHistogram(kName, kHelp, labels);
    }
    return std::make_shared<metrics::Histogram>(kName, kHelp, labels);
  }

  static std::uint64_t PackKey(std::uint64_t uid, DatacenterId dc) {
    // uids are dense, so shifting them 8 bits keeps the key collision-free
    // for any dc < 256. (uid * 64 + dc aliased dc >= 64 onto later uids.)
    assert(dc < 256);
    return (uid << 8) | dc;
  }

  std::uint64_t window_us_;
  std::uint32_t num_datacenters_;
  std::uint64_t next_uid_ = 0;
  bool detailed_ = false;
  bool retain_installs_ = true;
  std::unordered_map<std::uint64_t, std::uint64_t> visible_times_;
  std::unordered_map<std::uint64_t, InstalledRecord> installed_;
  std::unordered_map<std::uint64_t, std::uint64_t> arrivals_;
  metrics::Registry* registry_ = nullptr;
  std::map<std::pair<DatacenterId, DatacenterId>, Cdf> visibility_;
  std::map<std::pair<DatacenterId, DatacenterId>,
           std::shared_ptr<metrics::Histogram>>
      visibility_hist_;
  std::map<std::pair<DatacenterId, DatacenterId>, std::unique_ptr<TimeSeries>>
      visibility_timeline_;
  std::uint64_t reads_completed_ = 0;
  std::uint64_t updates_completed_ = 0;
  LatencyHistogram read_latency_;
  LatencyHistogram update_latency_;
  TimeSeries throughput_;
};

}  // namespace eunomia::geo
