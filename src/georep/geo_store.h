// Single-version store with vector-timestamp LWW arbitration.
//
// EunomiaKV (and the sequencer systems) deliver remote updates in a causally
// safe order, so one version per key suffices: an incoming update either
// causally dominates the stored version (it replaces it) or is concurrent
// (arbitrated deterministically by total-order key, then origin id — the
// standard last-writer-wins register over causal delivery).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/common/types.h"
#include "src/georep/vclock.h"

namespace eunomia::geo {

struct GeoVersion {
  Value value;
  VectorTimestamp vts;
  DatacenterId origin = 0;
};

class GeoStore {
 public:
  // Returns true if the write became the current version.
  bool Put(Key key, Value value, const VectorTimestamp& vts, DatacenterId origin) {
    auto [it, inserted] = map_.try_emplace(key);
    GeoVersion& cur = it->second;
    if (!inserted && !Supersedes(vts, origin, cur)) {
      return false;
    }
    cur.value = std::move(value);
    cur.vts = vts;
    cur.origin = origin;
    return true;
  }

  const GeoVersion* Get(Key key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return map_.size(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, version] : map_) {
      fn(key, version);
    }
  }

  // Public so convergence checkers (the chaos harness's oracle) can fold
  // the same arbitration over an update log. The relation is a strict total
  // order on distinct versions — dominance implies a strictly larger
  // component sum, so the winner of a set of writes is independent of the
  // order they are folded in; that order-independence is exactly what makes
  // per-key convergence well-defined.
  static bool Supersedes(const VectorTimestamp& vts, DatacenterId origin,
                         const GeoVersion& cur) {
    if (vts.Dominates(cur.vts)) {
      return true;
    }
    if (cur.vts.Dominates(vts)) {
      return false;
    }
    // Concurrent: deterministic arbitration.
    const Timestamp new_sum = vts.Sum();
    const Timestamp cur_sum = cur.vts.Sum();
    if (new_sum != cur_sum) {
      return new_sum > cur_sum;
    }
    if (vts.entries() != cur.vts.entries()) {
      return vts.entries() > cur.vts.entries();
    }
    return origin > cur.origin;
  }

  std::unordered_map<Key, GeoVersion> map_;
};

}  // namespace eunomia::geo
