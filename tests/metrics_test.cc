// Tests for the metrics subsystem (src/metrics/): exposition-format pin,
// concurrent-write merge correctness against a single-threaded model,
// log-linear bucket boundaries, registry get-or-create/type-mismatch/rank
// behavior, and the HTTP scrape endpoint round trip.
//
// The registry's GUARDED_BY annotations have their negative test in
// tests/sync_negative_compile.cc (probe 4), built — and required to FAIL to
// compile — by the clang job in CI.

#include <atomic>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/sync.h"
#include "src/metrics/counter.h"
#include "src/metrics/gauge.h"
#include "src/metrics/histogram.h"
#include "src/metrics/metrics_server.h"
#include "src/metrics/registry.h"

namespace eunomia::metrics {
namespace {

// ---------------------------------------------------------------------------
// Exposition format pin. The Prometheus text format is an external contract:
// dashboards parse it, so a formatting change must be a deliberate diff here.

TEST(MetricsExpositionTest, TextExpositionPin) {
  Registry registry;
  auto requests = registry.AddCounter("test_requests_total", "Total requests.",
                                      {{"method", "get"}});
  requests->Add(3);
  auto depth = registry.AddGauge("test_queue_depth", "Depth.");
  depth->Set(-2);
  auto latency = registry.AddHistogram("test_latency_us", "Submit latency.");
  latency->Record(3);
  latency->Record(3);
  latency->Record(7);
  latency->Record(40);  // values in [32, 64) land in a bucket of width 1

  // Families sort by name; HELP/TYPE once per family; only non-empty
  // histogram buckets, cumulative, then +Inf/_sum/_count.
  EXPECT_EQ(registry.TextExposition(),
            "# HELP test_latency_us Submit latency.\n"
            "# TYPE test_latency_us histogram\n"
            "test_latency_us_bucket{le=\"3\"} 2\n"
            "test_latency_us_bucket{le=\"7\"} 3\n"
            "test_latency_us_bucket{le=\"40\"} 4\n"
            "test_latency_us_bucket{le=\"+Inf\"} 4\n"
            "test_latency_us_sum 53\n"
            "test_latency_us_count 4\n"
            "# HELP test_queue_depth Depth.\n"
            "# TYPE test_queue_depth gauge\n"
            "test_queue_depth -2\n"
            "# HELP test_requests_total Total requests.\n"
            "# TYPE test_requests_total counter\n"
            "test_requests_total{method=\"get\"} 3\n");
}

TEST(MetricsExpositionTest, EscapesLabelValuesAndHelp) {
  Registry registry;
  registry.AddCounter("test_escape_total", "line1\nline2 with \\ slash",
                      {{"path", "a\\b\"c\nd"}});
  const std::string out = registry.TextExposition();
  EXPECT_NE(out.find("# HELP test_escape_total line1\\nline2 with \\\\ slash"),
            std::string::npos);
  EXPECT_NE(out.find("test_escape_total{path=\"a\\\\b\\\"c\\nd\"} 0"),
            std::string::npos);
}

TEST(MetricsExpositionTest, SeriesSumParsesWhatWeEmit) {
  Registry registry;
  registry.AddCounter("test_sum_total", "h", {{"k", "a"}})->Add(5);
  registry.AddCounter("test_sum_total", "h", {{"k", "b"}})->Add(7);
  registry.AddCounter("test_sum_total_long", "h")->Add(100);  // shared prefix
  const std::string out = registry.TextExposition();
  bool found = false;
  EXPECT_EQ(SeriesSum(out, "test_sum_total", &found), 12.0);
  EXPECT_TRUE(found);
  SeriesSum(out, "test_absent", &found);
  EXPECT_FALSE(found);
}

// ---------------------------------------------------------------------------
// Bucket boundaries.

TEST(HistogramBucketTest, LinearRangeIsExact) {
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(Histogram::BucketFor(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBucketTest, BoundariesAroundOctaves) {
  // 32..63: still one bucket per value (first octave, 32 sub-buckets).
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketFor(32)), 32u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketFor(33)), 33u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketFor(63)), 63u);
  // 64..127: buckets of width 2; 64 and 65 share one.
  EXPECT_EQ(Histogram::BucketFor(64), Histogram::BucketFor(65));
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketFor(64)), 65u);
  EXPECT_NE(Histogram::BucketFor(65), Histogram::BucketFor(66));
}

TEST(HistogramBucketTest, EveryValueIsWithinItsBucket) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const int shift = static_cast<int>(rng() % 63);
    const std::uint64_t v = rng() >> shift;
    const int bucket = Histogram::BucketFor(v);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, Histogram::kNumBuckets);
    const std::uint64_t upper = Histogram::BucketUpperBound(bucket);
    ASSERT_LE(v, upper);
    if (bucket > 0 && bucket < Histogram::kNumBuckets - 1) {
      // The bucket below must end strictly under v (tight binning), and the
      // relative error of reporting `upper` for v is bounded by the 32
      // sub-buckets per octave: upper - v <= v/32 + 1.
      ASSERT_GT(v, Histogram::BucketUpperBound(bucket - 1));
      ASSERT_LE(upper - v, v / 32 + 1);
    }
  }
}

TEST(HistogramBucketTest, UpperBoundsAreStrictlyIncreasing) {
  // Buckets above the one holding UINT64_MAX are unreachable from
  // BucketFor; they saturate rather than overflow the shift.
  const int top =
      Histogram::BucketFor(std::numeric_limits<std::uint64_t>::max());
  ASSERT_LT(top, Histogram::kNumBuckets);
  for (int b = 1; b <= top; ++b) {
    ASSERT_GT(Histogram::BucketUpperBound(b), Histogram::BucketUpperBound(b - 1))
        << "bucket " << b;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(top),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

// ---------------------------------------------------------------------------
// Concurrent writes merge to exactly the single-threaded model. Run under
// the TSan/ASan CI matrices, this is also the data-race probe for the
// striped record path.

TEST(MetricsConcurrencyTest, HistogramMergeMatchesSingleThreadedModel) {
  Histogram hist("test_merge_us", "h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::vector<std::uint64_t>> recorded(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, &recorded, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
      recorded[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t v = rng() % 1'000'000;
        hist.Record(v);
        recorded[t].push_back(v);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // Single-threaded model of the same stream.
  std::vector<std::uint64_t> model_buckets(Histogram::kNumBuckets, 0);
  std::uint64_t model_sum = 0;
  for (const auto& values : recorded) {
    for (const std::uint64_t v : values) {
      ++model_buckets[static_cast<std::size_t>(Histogram::BucketFor(v))];
      model_sum += v;
    }
  }
  const Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, model_sum);
  EXPECT_EQ(snap.buckets, model_buckets);
}

TEST(MetricsConcurrencyTest, CountersAndGaugesUnderContention) {
  Counter counter("test_contended_total", "h");
  Gauge gauge("test_contended_depth", "h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Increment();
        gauge.Decrement();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.value(), 0);
}

// Scraping while writers are live must be safe (loose consistency is fine;
// crashing or racing is not). TSan validates the claim.
TEST(MetricsConcurrencyTest, ScrapeDuringWrites) {
  Registry registry;
  auto hist = registry.AddHistogram("test_live_us", "h");
  auto counter = registry.AddCounter("test_live_total", "h");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::uint64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        hist->Record(v++ % 100'000);
        counter->Increment();
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string out = registry.TextExposition();
    EXPECT_NE(out.find("test_live_us_count"), std::string::npos);
  }
  stop.store(true);
  for (auto& writer : writers) {
    writer.join();
  }
  const Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, counter->value());
}

// ---------------------------------------------------------------------------
// Snapshot statistics.

TEST(HistogramSnapshotTest, QuantilesMeanAndMax) {
  Histogram hist("test_quantile_us", "h");
  for (std::uint64_t v = 1; v <= 100; ++v) {
    hist.Record(v);  // 1..100, all in exact or near-exact buckets
  }
  const Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 50.5);
  // Values <= 63 have exact buckets; the p50 observation is 50.
  EXPECT_EQ(snap.Quantile(0.5), 50u);
  EXPECT_EQ(snap.Percentile(1), 1u);
  // 100 lands in the width-2 bucket [100, 101].
  EXPECT_EQ(snap.Max(), 101u);
  EXPECT_EQ(snap.Quantile(1.0), 101u);

  const Histogram::Snapshot empty = Histogram("e", "h").Snap();
  EXPECT_EQ(empty.Quantile(0.99), 0u);
  EXPECT_EQ(empty.Max(), 0u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Registry semantics.

TEST(RegistryTest, AddIsGetOrCreate) {
  Registry registry;
  auto a = registry.AddCounter("test_total", "h", {{"shard", "0"}});
  auto b = registry.AddCounter("test_total", "h", {{"shard", "0"}});
  auto c = registry.AddCounter("test_total", "h", {{"shard", "1"}});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Find("test_total", {{"shard", "1"}}).get(), c.get());
  EXPECT_EQ(registry.Find("test_total"), nullptr);
}

TEST(RegistryDeathTest, TypeMismatchAborts) {
  EXPECT_DEATH(
      {
        Registry registry;
        registry.AddCounter("test_mismatch", "h");
        registry.AddGauge("test_mismatch", "h");
      },
      "registered as counter but requested as gauge");
}

TEST(RegistryDeathTest, DuplicateRegisterAborts) {
  EXPECT_DEATH(
      {
        Registry registry;
        registry.AddCounter("test_dup", "h");
        registry.Register(std::make_shared<Counter>("test_dup", "h"));
      },
      "duplicate registration");
}

#if EUNOMIA_LOCK_RANK_CHECKS
// The registry mutex ranks at 950, between the WAL disk locks (940) and the
// leaf band: lazy registration from under a connection send lock (800) or
// the WAL writer lock (930) must pass the rank checker — that is the whole
// point of the dedicated rank.
TEST(RegistryTest, RegistrationIsLegalUnderHotPathLocks) {
  Registry registry;
  sync::Mutex send_mu{"test::conn_send", sync::kRankConnSend};
  {
    sync::MutexLock lock(send_mu);
    registry.AddCounter("test_under_conn_send_total", "h");
  }
  sync::Mutex wal_mu{"test::wal_writer", sync::kRankWalWriter};
  {
    sync::MutexLock lock(wal_mu);
    registry.AddHistogram("test_under_wal_writer_us", "h");
  }
  EXPECT_EQ(registry.size(), 2u);
}
#endif  // EUNOMIA_LOCK_RANK_CHECKS

// ---------------------------------------------------------------------------
// Scrape endpoint round trip.

TEST(MetricsServerTest, ServesMetricsAndHealthz) {
  Registry registry;
  registry.AddCounter("test_http_total", "h")->Add(42);
  MetricsServer server(&registry);
  const std::string address = server.Start("127.0.0.1:0");
  ASSERT_FALSE(address.empty());

  std::string body;
  ASSERT_TRUE(HttpGet(address, "/healthz", &body));
  EXPECT_EQ(body, "ok\n");
  ASSERT_TRUE(HttpGet(address, "/metrics", &body));
  EXPECT_EQ(body, registry.TextExposition());
  EXPECT_EQ(SeriesSum(body, "test_http_total"), 42.0);
  EXPECT_FALSE(HttpGet(address, "/nope", &body));  // 404 -> false

  server.Stop();
  EXPECT_FALSE(HttpGet(address, "/healthz", &body));
  // Stop is idempotent, and a stopped server can be destroyed safely.
  server.Stop();
}

}  // namespace
}  // namespace eunomia::metrics
