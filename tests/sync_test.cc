// Tests for the annotated locking API (src/common/sync.h): the lock-rank
// deadlock detector's abort paths (death tests), rank-exempt mutexes, and
// MutexLock RAII under early release and exceptions.
//
// The thread-safety annotations themselves are compile-time only; their
// negative test is tests/sync_negative_compile.cc, built (and required to
// FAIL to compile) by the clang job in CI.

#include "src/common/sync.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

namespace eunomia::sync {
namespace {

#if EUNOMIA_LOCK_RANK_CHECKS

using SyncDeathTest = ::testing::Test;

// Acquiring a lower-ranked mutex while holding a higher-ranked one is the
// canonical inversion: if another thread takes them in the documented order,
// the two can deadlock. The detector must abort and name both locks.
TEST(SyncDeathTest, RankInversionAborts) {
  EXPECT_DEATH(
      {
        Mutex outer("death::outer", kRankConnSend);     // rank 800
        Mutex inner("death::inner", kRankTransport);    // rank 200
        MutexLock hold(outer);
        MutexLock bad(inner);  // 200 after 800: inversion
      },
      "lock-rank violation.*death::inner.*death::outer|"
      "lock-rank violation.*death::outer.*death::inner");
}

// Equal ranks are also refused: two same-rank mutexes taken in both orders
// by two threads deadlock exactly like an inversion, so nesting within a
// rank is only legal for kRankExempt.
TEST(SyncDeathTest, EqualRankNestingAborts) {
  EXPECT_DEATH(
      {
        Mutex a("death::a", kRankLeaf);
        Mutex b("death::b", kRankLeaf);
        MutexLock hold(a);
        MutexLock bad(b);
      },
      "lock-rank violation");
}

// Unlocking a mutex the thread does not hold is always a bug (it corrupts
// the underlying std::mutex); the debug build catches it.
TEST(SyncDeathTest, ReleaseNotHeldAborts) {
  EXPECT_DEATH(
      {
        Mutex mu("death::not_held", kRankLeaf);
        mu.Unlock();
      },
      "releasing.*not held");
}

// Ascending acquisition across every band of the rank table is the sanctioned
// pattern and must pass the checker silently.
TEST(SyncTest, AscendingRanksAreAccepted) {
  Mutex lifecycle("ok::lifecycle", kRankLifecycle);
  Mutex emit("ok::emit", kRankFanoutEmit);
  Mutex conn("ok::conn", kRankConnQueue);
  Mutex leaf("ok::leaf", kRankLeaf);
  MutexLock l1(lifecycle);
  MutexLock l2(emit);
  MutexLock l3(conn);
  MutexLock l4(leaf);
}

// kRankExempt opts a mutex out of ordering entirely: it may be taken while
// holding anything, and anything may be taken while holding it. Distinct
// mutex pairs per direction — inverting one pair would trip TSan's own
// lock-order graph when the suite runs under -fsanitize=thread.
TEST(SyncTest, RankExemptMutexNestsFreely) {
  Mutex ranked_outer("ok::ranked_outer", kRankLeaf);
  Mutex exempt_inner("ok::exempt_inner", kRankExempt);
  {
    MutexLock l1(ranked_outer);
    MutexLock l2(exempt_inner);  // below-rank acquisition: fine, exempt
  }
  Mutex exempt_outer("ok::exempt_outer", kRankExempt);
  Mutex ranked_inner("ok::ranked_inner", kRankLeaf);
  {
    MutexLock l1(exempt_outer);
    MutexLock l2(ranked_inner);  // and the other way around
  }
}

// Releasing out of acquisition order (hand-over-hand style) is legal; the
// held-lock bookkeeping must tolerate popping from the middle of the stack.
TEST(SyncTest, OutOfOrderReleaseIsAccepted) {
  Mutex a("ok::a", kRankTransport);
  Mutex b("ok::b", kRankLeaf);
  a.Lock();
  b.Lock();
  a.Unlock();  // released before b, though acquired before it
  b.Unlock();
}

#endif  // EUNOMIA_LOCK_RANK_CHECKS

TEST(SyncTest, MutexLockReleasesOnException) {
  Mutex mu("ok::exception", kRankLeaf);
  try {
    MutexLock lock(mu);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  // If the guard leaked the lock this TryLock would fail (and the later
  // destructor would abort the process).
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, MutexLockEarlyUnlock) {
  Mutex mu("ok::early", kRankLeaf);
  MutexLock lock(mu);
  lock.Unlock();
  // The mutex is free again; the guard's destructor must not release twice.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, TryLockContended) {
  Mutex mu("ok::contended", kRankLeaf);
  mu.Lock();
  std::thread other([&mu] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
}

TEST(SyncTest, CondVarWakesWaiter) {
  Mutex mu("ok::cv", kRankLeaf);
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mu("ok::cv_timeout", kRankLeaf);
  CondVar cv;
  MutexLock lock(mu);
  const auto status = cv.WaitFor(mu, std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
}

// The rank stack is per thread: two threads may hold same-rank (or
// descending-rank) mutexes simultaneously without tripping the detector,
// because the hazard it guards against is ordering within one thread.
TEST(SyncTest, RankStackIsPerThread) {
  Mutex a("ok::thread_a", kRankLeaf);
  Mutex b("ok::thread_b", kRankLeaf);
  MutexLock hold(a);
  std::thread other([&b] {
    MutexLock lock(b);  // same rank as a, but a different thread holds a
  });
  other.join();
}

}  // namespace
}  // namespace eunomia::sync
