// Negative-compile checks for the thread-safety annotations. This file must
// FAIL to compile under clang with -Werror=thread-safety-analysis when
// EUNOMIA_NEGATIVE_COMPILE is defined; CI builds it and asserts the failure
// (scripts/check_analysis.sh, "negative-compile" step). Without the macro it
// compiles to an empty TU so stray builds of the target stay harmless.
//
// Each case is a distinct macro so the driver can probe them one at a time:
//   EUNOMIA_NEGATIVE_COMPILE=1  unguarded write to a GUARDED_BY field
//   EUNOMIA_NEGATIVE_COMPILE=2  calling a REQUIRES method without the lock
//   EUNOMIA_NEGATIVE_COMPILE=3  double-acquire of a non-reentrant Mutex
//   EUNOMIA_NEGATIVE_COMPILE=4  unguarded read of the metrics-registry list

#include "src/common/sync.h"

#ifdef EUNOMIA_NEGATIVE_COMPILE

namespace eunomia::sync {
namespace {

struct Counter {
  Mutex mu{"negative::mu", kRankLeaf};
  int value GUARDED_BY(mu) = 0;

  void Bump() REQUIRES(mu) { ++value; }
};

#if EUNOMIA_NEGATIVE_COMPILE == 1
void UnguardedWrite(Counter& c) {
  c.value = 7;  // no lock held: -Wthread-safety must reject this
}
#elif EUNOMIA_NEGATIVE_COMPILE == 2
void RequiresWithoutLock(Counter& c) {
  c.Bump();  // REQUIRES(mu) but mu is not held
}
#elif EUNOMIA_NEGATIVE_COMPILE == 3
void DoubleAcquire(Counter& c) {
  MutexLock a(c.mu);
  c.mu.Lock();  // acquiring a capability already held
  c.mu.Unlock();
}
#elif EUNOMIA_NEGATIVE_COMPILE == 4
// Mirrors the shape of metrics::Registry: a catalogue guarded by a
// kRankMetricsRegistry mutex. Scrape paths must hold the lock to walk it.
struct MiniRegistry {
  Mutex mu{"negative::registry_mu", kRankMetricsRegistry};
  int entries GUARDED_BY(mu) = 0;
};

int UnguardedScrape(MiniRegistry& r) {
  return r.entries;  // reading the catalogue without the registry lock
}
#else
#error "EUNOMIA_NEGATIVE_COMPILE must be 1, 2, 3, or 4"
#endif

}  // namespace
}  // namespace eunomia::sync

#endif  // EUNOMIA_NEGATIVE_COMPILE
