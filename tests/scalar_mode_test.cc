// Tests for the scalar-metadata variant of EunomiaKV (§4's "we could easily
// adapt our protocols to use a single scalar") and the receiver's
// frontier-beacon machinery that makes it live.
#include <gtest/gtest.h>

#include <vector>

#include "src/georep/eunomiakv.h"
#include "src/georep/receiver.h"
#include "src/workload/workload.h"

namespace eunomia::geo {
namespace {

RemoteUpdate ScalarUpdate(std::uint64_t uid, DatacenterId origin, Timestamp ts,
                          std::uint32_t num_dcs) {
  VectorTimestamp vts(num_dcs);
  for (DatacenterId d = 0; d < num_dcs; ++d) {
    vts[d] = ts;  // scalar mode: every entry is the update's own timestamp
  }
  return RemoteUpdate{uid, uid, vts, origin, 0};
}

struct SyncApplier {
  std::vector<std::uint64_t> applied;
  Receiver::ApplyFn fn() {
    return [this](const RemoteUpdate& u, std::function<void()> done) {
      applied.push_back(u.uid);
      done();
    };
  }
};

TEST(ScalarReceiverTest, BlocksUntilFrontierCoversTimestamp) {
  SyncApplier applier;
  Receiver receiver(/*self=*/0, /*num_dcs=*/3, applier.fn(), /*scalar=*/true);
  // Update from dc1 at ts=100: needs dc2's frontier >= 100.
  receiver.OnRemoteUpdate(ScalarUpdate(1, 1, 100, 3));
  EXPECT_TRUE(applier.applied.empty());
  receiver.OnFrontier(2, 99);
  EXPECT_TRUE(applier.applied.empty());
  receiver.OnFrontier(2, 100);
  EXPECT_EQ(applier.applied, (std::vector<std::uint64_t>{1}));
}

TEST(ScalarReceiverTest, QueuedOlderUpdateFromThirdDcBlocks) {
  // dc2's frontier covers ts=100, but an unapplied dc2 update with ts=90 is
  // still queued: the dc1 update must wait for it.
  SyncApplier applier;
  Receiver receiver(0, 3, applier.fn(), true);
  receiver.OnFrontier(1, 1000);
  receiver.OnFrontier(2, 1000);
  // Hold dc2's ts=90 update hostage: it depends on dc1's frontier... which
  // is already 1000, so to keep it queued we use an async applier instead.
  std::vector<std::pair<RemoteUpdate, std::function<void()>>> inflight;
  Receiver async_receiver(0, 3,
                          [&](const RemoteUpdate& u, std::function<void()> done) {
                            inflight.emplace_back(u, std::move(done));
                          },
                          true);
  async_receiver.OnFrontier(1, 1000);
  async_receiver.OnFrontier(2, 1000);
  async_receiver.OnRemoteUpdate(ScalarUpdate(7, 2, 90, 3));   // in flight
  async_receiver.OnRemoteUpdate(ScalarUpdate(8, 1, 100, 3));  // must wait
  ASSERT_EQ(inflight.size(), 1u);
  EXPECT_EQ(inflight[0].first.uid, 7u);
  inflight[0].second();  // dc2's 90 applies
  ASSERT_EQ(inflight.size(), 2u);
  EXPECT_EQ(inflight[1].first.uid, 8u);
}

TEST(ScalarReceiverTest, FrontierAloneNeverAppliesWithoutQueueDrain) {
  // A "covered" frontier with the matching update still queued behind an
  // in-flight one must not leapfrog.
  std::vector<std::pair<RemoteUpdate, std::function<void()>>> inflight;
  Receiver receiver(0, 2,
                    [&](const RemoteUpdate& u, std::function<void()> done) {
                      inflight.emplace_back(u, std::move(done));
                    },
                    true);
  receiver.OnRemoteUpdate(ScalarUpdate(1, 1, 10, 2));
  receiver.OnRemoteUpdate(ScalarUpdate(2, 1, 20, 2));
  ASSERT_EQ(inflight.size(), 1u);  // FIFO: one in flight per origin
  receiver.OnFrontier(1, 100);
  EXPECT_EQ(inflight.size(), 1u);
  inflight[0].second();
  ASSERT_EQ(inflight.size(), 2u);
  inflight[1].second();
  EXPECT_EQ(receiver.site_time()[1], 20u);
}

// End-to-end: the scalar variant still provides causal consistency and
// liveness — it is just slower on near legs.
TEST(ScalarEunomiaKvTest, UpdatesBecomeVisibleAndInOrder) {
  geo::GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  config.scalar_metadata = true;
  sim::Simulator sim(21);
  EunomiaKvSystem system(&sim, config);
  system.tracker().EnableDetailedLog();

  // A causal chain from one client.
  int completed = 0;
  std::function<void(int)> issue = [&](int i) {
    if (i >= 15) {
      return;
    }
    system.ClientUpdate(1, 0, static_cast<Key>(i), "v", [&, i] {
      ++completed;
      issue(i + 1);
    });
  };
  // Background traffic from the other DCs so frontiers advance... not even
  // needed: the stabilizer broadcasts beacons when idle.
  issue(0);
  sim.RunUntil(10 * sim::kSecond);
  ASSERT_EQ(completed, 15);

  for (DatacenterId d = 1; d < 3; ++d) {
    std::optional<std::uint64_t> prev;
    for (std::uint64_t uid = 0; uid < 15; ++uid) {
      const auto t = system.tracker().VisibleAt(uid, d);
      ASSERT_TRUE(t.has_value()) << "uid " << uid << " stuck at dc" << d;
      if (prev) {
        EXPECT_GE(*t, *prev) << "causal chain reordered";
      }
      prev = t;
    }
  }
}

TEST(ScalarEunomiaKvTest, NearLegPaysFarthestLegDelay) {
  geo::GeoConfig config;
  auto measure = [&](bool scalar) {
    config.scalar_metadata = scalar;
    sim::Simulator sim(22);
    EunomiaKvSystem system(&sim, config);
    wl::WorkloadConfig workload;
    workload.update_fraction = 0.2;
    workload.clients_per_dc = 6;
    workload.duration_us = 6 * sim::kSecond;
    wl::WorkloadDriver driver(&sim, &system, workload, config.num_dcs);
    driver.Start();
    sim.RunUntil(workload.duration_us);
    driver.Stop();
    sim.RunUntil(workload.duration_us + 2 * sim::kSecond);
    const Cdf* vis = system.tracker().Visibility(0, 1);  // 40 ms leg
    return vis != nullptr && vis->count() > 0 ? vis->Quantile(0.5) : -1.0;
  };
  const double vector_ms = measure(false) / 1000.0;
  const double scalar_ms = measure(true) / 1000.0;
  ASSERT_GT(vector_ms, 0.0);
  ASSERT_GT(scalar_ms, 0.0);
  // Vector: a few ms of added delay. Scalar: dragged to the farthest leg
  // (80 - 40 = ~40 ms extra).
  EXPECT_LT(vector_ms, 15.0);
  EXPECT_GT(scalar_ms, 30.0);
}

}  // namespace
}  // namespace eunomia::geo
