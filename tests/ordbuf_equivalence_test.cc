// Pins the semantics of the ordered-buffer fast path: an EunomiaCore backed
// by PartitionRunBuffer (and by AvlBuffer) must emit a bit-for-bit identical
// sequence to the paper's red-black-tree core under randomized workloads —
// skewed partitions, heartbeat-only partitions, duplicate/non-monotone
// drops, ForceExtractUpTo — and the backend choice must thread through the
// native services unchanged.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/eunomia/core.h"
#include "src/eunomia/service.h"
#include "src/ordbuf/ordered_buffer.h"

namespace eunomia {
namespace {

constexpr ordbuf::Backend kAllBackends[] = {
    ordbuf::Backend::kRbTree, ordbuf::Backend::kAvl,
    ordbuf::Backend::kPartitionRun};

void ExpectSameObservableState(const EunomiaCore& reference,
                               const EunomiaCore& candidate) {
  ASSERT_EQ(reference.pending_ops(), candidate.pending_ops());
  ASSERT_EQ(reference.StableTime(), candidate.StableTime());
  ASSERT_EQ(reference.last_emitted(), candidate.last_emitted());
  ASSERT_EQ(reference.ops_received(), candidate.ops_received());
  ASSERT_EQ(reference.ops_emitted(), candidate.ops_emitted());
  ASSERT_EQ(reference.monotonicity_violations(),
            candidate.monotonicity_violations());
  for (PartitionId p = reference.first_partition();
       p < reference.first_partition() + reference.num_partitions(); ++p) {
    ASSERT_EQ(reference.partition_time(p), candidate.partition_time(p));
  }
}

// The equivalence property test of the tentpole: drive one core per backend
// through an identical randomized interleaving and require every emission —
// ProcessStable and ForceExtractUpTo alike — to match the rbtree core
// exactly, op for op, byte for byte.
TEST(OrderedBufferEquivalenceTest, EmissionIsBitForBitIdenticalAcrossBackends) {
  Rng rng(0xE0B0F);
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint32_t partitions =
        1 + static_cast<std::uint32_t>(rng.NextBounded(10));
    const std::uint32_t first_partition =
        static_cast<std::uint32_t>(rng.NextBounded(3)) * 16;
    EunomiaCore rbtree(partitions, first_partition, ordbuf::Backend::kRbTree);
    EunomiaCore avl(partitions, first_partition, ordbuf::Backend::kAvl);
    EunomiaCore runs(partitions, first_partition,
                     ordbuf::Backend::kPartitionRun);
    EunomiaCore* cores[] = {&rbtree, &avl, &runs};

    // A random subset of partitions is heartbeat-only: their streams move
    // PartitionTime without ever buffering ops (idle partitions, §3.2).
    std::vector<bool> heartbeat_only(partitions);
    for (std::uint32_t p = 0; p < partitions; ++p) {
      heartbeat_only[p] = rng.NextBool(0.25);
    }
    std::vector<Timestamp> next(partitions, 0);
    std::uint64_t tag = 0;

    for (int step = 0; step < 600; ++step) {
      // Skewed partition pick: min of two uniforms biases toward partition 0.
      const auto local_p = static_cast<std::uint32_t>(
          std::min(rng.NextBounded(partitions), rng.NextBounded(partitions)));
      const PartitionId p = first_partition + local_p;
      const int action = static_cast<int>(rng.NextBounded(100));
      if (action < 55) {
        // A timestamp-ordered batch, optionally poisoned with duplicate and
        // regressing timestamps that every backend must drop identically.
        std::vector<OpRecord> batch;
        const std::uint64_t n = 1 + rng.NextBounded(24);
        for (std::uint64_t i = 0; i < n; ++i) {
          if (!batch.empty() && rng.NextBool(0.1)) {
            OpRecord dup = batch.back();  // duplicate: ts <= PartitionTime
            dup.tag = ++tag;
            batch.push_back(dup);
            continue;
          }
          next[local_p] += 1 + rng.NextBounded(40);
          batch.push_back(OpRecord{next[local_p], p, rng.NextBounded(1000), ++tag});
        }
        if (heartbeat_only[local_p]) {
          for (EunomiaCore* core : cores) {
            core->Heartbeat(p, next[local_p]);
          }
        } else {
          const std::size_t accepted = rbtree.AddBatch(batch);
          ASSERT_EQ(avl.AddBatch(batch), accepted);
          ASSERT_EQ(runs.AddBatch(batch), accepted);
        }
      } else if (action < 75) {
        next[local_p] += rng.NextBounded(60);
        for (EunomiaCore* core : cores) {
          core->Heartbeat(p, next[local_p]);
        }
      } else if (action < 90) {
        std::vector<OpRecord> expect;
        const std::size_t n = rbtree.ProcessStable(&expect);
        for (EunomiaCore* core : {&avl, &runs}) {
          std::vector<OpRecord> got;
          ASSERT_EQ(core->ProcessStable(&got), n);
          ASSERT_EQ(got, expect) << "trial " << trial << " step " << step;
        }
      } else {
        // The follower path: the (simulated) leader's notice may exceed the
        // local StableTime — it extracts past silent partitions.
        const Timestamp bound =
            rbtree.StableTime() + rng.NextBounded(2000);
        std::vector<OpRecord> expect;
        const std::size_t n = rbtree.ForceExtractUpTo(bound, &expect);
        for (EunomiaCore* core : {&avl, &runs}) {
          std::vector<OpRecord> got;
          ASSERT_EQ(core->ForceExtractUpTo(bound, &got), n);
          ASSERT_EQ(got, expect) << "trial " << trial << " step " << step;
        }
      }
      ExpectSameObservableState(rbtree, avl);
      ExpectSameObservableState(rbtree, runs);
    }

    // Drain completely and require the final emissions to agree too.
    for (std::uint32_t lp = 0; lp < partitions; ++lp) {
      for (EunomiaCore* core : cores) {
        core->Heartbeat(first_partition + lp, next[lp] + 1'000'000);
      }
    }
    std::vector<OpRecord> expect;
    rbtree.ProcessStable(&expect);
    for (EunomiaCore* core : {&avl, &runs}) {
      std::vector<OpRecord> got;
      core->ProcessStable(&got);
      ASSERT_EQ(got, expect);
      ASSERT_EQ(core->pending_ops(), 0u);
    }
  }
}

// Options::buffer_backend must reach the shard cores: the single-shard
// service emits the same stable sequence whatever the backend.
TEST(OrderedBufferEquivalenceTest, ServiceEmitsIdenticalSequencePerBackend) {
  constexpr std::uint32_t kPartitions = 6;
  constexpr std::uint64_t kOpsPerPartition = 400;
  std::vector<std::vector<OpRecord>> emissions;
  for (const ordbuf::Backend backend : kAllBackends) {
    EunomiaService::Options options;
    options.num_partitions = kPartitions;
    options.num_shards = 1;
    options.stable_period_us = 100;
    options.buffer_backend = backend;
    std::vector<OpRecord> emitted;
    options.sink = [&emitted](const std::vector<OpRecord>& batch) {
      emitted.insert(emitted.end(), batch.begin(), batch.end());
    };
    EunomiaService service(options);
    service.Start();
    for (std::uint64_t i = 0; i < kOpsPerPartition; ++i) {
      for (PartitionId p = 0; p < kPartitions; ++p) {
        std::vector<OpRecord> batch = service.AcquireBatchBuffer();
        batch.push_back(OpRecord{(i + 1) * 10 + p, p, p, i});
        service.SubmitBatch(p, std::move(batch));
      }
    }
    for (PartitionId p = 0; p < kPartitions; ++p) {
      service.Heartbeat(p, kOpsPerPartition * 10 + 1000);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service.ops_stabilized() < kOpsPerPartition * kPartitions &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    service.Stop();
    ASSERT_EQ(emitted.size(), kOpsPerPartition * kPartitions)
        << "backend " << ordbuf::BackendName(backend);
    emissions.push_back(std::move(emitted));
  }
  EXPECT_EQ(emissions[0], emissions[1]);
  EXPECT_EQ(emissions[0], emissions[2]);
}

// Options::buffer_backend must reach the FT replicas, and the shared-batch
// fan-out must keep acking per partition.
TEST(OrderedBufferEquivalenceTest, FtServiceStabilizesOnEveryBackend) {
  for (const ordbuf::Backend backend : kAllBackends) {
    FtEunomiaService::Options options;
    options.num_partitions = 3;
    options.num_replicas = 3;
    options.stable_period_us = 200;
    options.buffer_backend = backend;
    std::atomic<std::uint64_t> emitted{0};
    options.sink = [&emitted](const std::vector<OpRecord>& batch) {
      emitted.fetch_add(batch.size());
    };
    FtEunomiaService service(options);
    service.Start();
    constexpr std::uint64_t kOps = 200;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      for (PartitionId p = 0; p < 3; ++p) {
        service.SubmitBatch(p, {OpRecord{(i + 1) * 5 + p, p, 0, i}});
      }
    }
    for (PartitionId p = 0; p < 3; ++p) {
      service.Heartbeat(p, kOps * 5 + 100);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service.ops_stabilized() < kOps * 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    service.Stop();
    EXPECT_EQ(service.ops_stabilized(), kOps * 3)
        << "backend " << ordbuf::BackendName(backend);
    // The leader must have ingested (and cumulatively acked) every batch to
    // have emitted the full stream. Followers may be mid-drain at Stop, so
    // only the leader's frontier is exact.
    for (PartitionId p = 0; p < 3; ++p) {
      EXPECT_EQ(service.AckOf(0, p), kOps * 5 + p);
    }
  }
}

}  // namespace
}  // namespace eunomia
