// Tests for the wire format (src/net/wire.h): typed round-trips, a
// randomized property test over OpRecord batches with arbitrary stream
// chunking, and the rejection matrix — corrupt, truncated, oversized and
// out-of-sequence frames must surface as typed errors, never as crashes or
// silently wrong data.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/net/wire.h"

namespace eunomia::net::wire {
namespace {

std::string EncodeOneFrame(MsgType type, std::uint64_t seq,
                           const std::string& payload) {
  std::string bytes;
  EncodeFrame(type, seq, payload, &bytes);
  return bytes;
}

// An owning copy of a decoded frame — Frame::payload is a view into the
// decoder's input, so a helper that outlives the input must copy it.
struct OwnedFrame {
  MsgType type = MsgType::kHello;
  std::uint64_t seq = 0;
  std::string payload;
};

// Feeds `bytes` to a fresh decoder in one call and expects exactly one
// well-formed frame.
OwnedFrame DecodeOneFrame(const std::string& bytes) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_TRUE(decoder.Feed(bytes.data(), bytes.size(), &frames));
  EXPECT_EQ(frames.size(), 1u);
  EXPECT_FALSE(decoder.mid_frame());
  if (frames.empty()) {
    return OwnedFrame{};
  }
  return OwnedFrame{frames.front().type, frames.front().seq,
                    std::string(frames.front().payload)};
}

std::vector<OpRecord> RandomOps(Rng& rng, std::uint32_t count) {
  std::vector<OpRecord> ops;
  ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ops.push_back(OpRecord{rng.Next(), static_cast<PartitionId>(rng.NextBounded(64)),
                           rng.Next(), rng.Next()});
  }
  return ops;
}

TEST(WireTest, HelloRoundTrip) {
  HelloMsg in;
  in.num_partitions = 42;
  const OwnedFrame frame =
      DecodeOneFrame(EncodeOneFrame(MsgType::kHello, 0, EncodeHello(in)));
  EXPECT_EQ(frame.type, MsgType::kHello);
  HelloMsg out;
  ASSERT_TRUE(DecodeHello(frame.payload, &out));
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_EQ(out.num_partitions, 42u);
}

TEST(WireTest, HeartbeatAndAcksRoundTrip) {
  HeartbeatMsg hb{7, 123456789};
  HeartbeatMsg hb_out;
  ASSERT_TRUE(DecodeHeartbeat(EncodeHeartbeat(hb), &hb_out));
  EXPECT_EQ(hb_out.partition, 7u);
  EXPECT_EQ(hb_out.ts, 123456789u);

  SubmitAckMsg ack{999};
  SubmitAckMsg ack_out;
  ASSERT_TRUE(DecodeSubmitAck(EncodeSubmitAck(ack), &ack_out));
  EXPECT_EQ(ack_out.ops_received, 999u);

  SubscribeAckMsg sub{17};
  SubscribeAckMsg sub_out;
  ASSERT_TRUE(DecodeSubscribeAck(EncodeSubscribeAck(sub), &sub_out));
  EXPECT_EQ(sub_out.next_stream_seq, 17u);
}

TEST(WireTest, SubmitBatchRoundTripEmptyBatch) {
  SubmitBatchMsg out;
  ASSERT_TRUE(DecodeSubmitBatch(EncodeSubmitBatch(3, {}), &out));
  EXPECT_EQ(out.partition, 3u);
  EXPECT_TRUE(out.ops.empty());
}

// The randomized property: arbitrary batches encoded as a frame stream and
// fed back in random chunk sizes reproduce the exact ops, in order,
// regardless of how the byte stream is split (TCP promises no boundaries).
TEST(WireTest, RandomizedBatchesSurviveArbitraryChunking) {
  Rng rng(20260729);
  for (int round = 0; round < 20; ++round) {
    std::string stream;
    std::vector<SubmitBatchMsg> sent;
    std::uint64_t seq = 0;
    const int num_frames = 1 + static_cast<int>(rng.NextBounded(30));
    for (int f = 0; f < num_frames; ++f) {
      SubmitBatchMsg msg;
      msg.partition = static_cast<PartitionId>(rng.NextBounded(64));
      msg.ops = RandomOps(rng, static_cast<std::uint32_t>(rng.NextBounded(200)));
      EncodeFrame(MsgType::kSubmitBatch, seq++,
                  EncodeSubmitBatch(msg.partition, msg.ops), &stream);
      sent.push_back(std::move(msg));
    }
    FrameDecoder decoder;
    std::vector<Frame> frames;
    std::vector<std::uint64_t> seqs;
    std::vector<SubmitBatchMsg> got_msgs;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.NextBounded(977), stream.size() - pos);
      ASSERT_TRUE(decoder.Feed(stream.data() + pos, chunk, &frames));
      // Payload views are valid only until the next Feed — consume each
      // delivery immediately, as a real transport handler does.
      for (const Frame& frame : frames) {
        seqs.push_back(frame.seq);
        SubmitBatchMsg got;
        ASSERT_TRUE(DecodeSubmitBatch(frame.payload, &got));
        got_msgs.push_back(std::move(got));
      }
      frames.clear();
      pos += chunk;
    }
    EXPECT_FALSE(decoder.mid_frame());
    ASSERT_EQ(got_msgs.size(), sent.size());
    for (std::size_t i = 0; i < got_msgs.size(); ++i) {
      EXPECT_EQ(seqs[i], i);
      EXPECT_EQ(got_msgs[i].partition, sent[i].partition);
      ASSERT_EQ(got_msgs[i].ops.size(), sent[i].ops.size());
      EXPECT_EQ(got_msgs[i].ops, sent[i].ops);
    }
  }
}

TEST(WireTest, StableBatchRoundTrip) {
  Rng rng(7);
  const std::vector<OpRecord> ops = RandomOps(rng, 50);
  StableBatchMsg out;
  ASSERT_TRUE(DecodeStableBatch(EncodeStableBatch(11, ops), &out));
  EXPECT_EQ(out.stream_seq, 11u);
  EXPECT_EQ(out.ops, ops);
}

// --- rejection matrix --------------------------------------------------------

TEST(WireTest, CorruptPayloadByteFailsChecksum) {
  Rng rng(13);
  std::string bytes = EncodeOneFrame(MsgType::kSubmitBatch, 0,
                                     EncodeSubmitBatch(1, RandomOps(rng, 20)));
  bytes[kHeaderBytes + 5] ^= 0x40;  // flip one payload bit
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(bytes.data(), bytes.size(), &frames));
  EXPECT_EQ(decoder.error(), WireError::kBadChecksum);
  EXPECT_TRUE(frames.empty());
  // Poisoned: even a valid frame is rejected afterwards.
  const std::string good = EncodeOneFrame(MsgType::kHeartbeat, 0,
                                          EncodeHeartbeat({0, 1}));
  EXPECT_FALSE(decoder.Feed(good.data(), good.size(), &frames));
}

TEST(WireTest, BadMagicRejected) {
  std::string bytes = EncodeOneFrame(MsgType::kHeartbeat, 0,
                                     EncodeHeartbeat({0, 1}));
  bytes[0] = 'X';
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(bytes.data(), bytes.size(), &frames));
  EXPECT_EQ(decoder.error(), WireError::kBadMagic);
}

TEST(WireTest, WrongVersionRejected) {
  std::string bytes = EncodeOneFrame(MsgType::kHeartbeat, 0,
                                     EncodeHeartbeat({0, 1}));
  bytes[4] = static_cast<char>(kProtocolVersion + 1);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(bytes.data(), bytes.size(), &frames));
  EXPECT_EQ(decoder.error(), WireError::kBadVersion);
}

TEST(WireTest, UnknownTypeRejected) {
  std::string bytes = EncodeOneFrame(MsgType::kHeartbeat, 0,
                                     EncodeHeartbeat({0, 1}));
  bytes[5] = static_cast<char>(0x7f);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(bytes.data(), bytes.size(), &frames));
  EXPECT_EQ(decoder.error(), WireError::kBadType);
}

TEST(WireTest, OversizedLengthPrefixRejectedBeforeBuffering) {
  // A header whose length prefix exceeds the cap must error immediately —
  // no waiting for (or allocating) gigabytes that will never arrive.
  std::string bytes = EncodeOneFrame(MsgType::kHeartbeat, 0,
                                     EncodeHeartbeat({0, 1}));
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(&bytes[8], &huge, sizeof(huge));  // little-endian host assumed ok:
  // the test builds the corrupt length with memcpy of a host int; on the
  // (little-endian) CI/dev targets this matches the wire byte order.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(bytes.data(), kHeaderBytes, &frames));
  EXPECT_EQ(decoder.error(), WireError::kOversizedPayload);
}

TEST(WireTest, ShortReadLeavesDecoderMidFrame) {
  const std::string bytes = EncodeOneFrame(
      MsgType::kSubmitBatch, 0, EncodeSubmitBatch(1, {OpRecord{1, 1, 0, 0}}));
  FrameDecoder decoder;
  std::vector<Frame> frames;
  // Feed everything but the last byte: no frame, no error, mid-frame state
  // (which the transports report as kTruncated when the stream ends here).
  ASSERT_TRUE(decoder.Feed(bytes.data(), bytes.size() - 1, &frames));
  EXPECT_TRUE(frames.empty());
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_EQ(decoder.error(), WireError::kNone);
  // The missing byte completes the frame.
  ASSERT_TRUE(decoder.Feed(bytes.data() + bytes.size() - 1, 1, &frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(WireTest, SequenceGapRejected) {
  std::string stream;
  EncodeFrame(MsgType::kHeartbeat, 0, EncodeHeartbeat({0, 1}), &stream);
  EncodeFrame(MsgType::kHeartbeat, 2, EncodeHeartbeat({0, 2}), &stream);  // gap
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(stream.data(), stream.size(), &frames));
  EXPECT_EQ(decoder.error(), WireError::kBadSequence);
  // The in-order prefix was still delivered.
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].seq, 0u);
}

TEST(WireTest, DuplicateSequenceRejected) {
  std::string stream;
  EncodeFrame(MsgType::kHeartbeat, 0, EncodeHeartbeat({0, 1}), &stream);
  EncodeFrame(MsgType::kHeartbeat, 0, EncodeHeartbeat({0, 2}), &stream);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.Feed(stream.data(), stream.size(), &frames));
  EXPECT_EQ(decoder.error(), WireError::kBadSequence);
}

TEST(WireTest, MalformedPayloadsRejectedNotCrashing) {
  // Truncated / padded payloads for every typed decoder.
  HeartbeatMsg hb;
  EXPECT_FALSE(DecodeHeartbeat("", &hb));
  EXPECT_FALSE(DecodeHeartbeat("short", &hb));
  EXPECT_FALSE(DecodeHeartbeat(EncodeHeartbeat({0, 1}) + "x", &hb));

  SubmitBatchMsg sb;
  EXPECT_FALSE(DecodeSubmitBatch("", &sb));
  // Count says 2 ops but only one op's bytes follow.
  std::string payload = EncodeSubmitBatch(1, {OpRecord{1, 1, 2, 3}});
  payload[4] = 2;  // count field (u32 LE at offset 4)
  EXPECT_FALSE(DecodeSubmitBatch(payload, &sb));
  // Trailing junk after the declared ops.
  EXPECT_FALSE(DecodeSubmitBatch(
      EncodeSubmitBatch(1, {OpRecord{1, 1, 2, 3}}) + "junk", &sb));

  StableBatchMsg st;
  EXPECT_FALSE(DecodeStableBatch("", &st));
  HelloMsg hello;
  EXPECT_FALSE(DecodeHello("abc", &hello));
}

// The frame-body builders (header hole + payload, finalized in place) must
// be byte-for-byte what EncodeFrame produces from the payload encoders —
// the copy-free send path may not change a single wire byte.
TEST(WireTest, FrameBodyBuildersMatchEncodeFrame) {
  Rng rng(99);
  const std::vector<OpRecord> ops = RandomOps(rng, 37);

  std::string submit_frame = EncodeSubmitBatchFrame(5, ops.data(), ops.size());
  FinalizeFrameHeader(MsgType::kSubmitBatch, 123, &submit_frame);
  std::string submit_expected;
  EncodeFrame(MsgType::kSubmitBatch, 123, EncodeSubmitBatch(5, ops),
              &submit_expected);
  EXPECT_EQ(submit_frame, submit_expected);

  std::string stable_frame = EncodeStableBatchFrame(42, ops.data(), ops.size());
  FinalizeFrameHeader(MsgType::kStableBatch, 7, &stable_frame);
  std::string stable_expected;
  EncodeFrame(MsgType::kStableBatch, 7, EncodeStableBatch(42, ops),
              &stable_expected);
  EXPECT_EQ(stable_frame, stable_expected);
}

TEST(WireTest, CrcMatchesKnownVector) {
  // The zlib CRC-32 of "123456789" is the classic 0xCBF43926 check value —
  // pins the polynomial and bit order against accidental change.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace eunomia::net::wire
