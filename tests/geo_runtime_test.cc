// Tests for the transport-agnostic geo-replication runtime
// (src/georep/runtime/):
//
//   1. Sim-binding equivalence: the refactored runtime under
//      rt::SimGeoEnvironment reproduces the pre-refactor monolithic
//      EunomiaKvSystem bit-for-bit for a fixed seed. The golden numbers
//      below were captured from the pre-extraction implementation (PR 4
//      tree) running the exact scenario in this file — including the
//      simulator's executed-event count, which pins the entire event
//      sequence, and an order-insensitive store digest, which pins the
//      replicated contents.
//   2. Receiver edge cases at the runtime seam — duplicate, reordered
//      (causally inverted), and gap-delayed cross-DC deliveries
//      (Algorithm 5) — under BOTH bindings: the simulator environment and
//      a real GeoNode fed frames by a fake peer over a transport.
//   3. The real-transport end-to-end: a 3-datacenter deployment over TCP
//      sockets where a remote update becomes visible only once both its
//      payload and the receiver's go-ahead arrived, and causal chains stay
//      ordered.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/georep/eunomiakv.h"
#include "src/georep/runtime/datacenter_runtime.h"
#include "src/georep/runtime/environment.h"
#include "src/georep/runtime/geo_node.h"
#include "src/georep/runtime/geo_wire.h"
#include "src/georep/runtime/sim_env.h"
#include "src/net/loopback_transport.h"
#include "src/net/tcp_transport.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

using geo::GeoConfig;
using geo::RemotePayload;
using geo::RemoteUpdate;
using geo::VectorTimestamp;
namespace gw = geo::rt::wire;
namespace nw = net::wire;

// ---------------------------------------------------------------------------
// 1. Sim-binding equivalence (pinned pre-refactor goldens)
// ---------------------------------------------------------------------------

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

// Order-insensitive digest of one datacenter's replicated contents (keys
// iterated in sorted order, hashing key, vector timestamp and origin).
std::uint64_t StoreDigest(const geo::EunomiaKvSystem& system, DatacenterId dc,
                          std::uint32_t partitions, std::size_t* out_size) {
  std::map<Key, const geo::GeoVersion*> sorted;
  for (PartitionId p = 0; p < partitions; ++p) {
    system.StoreAt(dc, p).ForEach(
        [&](Key k, const geo::GeoVersion& v) { sorted[k] = &v; });
  }
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& [k, v] : sorted) {
    h = FnvMix(h, k);
    for (const Timestamp t : v->vts.entries()) {
      h = FnvMix(h, t);
    }
    h = FnvMix(h, v->origin);
  }
  *out_size = sorted.size();
  return h;
}

struct GoldenRun {
  sim::Simulator sim;
  geo::EunomiaKvSystem system;
  std::uint64_t measure_from = 0;
  std::uint64_t measure_to = 0;

  static GeoConfig Config(bool scalar) {
    GeoConfig config;
    config.num_dcs = 3;
    config.partitions_per_dc = 4;
    config.servers_per_dc = 2;
    config.scalar_metadata = scalar;
    return config;
  }

  explicit GoldenRun(bool scalar) : sim(1234), system(&sim, Config(scalar)) {
    wl::WorkloadConfig workload;
    workload.num_keys = 500;
    workload.update_fraction = 0.3;
    workload.clients_per_dc = 6;
    workload.duration_us = 3 * sim::kSecond;
    workload.warmup_us = 500 * sim::kMillisecond;
    workload.cooldown_us = 500 * sim::kMillisecond;
    workload.seed = 1234;
    wl::WorkloadDriver driver(&sim, &system, workload, 3);
    driver.Start();
    sim.RunUntil(workload.duration_us);
    driver.Stop();
    sim.RunUntil(workload.duration_us + 5 * sim::kSecond);
    measure_from = driver.measure_from_us();
    measure_to = driver.measure_to_us();
  }
};

TEST(GeoRuntimeSimEquivalence, MatchesPreRefactorGoldenVectorMode) {
  GoldenRun run(/*scalar=*/false);
  const auto& tracker = run.system.tracker();
  EXPECT_EQ(tracker.reads_completed(), 12387u);
  EXPECT_EQ(tracker.updates_completed(), 5265u);
  EXPECT_DOUBLE_EQ(tracker.Throughput(run.measure_from, run.measure_to),
                   5882.5);
  // The strongest pin: the total number of simulator events executed. Any
  // divergence in scheduling, messaging, or cost charging changes this.
  EXPECT_EQ(run.sim.executed_events(), 353376u);
  EXPECT_EQ(tracker.PendingArrivals(), 0u);
  EXPECT_EQ(tracker.TrackedInstalls(), 0u);

  const std::array<std::uint64_t, 3> applied = {3529, 3477, 3524};
  const std::array<std::uint64_t, 3> emitted = {1736, 1788, 1741};
  for (DatacenterId d = 0; d < 3; ++d) {
    EXPECT_EQ(run.system.ReceiverAt(d).applied_count(), applied[d]) << d;
    EXPECT_EQ(run.system.ReceiverAt(d).duplicate_count(), 0u) << d;
    EXPECT_EQ(run.system.EunomiaAt(d).ops_emitted(), emitted[d]) << d;
    std::size_t size = 0;
    EXPECT_EQ(StoreDigest(run.system, d, 4, &size), 12613325128148312392ULL)
        << d;
    EXPECT_EQ(size, 500u) << d;
  }
  ASSERT_NE(tracker.Visibility(0, 1), nullptr);
  EXPECT_EQ(tracker.Visibility(0, 1)->count(), 1736u);
  EXPECT_DOUBLE_EQ(tracker.Visibility(0, 1)->Quantile(0.5), 3316.5);
  ASSERT_NE(tracker.Visibility(1, 2), nullptr);
  EXPECT_EQ(tracker.Visibility(1, 2)->count(), 1788u);
  EXPECT_DOUBLE_EQ(tracker.Visibility(1, 2)->Quantile(0.5), 3607.5);
}

TEST(GeoRuntimeSimEquivalence, MatchesPreRefactorGoldenScalarMode) {
  GoldenRun run(/*scalar=*/true);
  const auto& tracker = run.system.tracker();
  EXPECT_EQ(tracker.reads_completed(), 12378u);
  EXPECT_EQ(tracker.updates_completed(), 5256u);
  EXPECT_DOUBLE_EQ(tracker.Throughput(run.measure_from, run.measure_to),
                   5879.0);
  EXPECT_EQ(run.sim.executed_events(), 448524u);
  const std::array<std::uint64_t, 3> applied = {3533, 3463, 3516};
  const std::array<std::uint64_t, 3> emitted = {1723, 1793, 1740};
  for (DatacenterId d = 0; d < 3; ++d) {
    EXPECT_EQ(run.system.ReceiverAt(d).applied_count(), applied[d]) << d;
    EXPECT_EQ(run.system.EunomiaAt(d).ops_emitted(), emitted[d]) << d;
    std::size_t size = 0;
    EXPECT_EQ(StoreDigest(run.system, d, 4, &size), 7369893057614894880ULL)
        << d;
    EXPECT_EQ(size, 500u) << d;
  }
  // The scalar false-dependency floor: dc0 -> dc1 visibility is dominated
  // by the farthest leg (~40 ms), an order of magnitude above vector mode.
  ASSERT_NE(tracker.Visibility(0, 1), nullptr);
  EXPECT_EQ(tracker.Visibility(0, 1)->count(), 1723u);
  EXPECT_DOUBLE_EQ(tracker.Visibility(0, 1)->Quantile(0.5), 44467.0);
}

// ---------------------------------------------------------------------------
// 2a. Receiver edge cases at the runtime seam — simulator binding
// ---------------------------------------------------------------------------

RemoteUpdate MakeUpdate(std::uint64_t uid, Key key, DatacenterId origin,
                        PartitionId partition, VectorTimestamp vts) {
  return RemoteUpdate{uid, key, std::move(vts), origin, partition};
}

RemotePayload MakePayload(const RemoteUpdate& u, Value value) {
  return RemotePayload{u.uid, u.key, std::move(value), u.vts, u.origin};
}

// Three DatacenterRuntimes over the simulator environment, timers off so
// each test delivers messages by hand in adversarial orders.
struct SimSeam {
  sim::Simulator sim{99};
  GeoConfig config;
  geo::VisibilityTracker tracker{1'000'000, 3};
  geo::rt::UidAllocator uids{0, 1};
  geo::rt::SessionMap sessions;
  std::unique_ptr<geo::rt::SimGeoEnvironment> env;
  std::vector<std::unique_ptr<geo::rt::DatacenterRuntime>> dcs;

  SimSeam() {
    config.num_dcs = 3;
    config.partitions_per_dc = 2;
    config.servers_per_dc = 1;
    tracker.EnableDetailedLog();
    env = std::make_unique<geo::rt::SimGeoEnvironment>(&sim, config);
    for (DatacenterId m = 0; m < 3; ++m) {
      dcs.push_back(std::make_unique<geo::rt::DatacenterRuntime>(
          m, config, env.get(), &tracker, &uids, &sessions,
          std::vector<PhysicalClock>(config.partitions_per_dc)));
      env->RegisterRuntime(m, dcs.back().get());
    }
  }
};

TEST(GeoRuntimeSeamSim, DuplicateMetadataRedeliverySuppressed) {
  SimSeam seam;
  const auto u = MakeUpdate(7, /*key=*/42, /*origin=*/1, /*partition=*/0,
                            VectorTimestamp{0, 10, 0});
  seam.dcs[0]->OnPayload(0, MakePayload(u, "v1"));
  seam.dcs[0]->OnRemoteMetadata({u});
  seam.sim.RunUntilIdle();
  EXPECT_EQ(seam.dcs[0]->receiver().applied_count(), 1u);
  ASSERT_NE(seam.dcs[0]->StoreAt(0).Get(42), nullptr);

  // A leader failover re-ships the already-applied suffix.
  seam.dcs[0]->OnRemoteMetadata({u});
  seam.sim.RunUntilIdle();
  EXPECT_EQ(seam.dcs[0]->receiver().applied_count(), 1u);
  EXPECT_EQ(seam.dcs[0]->receiver().duplicate_count(), 1u);
  EXPECT_EQ(seam.dcs[0]->receiver().PendingCount(), 0u);
}

TEST(GeoRuntimeSeamSim, ReorderedCrossOriginDeliveryWaitsForDependency) {
  SimSeam seam;
  // u1@dc1, u2@dc2 causally after u1 (vts[1] = 10 carried over).
  const auto u1 = MakeUpdate(1, 5, 1, 0, VectorTimestamp{0, 10, 0});
  const auto u2 = MakeUpdate(2, 6, 2, 1, VectorTimestamp{0, 10, 5});
  // Reordered arrival: the dependent update (and its payload) first.
  seam.dcs[0]->OnPayload(1, MakePayload(u2, "v2"));
  seam.dcs[0]->OnRemoteMetadata({u2});
  seam.sim.RunUntilIdle();
  EXPECT_EQ(seam.dcs[0]->receiver().applied_count(), 0u);
  EXPECT_EQ(seam.dcs[0]->receiver().PendingCount(), 1u);
  EXPECT_EQ(seam.dcs[0]->StoreAt(1).Get(6), nullptr) << "dependency violated";

  seam.dcs[0]->OnPayload(0, MakePayload(u1, "v1"));
  seam.dcs[0]->OnRemoteMetadata({u1});
  seam.sim.RunUntilIdle();
  EXPECT_EQ(seam.dcs[0]->receiver().applied_count(), 2u);
  ASSERT_NE(seam.dcs[0]->StoreAt(1).Get(6), nullptr);
  const auto t1 = seam.tracker.VisibleAt(1, 0);
  const auto t2 = seam.tracker.VisibleAt(2, 0);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_LE(*t1, *t2) << "dependent update visible before its dependency";
}

TEST(GeoRuntimeSeamSim, GapDelayedPayloadParksTheGoAhead) {
  SimSeam seam;
  const auto u = MakeUpdate(3, 9, 2, 0, VectorTimestamp{0, 0, 4});
  // Metadata (and so the receiver's go-ahead) arrives; the payload is
  // delayed — the §5 data/metadata separation in its uncomfortable order.
  seam.dcs[0]->OnRemoteMetadata({u});
  seam.sim.RunUntilIdle();
  EXPECT_EQ(seam.dcs[0]->receiver().applied_count(), 0u);
  EXPECT_EQ(seam.dcs[0]->receiver().PendingCount(), 1u);  // apply in flight
  EXPECT_EQ(seam.dcs[0]->StoreAt(0).Get(9), nullptr);

  seam.dcs[0]->OnPayload(0, MakePayload(u, "late"));
  seam.sim.RunUntilIdle();
  EXPECT_EQ(seam.dcs[0]->receiver().applied_count(), 1u);
  ASSERT_NE(seam.dcs[0]->StoreAt(0).Get(9), nullptr);
  EXPECT_EQ(seam.dcs[0]->StoreAt(0).Get(9)->value, "late");
  EXPECT_TRUE(seam.tracker.VisibleAt(3, 0).has_value());
}

// ---------------------------------------------------------------------------
// 2b. The same edge cases through the real binding: a GeoNode fed raw
//     frames by a fake peer over a transport.
// ---------------------------------------------------------------------------

GeoConfig SmallRealConfig() {
  GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 2;
  config.servers_per_dc = 1;
  config.batch_interval_us = 200;
  config.theta_us = 200;
  config.delta_us = 200;
  config.rho_us = 200;
  return config;
}

// Dials a node's listener pretending to be datacenter `dc`.
struct FakePeer {
  std::shared_ptr<net::Connection> meta;
  std::shared_ptr<net::Connection> payload;

  FakePeer(net::Transport& transport, const std::string& address,
           DatacenterId dc, const GeoConfig& config) {
    auto open = [&](std::uint32_t kind) {
      auto connection =
          transport.Dial(address, net::ConnectionHandler{
                                      [](net::Connection&, nw::Frame&&) {},
                                      [](net::Connection&, nw::WireError) {}});
      if (connection != nullptr) {
      gw::GeoHelloMsg hello;
      hello.dc = dc;
      hello.num_dcs = config.num_dcs;
      hello.partitions = config.partitions_per_dc;
      hello.link_kind = kind;
      connection->SendFrame(nw::MsgType::kGeoHello,
                            gw::EncodeGeoHello(hello));
      }
      return connection;
    };
    meta = open(gw::kMetadataLink);
    payload = open(gw::kPayloadLink);
  }

  void SendMeta(DatacenterId origin, const std::vector<RemoteUpdate>& batch) {
    meta->SendFrame(nw::MsgType::kGeoMetaBatch,
                    gw::EncodeGeoMetaBatch(origin, batch.data(), batch.size()));
  }
  void SendPayload(PartitionId partition, RemotePayload p) {
    gw::GeoPayloadMsg msg;
    msg.partition = partition;
    msg.payload = std::move(p);
    payload->SendFrame(nw::MsgType::kGeoPayload, gw::EncodeGeoPayload(msg));
  }
};

// Polls `predicate` (executed on the node's loop) until true or timeout.
bool WaitForNode(geo::rt::GeoNode& node,
                 const std::function<bool(const geo::rt::DatacenterRuntime&)>&
                     predicate,
                 std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(10'000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    bool ok = false;
    node.RunBlocking([&] { ok = predicate(node.runtime()); });
    if (ok) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(GeoRuntimeSeamReal, DuplicateAndGapDelayedDeliveriesOverTransport) {
  const GeoConfig config = SmallRealConfig();
  net::LoopbackTransport transport;
  geo::rt::GeoNode node(&transport, {/*dc=*/0, config,
                                     /*detailed_visibility=*/true});
  ASSERT_NE(node.Listen("seam-node0"), "");
  node.Start();
  FakePeer peer(transport, "seam-node0", /*dc=*/1, config);
  ASSERT_NE(peer.meta, nullptr);
  ASSERT_NE(peer.payload, nullptr);

  // Gap-delayed payload: go-ahead first, parked until the payload lands.
  const auto u1 = MakeUpdate(100, 7, 1, 0, VectorTimestamp{0, 10, 0});
  peer.SendMeta(1, {u1});
  ASSERT_TRUE(WaitForNode(node, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().PendingCount() == 1;
  }));
  node.RunBlocking([&] {
    EXPECT_EQ(node.runtime().receiver().applied_count(), 0u);
    EXPECT_EQ(node.runtime().StoreAt(0).Get(7), nullptr);
  });
  peer.SendPayload(0, MakePayload(u1, "v1"));
  ASSERT_TRUE(WaitForNode(node, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().applied_count() == 1;
  }));

  // Duplicate re-ship of the applied update: suppressed, not re-applied.
  peer.SendMeta(1, {u1});
  ASSERT_TRUE(WaitForNode(node, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().duplicate_count() == 1;
  }));
  node.RunBlocking([&] {
    EXPECT_EQ(node.runtime().receiver().applied_count(), 1u);
    ASSERT_NE(node.runtime().StoreAt(0).Get(7), nullptr);
    EXPECT_EQ(node.runtime().StoreAt(0).Get(7)->value, "v1");
  });
  EXPECT_EQ(node.wire_errors(), 0u);
  node.Stop();
}

TEST(GeoRuntimeSeamReal, ReorderedCrossOriginDeliveryWaitsForDependency) {
  const GeoConfig config = SmallRealConfig();
  net::LoopbackTransport transport;
  geo::rt::GeoNode node(&transport, {/*dc=*/0, config,
                                     /*detailed_visibility=*/true});
  ASSERT_NE(node.Listen("seam-node0"), "");
  node.Start();
  FakePeer peer1(transport, "seam-node0", /*dc=*/1, config);
  FakePeer peer2(transport, "seam-node0", /*dc=*/2, config);
  ASSERT_NE(peer1.meta, nullptr);
  ASSERT_NE(peer2.meta, nullptr);

  const auto u1 = MakeUpdate(200, 3, 1, 0, VectorTimestamp{0, 20, 0});
  const auto u2 = MakeUpdate(201, 4, 2, 1, VectorTimestamp{0, 20, 8});
  // The dependent update from dc2 arrives first, payload and all.
  peer2.SendPayload(1, MakePayload(u2, "v2"));
  peer2.SendMeta(2, {u2});
  ASSERT_TRUE(WaitForNode(node, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().PendingCount() == 1;
  }));
  node.RunBlocking([&] {
    EXPECT_EQ(node.runtime().receiver().applied_count(), 0u);
    EXPECT_EQ(node.runtime().StoreAt(1).Get(4), nullptr)
        << "applied before its dependency";
  });
  peer1.SendPayload(0, MakePayload(u1, "v1"));
  peer1.SendMeta(1, {u1});
  ASSERT_TRUE(WaitForNode(node, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().applied_count() == 2;
  }));
  bool ordered = false;
  node.RunBlocking([&] {
    const auto t1 = node.tracker().VisibleAt(200, 0);
    const auto t2 = node.tracker().VisibleAt(201, 0);
    ordered = t1.has_value() && t2.has_value() && *t1 <= *t2;
  });
  EXPECT_TRUE(ordered) << "dependent update visible before its dependency";
  EXPECT_EQ(node.wire_errors(), 0u);
  node.Stop();
}

TEST(GeoRuntimeSeamReal, MalformedAndMisplacedFramesRejected) {
  const GeoConfig config = SmallRealConfig();
  net::LoopbackTransport transport;
  geo::rt::GeoNode node(&transport, {/*dc=*/0, config, false});
  ASSERT_NE(node.Listen("seam-node0"), "");
  node.Start();

  // A payload frame on the metadata link is a protocol violation.
  FakePeer misplaced(transport, "seam-node0", 1, config);
  const auto u = MakeUpdate(1, 1, 1, 0, VectorTimestamp{0, 1, 0});
  gw::GeoPayloadMsg msg;
  msg.partition = 0;
  msg.payload = MakePayload(u, "x");
  misplaced.meta->SendFrame(nw::MsgType::kGeoPayload, gw::EncodeGeoPayload(msg));

  // A hello claiming a mismatched deployment shape is rejected outright.
  GeoConfig wrong = config;
  wrong.partitions_per_dc = 99;
  FakePeer bad_shape(transport, "seam-node0", 1, wrong);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (node.wire_errors() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(node.wire_errors(), 2u);
  node.RunBlocking([&] {
    EXPECT_EQ(node.runtime().receiver().applied_count(), 0u);
  });
  node.Stop();
}

// ---------------------------------------------------------------------------
// 3. Real-transport 3-DC end-to-end over TCP
// ---------------------------------------------------------------------------

struct TcpCluster {
  GeoConfig config = SmallRealConfig();
  std::array<std::unique_ptr<net::TcpTransport>, 3> transports;
  std::array<std::unique_ptr<geo::rt::GeoNode>, 3> nodes;

  TcpCluster() {
    std::array<std::string, 3> addresses;
    for (DatacenterId m = 0; m < 3; ++m) {
      transports[m] = std::make_unique<net::TcpTransport>();
      nodes[m] = std::make_unique<geo::rt::GeoNode>(
          transports[m].get(),
          geo::rt::GeoNode::Options{m, config, /*detailed_visibility=*/true});
      addresses[m] = nodes[m]->Listen("127.0.0.1:0");
      EXPECT_NE(addresses[m], "");
    }
    for (DatacenterId m = 0; m < 3; ++m) {
      for (DatacenterId k = 0; k < 3; ++k) {
        if (k != m) {
          EXPECT_TRUE(nodes[m]->ConnectPeer(k, addresses[k]));
        }
      }
    }
    for (auto& node : nodes) {
      node->Start();
    }
  }

  ~TcpCluster() {
    for (auto& node : nodes) {
      node->Stop();
    }
  }
};

TEST(GeoRuntimeTcpE2e, VisibilityWaitsForPayloadAndGoAhead) {
  TcpCluster cluster;
  auto& dc0 = *cluster.nodes[0];
  auto& dc1 = *cluster.nodes[1];
  auto& dc2 = *cluster.nodes[2];

  // Park the payload fan-out dc0 -> dc1; metadata keeps flowing.
  dc0.PausePayloadsTo(1, true);

  std::atomic<bool> update_done{false};
  dc0.ClientUpdate(1, /*key=*/77, "value-of-77",
                   [&] { update_done.store(true); });

  // dc2 receives payload + go-ahead normally and applies.
  ASSERT_TRUE(WaitForNode(dc2, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().applied_count() == 1;
  }));
  // dc1 has the go-ahead (metadata was shipped to every receiver in the
  // same stabilization round) but NOT the payload: nothing may be applied.
  ASSERT_TRUE(WaitForNode(dc1, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().PendingCount() == 1;
  }));
  dc1.RunBlocking([&] {
    EXPECT_EQ(dc1.runtime().receiver().applied_count(), 0u);
    for (PartitionId p = 0; p < cluster.config.partitions_per_dc; ++p) {
      EXPECT_EQ(dc1.runtime().StoreAt(p).Get(77), nullptr)
          << "visible without its payload";
    }
  });

  // Release the payload: the parked go-ahead completes the apply.
  dc0.PausePayloadsTo(1, false);
  ASSERT_TRUE(WaitForNode(dc1, [](const geo::rt::DatacenterRuntime& r) {
    return r.receiver().applied_count() == 1;
  }));
  bool value_ok = false;
  dc1.RunBlocking([&] {
    for (PartitionId p = 0; p < cluster.config.partitions_per_dc; ++p) {
      const geo::GeoVersion* v = dc1.runtime().StoreAt(p).Get(77);
      if (v != nullptr && v->value == "value-of-77") {
        value_ok = true;
      }
    }
  });
  EXPECT_TRUE(value_ok);
  EXPECT_TRUE(update_done.load());
  EXPECT_EQ(dc0.send_failures(), 0u);
}

TEST(GeoRuntimeTcpE2e, CausalChainStaysOrderedAcrossRealSockets) {
  TcpCluster cluster;
  auto& dc0 = *cluster.nodes[0];

  // One client issues a causal chain of updates to different keys.
  constexpr int kChain = 12;
  std::atomic<int> completed{0};
  std::function<void(int)> issue = [&](int i) {
    if (i >= kChain) {
      return;
    }
    dc0.ClientUpdate(5, static_cast<Key>(i), "v" + std::to_string(i),
                     [&, i] {
                       completed.fetch_add(1);
                       issue(i + 1);
                     });
  };
  issue(0);

  // All of the chain applies at both remote datacenters.
  for (DatacenterId d = 1; d < 3; ++d) {
    ASSERT_TRUE(WaitForNode(
        *cluster.nodes[d], [](const geo::rt::DatacenterRuntime& r) {
          return r.receiver().applied_count() ==
                 static_cast<std::uint64_t>(kChain);
        }))
        << "dc" << d;
  }
  EXPECT_EQ(completed.load(), kChain);

  // dc0's uid stream is dc + i * num_dcs = 3i; visibility must be
  // monotone in chain order at every remote datacenter.
  for (DatacenterId d = 1; d < 3; ++d) {
    auto& node = *cluster.nodes[d];
    bool ordered = true;
    node.RunBlocking([&] {
      std::uint64_t prev = 0;
      for (int i = 0; i < kChain; ++i) {
        const auto t = node.tracker().VisibleAt(3ull * i, d);
        ASSERT_TRUE(t.has_value()) << "chain uid " << 3 * i << " at dc" << d;
        ordered = ordered && *t >= prev;
        prev = *t;
      }
    });
    EXPECT_TRUE(ordered) << "causal chain inverted at dc" << d;
  }

  // And the stores converge on the chain's values everywhere.
  for (DatacenterId d = 1; d < 3; ++d) {
    auto& node = *cluster.nodes[d];
    node.RunBlocking([&] {
      for (int i = 0; i < kChain; ++i) {
        const Key key = static_cast<Key>(i);
        bool found = false;
        for (PartitionId p = 0; p < cluster.config.partitions_per_dc; ++p) {
          const geo::GeoVersion* v = node.runtime().StoreAt(p).Get(key);
          if (v != nullptr && v->value == "v" + std::to_string(i)) {
            found = true;
          }
        }
        EXPECT_TRUE(found) << "key " << key << " missing at dc" << d;
      }
    });
  }
}

TEST(GeoRuntimeTcpE2e, ConcurrentLoadFromAllDatacentersConverges) {
  TcpCluster cluster;
  constexpr int kOpsPerClient = 25;
  std::atomic<int> completed{0};
  // Two chained clients per datacenter, disjoint key ranges per client so
  // every written key has a deterministic final value. Each chain's driver
  // function captures a shared_ptr to itself to stay alive across hops;
  // that self-reference is a cycle, broken explicitly once the chains have
  // completed (the `*issue = nullptr` below) or the pair would leak.
  std::vector<std::shared_ptr<std::function<void(int)>>> issues;
  for (DatacenterId m = 0; m < 3; ++m) {
    for (int c = 0; c < 2; ++c) {
      const ClientId client = m * 10 + c;
      auto issue = std::make_shared<std::function<void(int)>>();
      issues.push_back(issue);
      *issue = [&, client, m, c, issue](int i) {
        if (i >= kOpsPerClient) {
          return;
        }
        const Key key = 1000 * (m * 2 + c) + i;
        cluster.nodes[m]->ClientUpdate(client, key, "final",
                                       [&, issue, i] {
                                         completed.fetch_add(1);
                                         (*issue)(i + 1);
                                       });
      };
      (*issue)(0);
    }
  }
  const int total = 3 * 2 * kOpsPerClient;
  // Every node applies every remote update: 2/3 of all updates each.
  for (DatacenterId d = 0; d < 3; ++d) {
    ASSERT_TRUE(WaitForNode(
        *cluster.nodes[d],
        [&](const geo::rt::DatacenterRuntime& r) {
          return r.receiver().applied_count() ==
                 static_cast<std::uint64_t>(total) / 3 * 2;
        },
        std::chrono::milliseconds(20'000)))
        << "dc" << d;
  }
  EXPECT_EQ(completed.load(), total);
  // Every chain has issued its last callback; break the self-reference
  // cycles so the drivers (and their captures) are reclaimed.
  for (auto& issue : issues) {
    *issue = nullptr;
  }
  // Identical contents everywhere.
  auto snapshot = [&](DatacenterId d) {
    std::map<Key, std::pair<Value, std::vector<Timestamp>>> contents;
    cluster.nodes[d]->RunBlocking([&] {
      for (PartitionId p = 0; p < cluster.config.partitions_per_dc; ++p) {
        cluster.nodes[d]->runtime().StoreAt(p).ForEach(
            [&](Key k, const geo::GeoVersion& v) {
              contents[k] = {v.value, v.vts.entries()};
            });
      }
    });
    return contents;
  };
  const auto dc0 = snapshot(0);
  EXPECT_EQ(dc0.size(), static_cast<std::size_t>(total));
  for (DatacenterId d = 1; d < 3; ++d) {
    EXPECT_TRUE(dc0 == snapshot(d)) << "dc" << d << " diverged";
  }
}

// ---------------------------------------------------------------------------
// Geo wire codecs
// ---------------------------------------------------------------------------

TEST(GeoWireTest, MetaBatchRoundTrip) {
  std::vector<RemoteUpdate> updates;
  updates.push_back(MakeUpdate(12, 34, 1, 3, VectorTimestamp{1, 2, 3}));
  updates.push_back(MakeUpdate(15, 99, 1, 0, VectorTimestamp{4, 5, 6}));
  const std::string payload =
      gw::EncodeGeoMetaBatch(1, updates.data(), updates.size());
  gw::GeoMetaBatchMsg msg;
  ASSERT_TRUE(gw::DecodeGeoMetaBatch(payload, &msg));
  EXPECT_EQ(msg.origin, 1u);
  ASSERT_EQ(msg.updates.size(), 2u);
  EXPECT_EQ(msg.updates[0].uid, 12u);
  EXPECT_EQ(msg.updates[0].vts, (VectorTimestamp{1, 2, 3}));
  EXPECT_EQ(msg.updates[1].key, 99u);
  EXPECT_EQ(msg.updates[1].partition, 0u);

  // Truncated payloads and inflated counts are rejected.
  gw::GeoMetaBatchMsg out;
  EXPECT_FALSE(gw::DecodeGeoMetaBatch(payload.substr(0, payload.size() - 1),
                                      &out));
  std::string inflated = payload;
  inflated[4] = 50;  // count field
  EXPECT_FALSE(gw::DecodeGeoMetaBatch(inflated, &out));
}

TEST(GeoWireTest, PayloadRoundTrip) {
  gw::GeoPayloadMsg msg;
  msg.partition = 2;
  msg.payload = RemotePayload{77, 5, "hello-world", VectorTimestamp{9, 8, 7}, 2};
  const std::string payload = gw::EncodeGeoPayload(msg);
  gw::GeoPayloadMsg out;
  ASSERT_TRUE(gw::DecodeGeoPayload(payload, &out));
  EXPECT_EQ(out.partition, 2u);
  EXPECT_EQ(out.payload.uid, 77u);
  EXPECT_EQ(out.payload.value, "hello-world");
  EXPECT_EQ(out.payload.vts, (VectorTimestamp{9, 8, 7}));
  EXPECT_FALSE(gw::DecodeGeoPayload(payload.substr(0, payload.size() - 1),
                                    &out));
}

TEST(GeoWireTest, HelloAndFrontierRoundTrip) {
  gw::GeoHelloMsg hello;
  hello.dc = 2;
  hello.num_dcs = 3;
  hello.partitions = 8;
  hello.link_kind = gw::kPayloadLink;
  gw::GeoHelloMsg hello_out;
  ASSERT_TRUE(gw::DecodeGeoHello(gw::EncodeGeoHello(hello), &hello_out));
  EXPECT_EQ(hello_out.dc, 2u);
  EXPECT_EQ(hello_out.link_kind, gw::kPayloadLink);

  gw::GeoFrontierMsg frontier{1, 123456789};
  gw::GeoFrontierMsg frontier_out;
  ASSERT_TRUE(gw::DecodeGeoFrontier(gw::EncodeGeoFrontier(frontier),
                                    &frontier_out));
  EXPECT_EQ(frontier_out.origin, 1u);
  EXPECT_EQ(frontier_out.frontier, 123456789u);
}

}  // namespace
}  // namespace eunomia
