// Tests for the KV store substrates: scalar LWW store, multi-version store
// with predicate visibility, key routing, and client sessions.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/store/client_session.h"
#include "src/store/hash_ring.h"
#include "src/store/versioned_store.h"

namespace eunomia::store {
namespace {

TEST(ScalarStoreTest, PutGetRoundTrip) {
  ScalarStore store;
  EXPECT_EQ(store.Get(1), nullptr);
  EXPECT_TRUE(store.Put(1, "a", 10, 0));
  const ScalarVersion* v = store.Get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, "a");
  EXPECT_EQ(v->ts, 10u);
}

TEST(ScalarStoreTest, LastWriterWins) {
  ScalarStore store;
  store.Put(1, "old", 10, 0);
  EXPECT_TRUE(store.Put(1, "new", 20, 1));
  EXPECT_EQ(store.Get(1)->value, "new");
  // A stale write must not clobber.
  EXPECT_FALSE(store.Put(1, "stale", 15, 2));
  EXPECT_EQ(store.Get(1)->value, "new");
}

TEST(ScalarStoreTest, TieBrokenByOrigin) {
  ScalarStore store;
  store.Put(1, "dc0", 10, 0);
  EXPECT_TRUE(store.Put(1, "dc1", 10, 1));   // same ts, higher origin wins
  EXPECT_FALSE(store.Put(1, "dc0b", 10, 0));  // lower origin loses
  EXPECT_EQ(store.Get(1)->value, "dc1");
}

TEST(ScalarStoreTest, ConvergenceUnderPermutedApplication) {
  // Applying the same set of writes in any order yields the same state —
  // the property the eventual baseline relies on.
  struct Write {
    Key key;
    Value value;
    Timestamp ts;
    DatacenterId origin;
  };
  std::vector<Write> writes;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    writes.push_back({rng.NextBounded(20), std::to_string(i),
                      rng.NextBounded(50), static_cast<DatacenterId>(
                                               rng.NextBounded(3))});
  }
  ScalarStore a;
  for (const auto& w : writes) {
    a.Put(w.key, w.value, w.ts, w.origin);
  }
  // Shuffle and re-apply to a second store.
  for (int i = static_cast<int>(writes.size()) - 1; i > 0; --i) {
    std::swap(writes[static_cast<std::size_t>(i)],
              writes[rng.NextBounded(static_cast<std::uint64_t>(i + 1))]);
  }
  ScalarStore b;
  for (const auto& w : writes) {
    b.Put(w.key, w.value, w.ts, w.origin);
  }
  ASSERT_EQ(a.size(), b.size());
  a.ForEach([&b](Key key, const ScalarVersion& va) {
    const ScalarVersion* vb = b.Get(key);
    ASSERT_NE(vb, nullptr);
    EXPECT_EQ(va.value, vb->value);
    EXPECT_EQ(va.ts, vb->ts);
    EXPECT_EQ(va.origin, vb->origin);
  });
}

struct TestStamp {
  Timestamp ts = 0;
  Timestamp TotalOrderKey() const { return ts; }
};

TEST(MultiVersionStoreTest, VisibilityPredicateGates) {
  MultiVersionStore<TestStamp> store;
  store.Put(1, "v10", TestStamp{10}, 1, /*local=*/false);
  store.Put(1, "v20", TestStamp{20}, 1, /*local=*/false);
  // GST = 15: only v10 visible.
  const auto* v = store.Get(1, [](const TestStamp& s) { return s.ts <= 15; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, "v10");
  // GST = 25: newest visible wins.
  v = store.Get(1, [](const TestStamp& s) { return s.ts <= 25; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, "v20");
  // GST = 5: nothing visible.
  EXPECT_EQ(store.Get(1, [](const TestStamp& s) { return s.ts <= 5; }), nullptr);
}

TEST(MultiVersionStoreTest, LocalVersionsAlwaysVisible) {
  MultiVersionStore<TestStamp> store;
  store.Put(1, "local", TestStamp{100}, 0, /*local=*/true);
  const auto* v = store.Get(1, [](const TestStamp&) { return false; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, "local");
}

TEST(MultiVersionStoreTest, TrimKeepsNewestVisibleAndNewer) {
  MultiVersionStore<TestStamp> store;
  for (Timestamp t = 10; t <= 50; t += 10) {
    store.Put(7, "v" + std::to_string(t), TestStamp{t}, 1, false);
  }
  EXPECT_EQ(store.ChainLength(7), 5u);
  // GST = 30: versions 10 and 20 are dominated by visible 30 — removable.
  store.Trim(7, [](const TestStamp& s) { return s.ts <= 30; });
  EXPECT_EQ(store.ChainLength(7), 3u);
  // Reads still correct before and after the frontier.
  const auto* v = store.Get(7, [](const TestStamp& s) { return s.ts <= 30; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, "v30");
  v = store.Get(7, [](const TestStamp& s) { return s.ts <= 50; });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, "v50");
}

TEST(ModRouterTest, StableAndInRange) {
  ModRouter router(8);
  for (Key k = 0; k < 1000; ++k) {
    const PartitionId p = router.Responsible(k);
    EXPECT_LT(p, 8u);
    EXPECT_EQ(p, router.Responsible(k));  // deterministic
  }
}

TEST(ConsistentHashRingTest, CoversAllPartitionsRoughlyEvenly) {
  ConsistentHashRing ring(8, 64);
  std::vector<int> counts(8, 0);
  for (Key k = 0; k < 80000; ++k) {
    ++counts[ring.Responsible(k)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 80000 / 8 / 2) << "partition starved";
    EXPECT_LT(c, 80000 / 8 * 2) << "partition overloaded";
  }
}

TEST(ConsistentHashRingTest, SiblingsAgree) {
  // Two rings with the same parameters (one per datacenter) must route every
  // key identically — sibling partitions own the same key ranges.
  ConsistentHashRing dc0(8);
  ConsistentHashRing dc1(8);
  for (Key k = 0; k < 10000; ++k) {
    EXPECT_EQ(dc0.Responsible(k), dc1.Responsible(k));
  }
}

TEST(ConsistentHashRingTest, AddingPartitionMovesFewKeys) {
  ConsistentHashRing before(8);
  ConsistentHashRing after(9);
  int moved = 0;
  constexpr int kKeys = 50000;
  for (Key k = 0; k < kKeys; ++k) {
    if (before.Responsible(k) != after.Responsible(k)) {
      ++moved;
    }
  }
  // Consistent hashing: ~1/9 of keys move, far from the ~8/9 a mod router
  // would move. Allow a loose band.
  EXPECT_LT(moved, kKeys / 4);
  EXPECT_GT(moved, kKeys / 30);
}

TEST(ServerOfPartitionTest, RoundRobin) {
  EXPECT_EQ(ServerOfPartition(0, 3), 0u);
  EXPECT_EQ(ServerOfPartition(1, 3), 1u);
  EXPECT_EQ(ServerOfPartition(2, 3), 2u);
  EXPECT_EQ(ServerOfPartition(3, 3), 0u);
  EXPECT_EQ(ServerOfPartition(5, 0), 0u);  // degenerate: no servers
}

TEST(ClientSessionTest, ReadMergesUpdateReplaces) {
  ClientSession session(7);
  EXPECT_EQ(session.clock(), 0u);
  session.OnRead(100);
  EXPECT_EQ(session.clock(), 100u);
  session.OnRead(50);  // older read must not regress the clock
  EXPECT_EQ(session.clock(), 100u);
  session.OnUpdate(200);
  EXPECT_EQ(session.clock(), 200u);
}

}  // namespace
}  // namespace eunomia::store
