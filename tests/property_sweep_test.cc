// Seed-sweep property tests: the end-to-end EunomiaKV invariants must hold
// for *every* random execution, not just the default seed. Each instance
// runs a full 3-DC deployment under a different seed (different clock
// skews, jitter, workload interleavings) and checks:
//   - convergence: all datacenters end with identical stores;
//   - completeness: every update becomes visible at every remote DC;
//   - cleanliness: no Property-2 violations reach any Eunomia core, no
//     receiver queue is left stuck.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/georep/eunomiakv.h"
#include "src/workload/workload.h"

namespace eunomia {
namespace {

class EunomiaKvSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EunomiaKvSeedSweep, InvariantsHoldUnderRandomExecutions) {
  const std::uint64_t seed = GetParam();
  geo::GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  // Stress the clock model harder than NTP ever would.
  config.clocks.max_offset_us = 20'000;
  config.clocks.max_drift_ppm = 300.0;

  sim::Simulator sim(seed);
  geo::EunomiaKvSystem system(&sim, config);
  system.tracker().EnableDetailedLog();

  wl::WorkloadConfig workload;
  workload.num_keys = 150;
  workload.update_fraction = 0.35;
  workload.clients_per_dc = 4;
  workload.duration_us = 3 * sim::kSecond;
  workload.seed = seed * 7 + 1;
  wl::WorkloadDriver driver(&sim, &system, workload, config.num_dcs);
  driver.Start();
  sim.RunUntil(workload.duration_us);
  driver.Stop();
  sim.RunUntil(workload.duration_us + 5 * sim::kSecond);

  // Cleanliness.
  for (DatacenterId d = 0; d < config.num_dcs; ++d) {
    EXPECT_EQ(system.EunomiaAt(d).monotonicity_violations(), 0u) << "dc" << d;
    EXPECT_EQ(system.EunomiaAt(d).pending_ops(), 0u) << "dc" << d;
    EXPECT_EQ(system.ReceiverAt(d).PendingCount(), 0u) << "dc" << d;
  }

  // Completeness: every installed update visible at both remote DCs.
  const std::uint64_t installed = system.updates_installed();
  ASSERT_GT(installed, 100u);
  std::uint64_t visible_pairs = 0;
  for (std::uint64_t uid = 0; uid < installed; ++uid) {
    for (DatacenterId d = 0; d < config.num_dcs; ++d) {
      visible_pairs += system.tracker().VisibleAt(uid, d).has_value() ? 1 : 0;
    }
  }
  EXPECT_EQ(visible_pairs, installed * (config.num_dcs - 1));

  // Convergence.
  auto snapshot = [&](DatacenterId dc) {
    std::map<Key, std::pair<Value, std::vector<Timestamp>>> contents;
    for (PartitionId p = 0; p < config.partitions_per_dc; ++p) {
      system.StoreAt(dc, p).ForEach([&](Key key, const geo::GeoVersion& v) {
        contents[key] = {v.value, v.vts.entries()};
      });
    }
    return contents;
  };
  const auto reference = snapshot(0);
  for (DatacenterId d = 1; d < config.num_dcs; ++d) {
    EXPECT_TRUE(reference == snapshot(d)) << "dc" << d << " diverged, seed "
                                          << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EunomiaKvSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// The same sweep with an adversarial network: heavy jitter. (FIFO links are
// preserved by the network model even under jitter; the protocols must
// tolerate arbitrary cross-channel reordering.)
class EunomiaKvJitterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EunomiaKvJitterSweep, CausalChainsSurviveHeavyJitter) {
  const std::uint64_t seed = GetParam();
  geo::GeoConfig config;
  config.num_dcs = 3;
  config.partitions_per_dc = 4;
  config.servers_per_dc = 2;
  config.network.jitter = 0.5;  // +/-50% per-message latency noise

  sim::Simulator sim(seed);
  geo::EunomiaKvSystem system(&sim, config);
  system.tracker().EnableDetailedLog();

  // A single client's causal chain across partitions.
  int completed = 0;
  std::function<void(int)> issue = [&](int i) {
    if (i >= 25) {
      return;
    }
    system.ClientUpdate(1, 0, static_cast<Key>(i * 3 + 1), "v", [&, i] {
      ++completed;
      issue(i + 1);
    });
  };
  issue(0);
  sim.RunUntil(10 * sim::kSecond);
  ASSERT_EQ(completed, 25);

  for (DatacenterId d = 1; d < 3; ++d) {
    std::optional<std::uint64_t> prev;
    for (std::uint64_t uid = 0; uid < 25; ++uid) {
      const auto t = system.tracker().VisibleAt(uid, d);
      ASSERT_TRUE(t.has_value()) << "uid " << uid << " at dc" << d;
      if (prev) {
        EXPECT_GE(*t, *prev) << "causal order broken at dc" << d << ", seed "
                             << seed;
      }
      prev = t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EunomiaKvJitterSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace eunomia
