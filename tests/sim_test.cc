// Tests for the discrete-event simulator: scheduler ordering, cancellable
// timers, FIFO network delivery under jitter, fault injection, and the FCFS
// server model.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/network.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace eunomia::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&order] { order.push_back(3); });
  sim.ScheduleAt(100, [&order] { order.push_back(1); });
  sim.ScheduleAt(200, [&order] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAfter(10, chain);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(100, [&fired] { ++fired; });
  sim.ScheduleAt(200, [&fired] { ++fired; });
  sim.ScheduleAt(201, [&fired] { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);  // the event at exactly 200 runs
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesTimeEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(5000);
  EXPECT_EQ(sim.now(), 5000u);
}

TEST(SimulatorTest, CancelableTimerRespectsToken) {
  Simulator sim;
  int fired = 0;
  TimerToken token;
  sim.ScheduleCancelable(100, token, [&fired] { ++fired; });
  sim.ScheduleCancelable(200, token, [&fired] { ++fired; });
  sim.RunUntil(150);
  token.Cancel();
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);  // the second firing was cancelled
}

TEST(SimulatorTest, DeterministicReplay) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 100; ++i) {
      samples.push_back(sim.rng().Next());
    }
    return samples;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

NetworkConfig TwoDcConfig() {
  NetworkConfig config;
  config.intra_dc_one_way_us = 100;
  config.wan_one_way_us = {{0, 40000}, {40000, 0}};
  config.jitter = 0.0;
  return config;
}

TEST(NetworkTest, IntraAndInterDcLatencies) {
  Simulator sim;
  Network net(&sim, TwoDcConfig());
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(0);
  const EndpointId c = net.Register(1);
  EXPECT_EQ(net.BaseLatency(a, b), 100u);
  EXPECT_EQ(net.BaseLatency(a, c), 40000u);

  std::vector<std::pair<int, SimTime>> deliveries;
  net.Send(a, b, [&] { deliveries.emplace_back(1, sim.now()); });
  net.Send(a, c, [&] { deliveries.emplace_back(2, sim.now()); });
  sim.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].second, 100u);
  EXPECT_EQ(deliveries[1].second, 40000u);
}

TEST(NetworkTest, PaperTopologyMatchesRtts) {
  // 80 ms RTT dc0<->dc1 and dc0<->dc2; 160 ms dc1<->dc2 (one-way 40/40/80).
  Simulator sim;
  Network net(&sim, PaperTopology());
  const EndpointId e0 = net.Register(0);
  const EndpointId e1 = net.Register(1);
  const EndpointId e2 = net.Register(2);
  EXPECT_EQ(net.BaseLatency(e0, e1), 40u * kMillisecond);
  EXPECT_EQ(net.BaseLatency(e0, e2), 40u * kMillisecond);
  EXPECT_EQ(net.BaseLatency(e1, e2), 80u * kMillisecond);
}

TEST(NetworkTest, FifoPerChannelUnderJitter) {
  Simulator sim(3);
  NetworkConfig config = TwoDcConfig();
  config.jitter = 0.5;  // heavy jitter
  Network net(&sim, config);
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(1);
  std::vector<int> received;
  for (int i = 0; i < 200; ++i) {
    net.Send(a, b, [&received, i] { received.push_back(i); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(received.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i) << "FIFO violated";
  }
}

TEST(NetworkTest, IndependentChannelsDoNotBlockEachOther) {
  Simulator sim;
  NetworkConfig config = TwoDcConfig();
  Network net(&sim, config);
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(0);
  const EndpointId c = net.Register(1);
  SimTime b_time = 0;
  SimTime c_time = 0;
  net.Send(a, c, [&] { c_time = sim.now(); });  // slow WAN message first
  net.Send(a, b, [&] { b_time = sim.now(); });  // fast local message after
  sim.RunUntilIdle();
  EXPECT_LT(b_time, c_time);  // different channels: no head-of-line blocking
}

TEST(NetworkTest, DropProbabilityDropsEverythingAtOne) {
  Simulator sim;
  Network net(&sim, TwoDcConfig());
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(1);
  net.SetDropProbability(a, b, 1.0);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    net.Send(a, b, [&delivered] { ++delivered; });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_dropped(), 50u);
}

TEST(NetworkTest, PartialLossDeliversRoughlyHalf) {
  Simulator sim(11);
  Network net(&sim, TwoDcConfig());
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(1);
  net.SetDropProbability(a, b, 0.5);
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    net.Send(a, b, [&delivered] { ++delivered; });
  }
  sim.RunUntilIdle();
  EXPECT_GT(delivered, 800);
  EXPECT_LT(delivered, 1200);
}

TEST(NetworkTest, DuplicationDeliversTwiceInOrder) {
  Simulator sim(7);
  Network net(&sim, TwoDcConfig());
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(1);
  net.SetDuplicateProbability(a, b, 1.0);
  std::vector<int> received;
  for (int i = 0; i < 20; ++i) {
    net.Send(a, b, [&received, i] { received.push_back(i); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(received.size(), 40u);
  // FIFO still holds: the sequence must be non-decreasing.
  for (std::size_t i = 1; i < received.size(); ++i) {
    EXPECT_LE(received[i - 1], received[i]);
  }
}

TEST(NetworkTest, LinkDownBlocksAndRestores) {
  Simulator sim;
  Network net(&sim, TwoDcConfig());
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(1);
  int delivered = 0;
  net.SetLinkDown(a, b, true);
  net.Send(a, b, [&delivered] { ++delivered; });
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 0);
  net.SetLinkDown(a, b, false);
  net.Send(a, b, [&delivered] { ++delivered; });
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, ExtraDelayAddsLatency) {
  Simulator sim;
  Network net(&sim, TwoDcConfig());
  const EndpointId a = net.Register(0);
  const EndpointId b = net.Register(0);
  net.SetExtraDelay(a, b, 5000);
  SimTime arrival = 0;
  net.Send(a, b, [&] { arrival = sim.now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(arrival, 5100u);
}

TEST(ServerTest, FcfsQueueing) {
  Simulator sim;
  Server server(&sim);
  std::vector<SimTime> completions;
  server.Submit(100, [&] { completions.push_back(sim.now()); });
  server.Submit(50, [&] { completions.push_back(sim.now()); });
  sim.RunUntilIdle();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 100u);
  EXPECT_EQ(completions[1], 150u);  // queued behind the first task
}

TEST(ServerTest, IdleServerStartsImmediately) {
  Simulator sim;
  Server server(&sim);
  sim.ScheduleAt(1000, [&] {
    server.Submit(10, [] {});
  });
  sim.RunUntilIdle();
  EXPECT_EQ(sim.now(), 1010u);
}

TEST(ServerTest, BacklogReflectsQueuedWork) {
  Simulator sim;
  Server server(&sim);
  server.Submit(100, [] {});
  server.Submit(100, [] {});
  EXPECT_EQ(server.Backlog(), 200u);
  sim.RunUntilIdle();
  EXPECT_EQ(server.Backlog(), 0u);
}

TEST(ServerTest, UtilizationAccounting) {
  Simulator sim;
  Server server(&sim);
  server.Submit(300, [] {});
  server.Submit(200, [] {});
  sim.RunUntilIdle();
  EXPECT_EQ(server.busy_accum(), 500u);
  EXPECT_EQ(server.tasks(), 2u);
}

}  // namespace
}  // namespace eunomia::sim
