// Unit tests for src/common: PRNG, zipf sampler, statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/zipf.h"

namespace eunomia {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkedStreamsAreIndependentAndStable) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child_a = parent1.Fork(0);
  Rng child_b = parent2.Fork(0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child_a.Next(), child_b.Next());
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.NextInRange(5, 5), 5);
  EXPECT_EQ(rng.NextInRange(5, 4), 5);  // degenerate range clamps to lo
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextExponential(250.0);
  }
  EXPECT_NEAR(sum / kSamples, 250.0, 5.0);
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

TEST(ZipfTest, RankZeroIsHottest) {
  ZipfGenerator zipf(10000, 0.99);
  Rng rng(2);
  std::vector<int> counts(10000, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 0 must dominate, and the head must hold most of the mass.
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(max_count, counts[0]);
  int head = 0;
  for (int i = 0; i < 100; ++i) {
    head += counts[i];
  }
  EXPECT_GT(head, 200000 / 3);  // top 1% of keys > 1/3 of accesses
}

TEST(ZipfTest, SingleItemAlwaysZero) {
  ZipfGenerator zipf(1, 0.99);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

TEST(ZipfTest, ExponentOneSupported) {
  ZipfGenerator zipf(100, 1.0);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, MergeMatchesCombinedStream) {
  Rng rng(8);
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, MergeWithEmptyPreservesMinMax) {
  // The multi-connection TCP driver merges per-connection stats; an idle
  // connection contributes an empty instance, which must not drag min to 0
  // or otherwise perturb the aggregate — in either merge direction.
  OnlineStats populated;
  populated.Add(5.0);
  populated.Add(11.0);
  OnlineStats empty;
  populated.Merge(empty);
  EXPECT_EQ(populated.count(), 2u);
  EXPECT_DOUBLE_EQ(populated.min(), 5.0);
  EXPECT_DOUBLE_EQ(populated.max(), 11.0);
  EXPECT_DOUBLE_EQ(populated.mean(), 8.0);

  OnlineStats target;
  target.Merge(populated);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), 5.0);
  EXPECT_DOUBLE_EQ(target.max(), 11.0);
  EXPECT_DOUBLE_EQ(target.mean(), 8.0);

  OnlineStats both_empty;
  both_empty.Merge(empty);
  EXPECT_EQ(both_empty.count(), 0u);
  EXPECT_EQ(both_empty.min(), 0.0);
  EXPECT_EQ(both_empty.max(), 0.0);
}

TEST(LatencyHistogramTest, ExactForSmallValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_LE(h.Percentile(50), 8u);
}

TEST(LatencyHistogramTest, PercentileWithinRelativeError) {
  LatencyHistogram h;
  Rng rng(21);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.NextExponential(20000.0));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 99.0}) {
    const auto exact =
        values[static_cast<std::size_t>(p / 100.0 * (values.size() - 1))];
    const auto approx = h.Percentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05 + 2.0);
  }
}

TEST(LatencyHistogramTest, MergeAddsCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(100);
  b.Record(200);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Max(), 300u);
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram populated;
  populated.Record(100);
  populated.Record(900);
  LatencyHistogram empty;
  populated.Merge(empty);
  EXPECT_EQ(populated.count(), 2u);
  EXPECT_EQ(populated.Max(), 900u);
  EXPECT_DOUBLE_EQ(populated.mean(), 500.0);

  LatencyHistogram target;
  target.Merge(populated);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.Max(), 900u);
  EXPECT_DOUBLE_EQ(target.mean(), 500.0);
}

TEST(CdfTest, QuantilesOfKnownDistribution) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(cdf.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(cdf.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(cdf.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(cdf.FractionBelow(50.0), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(1000.0), 1.0);
}

TEST(CdfTest, CurveIsMonotone) {
  Cdf cdf;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    cdf.Add(rng.NextDouble() * 50.0);
  }
  const auto curve = cdf.Curve(21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(TimeSeriesTest, RatesPerWindow) {
  TimeSeries ts(1'000'000);  // 1 s windows
  for (int i = 0; i < 500; ++i) {
    ts.Record(100);  // all in window 0
  }
  ts.Record(1'500'000);
  const auto rates = ts.Rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 500.0);
  EXPECT_DOUBLE_EQ(rates[1], 1.0);
}

TEST(TimeSeriesTest, ValueMeans) {
  TimeSeries ts(1000);
  ts.RecordValue(100, 10.0);
  ts.RecordValue(200, 30.0);
  ts.RecordValue(1500, 5.0);
  const auto means = ts.ValueMeans();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 20.0);
  EXPECT_DOUBLE_EQ(means[1], 5.0);
}

}  // namespace
}  // namespace eunomia
