// Transport conformance suite: one matrix of backend-agnostic contract
// tests (handshake, FIFO delivery, backpressure, max-size frames, batch
// chunking, garbage rejection, stop-under-fire, close semantics) run
// against every Transport implementation — loopback, the threaded TCP
// backend, and the epoll event-loop backend. A new backend passes this
// suite or it does not ship.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/net/epoll_transport.h"
#include "src/net/eunomia_client.h"
#include "src/net/eunomia_server.h"
#include "src/net/loopback_transport.h"
#include "src/net/tcp_transport.h"

namespace eunomia::net {
namespace {

constexpr Timestamp kFarFutureTs = 1'000'000'000'000ULL;

bool WaitUntil(const std::function<bool()>& predicate,
               std::chrono::milliseconds budget = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

enum class Backend { kLoopback, kThreadedTcp, kEpollTcp };

struct BackendParam {
  Backend backend;
  const char* name;
};

class TransportConformanceTest : public ::testing::TestWithParam<BackendParam> {
 protected:
  static std::unique_ptr<Transport> MakeTransport() {
    switch (GetParam().backend) {
      case Backend::kLoopback:
        return std::make_unique<LoopbackTransport>();
      case Backend::kThreadedTcp:
        return std::make_unique<TcpTransport>();
      case Backend::kEpollTcp:
        return std::make_unique<EpollTransport>();
    }
    return nullptr;
  }
  static std::string ListenAddress() {
    return GetParam().backend == Backend::kLoopback ? "conformance"
                                                    : "127.0.0.1:0";
  }
  static bool IsTcp() { return GetParam().backend != Backend::kLoopback; }
};

// Handshake: a real client completes the hello exchange and a submit/ack
// round trip against a real server over this backend.
TEST_P(TransportConformanceTest, HandshakeAndSubmitAck) {
  auto transport = MakeTransport();
  EunomiaServer::Options options;
  options.num_partitions = 1;
  options.stable_period_us = 200;
  EunomiaServer server(transport.get(), options);
  const std::string address = server.Start(ListenAddress());
  ASSERT_FALSE(address.empty());
  EunomiaClient client(transport.get(), address, {});
  ASSERT_TRUE(client.Connect());
  ASSERT_TRUE(client.SubmitBatch(0, {OpRecord{1, 0, 7, 9}}));
  ASSERT_TRUE(client.WaitForAcks());
  EXPECT_EQ(client.ops_acked(), 1u);
  client.Close();
  server.Stop();
}

// Raw-frame FIFO: frames arrive exactly in send order, payloads intact.
TEST_P(TransportConformanceTest, FramesArriveInFifoOrder) {
  eunomia::sync::Mutex mu{"conformance::mu", eunomia::sync::kRankLeaf};
  std::vector<std::string> received;
  auto transport = MakeTransport();
  Transport::AcceptHandler accept =
      [&](const std::shared_ptr<Connection>&) {
        ConnectionHandler handler;
        handler.on_frame = [&](Connection&, wire::Frame&& frame) {
          eunomia::sync::MutexLock lock(mu);
          // Payload views die with the callback: copy to retain.
          received.emplace_back(frame.payload);
        };
        return handler;
      };
  const std::string address = transport->Listen(ListenAddress(), accept);
  ASSERT_FALSE(address.empty());
  auto connection = transport->Dial(address, {});
  ASSERT_NE(connection, nullptr);
  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(connection->SendFrame(wire::MsgType::kHeartbeat,
                                      "frame-" + std::to_string(i)));
  }
  ASSERT_TRUE(WaitUntil([&] {
    eunomia::sync::MutexLock lock(mu);
    return received.size() >= kFrames;
  }));
  eunomia::sync::MutexLock lock(mu);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(received[i], "frame-" + std::to_string(i));
  }
  lock.Unlock();
  connection->Close();
  transport->Shutdown();
}

// Backpressure: a sender outrunning a slow consumer by multiples of the
// outbox capacity blocks (never errors) and everything still arrives in
// order.
TEST_P(TransportConformanceTest, BackpressureAdmitsEverythingEventually) {
  eunomia::sync::Mutex mu{"conformance::mu", eunomia::sync::kRankLeaf};
  std::size_t received = 0;
  std::size_t bytes = 0;
  auto transport = MakeTransport();
  Transport::AcceptHandler accept =
      [&](const std::shared_ptr<Connection>&) {
        ConnectionHandler handler;
        handler.on_frame = [&](Connection&, wire::Frame&& frame) {
          // Slow consumer: the sender must outrun us into its outbox cap.
          std::this_thread::sleep_for(std::chrono::microseconds(500));
          eunomia::sync::MutexLock lock(mu);
          ++received;
          bytes += frame.payload.size();
        };
        return handler;
      };
  const std::string address = transport->Listen(ListenAddress(), accept);
  ASSERT_FALSE(address.empty());
  auto connection = transport->Dial(address, {});
  ASSERT_NE(connection, nullptr);
  // 4x the 8 MiB outbox capacity, in 512 KiB frames.
  constexpr std::size_t kFrameBytes = 512u << 10;
  constexpr std::size_t kFrames = 64;
  const std::string payload(kFrameBytes, 'x');
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(connection->SendFrame(wire::MsgType::kHeartbeat, payload));
  }
  ASSERT_TRUE(WaitUntil([&] {
    eunomia::sync::MutexLock lock(mu);
    return received >= kFrames;
  }));
  {
    eunomia::sync::MutexLock lock(mu);
    EXPECT_EQ(received, kFrames);
    EXPECT_EQ(bytes, kFrames * kFrameBytes);
  }
  connection->Close();
  transport->Shutdown();
}

// The wire maximum: one frame carrying a full kMaxPayloadBytes (16 MiB)
// payload crosses intact (length, checksum, content).
TEST_P(TransportConformanceTest, MaxSizePayloadRoundTrips) {
  eunomia::sync::Mutex mu{"conformance::mu", eunomia::sync::kRankLeaf};
  std::string received;
  std::atomic<bool> done{false};
  auto transport = MakeTransport();
  Transport::AcceptHandler accept =
      [&](const std::shared_ptr<Connection>&) {
        ConnectionHandler handler;
        handler.on_frame = [&](Connection&, wire::Frame&& frame) {
          eunomia::sync::MutexLock lock(mu);
          received = std::string(frame.payload);
          done.store(true);
        };
        return handler;
      };
  const std::string address = transport->Listen(ListenAddress(), accept);
  ASSERT_FALSE(address.empty());
  auto connection = transport->Dial(address, {});
  ASSERT_NE(connection, nullptr);
  std::string payload(wire::kMaxPayloadBytes, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 1315423911u >> 3);
  }
  ASSERT_TRUE(connection->SendFrame(wire::MsgType::kHeartbeat, payload));
  ASSERT_TRUE(WaitUntil([&] { return done.load(); }));
  eunomia::sync::MutexLock lock(mu);
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
  lock.Unlock();
  connection->Close();
  transport->Shutdown();
}

// Chunking: a batch bigger than one frame is split client-side and
// re-chunked server-side (tiny caps make it observable), and the stable
// stream still arrives complete and ordered.
TEST_P(TransportConformanceTest, OversizedBatchesAreChunked) {
  auto transport = MakeTransport();
  EunomiaServer::Options options;
  options.num_partitions = 1;
  options.stable_period_us = 200;
  options.max_ops_per_stable_frame = 8;
  EunomiaServer server(transport.get(), options);
  const std::string address = server.Start(ListenAddress());
  ASSERT_FALSE(address.empty());

  EunomiaClient::Options sub_options;
  sub_options.subscribe = true;
  EunomiaClient subscriber(transport.get(), address, sub_options);
  ASSERT_TRUE(subscriber.Connect());

  EunomiaClient::Options client_options;
  client_options.max_ops_per_frame = 16;
  EunomiaClient client(transport.get(), address, client_options);
  ASSERT_TRUE(client.Connect());
  std::vector<OpRecord> batch;
  for (Timestamp ts = 1; ts <= 500; ++ts) {
    batch.push_back(OpRecord{ts, 0, ts, 0});
  }
  ASSERT_TRUE(client.SubmitBatch(0, std::move(batch)));
  client.Heartbeat(0, kFarFutureTs);
  ASSERT_TRUE(client.WaitForAcks());
  EXPECT_EQ(client.ops_acked(), 500u);
  ASSERT_TRUE(
      WaitUntil([&] { return subscriber.stable_ops_received() >= 500; }));
  EXPECT_FALSE(subscriber.stream_broken());
  subscriber.Close();
  client.Close();
  server.Stop();
}

// Garbage on the wire is detected by the frame decoder and torn down —
// never a crash. TCP-only: loopback cannot inject raw bytes below the
// encoder.
TEST_P(TransportConformanceTest, GarbageBytesAreRejected) {
  if (!IsTcp()) {
    GTEST_SKIP() << "loopback has no raw-byte path below the frame encoder";
  }
  auto transport = MakeTransport();
  EunomiaServer::Options options;
  options.num_partitions = 1;
  EunomiaServer server(transport.get(), options);
  const std::string address = server.Start(ListenAddress());
  ASSERT_FALSE(address.empty());
  const auto colon = address.rfind(':');
  const int port = std::stoi(address.substr(colon + 1));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[64] = "not an EUNO frame at all, sorry";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
  // The server tears the connection down on the bad magic; we see EOF/RST.
  char buffer[16];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  EXPECT_LE(n, 0);
  ::close(fd);
  server.Stop();
}

// Shutdown while senders are mid-flight: SendFrame surfaces false (never a
// crash or hang), Shutdown returns, and after it no callback is running.
TEST_P(TransportConformanceTest, StopUnderFire) {
  std::atomic<std::uint64_t> frames_seen{0};
  auto transport = MakeTransport();
  Transport::AcceptHandler accept =
      [&](const std::shared_ptr<Connection>&) {
        ConnectionHandler handler;
        handler.on_frame = [&](Connection&, wire::Frame&&) {
          frames_seen.fetch_add(1, std::memory_order_relaxed);
        };
        return handler;
      };
  const std::string address = transport->Listen(ListenAddress(), accept);
  ASSERT_FALSE(address.empty());
  constexpr int kSenders = 3;
  std::atomic<bool> go{true};
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&] {
      auto connection = transport->Dial(address, {});
      if (connection == nullptr) {
        return;
      }
      const std::string payload(1024, 'p');
      while (go.load(std::memory_order_relaxed)) {
        if (!connection->SendFrame(wire::MsgType::kHeartbeat, payload)) {
          return;  // transport went away underneath us — expected
        }
      }
    });
  }
  WaitUntil([&] { return frames_seen.load() >= 100; });
  transport->Shutdown();
  go.store(false);
  for (auto& sender : senders) {
    sender.join();
  }
  SUCCEED();
}

// Close semantics: on_close fires exactly once per side with kNone on a
// graceful close, Close is idempotent, and the handler (with everything it
// captured) is dropped afterwards.
TEST_P(TransportConformanceTest, CloseSemantics) {
  std::atomic<int> server_closes{0};
  std::atomic<int> client_closes{0};
  std::atomic<int> server_close_error{-1};
  auto token = std::make_shared<int>(42);  // handler-capture canary
  std::weak_ptr<int> token_watch = token;
  auto transport = MakeTransport();
  Transport::AcceptHandler accept =
      [&, token](const std::shared_ptr<Connection>&) {
        ConnectionHandler handler;
        handler.on_close = [&, token](Connection&, wire::WireError error) {
          server_close_error.store(static_cast<int>(error));
          server_closes.fetch_add(1);
        };
        return handler;
      };
  const std::string address = transport->Listen(ListenAddress(), accept);
  ASSERT_FALSE(address.empty());
  ConnectionHandler dial_handler;
  dial_handler.on_close = [&](Connection&, wire::WireError) {
    client_closes.fetch_add(1);
  };
  auto connection = transport->Dial(address, std::move(dial_handler));
  ASSERT_NE(connection, nullptr);
  ASSERT_TRUE(connection->SendFrame(wire::MsgType::kHeartbeat, "ping"));
  connection->Close();
  connection->Close();  // idempotent
  ASSERT_TRUE(WaitUntil(
      [&] { return server_closes.load() == 1 && client_closes.load() == 1; }));
  EXPECT_TRUE(connection->closed());
  EXPECT_FALSE(connection->SendFrame(wire::MsgType::kHeartbeat, "late"));
  EXPECT_EQ(server_close_error.load(),
            static_cast<int>(wire::WireError::kNone));
  // The transport dropped the accept-side handler after on_close: once our
  // local reference goes, the canary it captured must die too (the accept
  // factory's copy persists, so drop that first via Shutdown below).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(server_closes.load(), 1);
  EXPECT_EQ(client_closes.load(), 1);
  transport->Shutdown();
  transport.reset();  // releases the transport's copy of the accept factory
  accept = nullptr;
  token.reset();
  EXPECT_TRUE(WaitUntil([&] { return token_watch.expired(); },
                        std::chrono::seconds(5)));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportConformanceTest,
    ::testing::Values(BackendParam{Backend::kLoopback, "loopback"},
                      BackendParam{Backend::kThreadedTcp, "threaded_tcp"},
                      BackendParam{Backend::kEpollTcp, "epoll_tcp"}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace eunomia::net
