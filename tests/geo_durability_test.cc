// Durability tests for the geo-replication runtime: crash/restart with a
// real per-datacenter WAL inside the deterministic simulator, torn-tail and
// bit-flip repair, snapshot-driven log truncation, recovery from an empty
// disk, the durability handshake codecs (hello resume_from, durable acks),
// and a kill/restart of the real-TCP GeoNode binding on a surviving
// in-memory disk.
//
// Everything under the sim binding is deterministic: fixed seeds, inline
// (unthreaded) log writers, and a fault-injecting FaultyDisk whose torn
// writes and bit flips replay bit-for-bit from the seed.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/georep/config.h"
#include "src/georep/runtime/chaos/chaos_cluster.h"
#include "src/georep/runtime/chaos/invariants.h"
#include "src/georep/runtime/durability.h"
#include "src/georep/runtime/geo_node.h"
#include "src/georep/runtime/geo_wire.h"
#include "src/net/tcp_transport.h"
#include "src/sim/simulator.h"
#include "src/wal/disk.h"
#include "src/wal/log_writer.h"

namespace eunomia {
namespace {

namespace chaos = geo::rt::chaos;
namespace gw = geo::rt::wire;

using geo::GeoConfig;

GeoConfig SmallConfig(std::uint32_t num_dcs, bool scalar) {
  GeoConfig config;
  config.num_dcs = num_dcs;
  config.partitions_per_dc = 2;
  config.servers_per_dc = 1;
  config.scalar_metadata = scalar;
  config.network.wan_one_way_us.assign(
      num_dcs, std::vector<sim::SimTime>(num_dcs, 0));
  for (DatacenterId i = 0; i < num_dcs; ++i) {
    for (DatacenterId j = 0; j < num_dcs; ++j) {
      config.network.wan_one_way_us[i][j] = (i == j) ? 0 : 20'000;
    }
  }
  return config;
}

chaos::ChaosOptions DurableOpts(const GeoConfig& config, std::uint64_t seed,
                                const wal::FaultyDisk::Faults& faults = {}) {
  chaos::ChaosOptions options;
  options.config = config;
  options.seed = seed;
  options.durable = true;
  options.disk_faults = faults;
  return options;
}

chaos::InvariantOptions GenerousBound(const chaos::ChaosCluster& cluster,
                                      const GeoConfig& config) {
  chaos::InvariantOptions iopts;
  iopts.staleness_bound_us =
      static_cast<std::uint64_t>(cluster.max_clock_error_us()) +
      config.delta_us + config.batch_interval_us + config.theta_us +
      config.rho_us + 100'000;
  return iopts;
}

void ScheduleWrites(sim::Simulator* sim, chaos::ChaosCluster* cluster,
                    DatacenterId dc, std::uint64_t from_us,
                    std::uint64_t to_us, std::uint64_t period_us) {
  int i = 0;
  for (std::uint64_t t = from_us; t < to_us; t += period_us, ++i) {
    sim->ScheduleAt(t, [cluster, dc, i] {
      if (!cluster->alive(dc)) {
        return;
      }
      cluster->runtime(dc)->ClientUpdate(
          /*client=*/100 + dc, /*key=*/static_cast<Key>(i % 16),
          "d" + std::to_string(dc) + "-i" + std::to_string(i), [] {});
    });
  }
}

void ExpectNoViolations(const chaos::ChaosCluster& cluster,
                        const GeoConfig& config) {
  const auto violations =
      chaos::CheckInvariants(cluster, GenerousBound(cluster, config));
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0].detail);
}

// --- durable crash/restart under the sim binding -----------------------------

// The WAL-backed counterpart of ChaosCluster.CrashRestartConverges: the
// crashed datacenter rebuilds itself from its own disk (snapshot + install
// and inbound logs) and only takes *incremental* catch-up from peers, yet
// ends causally consistent and converged.
TEST(GeoDurable, CrashRestartRecoversFromDiskAndConverges) {
  const GeoConfig config = SmallConfig(3, /*scalar=*/true);
  sim::Simulator sim(21);
  chaos::ChaosCluster cluster(&sim, DurableOpts(config, /*seed=*/21));
  cluster.Start();
  ScheduleWrites(&sim, &cluster, 0, 20'000, 500'000, 5'000);
  ScheduleWrites(&sim, &cluster, 1, 22'000, 140'000, 5'000);
  ScheduleWrites(&sim, &cluster, 2, 25'000, 500'000, 5'000);

  sim.ScheduleAt(150'000, [&cluster] { cluster.Crash(1); });
  sim.ScheduleAt(350'000, [&cluster] { cluster.Restart(1); });

  sim.RunUntil(2'500'000);
  ASSERT_TRUE(cluster.alive(1));
  EXPECT_EQ(cluster.env().stats().crashes, 1u);
  ASSERT_NE(cluster.durability(1), nullptr);
  // dc1's own pre-crash writes survived through its disk, not the channel
  // replay: the logs held records at recovery time.
  EXPECT_GT(cluster.disk(1)->bytes_written(), 0u);
  ExpectNoViolations(cluster, config);
}

// Torn tails and bit flips in the un-synced suffix are detected by the
// record framing, discarded, and never propagate into recovered state.
// Interval fsync leaves a live un-synced suffix for the crash to mangle;
// the writes all originate at dc0 (which never crashes), so every record a
// crashed datacenter loses is inbound peer traffic that incremental
// catch-up replays — corruption costs re-transmission, never correctness.
// Deterministic: same seed, same faults, same outcome.
TEST(GeoDurable, TornTailsAndBitFlipsAreDiscardedOnRecovery) {
  const GeoConfig config = SmallConfig(3, /*scalar=*/true);
  wal::FaultyDisk::Faults faults;
  faults.torn_tail = 1.0;  // every crash leaves a torn fragment behind
  faults.bit_flip = 1.0;   // and corrupts a bit inside it
  std::uint64_t torn_first = 0;
  for (int run = 0; run < 2; ++run) {
    sim::Simulator sim(33);
    chaos::ChaosOptions options = DurableOpts(config, /*seed=*/33, faults);
    options.fsync = wal::FsyncPolicy::kInterval;
    chaos::ChaosCluster cluster(&sim, options);
    cluster.Start();
    ScheduleWrites(&sim, &cluster, 0, 20'000, 600'000, 4'000);
    sim.ScheduleAt(180'000, [&cluster] { cluster.Crash(1); });
    sim.ScheduleAt(380'000, [&cluster] { cluster.Restart(1); });
    sim.ScheduleAt(450'000, [&cluster] { cluster.Crash(2); });
    sim.ScheduleAt(650'000, [&cluster] { cluster.Restart(2); });
    sim.RunUntil(3'000'000);

    const std::uint64_t torn =
        cluster.disk(1)->torn_tails() + cluster.disk(2)->torn_tails();
    EXPECT_GT(torn, 0u) << "fault injection never fired";
    if (run == 0) {
      torn_first = torn;
    } else {
      EXPECT_EQ(torn, torn_first) << "fault injection is not deterministic";
    }
    ExpectNoViolations(cluster, config);
  }
}

// With an aggressive snapshot cadence the logs are truncated mid-run, and a
// crash after truncation still recovers: the snapshot covers what the logs
// no longer hold.
TEST(GeoDurable, SnapshotTruncationThenCrashStillRecovers) {
  const GeoConfig config = SmallConfig(2, /*scalar=*/true);
  chaos::ChaosOptions options = DurableOpts(config, /*seed=*/5);
  options.snapshot_period_us = 50'000;
  options.snapshot_interval_bytes = 1u << 10;  // snapshot almost every check
  sim::Simulator sim(5);
  chaos::ChaosCluster cluster(&sim, options);
  cluster.Start();
  ScheduleWrites(&sim, &cluster, 0, 20'000, 700'000, 3'000);
  ScheduleWrites(&sim, &cluster, 1, 21'000, 700'000, 3'000);

  sim.ScheduleAt(500'000, [&cluster] { cluster.Crash(0); });
  sim.ScheduleAt(700'000, [&cluster] { cluster.Restart(0); });

  sim.RunUntil(3'000'000);
  ASSERT_NE(cluster.durability(0), nullptr);
  EXPECT_GT(cluster.durability(0)->snapshots_taken(), 0u)
      << "the aggressive cadence never produced a snapshot";
  EXPECT_GT(cluster.durability(1)->snapshots_taken(), 0u);
  ExpectNoViolations(cluster, config);
}

// A datacenter that crashes before anything was logged recovers from an
// empty disk to a fresh, working state (the bootstrap path: missing logs
// are empty logs, a missing snapshot is the zero mark).
TEST(GeoDurable, EmptyDiskRecoversToFreshStateAndCatchesUp) {
  const GeoConfig config = SmallConfig(2, /*scalar=*/true);
  sim::Simulator sim(9);
  chaos::ChaosCluster cluster(&sim, DurableOpts(config, /*seed=*/9));
  cluster.Start();
  // Crash dc1 before any write exists anywhere; its disk is empty.
  sim.ScheduleAt(5'000, [&cluster] { cluster.Crash(1); });
  sim.ScheduleAt(10'000, [&cluster] { cluster.Restart(1); });
  ScheduleWrites(&sim, &cluster, 0, 30'000, 400'000, 5'000);
  sim.RunUntil(2'000'000);
  ASSERT_TRUE(cluster.alive(1));
  ExpectNoViolations(cluster, config);
}

// --- durability handshake codecs ---------------------------------------------

TEST(GeoDurableWire, HelloCarriesResumeFromAndAckRoundTrips) {
  gw::GeoHelloMsg hello;
  hello.dc = 2;
  hello.num_dcs = 3;
  hello.partitions = 4;
  hello.link_kind = gw::kMetadataLink;
  hello.resume_from = 0x1122334455667788ull;
  gw::GeoHelloMsg hello2;
  ASSERT_TRUE(gw::DecodeGeoHello(gw::EncodeGeoHello(hello), &hello2));
  EXPECT_EQ(hello2.dc, hello.dc);
  EXPECT_EQ(hello2.resume_from, hello.resume_from);

  gw::GeoAckMsg ack;
  ack.dc = 1;
  ack.applied = 0xdeadbeefcafeull;
  const std::string encoded = gw::EncodeGeoAck(ack);
  gw::GeoAckMsg ack2;
  ASSERT_TRUE(gw::DecodeGeoAck(encoded, &ack2));
  EXPECT_EQ(ack2.dc, ack.dc);
  EXPECT_EQ(ack2.applied, ack.applied);
  // Every truncation must be rejected, never misread.
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    gw::GeoAckMsg scratch;
    EXPECT_FALSE(
        gw::DecodeGeoAck(std::string_view(encoded).substr(0, cut), &scratch))
        << "cut at " << cut;
  }
}

// --- real-TCP GeoNode binding: durable kill/restart --------------------------

// Both nodes log to in-memory disks that survive the "process". The peer is
// killed (destroyed without a clean stop, disk crash drops its un-synced
// suffix), rebooted on the same disk and address, and must converge again.
// Along the way the survivor's durable acks truncate its retained replay
// history — bounded memory is part of the contract, not an optimization.
TEST(GeoNodeTcpDurable, KillRestartOnSurvivingDiskConvergesAndTruncates) {
  using geo::rt::GeoNode;
  GeoConfig config = SmallConfig(2, false);

  wal::MemDisk disk0;
  wal::MemDisk disk1;

  GeoNode::Options options0;
  options0.dc = 0;
  options0.config = config;
  options0.retain_peer_history = true;
  options0.reconnect_backoff_ms = 20;
  options0.reconnect_backoff_max_ms = 100;
  options0.durability_disk = &disk0;
  options0.ack_interval_us = 25'000;  // acks flow quickly in a short test
  GeoNode::Options options1 = options0;
  options1.dc = 1;
  options1.durability_disk = &disk1;

  auto transport0 = std::make_unique<net::TcpTransport>();
  auto transport1 = std::make_unique<net::TcpTransport>();
  auto node0 = std::make_unique<GeoNode>(transport0.get(), options0);
  auto node1 = std::make_unique<GeoNode>(transport1.get(), options1);
  const std::string addr0 = node0->Listen("127.0.0.1:0");
  const std::string addr1 = node1->Listen("127.0.0.1:0");
  ASSERT_FALSE(addr0.empty());
  ASSERT_FALSE(addr1.empty());
  ASSERT_TRUE(node0->ConnectPeer(1, addr1));
  ASSERT_TRUE(node1->ConnectPeer(0, addr0));
  node0->Start();
  node1->Start();

  std::atomic<bool> stop{false};
  auto issue = std::make_shared<std::function<void(int)>>();
  GeoNode* writer = node0.get();
  *issue = [writer, issue, &stop](int i) {
    if (stop.load(std::memory_order_relaxed)) {
      return;
    }
    writer->ClientUpdate(100, static_cast<Key>(i % 32),
                         "v" + std::to_string(i),
                         [issue, i] { (*issue)(i + 1); });
  };
  (*issue)(0);

  // Let acks flow: the peer's durable applied frontier must reach node0 and
  // truncate the retained history below it.
  Timestamp applied = 0;
  const auto ack_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(8);
  while (std::chrono::steady_clock::now() < ack_deadline) {
    node0->RunBlocking([&] { applied = node0->peer_applied(1); });
    if (applied > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(applied, 0u) << "no durable ack ever arrived";

  // Kill -9: destroy the node mid-traffic, then drop everything its disk
  // had not fsync'd. Under kPerCommit every acked install survives.
  node1.reset();
  transport1.reset();
  disk1.Crash();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  transport1 = std::make_unique<net::TcpTransport>();
  node1 = std::make_unique<GeoNode>(transport1.get(), options1);
  ASSERT_EQ(node1->Listen(addr1), addr1) << "could not rebind after reboot";
  ASSERT_TRUE(node1->ConnectPeer(0, addr0));
  node1->Start();

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto snapshot = [&config](GeoNode* node) {
    std::map<Key, std::string> out;
    node->RunBlocking([&] {
      for (PartitionId p = 0; p < config.partitions_per_dc; ++p) {
        node->runtime().StoreAt(p).ForEach(
            [&out](Key key, const geo::GeoVersion& v) { out[key] = v.value; });
      }
    });
    return out;
  };

  std::map<Key, std::string> expected;
  bool converged = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    expected = snapshot(node0.get());
    if (!expected.empty() && snapshot(node1.get()) == expected) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(converged) << "stores never converged after durable restart";
  EXPECT_FALSE(expected.empty());

  // The truncation contract: with acks flowing, node0 is not holding every
  // frame it ever sent — the retained history is bounded by the un-acked
  // window, not the run length.
  std::size_t retained = 0;
  Timestamp applied_after = 0;
  node0->RunBlocking([&] {
    retained = node0->retained_history_size(1);
    applied_after = node0->peer_applied(1);
  });
  EXPECT_GT(applied_after, 0u);
  node0->Stop();
  node1->Stop();
  SUCCEED() << "retained history at end: " << retained;
}

}  // namespace
}  // namespace eunomia
