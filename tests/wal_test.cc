// Durability subsystem tests: record framing and torn-tail tolerance,
// the disk seam (posix / in-memory / fault-injecting), the group-commit
// LogWriter, and EunomiaService crash recovery end to end.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/eunomia/service.h"
#include "src/eunomia/service_wal.h"
#include "src/net/wire.h"
#include "src/wal/disk.h"
#include "src/wal/log.h"
#include "src/wal/log_writer.h"

namespace eunomia {
namespace {

using wal::FsyncPolicy;
using wal::LogState;
using wal::Record;

// --- record framing ----------------------------------------------------------

TEST(WalLog, RoundTripsRecords) {
  std::string log;
  wal::AppendRecord(&log, 1, "alpha");
  wal::AppendRecord(&log, 2, "");
  wal::AppendRecord(&log, 200, std::string(1000, 'x'));
  std::vector<Record> records;
  std::size_t valid = 0;
  EXPECT_EQ(wal::ReadLog(log, &records, &valid), LogState::kClean);
  EXPECT_EQ(valid, log.size());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[0].payload, "alpha");
  EXPECT_EQ(records[1].type, 2);
  EXPECT_EQ(records[1].payload, "");
  EXPECT_EQ(records[2].type, 200);
  EXPECT_EQ(records[2].payload, std::string(1000, 'x'));
}

TEST(WalLog, CrcMatchesWireCrc) {
  // The WAL keeps its own CRC-32 (the wire one lives in a library that
  // links after wal); this pin keeps the two from ever diverging.
  const std::string samples[] = {"", "a", "hello wal", std::string(4096, 7)};
  for (const std::string& s : samples) {
    EXPECT_EQ(wal::Crc32(s.data(), s.size()),
              net::wire::Crc32(s.data(), s.size()));
  }
}

TEST(WalLog, EveryTruncationYieldsAValidPrefix) {
  // A crash can cut the file at any byte. Whatever the cut point, ReadLog
  // must return exactly the records wholly before it, and report a torn
  // tail unless the cut lands on a record boundary.
  std::string log;
  std::vector<std::string> payloads = {"one", "", "three33", "4444"};
  std::vector<std::size_t> boundaries = {0};
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    wal::AppendRecord(&log, static_cast<std::uint8_t>(i + 1), payloads[i]);
    boundaries.push_back(log.size());
  }
  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    std::vector<Record> records;
    std::size_t valid = 0;
    const LogState state =
        wal::ReadLog(std::string_view(log).substr(0, cut), &records, &valid);
    const auto boundary =
        std::upper_bound(boundaries.begin(), boundaries.end(), cut) - 1;
    const auto whole = static_cast<std::size_t>(boundary - boundaries.begin());
    EXPECT_EQ(records.size(), whole) << "cut=" << cut;
    EXPECT_EQ(valid, *boundary) << "cut=" << cut;
    EXPECT_EQ(state, cut == *boundary ? LogState::kClean : LogState::kTornTail)
        << "cut=" << cut;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].payload, payloads[i]);
    }
  }
}

TEST(WalLog, SeededFuzzBitFlipsNeverProduceGarbage) {
  // Fuzz-lite in the geo_wire style: flip one random bit anywhere in a
  // valid log; parsing must yield a (possibly shorter) prefix of the
  // original records — never a record that was not written, never a crash.
  Rng rng(0x5EED4A11 ^ 0x1234);
  for (int round = 0; round < 500; ++round) {
    std::string log;
    std::vector<std::string> payloads;
    const int n = 1 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < n; ++i) {
      std::string payload(rng.NextBounded(64), '\0');
      for (char& c : payload) {
        c = static_cast<char>(rng.NextBounded(256));
      }
      payloads.push_back(payload);
      wal::AppendRecord(&log, static_cast<std::uint8_t>(1 + i % 7), payload);
    }
    std::string mangled = log;
    const std::size_t at = rng.NextBounded(mangled.size());
    mangled[at] = static_cast<char>(mangled[at] ^
                                    static_cast<char>(1u << rng.NextBounded(8)));
    std::vector<Record> records;
    wal::ReadLog(mangled, &records);
    ASSERT_LE(records.size(), payloads.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].payload, payloads[i]) << "round=" << round;
    }
  }
}

TEST(WalLog, RejectsOversizedLength) {
  std::string log;
  wal::AppendRecord(&log, 1, "ok");
  // Patch the length field (bytes 8..11, LE) to claim a 1 GiB payload: a
  // corrupt length must read as a torn tail, not as a huge allocation.
  log[8] = 0;
  log[9] = 0;
  log[10] = 0;
  log[11] = 0x40;
  std::vector<Record> records;
  EXPECT_EQ(wal::ReadLog(log, &records), LogState::kTornTail);
  EXPECT_TRUE(records.empty());
}

// --- the disk seam -----------------------------------------------------------

TEST(MemDisk, CrashDropsUnsyncedSuffix) {
  wal::MemDisk disk;
  auto file = disk.OpenAppend("f");
  ASSERT_TRUE(file->Append("durable"));
  ASSERT_TRUE(file->Sync());
  ASSERT_TRUE(file->Append("lost"));
  disk.Crash();
  std::string contents;
  ASSERT_TRUE(disk.ReadAll("f", &contents));
  EXPECT_EQ(contents, "durable");
}

TEST(MemDisk, WriteAtomicIsDurableAndHandleFollowsName) {
  wal::MemDisk disk;
  auto file = disk.OpenAppend("f");
  ASSERT_TRUE(file->Append("old"));
  ASSERT_TRUE(disk.WriteAtomic("f", "new"));
  // The open handle appends to the replaced file, like a reopened fd.
  ASSERT_TRUE(file->Append("+tail"));
  ASSERT_TRUE(file->Sync());
  disk.Crash();
  std::string contents;
  ASSERT_TRUE(disk.ReadAll("f", &contents));
  EXPECT_EQ(contents, "new+tail");
}

TEST(MemDisk, MissingFileReadsFalse) {
  wal::MemDisk disk;
  std::string contents = "sentinel";
  EXPECT_FALSE(disk.ReadAll("nope", &contents));
  EXPECT_TRUE(contents.empty());
}

TEST(FaultyDisk, TornTailKeepsPartialUnsyncedSuffixOnly) {
  wal::FaultyDisk disk({/*torn_tail=*/1.0, /*bit_flip=*/0.0}, /*seed=*/7);
  auto file = disk.OpenAppend("f");
  ASSERT_TRUE(file->Append("durable|"));
  ASSERT_TRUE(file->Sync());
  const std::string tail(256, 't');
  ASSERT_TRUE(file->Append(tail));
  disk.Crash();
  std::string contents;
  ASSERT_TRUE(disk.ReadAll("f", &contents));
  // The durable prefix is inviolate; the tail is a strict partial prefix.
  ASSERT_GE(contents.size(), 8u);
  EXPECT_EQ(contents.substr(0, 8), "durable|");
  EXPECT_LT(contents.size(), 8u + tail.size());
  EXPECT_EQ(disk.torn_tails(), 1u);
}

TEST(FaultyDisk, RecoverLogSurvivesTornAndFlippedTails) {
  // Seeded sweep: append framed records, sync a prefix, append more, crash
  // with torn+flip faults. Recovery must return all synced records, at most
  // the unsynced ones, in order, and leave the file clean for reappending.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    wal::FaultyDisk disk({/*torn_tail=*/0.8, /*bit_flip=*/0.5}, seed);
    auto file = disk.OpenAppend("log");
    std::vector<std::string> payloads;
    std::string buf;
    Rng rng(seed * 977 + 13);
    const int synced = 2 + static_cast<int>(rng.NextBounded(4));
    const int unsynced = 1 + static_cast<int>(rng.NextBounded(4));
    for (int i = 0; i < synced + unsynced; ++i) {
      std::string payload = "rec-" + std::to_string(i) +
                            std::string(rng.NextBounded(100), 'p');
      payloads.push_back(payload);
      buf.clear();
      wal::AppendRecord(&buf, 1, payload);
      ASSERT_TRUE(file->Append(buf));
      if (i == synced - 1) {
        ASSERT_TRUE(file->Sync());
      }
    }
    disk.Crash();
    std::vector<Record> records;
    wal::RecoverLog(&disk, "log", &records);
    ASSERT_GE(records.size(), static_cast<std::size_t>(synced)) << seed;
    ASSERT_LE(records.size(), payloads.size()) << seed;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].payload, payloads[i]) << seed;
    }
    // RecoverLog truncated any torn tail on disk: appending now must yield
    // a clean log containing the survivors plus the new record.
    file = disk.OpenAppend("log");
    buf.clear();
    wal::AppendRecord(&buf, 2, "after-recovery");
    ASSERT_TRUE(file->Append(buf));
    ASSERT_TRUE(file->Sync());
    std::string bytes;
    ASSERT_TRUE(disk.ReadAll("log", &bytes));
    std::vector<Record> reread;
    EXPECT_EQ(wal::ReadLog(bytes, &reread), LogState::kClean) << seed;
    ASSERT_EQ(reread.size(), records.size() + 1) << seed;
    EXPECT_EQ(reread.back().payload, "after-recovery");
  }
}

TEST(PosixDisk, RoundTripsThroughRealFiles) {
  char tmpl[] = "wal_posix_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    wal::PosixDisk disk(dir + "/nested");
    ASSERT_TRUE(disk.ok());
    auto file = disk.OpenAppend("log");
    ASSERT_NE(file, nullptr);
    ASSERT_TRUE(file->Append("hello "));
    ASSERT_TRUE(file->Append("disk"));
    ASSERT_TRUE(file->Sync());
    ASSERT_TRUE(disk.WriteAtomic("snap", "snapshot-bytes"));
    std::string contents;
    ASSERT_TRUE(disk.ReadAll("log", &contents));
    EXPECT_EQ(contents, "hello disk");
    ASSERT_TRUE(disk.ReadAll("snap", &contents));
    EXPECT_EQ(contents, "snapshot-bytes");
    auto names = disk.List();
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names, (std::vector<std::string>{"log", "snap"}));
    EXPECT_FALSE(disk.ReadAll("missing", &contents));
    EXPECT_TRUE(disk.Remove("snap"));
    EXPECT_FALSE(disk.ReadAll("snap", &contents));
  }
  // Reopen: state persisted across the disk object's lifetime.
  {
    wal::PosixDisk disk(dir + "/nested");
    std::string contents;
    ASSERT_TRUE(disk.ReadAll("log", &contents));
    EXPECT_EQ(contents, "hello disk");
    disk.Remove("log");
  }
  ::rmdir((dir + "/nested").c_str());
  ::rmdir(dir.c_str());
}

// --- LogWriter ---------------------------------------------------------------

std::vector<Record> ReadAllRecords(wal::Disk* disk, const std::string& name) {
  std::string bytes;
  disk->ReadAll(name, &bytes);
  std::vector<Record> records;
  wal::ReadLog(bytes, &records);
  return records;
}

TEST(LogWriter, InlinePerCommitIsDurableRecordByRecord) {
  wal::MemDisk disk;
  wal::LogWriter::Options options;
  options.policy = FsyncPolicy::kPerCommit;
  options.threaded = false;
  wal::LogWriter writer(&disk, "log", options);
  ASSERT_TRUE(writer.Append(1, "a"));
  ASSERT_TRUE(writer.Append(1, "b"));
  disk.Crash();
  const auto records = ReadAllRecords(&disk, "log");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].payload, "b");
}

TEST(LogWriter, InlineOffLosesEverythingOnCrash) {
  wal::MemDisk disk;
  wal::LogWriter::Options options;
  options.policy = FsyncPolicy::kOff;
  options.threaded = false;
  wal::LogWriter writer(&disk, "log", options);
  ASSERT_TRUE(writer.Append(1, "a"));
  disk.Crash();
  EXPECT_TRUE(ReadAllRecords(&disk, "log").empty());
  // ...unless flushed: Flush under kOff only waits for the write.
  ASSERT_TRUE(writer.Append(1, "b"));
  ASSERT_TRUE(writer.Flush());
  disk.Crash();
  EXPECT_TRUE(ReadAllRecords(&disk, "log").empty());
}

TEST(LogWriter, InlineIntervalSyncsByBytes) {
  wal::MemDisk disk;
  wal::LogWriter::Options options;
  options.policy = FsyncPolicy::kInterval;
  options.interval_bytes = 64;
  options.threaded = false;
  wal::LogWriter writer(&disk, "log", options);
  ASSERT_TRUE(writer.Append(1, "tiny"));  // below the threshold: unsynced
  const std::uint64_t syncs_before = disk.syncs();
  ASSERT_TRUE(writer.Append(1, std::string(100, 'x')));  // crosses it
  EXPECT_GT(disk.syncs(), syncs_before);
  disk.Crash();
  EXPECT_EQ(ReadAllRecords(&disk, "log").size(), 2u);
}

TEST(LogWriter, ThreadedPerCommitGroupCommitsConcurrentAppends) {
  wal::MemDisk disk;
  wal::LogWriter::Options options;
  options.policy = FsyncPolicy::kPerCommit;
  options.threaded = true;
  wal::LogWriter writer(&disk, "log", options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(writer.Append(
            1, "t" + std::to_string(t) + "-" + std::to_string(i)));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Every Append returned => every record durable: crash loses nothing.
  disk.Crash();
  const auto records = ReadAllRecords(&disk, "log");
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Group commit must have coalesced at least some appends: strictly fewer
  // fsyncs than records (the whole point of the batching thread).
  EXPECT_LT(disk.syncs(), static_cast<std::uint64_t>(kThreads * kPerThread));
  // Per-thread FIFO survived the batching.
  std::map<std::string, int> last_index;
  for (const Record& record : records) {
    const auto dash = record.payload.find('-');
    const std::string thread_tag = record.payload.substr(0, dash);
    const int index = std::stoi(record.payload.substr(dash + 1));
    auto it = last_index.find(thread_tag);
    if (it != last_index.end()) {
      EXPECT_GT(index, it->second);
    }
    last_index[thread_tag] = index;
  }
}

TEST(LogWriter, ThreadedOffCrashAfterFlushKeepsWritesOrderedButVolatile) {
  wal::MemDisk disk;
  wal::LogWriter::Options options;
  options.policy = FsyncPolicy::kOff;
  options.threaded = true;
  wal::LogWriter writer(&disk, "log", options);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.Append(1, std::to_string(i)));
  }
  ASSERT_TRUE(writer.Flush());  // everything written...
  EXPECT_EQ(ReadAllRecords(&disk, "log").size(), 50u);
  disk.Crash();  // ...but none of it synced
  EXPECT_TRUE(ReadAllRecords(&disk, "log").empty());
}

TEST(LogWriter, CompactRewritesAtomicallyAndKeepsAppending) {
  wal::MemDisk disk;
  wal::LogWriter::Options options;
  options.policy = FsyncPolicy::kPerCommit;
  options.threaded = true;
  wal::LogWriter writer(&disk, "log", options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append(1, std::to_string(i)));
  }
  ASSERT_TRUE(writer.Compact([](const wal::RecordView& record) {
    return std::stoi(std::string(record.payload)) >= 5;  // drop <5 prefix
  }));
  ASSERT_TRUE(writer.Append(2, "post-compact"));
  disk.Crash();
  const auto records = ReadAllRecords(&disk, "log");
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records.front().payload, "5");
  EXPECT_EQ(records.back().payload, "post-compact");
}

// --- EunomiaService recovery -------------------------------------------------

struct StreamCapture {
  sync::Mutex mu{"StreamCapture::mu", sync::kRankExempt};
  std::vector<OpRecord> ops;

  StableSink Sink() {
    return [this](const std::vector<OpRecord>& batch) {
      sync::MutexLock lock(mu);
      ops.insert(ops.end(), batch.begin(), batch.end());
    };
  }
  std::vector<OpRecord> Snapshot() {
    sync::MutexLock lock(mu);
    return ops;
  }
};

EunomiaService::Options DurableServiceOptions(wal::Disk* disk,
                                              StableSink sink,
                                              std::uint64_t snapshot_bytes =
                                                  1u << 30) {
  EunomiaService::Options options;
  options.num_partitions = 2;
  options.num_shards = 2;
  options.stable_period_us = 200;
  options.sink = std::move(sink);
  options.durability.disk = disk;
  options.durability.fsync = FsyncPolicy::kPerCommit;
  options.durability.threaded = false;  // deterministic inline appends
  options.durability.snapshot_interval_bytes = snapshot_bytes;
  return options;
}

std::vector<OpRecord> MakeBatch(PartitionId partition, Timestamp first_ts,
                                int count) {
  std::vector<OpRecord> batch;
  for (int i = 0; i < count; ++i) {
    const Timestamp ts = first_ts + static_cast<Timestamp>(i) * 2;
    batch.push_back(OpRecord{ts, partition, /*key=*/ts * 10 + partition,
                             /*tag=*/ts});
  }
  return batch;
}

void WaitForStabilized(const EunomiaService& service, std::uint64_t count) {
  for (int i = 0; i < 5000 && service.ops_stabilized() < count; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(service.ops_stabilized(), count);
}

TEST(ServiceRecovery, KillMidRunReplaysToThePreCrashFrontier) {
  wal::MemDisk disk;

  // Uninterrupted reference run on a throwaway disk: the stream to pin.
  std::vector<OpRecord> reference;
  {
    wal::MemDisk scratch;
    StreamCapture capture;
    EunomiaService service(DurableServiceOptions(&scratch, capture.Sink()));
    service.Start();
    for (PartitionId p = 0; p < 2; ++p) {
      service.SubmitBatch(p, MakeBatch(p, 1 + p, 50));
      service.Heartbeat(p, 1'000'000);
    }
    WaitForStabilized(service, 100);
    service.Stop();
    reference = capture.Snapshot();
    ASSERT_EQ(reference.size(), 100u);
  }

  // Crashed run: submit everything, stabilize half, then kill -9 (crash the
  // disk while the process state evaporates un-flushed).
  std::vector<OpRecord> pre_crash;
  {
    StreamCapture capture;
    EunomiaService service(DurableServiceOptions(&disk, capture.Sink()));
    service.Start();
    for (PartitionId p = 0; p < 2; ++p) {
      service.SubmitBatch(p, MakeBatch(p, 1 + p, 50));
      service.Heartbeat(p, 1'000'000);
    }
    WaitForStabilized(service, 100);
    pre_crash = capture.Snapshot();
    disk.Crash();  // kPerCommit: every accepted record is already durable
    service.Stop();
  }

  // Restart from the same disk: everything accepted pre-crash replays and
  // re-stabilizes (no snapshot was taken, so the full stream re-emits).
  StreamCapture capture;
  EunomiaService service(DurableServiceOptions(&disk, capture.Sink()));
  EXPECT_FALSE(service.recovered_torn_tail());
  service.Start();
  WaitForStabilized(service, 100);
  service.Stop();
  const auto replayed = capture.Snapshot();
  // Bit-for-bit: the replayed stream IS the uninterrupted stream.
  EXPECT_EQ(replayed, reference);
  EXPECT_EQ(pre_crash, reference);
}

TEST(ServiceRecovery, SnapshotSuppressesReEmissionOfTheCoveredPrefix) {
  wal::MemDisk disk;
  std::vector<OpRecord> first_stream;
  std::uint64_t snapshots = 0;
  {
    StreamCapture capture;
    // Tiny snapshot interval: every emission triggers snapshot+compaction.
    EunomiaService service(
        DurableServiceOptions(&disk, capture.Sink(), /*snapshot_bytes=*/1));
    service.Start();
    for (PartitionId p = 0; p < 2; ++p) {
      service.SubmitBatch(p, MakeBatch(p, 1 + p, 50));
      service.Heartbeat(p, 1'000'000);
    }
    WaitForStabilized(service, 100);
    disk.Crash();
    service.Stop();  // joins the merge thread, so the count below is final
    snapshots = service.wal_snapshots();
    first_stream = capture.Snapshot();
    ASSERT_EQ(first_stream.size(), 100u);
  }
  ASSERT_GT(snapshots, 0u);

  // The snapshot mark covers the stable frontier, so a restart must replay
  // state but re-emit nothing that the snapshot covered.
  StreamCapture capture;
  EunomiaService service(DurableServiceOptions(&disk, capture.Sink()));
  service.Start();
  // New load on top proves the service keeps going from the durable frontier.
  service.SubmitBatch(0, MakeBatch(0, 2'000'001, 10));
  service.Heartbeat(0, 3'000'000);
  service.Heartbeat(1, 3'000'000);
  WaitForStabilized(service, 10);
  service.Stop();
  const auto second_stream = capture.Snapshot();
  // No op from the covered prefix may re-emit; dedup-union equals the whole.
  std::set<std::pair<Timestamp, PartitionId>> seen_first;
  for (const OpRecord& op : first_stream) {
    seen_first.insert({op.ts, op.partition});
  }
  std::size_t new_ops = 0;
  for (const OpRecord& op : second_stream) {
    if (op.ts > 2'000'000) {
      ++new_ops;
      continue;
    }
    // Anything re-emitted below the frontier must be above the last
    // snapshot mark — and must be an op that really existed.
    EXPECT_TRUE(seen_first.count({op.ts, op.partition}));
  }
  EXPECT_EQ(new_ops, 10u);
  // The suppression must have held back at least the first snapshot's
  // covered prefix: a full re-emission means the mark was ignored.
  EXPECT_LT(second_stream.size() - new_ops, first_stream.size());
}

TEST(ServiceRecovery, TornTailIsDetectedDiscardedAndNeverPropagated) {
  wal::MemDisk disk;
  {
    StreamCapture capture;
    EunomiaService service(DurableServiceOptions(&disk, capture.Sink()));
    service.Start();
    service.SubmitBatch(0, MakeBatch(0, 1, 20));
    service.SubmitBatch(1, MakeBatch(1, 2, 20));
    disk.Crash();
    service.Stop();
  }
  // Tear the tail of partition 0's log mid-record, as a crash mid-write
  // would: chop the last 5 bytes and mangle the new last byte.
  std::string bytes;
  ASSERT_TRUE(disk.ReadAll(ServiceWal::LogName(0), &bytes));
  ASSERT_GT(bytes.size(), 6u);
  bytes.resize(bytes.size() - 5);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
  ASSERT_TRUE(disk.WriteAtomic(ServiceWal::LogName(0), bytes));

  StreamCapture capture;
  EunomiaService service(DurableServiceOptions(&disk, capture.Sink()));
  EXPECT_TRUE(service.recovered_torn_tail());
  service.Start();
  // Partition 1's batch is intact; partition 0 lost its only (torn) batch.
  service.Heartbeat(0, 1'000'000);
  service.Heartbeat(1, 1'000'000);
  WaitForStabilized(service, 20);
  service.Stop();
  for (const OpRecord& op : capture.Snapshot()) {
    EXPECT_EQ(op.partition, 1u);  // nothing torn ever reaches the stream
  }
}

TEST(ServiceRecovery, EmptyAndMissingDataDirRecoverToAFreshService) {
  wal::MemDisk disk;  // never written: recovery from nothing
  StreamCapture capture;
  EunomiaService service(DurableServiceOptions(&disk, capture.Sink()));
  EXPECT_FALSE(service.recovered_torn_tail());
  service.Start();
  service.SubmitBatch(0, MakeBatch(0, 1, 5));
  service.Heartbeat(0, 100);
  service.Heartbeat(1, 100);
  WaitForStabilized(service, 5);
  service.Stop();
  EXPECT_EQ(capture.Snapshot().size(), 5u);
}

}  // namespace
}  // namespace eunomia
